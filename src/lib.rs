//! # NDSEARCH — a reproduction of the ISCA'24 near-data ANNS accelerator
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`vector`] | `ndsearch-vector` | vectors, distances, synthetic datasets, recall |
//! | [`flash`] | `ndsearch-flash` | NAND flash simulator: geometry, commands, timing, FTL, ECC |
//! | [`graph`] | `ndsearch-graph` | CSR, LUNCSR, reordering, multi-plane placement |
//! | [`anns`] | `ndsearch-anns` | HNSW, DiskANN/Vamana, HCNNG, TOGG, bitonic sort, traces |
//! | [`core`] | `ndsearch-core` | SearSSD engine: Vgenerator, Allocator, SiN, scheduling, energy |
//! | [`baselines`] | `ndsearch-baselines` | CPU, CPU-T, GPU, SmartSSD, DeepStore models |
//!
//! ## Quickstart
//!
//! ```
//! use ndsearch::anns::hnsw::{Hnsw, HnswParams};
//! use ndsearch::anns::index::{GraphAnnsIndex, SearchParams};
//! use ndsearch::core::{config::NdsConfig, engine::NdsEngine, pipeline::Prepared};
//! use ndsearch::vector::synthetic::DatasetSpec;
//!
//! // 1. Build a dataset and an ANNS graph, and record search traces.
//! let (base, queries) = DatasetSpec::sift_scaled(500, 16).build_pair();
//! let index = Hnsw::build(&base, HnswParams::default());
//! let out = index.search_batch(&base, &queries, &SearchParams::default());
//!
//! // 2. Stage it on the simulated SearSSD and run the NDP engine.
//! let config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
//! let prepared = Prepared::stage(&config, index.base_graph(), &base, &out.trace);
//! let report = NdsEngine::new(&config).run(&prepared);
//! println!("QPS = {:.0}", report.qps());
//! # assert!(report.qps() > 0.0);
//! ```
//!
//! ## Serving concurrent queries
//!
//! The batch engine above replays one recorded trace to completion. The
//! serving layer ([`serve`], re-exported from `ndsearch-core`) instead
//! accepts an open stream of query sessions — submit/poll/complete with
//! per-query deadlines, admission and backpressure — and interleaves one
//! beam-search hop from every in-flight query across the flash channels
//! each scheduling round, reporting QPS and p50/p99 latency. See
//! `examples/serving_concurrent.rs` and the `serve_sweep` bench binary.
//!
//! ## Compressed-vector search (codes in DRAM + exact flash rerank)
//!
//! Setting [`core::config::NdsConfig::quantization`] to a
//! [`vector::quant::QuantSpec`] (`Int8` or `Pq { m, bits }`) switches
//! serving to the DiskANN recipe: the deployment trains a
//! [`vector::quant::QuantCodes`] table at staging, beam traversal
//! scores the DRAM-resident codes through the [`vector::quant::ScoreSource`]
//! seam (no NAND access per hop), and only the final
//! `ServeConfig::rerank_depth` candidates pay modeled flash page reads
//! for exact full-precision distances, charged to the dedicated
//! `rerank_ns` latency bucket. Inserts encode through the same trained
//! quantizer, compaction re-packs the table, the QPT DRAM budget admits
//! more residents (records shrink to code bytes), and quantized runs
//! stay bit-identical across `exec_threads` and shard orders. Opt out
//! at runtime with `NDSEARCH_NO_QUANT=1`. See the "Compressed-vector
//! search & exact rerank" section of `docs/ARCHITECTURE.md` and the
//! `quant_sweep` bench binary.
//!
//! ```
//! use ndsearch::anns::index::GraphAnnsIndex;
//! use ndsearch::anns::vamana::{Vamana, VamanaParams};
//! use ndsearch::core::config::NdsConfig;
//! use ndsearch::core::deploy::Deployment;
//! use ndsearch::core::serve::{QueryRequest, ServeConfig, ServeEngine};
//! use ndsearch::vector::synthetic::DatasetSpec;
//! use ndsearch::vector::QuantSpec;
//!
//! let (base, queries) = DatasetSpec::sift_scaled(300, 4).build_pair();
//! let index = Vamana::build(&base, VamanaParams::default());
//! let medoid = index.medoid();
//! let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
//! config.quantization = QuantSpec::Int8; // 1 byte/dim codes in DRAM
//! let serve = ServeConfig { rerank_depth: 24, ..ServeConfig::default() };
//! let deploy = Deployment::stage(&config, Box::new(index), base);
//! let mut engine = ServeEngine::with_deployment(&config, serve, deploy);
//! for (_, q) in queries.iter() {
//!     engine.submit(QueryRequest::at(0, q.to_vec(), vec![medoid]));
//! }
//! let report = engine.run_to_completion();
//! assert_eq!(report.completed(), queries.len());
//! # assert!(report.breakdown.rerank_ns > 0);
//! # assert_eq!(report.breakdown.nand_read_ns, 0);
//! ```
//!
//! ## Sharded multi-device serving
//!
//! The cluster tier (`core::cluster`, with the
//! [`vector::shard::ShardPlan`] partitioner) scales serving out across
//! many simulated devices: per-shard deployments (own index, LUNCSR
//! staging and flash device), queries scattered to every shard on one
//! shared worker pool, per-shard top-k gathered by a deterministic
//! `(distance, global id)` merge, and updates routed to their owning
//! shard. See the "Sharded serving" section of `docs/ARCHITECTURE.md`
//! and the `cluster_sweep` bench binary.
//!
//! ## Replication & failover
//!
//! A `core::cluster::ReplicationConfig` turns each shard into a replica
//! set of deterministic device twins: queries route per shard by
//! round-robin, least-loaded or hedged policy (backup session after a
//! delay, earlier completion wins), a `FailureSchedule` kills, storms or
//! wears out replicas mid-run from their *simulated* clocks, in-flight
//! sessions fail over to the surviving twin, and updates fan out to all
//! alive replicas. Degraded runs replay bit-identically. See the
//! "Replication & failover" section of `docs/ARCHITECTURE.md` and the
//! `replica_sweep` bench binary.
//!
//! ## Traffic scenarios & SLO scheduling
//!
//! `core::traffic` generates deterministic production-day workloads: a
//! seeded [`core::traffic::Scenario`] composes an arrival model
//! (closed-loop, Poisson, bursty spike windows or a diurnal profile)
//! with a query mix (Zipfian hotspots, multi-tenant streams carrying
//! per-tenant rate/deadline/top-k profiles and an update fraction) into
//! a replayable trace for any engine tier. On the serving side,
//! [`serve::SloPolicy`] makes the scheduler deadline-aware: `ShedDoomed`
//! evicts sessions whose estimated finish misses their deadline instead
//! of letting them burn capacity, and `TenantFair` bounds each tenant's
//! in-flight share; reports roll up per-tenant latency summaries, SLO
//! attainment, shed counts and a max/mean p99 fairness ratio. The same
//! seed replays a whole day — churn, compaction, a load spike, a replica
//! kill — bit-identically at any `exec_threads`. See the "Traffic
//! scenarios & SLO scheduling" section of `docs/ARCHITECTURE.md` and the
//! `scenario_sweep` bench binary.
//!
//! ```
//! use ndsearch::core::traffic::{ArrivalModel, QueryMix, Scenario, TenantProfile};
//!
//! let scenario = Scenario {
//!     arrivals: ArrivalModel::Poisson { rate_qps: 10_000.0 },
//!     mix: QueryMix {
//!         zipf_theta: 0.99,
//!         delete_fraction: 0.3,
//!         tenants: vec![
//!             TenantProfile::new(0).weight(3.0).deadline_ns(500_000),
//!             TenantProfile::new(1).update_fraction(0.2),
//!         ],
//!     },
//!     events: 100,
//!     start_ns: 0,
//!     seed: 7,
//! };
//! let trace = scenario.generate(32, 16, 0..64);
//! assert_eq!(trace.len(), 100);
//! # assert!(trace.queries() + trace.updates() == 100);
//! ```
//!
//! See `examples/` for full scenarios and `crates/bench` for the binaries
//! that regenerate every table and figure of the paper.

pub use ndsearch_anns as anns;
pub use ndsearch_baselines as baselines;
pub use ndsearch_core as core;
pub use ndsearch_core::serve;
pub use ndsearch_flash as flash;
pub use ndsearch_graph as graph;
pub use ndsearch_vector as vector;
