//! Speculative searching (§VI-B2, Fig. 12).
//!
//! The second-order neighbors of the current iteration's entry vertex are
//! the likely candidates of the *next* iteration: once the Allocating stage
//! of iteration *i* finishes, the Pref Unit fetches the entry's first-order
//! neighbor lists and selects second-order neighbors — preferring those
//! with the most connections to the first-order set — and the speculative
//! Searching stage computes their distances while iteration *i*'s
//! Gathering runs. If the next iteration's candidate set overlaps the
//! prefetched set, those distances are already available and the next
//! Searching stage shrinks. Mispredicted prefetches cost extra page
//! accesses (visible in Fig. 15) but their latency is fully overlapped.

use std::collections::HashMap;

use ndsearch_graph::luncsr::LunCsr;
use ndsearch_vector::VectorId;

/// Selects up to `budget` second-order neighbors of `entry`, ranked by how
/// many connections they have to the first-order neighbor set (ties by id
/// for determinism). First-order neighbors, `entry` itself, and vertices
/// the query has already visited (`seen`, tracked in the query property
/// table) are excluded — an already-computed vertex is never a next-round
/// candidate, so prefetching it would be a guaranteed miss.
pub fn select_prefetch(
    luncsr: &LunCsr,
    entry: VectorId,
    budget: usize,
    seen: &std::collections::HashSet<VectorId>,
) -> Vec<VectorId> {
    if budget == 0 {
        return Vec::new();
    }
    let first: Vec<VectorId> = luncsr.neighbors(entry).to_vec();
    let first_set: std::collections::HashSet<VectorId> = first.iter().copied().collect();
    let mut connections: HashMap<VectorId, u32> = HashMap::new();
    for &n in &first {
        for &m in luncsr.neighbors(n) {
            if m != entry && !first_set.contains(&m) && !seen.contains(&m) {
                *connections.entry(m).or_insert(0) += 1;
            }
        }
    }
    let mut ranked: Vec<(VectorId, u32)> = connections.into_iter().collect();
    ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(budget);
    ranked.into_iter().map(|(v, _)| v).collect()
}

/// Accounting for speculative searching across a batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpeculationStats {
    /// Prefetched vertices whose distances were used by the next iteration.
    pub hits: u64,
    /// Prefetched vertices that were never needed.
    pub misses: u64,
}

impl SpeculationStats {
    /// Fraction of prefetches that hit.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_flash::geometry::FlashGeometry;
    use ndsearch_graph::csr::Csr;
    use ndsearch_graph::mapping::{PlacementPolicy, VertexMapping};

    fn luncsr_from(lists: Vec<Vec<VectorId>>) -> LunCsr {
        let n = lists.len();
        let csr = Csr::from_adjacency(&lists).unwrap();
        let mapping = VertexMapping::place(
            FlashGeometry::tiny(),
            n,
            128,
            PlacementPolicy::MultiPlaneAware,
        );
        LunCsr::new(csr, mapping)
    }

    fn no_seen() -> std::collections::HashSet<VectorId> {
        std::collections::HashSet::new()
    }

    #[test]
    fn prefers_well_connected_second_order() {
        // 0 → {1, 2}; both 1 and 2 → 3; only 1 → 4. Vertex 3 has two
        // connections to the first-order set, 4 has one.
        let lc = luncsr_from(vec![vec![1, 2], vec![3, 4], vec![3], vec![], vec![]]);
        let picks = select_prefetch(&lc, 0, 1, &no_seen());
        assert_eq!(picks, vec![3]);
        let picks = select_prefetch(&lc, 0, 10, &no_seen());
        assert_eq!(picks, vec![3, 4]);
    }

    #[test]
    fn excludes_entry_and_first_order() {
        // 0 → 1 → 0 and 1 → 2; 2 is the only valid prefetch.
        let lc = luncsr_from(vec![vec![1], vec![0, 2], vec![]]);
        let picks = select_prefetch(&lc, 0, 10, &no_seen());
        assert_eq!(picks, vec![2]);
    }

    #[test]
    fn excludes_already_visited() {
        let lc = luncsr_from(vec![vec![1, 2], vec![3, 4], vec![3], vec![], vec![]]);
        let seen: std::collections::HashSet<VectorId> = [3u32].into_iter().collect();
        let picks = select_prefetch(&lc, 0, 10, &seen);
        assert_eq!(picks, vec![4], "visited vertex 3 must be skipped");
    }

    #[test]
    fn budget_zero_is_empty() {
        let lc = luncsr_from(vec![vec![1], vec![0]]);
        assert!(select_prefetch(&lc, 0, 0, &no_seen()).is_empty());
    }

    #[test]
    fn selection_invariants_on_random_graph() {
        // Pseudo-random graph: picks must be unique, within budget, never
        // the entry / a first-order neighbor / a seen vertex, and ranked by
        // nonincreasing connection count with ids breaking ties.
        let n = 64u32;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        let lists: Vec<Vec<VectorId>> = (0..n)
            .map(|v| {
                let mut l: Vec<VectorId> = (0..6).map(|_| next() % n).filter(|&m| m != v).collect();
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect();
        let lc = luncsr_from(lists.clone());
        for entry in 0..n {
            let seen: std::collections::HashSet<VectorId> = (0..4).map(|_| next() % n).collect();
            for budget in [1usize, 3, 16] {
                let picks = select_prefetch(&lc, entry, budget, &seen);
                assert!(picks.len() <= budget);
                let unique: std::collections::HashSet<_> = picks.iter().collect();
                assert_eq!(unique.len(), picks.len(), "duplicate prefetch");
                let first: std::collections::HashSet<VectorId> =
                    lists[entry as usize].iter().copied().collect();
                let count = |m: VectorId| {
                    lists[entry as usize]
                        .iter()
                        .filter(|&&f| lists[f as usize].contains(&m))
                        .count()
                };
                for window in picks.windows(2) {
                    let (a, b) = (count(window[0]), count(window[1]));
                    assert!(
                        a > b || (a == b && window[0] < window[1]),
                        "ranking violated: {window:?} with counts {a}, {b}"
                    );
                }
                for &p in &picks {
                    assert_ne!(p, entry);
                    assert!(!first.contains(&p), "first-order vertex prefetched");
                    assert!(!seen.contains(&p), "seen vertex prefetched");
                }
            }
        }
    }

    #[test]
    fn budget_truncates_by_rank() {
        // With budget 1 the single pick must equal the head of the
        // unbounded ranking.
        let lc = luncsr_from(vec![
            vec![1, 2, 3],
            vec![4, 5],
            vec![4, 5],
            vec![4],
            vec![],
            vec![],
        ]);
        let all = select_prefetch(&lc, 0, 10, &no_seen());
        let one = select_prefetch(&lc, 0, 1, &no_seen());
        assert_eq!(all, vec![4, 5]);
        assert_eq!(one, all[..1].to_vec());
    }

    #[test]
    fn hit_rate_math() {
        let s = SpeculationStats { hits: 3, misses: 9 };
        assert!((s.hit_rate() - 0.25).abs() < 1e-12);
        assert_eq!(SpeculationStats::default().hit_rate(), 0.0);
    }
}
