//! Deterministic production-traffic scenarios for the serving stack.
//!
//! Every workload the earlier layers run is either closed-loop or uniform:
//! submit N queries, wait. A production day looks nothing like that —
//! arrivals are bursty or diurnal, queries concentrate on Zipfian hotspots,
//! several tenants with different rate/deadline/top-k profiles share the
//! device, and a fraction of the stream is writes. This module generates
//! such workloads *deterministically* from a seed, so a "production day"
//! can gate CI bit-identically:
//!
//! * [`ArrivalModel`] — when events happen: closed-loop (all at once),
//!   Poisson, bursty (base rate with spike windows), or diurnal (a
//!   periodic rate profile). All open-loop models draw exponential
//!   inter-arrival gaps from a per-tenant [`Pcg32`] stream, with the
//!   instantaneous rate evaluated at the current simulated time.
//! * [`QueryMix`] — what the events are: a [`ZipfSampler`] picks query
//!   hotspots over a query pool, each [`TenantProfile`] contributes a
//!   weighted sub-stream with its own deadline/top-k profile, and an
//!   `update_fraction` routes events through the engines' existing
//!   `submit_update` path (inserts from an ingest pool, deletes from a
//!   per-tenant partition of a caller-supplied id range).
//! * [`Scenario::generate`] — composes the two into a [`TrafficTrace`]:
//!   a time-sorted event list that can be replayed into any of the three
//!   engines ([`TrafficTrace::submit_serve`] for a single device,
//!   [`TrafficTrace::submit_cluster`] for the sharded and replicated
//!   tiers).
//!
//! # Determinism
//!
//! Each tenant's sub-stream is generated from its own [`Pcg32`] seeded by
//! `(scenario seed, tenant id)` — never by the tenant's *position* in the
//! profile list — and the merged trace is ordered by
//! `(arrival_ns, tenant id, per-tenant sequence)`. Two consequences, both
//! pinned by property tests: the same seed replays the identical trace,
//! and permuting the order of [`QueryMix::tenants`] does not change the
//! merged interleaving.
//!
//! # Example
//!
//! ```
//! use ndsearch_core::traffic::{ArrivalModel, QueryMix, Scenario, TenantProfile};
//!
//! let scenario = Scenario {
//!     arrivals: ArrivalModel::Bursty {
//!         base_rate_qps: 2_000.0,
//!         spike_rate_qps: 20_000.0,
//!         spike_windows: vec![(1_000_000, 2_000_000)],
//!     },
//!     mix: QueryMix {
//!         zipf_theta: 0.99,
//!         delete_fraction: 0.3,
//!         tenants: vec![
//!             TenantProfile::new(0).weight(3.0).deadline_ns(400_000),
//!             TenantProfile::new(1).k(4).update_fraction(0.2),
//!         ],
//!     },
//!     events: 200,
//!     start_ns: 0,
//!     seed: 7,
//! };
//! let trace = scenario.generate(64, 32, 0..16);
//! assert_eq!(trace.len(), 200);
//! assert!(trace.events.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
//! ```

use std::ops::Range;

use ndsearch_flash::timing::Nanos;
use ndsearch_vector::dataset::Dataset;
use ndsearch_vector::rng::Pcg32;
use ndsearch_vector::VectorId;

use crate::cluster::{ClusterEngine, ClusterQueryRequest};
use crate::serve::{QueryId, QueryRequest, ServeEngine, UpdateId, UpdateRequest};

/// When events happen: the arrival process of a [`Scenario`].
///
/// Rates are in queries per *simulated* second; each tenant receives a
/// share of the total rate proportional to its [`TenantProfile::weight`].
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalModel {
    /// Every event arrives at the scenario start: the classic closed-loop
    /// "submit everything, drain" workload.
    ClosedLoop,
    /// Memoryless arrivals at a constant rate.
    Poisson {
        /// Mean total arrival rate, queries per simulated second.
        rate_qps: f64,
    },
    /// A base Poisson rate with load-spike windows at a higher rate.
    Bursty {
        /// Rate outside every spike window (must be positive).
        base_rate_qps: f64,
        /// Rate inside a spike window.
        spike_rate_qps: f64,
        /// Half-open `[start, end)` windows, in simulated ns relative to
        /// the scenario's `start_ns`.
        spike_windows: Vec<(Nanos, Nanos)>,
    },
    /// A periodic rate profile — the compressed "day".
    ///
    /// The instantaneous rate at offset `t` is
    /// `peak_rate_qps * profile[(t / (period_ns / len)) % len]`, with
    /// multipliers clamped to at least `1e-3` so the stream never stalls
    /// on a zero bucket.
    Diurnal {
        /// Rate multipliers per equal time bucket (typically 24 "hours").
        profile: Vec<f64>,
        /// Length of one full cycle in simulated ns.
        period_ns: Nanos,
        /// Rate corresponding to a multiplier of `1.0`.
        peak_rate_qps: f64,
    },
}

impl ArrivalModel {
    /// Instantaneous rate in events per simulated second at offset `t`
    /// (ns since scenario start). Closed-loop has no rate.
    fn rate_at(&self, t: Nanos) -> f64 {
        match self {
            ArrivalModel::ClosedLoop => 0.0,
            ArrivalModel::Poisson { rate_qps } => *rate_qps,
            ArrivalModel::Bursty {
                base_rate_qps,
                spike_rate_qps,
                spike_windows,
            } => {
                if spike_windows.iter().any(|&(s, e)| t >= s && t < e) {
                    *spike_rate_qps
                } else {
                    *base_rate_qps
                }
            }
            ArrivalModel::Diurnal {
                profile,
                period_ns,
                peak_rate_qps,
            } => {
                let bucket_ns = (*period_ns / profile.len() as Nanos).max(1);
                let bucket = ((t % (*period_ns).max(1)) / bucket_ns) as usize % profile.len();
                peak_rate_qps * profile[bucket].max(1e-3)
            }
        }
    }

    /// `count` monotone arrival offsets (ns since scenario start) for a
    /// sub-stream carrying `share` of the model's total rate.
    ///
    /// Open-loop models draw exponential gaps with the instantaneous rate
    /// evaluated at the current offset (a stepwise non-homogeneous Poisson
    /// process); closed-loop returns all zeros.
    pub fn sample_arrivals(&self, count: usize, share: f64, rng: &mut Pcg32) -> Vec<Nanos> {
        if matches!(self, ArrivalModel::ClosedLoop) {
            return vec![0; count];
        }
        let mut out = Vec::with_capacity(count);
        let mut t: Nanos = 0;
        for _ in 0..count {
            let rate_per_ns = (self.rate_at(t) * share).max(1e-12) * 1e-9;
            let u = rng.next_f64();
            let gap = (-(1.0 - u).ln() / rate_per_ns).min(1e18);
            t = t.saturating_add((gap as Nanos).max(1));
            out.push(t);
        }
        out
    }
}

/// Zipfian sampler over ranks `0..n`: rank `i` is drawn with probability
/// proportional to `1 / (i + 1)^theta`. `theta = 0` is uniform; larger
/// `theta` concentrates the mass on low ranks (the "hot" queries).
///
/// Sampling is a binary search over a precomputed CDF — O(log n) per
/// draw, fully deterministic given the [`Pcg32`] stream.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Sampler over `n` ranks with skew `theta >= 0`. `n` must be > 0.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "ZipfSampler over an empty domain");
        assert!(theta >= 0.0, "negative Zipf theta");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += ((i + 1) as f64).powf(-theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Draw one rank in `0..len()`.
    pub fn sample(&self, rng: &mut Pcg32) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true — construction asserts).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// One tenant's traffic profile inside a [`QueryMix`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantProfile {
    /// Tenant id, carried on every generated event and on the resulting
    /// query outcomes. Must be unique within a [`QueryMix`]; the id — not
    /// the position in the profile list — seeds the tenant's RNG stream.
    pub id: u32,
    /// Share of the total event count and arrival rate (relative to the
    /// sum of all tenant weights). Must be positive.
    pub weight: f64,
    /// Relative deadline applied to every query of this tenant
    /// (`deadline = arrival + this`), or `None` for best-effort traffic.
    pub deadline_ns: Option<Nanos>,
    /// Per-query top-k override, or `None` for the engine default.
    pub k: Option<usize>,
    /// Fraction of this tenant's events routed through `submit_update`
    /// instead of the query path, in `[0, 1]`.
    pub update_fraction: f64,
}

impl TenantProfile {
    /// A best-effort tenant with weight 1 and no updates.
    pub fn new(id: u32) -> Self {
        Self {
            id,
            weight: 1.0,
            deadline_ns: None,
            k: None,
            update_fraction: 0.0,
        }
    }

    /// Set the rate/count weight.
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Set the relative deadline.
    pub fn deadline_ns(mut self, deadline_ns: Nanos) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    /// Set the per-query top-k override.
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Set the update fraction.
    pub fn update_fraction(mut self, f: f64) -> Self {
        self.update_fraction = f;
        self
    }
}

/// What the events are: query hotspot skew, tenant profiles and the
/// write mix of a [`Scenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMix {
    /// Zipf skew of query-pool picks (`0` = uniform).
    pub zipf_theta: f64,
    /// Among update events, the fraction that are deletes (the rest are
    /// inserts). A delete whose tenant has exhausted its deletable-id
    /// partition degrades to an insert; with no ingest pool it degrades
    /// to a query, so the trace always carries exactly
    /// [`Scenario::events`] events.
    pub delete_fraction: f64,
    /// The tenants sharing the stream. Must be non-empty with unique ids.
    pub tenants: Vec<TenantProfile>,
}

impl QueryMix {
    /// A single best-effort tenant, uniform queries, no updates.
    pub fn single_tenant() -> Self {
        Self {
            zipf_theta: 0.0,
            delete_fraction: 0.0,
            tenants: vec![TenantProfile::new(0)],
        }
    }
}

/// The payload of one [`TrafficEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A search over query-pool row `pool_id`.
    Query {
        /// Row index into the query pool passed to `submit_*`.
        pool_id: VectorId,
        /// Per-query top-k override.
        k: Option<usize>,
        /// Absolute deadline (arrival + tenant relative deadline).
        deadline_ns: Option<Nanos>,
    },
    /// Ingest ingest-pool row `pool_id`.
    Insert {
        /// Row index into the ingest pool passed to `submit_*`.
        pool_id: VectorId,
    },
    /// Tombstone corpus id `id`.
    Delete {
        /// The corpus id to delete.
        id: VectorId,
    },
}

/// One timestamped event of a generated [`TrafficTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficEvent {
    /// Absolute simulated arrival time.
    pub arrival_ns: Nanos,
    /// The tenant that produced it.
    pub tenant: u32,
    /// What arrives.
    pub kind: EventKind,
}

/// A fully specified, seeded traffic scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The arrival process.
    pub arrivals: ArrivalModel,
    /// The query/tenant/update mix.
    pub mix: QueryMix,
    /// Total number of events across all tenants.
    pub events: usize,
    /// Absolute offset added to every arrival — lets several scenario
    /// phases tile one simulated day back to back.
    pub start_ns: Nanos,
    /// Seed for every RNG stream the generator uses.
    pub seed: u64,
}

impl Scenario {
    /// Generate the event trace.
    ///
    /// * `query_pool` — number of rows in the query pool the trace will
    ///   index (must be > 0 if any tenant emits queries);
    /// * `ingest_pool` — number of rows available for inserts (0 = no
    ///   ingest; insert events degrade to queries);
    /// * `deletable` — corpus ids eligible for deletion, partitioned
    ///   disjointly across tenants by stride so concurrent tenants never
    ///   race on the same id. Each id is deleted at most once.
    pub fn generate(
        &self,
        query_pool: usize,
        ingest_pool: usize,
        deletable: Range<VectorId>,
    ) -> TrafficTrace {
        assert!(!self.mix.tenants.is_empty(), "scenario with no tenants");
        assert!(query_pool > 0, "scenario with an empty query pool");

        // Canonical tenant order: ascending id. Generation depends only on
        // ids, so permuting `mix.tenants` cannot change the trace.
        let mut order: Vec<usize> = (0..self.mix.tenants.len()).collect();
        order.sort_unstable_by_key(|&i| self.mix.tenants[i].id);
        for w in order.windows(2) {
            assert_ne!(
                self.mix.tenants[w[0]].id, self.mix.tenants[w[1]].id,
                "duplicate tenant id"
            );
        }

        let total_weight: f64 = self.mix.tenants.iter().map(|t| t.weight.max(0.0)).sum();
        assert!(total_weight > 0.0, "tenant weights sum to zero");

        // Event counts proportional to weight; the remainder goes to the
        // lowest tenant ids.
        let mut counts: Vec<usize> = order
            .iter()
            .map(|&i| {
                let w = self.mix.tenants[i].weight.max(0.0);
                ((self.events as f64) * w / total_weight).floor() as usize
            })
            .collect();
        let mut assigned: usize = counts.iter().sum();
        let num_tenants = counts.len();
        let mut slot = 0;
        while assigned < self.events {
            counts[slot % num_tenants] += 1;
            assigned += 1;
            slot += 1;
        }

        let zipf = ZipfSampler::new(query_pool, self.mix.zipf_theta);
        let mut merged: Vec<(Nanos, u32, usize, EventKind)> = Vec::with_capacity(self.events);

        for (rank, (&ti, &count)) in order.iter().zip(counts.iter()).enumerate() {
            let tenant = &self.mix.tenants[ti];
            let mut rng = Pcg32::seed_from_u64(
                self.seed
                    .wrapping_add((tenant.id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            let share = tenant.weight.max(0.0) / total_weight;
            let arrivals = self.arrivals.sample_arrivals(count, share, &mut rng);

            // This tenant's disjoint slice of the deletable range, in a
            // seeded random deletion order.
            let mut delete_pool: Vec<VectorId> =
                deletable.clone().skip(rank).step_by(num_tenants).collect();
            rng.shuffle(&mut delete_pool);

            for (seq, offset) in arrivals.into_iter().enumerate() {
                let arrival_ns = self.start_ns.saturating_add(offset);
                let is_update = tenant.update_fraction > 0.0 && rng.chance(tenant.update_fraction);
                let kind = if is_update {
                    let want_delete =
                        self.mix.delete_fraction > 0.0 && rng.chance(self.mix.delete_fraction);
                    match (want_delete, delete_pool.pop(), ingest_pool) {
                        (true, Some(id), _) => EventKind::Delete { id },
                        (_, _, 0) => self.query_kind(&zipf, tenant, arrival_ns, &mut rng),
                        (_, _, n) => EventKind::Insert {
                            pool_id: rng.index(n) as VectorId,
                        },
                    }
                } else {
                    self.query_kind(&zipf, tenant, arrival_ns, &mut rng)
                };
                merged.push((arrival_ns, tenant.id, seq, kind));
            }
        }

        // Arrival order, ties broken by (tenant id, per-tenant sequence):
        // deterministic and independent of tenant-list order.
        merged.sort_by_key(|&(arrival_ns, tenant, seq, _)| (arrival_ns, tenant, seq));
        TrafficTrace {
            events: merged
                .into_iter()
                .map(|(arrival_ns, tenant, _, kind)| TrafficEvent {
                    arrival_ns,
                    tenant,
                    kind,
                })
                .collect(),
        }
    }

    fn query_kind(
        &self,
        zipf: &ZipfSampler,
        tenant: &TenantProfile,
        arrival_ns: Nanos,
        rng: &mut Pcg32,
    ) -> EventKind {
        EventKind::Query {
            pool_id: zipf.sample(rng) as VectorId,
            k: tenant.k,
            deadline_ns: tenant.deadline_ns.map(|d| arrival_ns.saturating_add(d)),
        }
    }
}

/// What one trace event became when replayed into an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submitted {
    /// A query session with this engine-assigned query id.
    Query(QueryId),
    /// An update session with this engine-assigned update id.
    Update(UpdateId),
}

/// A generated, time-sorted event stream — the output of
/// [`Scenario::generate`], replayable into any engine tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficTrace {
    /// Events sorted by `(arrival_ns, tenant id, per-tenant sequence)`.
    pub events: Vec<TrafficEvent>,
}

impl TrafficTrace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of query events.
    pub fn queries(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Query { .. }))
            .count()
    }

    /// Number of insert + delete events.
    pub fn updates(&self) -> usize {
        self.len() - self.queries()
    }

    /// Simulated span from first to last arrival (0 if < 2 events).
    pub fn span_ns(&self) -> Nanos {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => b.arrival_ns - a.arrival_ns,
            _ => 0,
        }
    }

    /// Replay the trace into a single-device [`ServeEngine`].
    ///
    /// Queries read their vector from `query_pool` and start from
    /// `entries`; inserts read from `ingest_pool`. Returns what each
    /// event became, in trace order.
    pub fn submit_serve(
        &self,
        engine: &mut ServeEngine,
        query_pool: &Dataset,
        ingest_pool: &Dataset,
        entries: &[VectorId],
    ) -> Vec<Submitted> {
        self.events
            .iter()
            .map(|e| match &e.kind {
                EventKind::Query {
                    pool_id,
                    k,
                    deadline_ns,
                } => {
                    let mut req = QueryRequest::at(
                        e.arrival_ns,
                        query_pool.vector(*pool_id).to_vec(),
                        entries.to_vec(),
                    );
                    req.tenant = e.tenant;
                    req.k = *k;
                    req.deadline_ns = *deadline_ns;
                    Submitted::Query(engine.submit(req))
                }
                EventKind::Insert { pool_id } => Submitted::Update(engine.submit_update(
                    UpdateRequest::insert_at(e.arrival_ns, ingest_pool.vector(*pool_id).to_vec()),
                )),
                EventKind::Delete { id } => Submitted::Update(
                    engine.submit_update(UpdateRequest::delete_at(e.arrival_ns, *id)),
                ),
            })
            .collect()
    }

    /// Replay the trace into a (possibly replicated) [`ClusterEngine`].
    ///
    /// Same contract as [`TrafficTrace::submit_serve`]; entry points are
    /// chosen per shard by the cluster itself.
    pub fn submit_cluster(
        &self,
        cluster: &mut ClusterEngine,
        query_pool: &Dataset,
        ingest_pool: &Dataset,
    ) -> Vec<Submitted> {
        self.events
            .iter()
            .map(|e| match &e.kind {
                EventKind::Query {
                    pool_id,
                    k,
                    deadline_ns,
                } => {
                    let mut req =
                        ClusterQueryRequest::at(e.arrival_ns, query_pool.vector(*pool_id).to_vec());
                    req.tenant = e.tenant;
                    req.k = *k;
                    req.deadline_ns = *deadline_ns;
                    Submitted::Query(cluster.submit(req))
                }
                EventKind::Insert { pool_id } => Submitted::Update(cluster.submit_update(
                    UpdateRequest::insert_at(e.arrival_ns, ingest_pool.vector(*pool_id).to_vec()),
                )),
                EventKind::Delete { id } => Submitted::Update(
                    cluster.submit_update(UpdateRequest::delete_at(e.arrival_ns, *id)),
                ),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson(events: usize, seed: u64) -> Scenario {
        Scenario {
            arrivals: ArrivalModel::Poisson { rate_qps: 10_000.0 },
            mix: QueryMix::single_tenant(),
            events,
            start_ns: 0,
            seed,
        }
    }

    #[test]
    fn closed_loop_arrives_at_start() {
        let s = Scenario {
            arrivals: ArrivalModel::ClosedLoop,
            start_ns: 500,
            ..poisson(20, 1)
        };
        let t = s.generate(8, 0, 0..0);
        assert_eq!(t.len(), 20);
        assert!(t.events.iter().all(|e| e.arrival_ns == 500));
    }

    #[test]
    fn arrivals_are_monotone_and_replayable() {
        let s = poisson(300, 42);
        let a = s.generate(32, 0, 0..0);
        let b = s.generate(32, 0, 0..0);
        assert_eq!(a, b, "same seed must replay bit-identically");
        assert!(a
            .events
            .windows(2)
            .all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        assert!(s.generate(32, 0, 0..0) != poisson(300, 43).generate(32, 0, 0..0));
    }

    #[test]
    fn zipf_skew_orders_frequencies() {
        let zipf = ZipfSampler::new(50, 1.2);
        let mut rng = Pcg32::seed_from_u64(9);
        let mut hist = [0usize; 50];
        for _ in 0..20_000 {
            hist[zipf.sample(&mut rng)] += 1;
        }
        assert!(hist[0] > hist[5] && hist[5] > hist[30]);
        // Uniform theta=0 spreads the mass.
        let flat = ZipfSampler::new(50, 0.0);
        let mut hist = [0usize; 50];
        for _ in 0..20_000 {
            hist[flat.sample(&mut rng)] += 1;
        }
        assert!(hist.iter().all(|&h| h > 200));
    }

    #[test]
    fn tenant_order_does_not_change_the_trace() {
        let a = TenantProfile::new(3).weight(2.0).deadline_ns(100_000);
        let b = TenantProfile::new(1).update_fraction(0.5);
        let mut s = poisson(200, 5);
        s.mix.delete_fraction = 0.5;
        s.mix.tenants = vec![a.clone(), b.clone()];
        let fwd = s.generate(16, 8, 0..40);
        s.mix.tenants = vec![b, a];
        assert_eq!(fwd, s.generate(16, 8, 0..40));
    }

    #[test]
    fn update_fraction_routes_events_and_deletes_are_unique() {
        let mut s = poisson(400, 11);
        s.mix.delete_fraction = 0.6;
        s.mix.tenants = vec![
            TenantProfile::new(0).update_fraction(0.5),
            TenantProfile::new(1).update_fraction(0.5),
        ];
        let t = s.generate(16, 8, 100..140);
        assert_eq!(t.len(), 400);
        assert!(t.updates() > 100, "half the stream should be updates");
        let mut deleted: Vec<VectorId> = t
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Delete { id } => Some(id),
                _ => None,
            })
            .collect();
        let n = deleted.len();
        assert!(n > 0);
        deleted.sort_unstable();
        deleted.dedup();
        assert_eq!(deleted.len(), n, "an id was deleted twice");
        assert!(deleted.iter().all(|&id| (100..140).contains(&id)));
    }

    #[test]
    fn bursty_spike_compresses_gaps() {
        let s = Scenario {
            arrivals: ArrivalModel::Bursty {
                base_rate_qps: 1_000.0,
                spike_rate_qps: 100_000.0,
                spike_windows: vec![(0, 2_000_000)],
            },
            ..poisson(400, 3)
        };
        let t = s.generate(8, 0, 0..0);
        let in_spike = t.events.iter().filter(|e| e.arrival_ns < 2_000_000).count();
        // 2 ms at 100k qps yields ~200 arrivals before the window closes;
        // at the base rate the same span would hold ~2.
        assert!(in_spike > 50, "spike produced only {in_spike} arrivals");
    }

    #[test]
    fn diurnal_trough_slows_the_stream() {
        let s = Scenario {
            arrivals: ArrivalModel::Diurnal {
                profile: vec![1.0, 0.01],
                period_ns: 2_000_000,
                peak_rate_qps: 50_000.0,
            },
            ..poisson(300, 8)
        };
        let t = s.generate(8, 0, 0..0);
        let peak = t
            .events
            .iter()
            .filter(|e| e.arrival_ns % 2_000_000 < 1_000_000);
        let trough = t
            .events
            .iter()
            .filter(|e| e.arrival_ns % 2_000_000 >= 1_000_000);
        assert!(peak.count() > trough.count() * 3);
    }
}
