//! SiN engines — LUN-level accelerators (Fig. 8).
//!
//! Each LUN accelerator owns a query queue, a Vaddr queue, an accelerator
//! controller issuing multi-plane read sequences, per-plane hard-decision
//! LDPC decoders, and MAC groups computing distances directly out of the
//! page buffers. The model replays one iteration's [`LunWork`]:
//!
//! * tasks targeting the same page share one page load when dynamic
//!   allocating is on (temporal locality, `pageLocBit`); without it, each
//!   query's accesses are served independently (the "w/o ds" baseline
//!   re-reads pages another query just had);
//! * page loads whose (block, page) addresses coincide across the LUN's
//!   planes merge into one multi-plane sense (whether that happens is
//!   decided by the *placement* policy — the `mp` knob);
//! * the MAC groups stream needed vectors out of the page buffer at the
//!   internal bandwidth and compute `dim` MACs per vector across the
//!   configured lanes.

use std::collections::BTreeMap;
use std::sync::Arc;

use ndsearch_flash::ecc::{EccDelta, EccEngine};
use ndsearch_flash::geometry::{LunId, PlaneId};
use ndsearch_flash::stats::FlashStats;
use ndsearch_flash::timing::Nanos;
use ndsearch_graph::luncsr::LunCsr;

use crate::alloc::LunWork;
use crate::config::NdsConfig;

/// Result of one LUN accelerator processing one iteration's work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinReport {
    /// NAND sense operations issued (multi-plane groups).
    pub sense_ops: u64,
    /// Pages loaded from the array (each sense op loads 1..planes pages).
    pub page_loads: u64,
    /// Page loads avoided by sharing a resident page across tasks.
    pub page_hits: u64,
    /// Distance computations performed.
    pub distances: u64,
    /// Time the accelerator is busy.
    pub busy_ns: Nanos,
    /// Of which: NAND sensing.
    pub sense_ns: Nanos,
    /// Of which: ECC decoding (hard + injected soft fallbacks).
    pub ecc_ns: Nanos,
    /// Of which: page-buffer streaming + MAC compute.
    pub compute_ns: Nanos,
    /// Result bytes produced (distances + ids) for data-out.
    pub result_bytes: u64,
    /// Soft-decision LDPC fallbacks that paused the pipeline.
    pub soft_fallbacks: u64,
}

/// Everything one LUN accelerator's iteration produces, as a *delta*
/// against engine-wide state: the timing report, flash-statistics and ECC
/// increments, and the planes the work touched (for the FTL's read-disturb
/// replay). Pure data — the caller merges outcomes in stable LUN order
/// ([`crate::exec`]) and commits the deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LunOutcome {
    /// The LUN that executed the work.
    pub lun: LunId,
    /// Timing/counters of the accelerator run.
    pub report: SinReport,
    /// Flash-statistics increments (merge into the engine-wide
    /// [`FlashStats`]).
    pub stats: FlashStats,
    /// ECC decode increments (apply to the engine-wide [`EccEngine`]).
    pub ecc: EccDelta,
    /// Global plane of every task, in task order (the FTL replays these
    /// for read-disturb accounting). Only collected when online refresh
    /// is enabled (`refresh_read_threshold > 0`) — empty otherwise, so
    /// the hot path never pays for it.
    pub touched_planes: Vec<PlaneId>,
}

/// One pooled work unit for the round executor ([`crate::exec::Pool`]):
/// an owned [`LunWork`] plus the round's engine-wide ECC snapshot
/// (shared by every job of the round).
#[derive(Debug, Clone)]
pub struct LunJob {
    /// The per-LUN work to process.
    pub work: LunWork,
    /// Engine-wide ECC state snapshotted at round start.
    pub ecc: Arc<EccEngine>,
}

/// Executes one iteration's work on one LUN accelerator.
///
/// Pure: reads only immutable snapshots (`luncsr`, `config`, the ECC
/// engine's counter cursors) and returns every effect as a mergeable
/// [`LunOutcome`], so independent LUNs can run on worker threads with
/// bit-identical results at any thread count (see [`crate::exec`]).
pub fn process_lun_work(
    work: &LunWork,
    luncsr: &LunCsr,
    config: &NdsConfig,
    ecc: &EccEngine,
) -> LunOutcome {
    let geom = &config.geometry;
    let timing = &config.timing;
    let dim_bytes = u64::from(luncsr.mapping().slot_bytes());
    let dynamic = config.scheduling.dynamic_allocating;

    // 1. Page-load accounting.
    //    With dynamic allocating the Dispatcher groups all tasks of a page
    //    together, so each needed page is sensed once per iteration. Without
    //    it, tasks arrive in query order and a plane's single page buffer
    //    only serves *consecutive* tasks on the same page — switching pages
    //    flushes the buffer, and a later query needing the old page pays a
    //    fresh sense (§VI-B1's "may be flushed and need to be read from the
    //    NAND arrays again by another query later").
    let accesses = work.tasks.len() as u64;
    let pages_per_plane = u64::from(geom.blocks_per_plane) * u64::from(geom.pages_per_block);
    let decompose = |page_key: u64| {
        let plane = (page_key / pages_per_plane) as u32;
        let within = page_key % pages_per_plane;
        let block = (within / u64::from(geom.pages_per_block)) as u32;
        let page = (within % u64::from(geom.pages_per_block)) as u32;
        (plane, block, page)
    };
    // Load events: (plane, block, page) with a multiplicity.
    let mut load_events: BTreeMap<(u32, u32, u32), u64> = BTreeMap::new();
    if dynamic {
        let mut distinct: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for t in &work.tasks {
            distinct.insert(t.addr.page_key(geom));
        }
        for page_key in distinct {
            *load_events.entry(decompose(page_key)).or_default() += 1;
        }
    } else {
        let mut buffered: BTreeMap<u32, u64> = BTreeMap::new(); // plane → page
        for t in &work.tasks {
            let page_key = t.addr.page_key(geom);
            let (plane, _, _) = decompose(page_key);
            if buffered.get(&plane) != Some(&page_key) {
                buffered.insert(plane, page_key);
                *load_events.entry(decompose(page_key)).or_default() += 1;
            }
        }
    }
    let page_loads: u64 = load_events.values().sum();
    let page_hits = accesses.saturating_sub(page_loads);

    // 2. Multi-plane sense merging: load events whose (block, page) row
    //    addresses coincide across distinct planes of this LUN fire as one
    //    multi-plane sequence — a hardware capability independent of the
    //    scheduling. Repeated loads of the same plane serialize, so the
    //    sense rounds for one (block, page) address equal the busiest
    //    plane's load count.
    let mut plane_loads: BTreeMap<(u32, u32), BTreeMap<u32, u64>> = BTreeMap::new();
    for (&(plane, block, page), &count) in &load_events {
        *plane_loads
            .entry((block, page))
            .or_default()
            .entry(plane)
            .or_default() += count;
    }
    let mut sense_ops = 0u64;
    let mut merged_multi_plane = 0u64;
    for per_plane in plane_loads.values() {
        sense_ops += per_plane.values().copied().max().unwrap_or(0);
        if per_plane.len() > 1 {
            merged_multi_plane += 1;
        }
        debug_assert!(per_plane.len() <= geom.planes_per_lun as usize);
    }

    // 3. Timing. The per-plane LDPC decoders, page-buffer read paths and
    //    MAC groups operate in parallel (Fig. 8: one hard-decision decoder
    //    and one MAC group pipeline per plane), so the LUN's ECC/compute
    //    time is the *busiest plane's*, while array senses serialize at the
    //    die (one multi-plane command sequence at a time).
    let sense_ns = sense_ops * timing.t_read_page_ns;
    let mut ecc_pass = ecc.begin_lun_pass();
    let mut plane_ecc: BTreeMap<u32, Nanos> = BTreeMap::new();
    let mut soft_fallbacks = 0u64;
    for (&(plane, _, _), &count) in &load_events {
        let before = ecc_pass.hard_failures();
        let mut t = 0;
        for _ in 0..count {
            debug_assert!(plane < geom.total_planes());
            t += ecc_pass.decode_page(plane);
        }
        soft_fallbacks += ecc_pass.hard_failures() - before;
        *plane_ecc.entry(plane).or_default() += t;
    }
    let ecc_ns = plane_ecc.values().copied().max().unwrap_or(0);
    // Per plane: distance computations (one per task) and *unique* vectors
    // streamed out of the page buffer — a vector crosses the buffer once
    // and the switch feeds it to the MAC groups serving all queued queries
    // (Fig. 8).
    let mut plane_distances: BTreeMap<u32, u64> = BTreeMap::new();
    let mut plane_vertices: BTreeMap<u32, std::collections::BTreeSet<u32>> = BTreeMap::new();
    for t in &work.tasks {
        let (plane, _, _) = decompose(t.addr.page_key(geom));
        *plane_distances.entry(plane).or_default() += 1;
        plane_vertices.entry(plane).or_default().insert(t.vertex);
    }
    let distances = work.tasks.len() as u64;
    let lanes_per_plane = (u64::from(config.mac_lanes()) / u64::from(geom.planes_per_lun)).max(1);
    let compute_ns = plane_distances
        .iter()
        .map(|(plane, &d)| {
            let unique = plane_vertices.get(plane).map_or(0, |s| s.len() as u64);
            let stream = timing.page_buffer_stream_ns(unique * dim_bytes);
            let mac = timing.accel_cycles_ns(d * dim_bytes.max(1) / lanes_per_plane);
            stream.max(mac)
        })
        .max()
        .unwrap_or(0);
    let busy_ns = sense_ns + ecc_ns + compute_ns;

    // 4. Stats — accumulated into a fresh delta, not engine-wide state.
    let non_spec = work.tasks.iter().filter(|t| !t.speculative).count() as u64;
    let result_bytes = non_spec * u64::from(config.result_entry_bytes);
    let stats_delta = FlashStats {
        page_reads: page_loads,
        search_ops: sense_ops,
        page_buffer_hits: page_hits,
        distance_evals: distances,
        multi_plane_ops: merged_multi_plane,
        ecc_soft_fallbacks: soft_fallbacks,
        bus_bytes: result_bytes,
        ..FlashStats::new()
    };

    LunOutcome {
        lun: work.lun,
        report: SinReport {
            sense_ops,
            page_loads,
            page_hits,
            distances,
            busy_ns,
            sense_ns,
            ecc_ns,
            compute_ns,
            result_bytes,
            soft_fallbacks,
        },
        stats: stats_delta,
        ecc: ecc_pass.into_delta(),
        touched_planes: if config.refresh_read_threshold > 0 {
            work.tasks
                .iter()
                .map(|t| t.addr.global_plane(geom))
                .collect()
        } else {
            Vec::new()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{Allocator, VertexTask};
    use ndsearch_flash::ecc::EccConfig;
    use ndsearch_flash::geometry::FlashGeometry;
    use ndsearch_flash::timing::FlashTiming;
    use ndsearch_graph::csr::Csr;
    use ndsearch_graph::mapping::{PlacementPolicy, VertexMapping};
    use ndsearch_vector::VectorId;

    fn setup(policy: PlacementPolicy, dynamic: bool) -> (LunCsr, NdsConfig) {
        let n = 1024;
        let lists: Vec<Vec<VectorId>> = (0..n as u32).map(|_| Vec::new()).collect();
        let csr = Csr::from_adjacency(&lists).unwrap();
        let mapping = VertexMapping::place(FlashGeometry::tiny(), n, 128, policy);
        let luncsr = LunCsr::new(csr, mapping);
        let mut config = NdsConfig {
            geometry: FlashGeometry::tiny(),
            timing: FlashTiming::default(),
            ecc: EccConfig {
                hard_decision_failure_prob: 0.0,
                ..EccConfig::default()
            },
            ..NdsConfig::default()
        };
        config.scheduling.dynamic_allocating = dynamic;
        (luncsr, config)
    }

    fn work_for(luncsr: &LunCsr, config: &NdsConfig, tasks: &[(u32, VectorId)]) -> Vec<LunWork> {
        let triples: Vec<_> = tasks
            .iter()
            .map(|&(q, v)| (q, v, luncsr.lun_of(v)))
            .collect();
        Allocator
            .dispatch(luncsr, &config.timing, &triples, false)
            .work
    }

    #[test]
    fn shared_pages_load_once_with_dynamic_allocating() {
        let (lc, cfg) = setup(PlacementPolicy::MultiPlaneAware, true);
        // Vertices 0..16 share one page (tiny geometry, 128 B slots).
        let tasks: Vec<(u32, VectorId)> = (0..8u32).map(|q| (q, q)).collect();
        let work = work_for(&lc, &cfg, &tasks);
        assert_eq!(work.len(), 1);
        let ecc = EccEngine::new(&cfg.geometry, cfg.ecc);
        let rep = process_lun_work(&work[0], &lc, &cfg, &ecc).report;
        assert_eq!(rep.page_loads, 1);
        assert_eq!(rep.page_hits, 7);
        assert_eq!(rep.distances, 8);
    }

    #[test]
    fn without_dynamic_allocating_interleaved_queries_reload() {
        // Vertices 0 and 256 sit on two different pages of the *same plane*
        // (tiny geometry: 16 page-slots stride between same-plane pages).
        // Interleaved queries flush each other's page buffer; the dynamic
        // allocator would group them and load each page once.
        let (lc, cfg) = setup(PlacementPolicy::MultiPlaneAware, false);
        assert_eq!(lc.mapping().plane_of(0), lc.mapping().plane_of(256));
        assert_eq!(lc.lun_of(0), lc.lun_of(256));
        let tasks: Vec<(u32, VectorId)> = (0..8u32)
            .map(|q| (q, if q % 2 == 0 { 0 } else { 256 }))
            .collect();
        let work = work_for(&lc, &cfg, &tasks);
        assert_eq!(work.len(), 1);
        let ecc = EccEngine::new(&cfg.geometry, cfg.ecc);
        let rep = process_lun_work(&work[0], &lc, &cfg, &ecc).report;
        assert_eq!(rep.page_loads, 8, "every task switches the page buffer");
        assert_eq!(rep.page_hits, 0);

        // With dynamic allocating the same tasks load each page once.
        let (lc2, cfg2) = setup(PlacementPolicy::MultiPlaneAware, true);
        let work2 = work_for(&lc2, &cfg2, &tasks);
        let ecc2 = EccEngine::new(&cfg2.geometry, cfg2.ecc);
        let rep2 = process_lun_work(&work2[0], &lc2, &cfg2, &ecc2).report;
        assert_eq!(rep2.page_loads, 2);
        assert_eq!(rep2.page_hits, 6);
    }

    #[test]
    fn without_dynamic_allocating_consecutive_tasks_still_share() {
        // Consecutive tasks on one page reuse the resident buffer even
        // without da (the stream-order reuse of a single page register).
        let (lc, cfg) = setup(PlacementPolicy::MultiPlaneAware, false);
        let tasks: Vec<(u32, VectorId)> = (0..8u32).map(|q| (q, q)).collect();
        let work = work_for(&lc, &cfg, &tasks);
        let ecc = EccEngine::new(&cfg.geometry, cfg.ecc);
        let rep = process_lun_work(&work[0], &lc, &cfg, &ecc).report;
        assert_eq!(rep.page_loads, 1);
        assert_eq!(rep.page_hits, 7);
    }

    #[test]
    fn multiplane_placement_merges_senses() {
        let (lc, cfg) = setup(PlacementPolicy::MultiPlaneAware, true);
        // Vertices 0..32 cover two pages in planes 0 and 1 of LUN 0 with
        // the same (block, page) address → one multi-plane sense.
        let tasks: Vec<(u32, VectorId)> = (0..32u32).map(|v| (0, v)).collect();
        let work = work_for(&lc, &cfg, &tasks);
        assert_eq!(work.len(), 1);
        let ecc = EccEngine::new(&cfg.geometry, cfg.ecc);
        let out = process_lun_work(&work[0], &lc, &cfg, &ecc);
        assert_eq!(out.report.page_loads, 2);
        assert_eq!(out.report.sense_ops, 1, "two planes, one multi-plane op");
        assert_eq!(out.stats.multi_plane_ops, 1);
    }

    #[test]
    fn linear_placement_cannot_merge() {
        let (lc, cfg) = setup(PlacementPolicy::Linear, true);
        let tasks: Vec<(u32, VectorId)> = (0..32u32).map(|v| (0, v)).collect();
        let work = work_for(&lc, &cfg, &tasks);
        let mut ecc = EccEngine::new(&cfg.geometry, cfg.ecc);
        let mut stats = FlashStats::new();
        let mut loads = 0;
        let mut senses = 0;
        for w in &work {
            let out = process_lun_work(w, &lc, &cfg, &ecc);
            ecc.apply(&out.ecc);
            stats.merge(&out.stats);
            loads += out.report.page_loads;
            senses += out.report.sense_ops;
        }
        assert_eq!(loads, 2);
        assert_eq!(
            senses, 2,
            "linear placement stripes consecutive pages to different LUNs \
             with no multi-plane alignment"
        );
        assert_eq!(stats.multi_plane_ops, 0);
    }

    #[test]
    fn ecc_failures_add_latency() {
        let (lc, mut cfg) = setup(PlacementPolicy::MultiPlaneAware, true);
        let tasks: Vec<(u32, VectorId)> = (0..64u32).map(|v| (0, v)).collect();
        let work = work_for(&lc, &cfg, &tasks);
        let run = |cfg: &NdsConfig, work: &[LunWork]| {
            let mut ecc = EccEngine::new(&cfg.geometry, cfg.ecc);
            work.iter()
                .map(|w| {
                    let out = process_lun_work(w, &lc, cfg, &ecc);
                    ecc.apply(&out.ecc);
                    out.report.busy_ns
                })
                .sum::<u64>()
        };
        let clean = run(&cfg, &work);
        cfg.ecc.hard_decision_failure_prob = 1.0;
        let dirty = run(&cfg, &work);
        assert!(dirty > clean, "soft fallbacks must slow the LUN down");
    }

    #[test]
    fn speculative_tasks_produce_no_result_bytes() {
        let (lc, mut cfg) = setup(PlacementPolicy::MultiPlaneAware, true);
        // Touched planes are only collected for the refresh path.
        cfg.refresh_read_threshold = 1;
        let work = LunWork {
            lun: lc.lun_of(0),
            tasks: vec![VertexTask {
                query: 0,
                vertex: 0,
                addr: lc.physical_addr(0),
                speculative: true,
            }],
        };
        let ecc = EccEngine::new(&cfg.geometry, cfg.ecc);
        let out = process_lun_work(&work, &lc, &cfg, &ecc);
        assert_eq!(out.report.result_bytes, 0);
        assert_eq!(
            out.report.page_loads, 1,
            "speculative loads still cost pages"
        );
        assert_eq!(out.touched_planes.len(), 1);
        assert_eq!(out.ecc.decodes, 1);
    }

    #[test]
    fn outcome_is_a_pure_delta() {
        // Processing the same work twice against the same engine snapshot
        // yields identical outcomes — nothing engine-wide was mutated.
        let (lc, mut cfg) = setup(PlacementPolicy::MultiPlaneAware, true);
        cfg.refresh_read_threshold = 1; // collect touched planes too
        let tasks: Vec<(u32, VectorId)> = (0..32u32).map(|v| (v % 4, v)).collect();
        let work = work_for(&lc, &cfg, &tasks);
        let ecc = EccEngine::new(&cfg.geometry, cfg.ecc);
        let a = process_lun_work(&work[0], &lc, &cfg, &ecc);
        let b = process_lun_work(&work[0], &lc, &cfg, &ecc);
        assert_eq!(a, b);
        assert_eq!(ecc.decode_count(), 0, "the engine snapshot is untouched");
        // The delta accounts for exactly the work's tasks and pages.
        assert_eq!(a.touched_planes.len(), work[0].tasks.len());
        assert_eq!(a.stats.page_reads, a.report.page_loads);
        assert_eq!(a.ecc.decodes, a.report.page_loads);

        // With refresh disabled the plane list is skipped (hot path).
        cfg.refresh_read_threshold = 0;
        let hot = process_lun_work(&work[0], &lc, &cfg, &ecc);
        assert!(hot.touched_planes.is_empty());
        assert_eq!(hot.report, a.report);
    }
}
