//! End-to-end static-scheduling pipeline.
//!
//! Turns a constructed ANNS graph + dataset + recorded traces into the
//! physical view the engine simulates: reorder vertices (static
//! scheduling), place them under the multi-plane restrictions, assemble
//! LUNCSR, and relabel the traces into the new id space — the software
//! steps of §VI-A performed offline before the search runs.

use ndsearch_anns::trace::{BatchTrace, IterationTrace};
use ndsearch_graph::csr::Csr;
use ndsearch_graph::luncsr::LunCsr;
use ndsearch_graph::mapping::VertexMapping;
use ndsearch_graph::reorder::Permutation;
use ndsearch_vector::dataset::Dataset;

use crate::config::NdsConfig;

/// Everything the engine needs, staged on "flash".
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The LUNCSR-formatted graph.
    pub luncsr: LunCsr,
    /// Traces relabeled into the reordered id space.
    pub trace: BatchTrace,
    /// The reordering permutation applied.
    pub perm: Permutation,
    /// Feature-vector bytes as stored in NAND.
    pub vector_bytes: usize,
    /// Vector dimensionality.
    pub dim: usize,
}

impl Prepared {
    /// Runs static scheduling for `config` and packages the engine inputs.
    ///
    /// # Panics
    /// Panics if the dataset size differs from the graph's vertex count or
    /// if the dataset does not fit the configured geometry.
    pub fn stage(config: &NdsConfig, graph: &Csr, base: &Dataset, trace: &BatchTrace) -> Prepared {
        assert_eq!(
            graph.num_vertices(),
            base.len(),
            "graph and dataset must agree on vertex count"
        );
        let perm = config.scheduling.reorder.permutation(graph, config.seed);
        let reordered = graph.relabel(&perm);
        let mapping = VertexMapping::place(
            config.geometry,
            reordered.num_vertices(),
            base.stored_vector_bytes(),
            config.scheduling.placement,
        );
        let luncsr = LunCsr::new(reordered, mapping);
        Prepared {
            luncsr,
            trace: trace.relabel(&perm),
            perm,
            vector_bytes: base.stored_vector_bytes(),
            dim: base.dim(),
        }
    }

    /// Relabels one live search hop into the reordered id space.
    ///
    /// The batch engine replays traces that [`Prepared::stage`] relabeled
    /// up front; the serving engine instead runs beam search *live* against
    /// the construction-order graph and relabels each hop as it is
    /// scheduled onto the hardware model.
    pub fn relabel_hop(&self, hop: &IterationTrace) -> IterationTrace {
        IterationTrace {
            entry: self.perm.new_of(hop.entry),
            visited: hop.visited.iter().map(|&v| self.perm.new_of(v)).collect(),
        }
    }

    /// Restages the same inputs under a different scheduling configuration
    /// (ablation loops reuse the built graph and recorded traces).
    pub fn restage(
        config: &NdsConfig,
        graph: &Csr,
        base: &Dataset,
        trace: &BatchTrace,
    ) -> Prepared {
        Self::stage(config, graph, base, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulingConfig;
    use ndsearch_anns::trace::{IterationTrace, QueryTrace};
    use ndsearch_graph::reorder::ReorderMethod;
    use ndsearch_vector::synthetic::DatasetSpec;

    fn ring_graph(n: usize) -> Csr {
        let lists: Vec<Vec<u32>> = (0..n as u32)
            .map(|v| vec![(v + 1) % n as u32, (v + n as u32 - 1) % n as u32])
            .collect();
        Csr::from_adjacency(&lists).unwrap()
    }

    fn tiny_trace() -> BatchTrace {
        BatchTrace {
            queries: vec![QueryTrace {
                iterations: vec![IterationTrace {
                    entry: 0,
                    visited: vec![1, 2],
                }],
            }],
        }
    }

    #[test]
    fn stage_relabels_consistently() {
        let base = DatasetSpec::sift_scaled(100, 1).build();
        let graph = ring_graph(100);
        let config = NdsConfig::scaled_for(100, base.stored_vector_bytes());
        let prepared = Prepared::stage(&config, &graph, &base, &tiny_trace());
        // Every trace id must be a valid vertex.
        for q in &prepared.trace.queries {
            for it in &q.iterations {
                assert!((it.entry as usize) < 100);
                for &v in &it.visited {
                    assert!((v as usize) < 100);
                }
            }
        }
        // The relabeled entry is perm(0).
        assert_eq!(
            prepared.trace.queries[0].iterations[0].entry,
            prepared.perm.new_of(0)
        );
    }

    #[test]
    fn identity_scheduling_keeps_ids() {
        let base = DatasetSpec::sift_scaled(64, 1).build();
        let graph = ring_graph(64);
        let mut config = NdsConfig::scaled_for(64, base.stored_vector_bytes());
        config.scheduling = SchedulingConfig::bare();
        let prepared = Prepared::stage(&config, &graph, &base, &tiny_trace());
        assert_eq!(prepared.trace, tiny_trace());
        assert_eq!(prepared.perm.new_of(5), 5);
    }

    #[test]
    fn relabel_hop_matches_batch_relabel() {
        let base = DatasetSpec::sift_scaled(128, 1).build();
        let graph = ring_graph(128);
        let config = NdsConfig::scaled_for(128, base.stored_vector_bytes());
        let trace = tiny_trace();
        let prepared = Prepared::stage(&config, &graph, &base, &trace);
        let hop = &trace.queries[0].iterations[0];
        assert_eq!(
            prepared.relabel_hop(hop),
            prepared.trace.queries[0].iterations[0]
        );
    }

    #[test]
    fn reordering_changes_physical_spread() {
        let base = DatasetSpec::sift_scaled(256, 1).build();
        let graph = ring_graph(256);
        let mut config = NdsConfig::scaled_for(256, base.stored_vector_bytes());
        config.scheduling.reorder = ReorderMethod::RandomShuffle;
        let shuffled = Prepared::stage(&config, &graph, &base, &tiny_trace());
        config.scheduling.reorder = ReorderMethod::DegreeAscendingBfs;
        let ours = Prepared::stage(&config, &graph, &base, &tiny_trace());
        // Under our reordering, ring neighbors co-locate: measure how many
        // graph edges stay within one page.
        let same_page = |p: &Prepared| {
            let lc = &p.luncsr;
            let mut hits = 0u32;
            for v in 0..lc.num_vertices() as u32 {
                for &nb in lc.neighbors(v) {
                    if lc.physical_addr(v).page_key(&config.geometry)
                        == lc.physical_addr(nb).page_key(&config.geometry)
                    {
                        hits += 1;
                    }
                }
            }
            hits
        };
        assert!(
            same_page(&ours) > same_page(&shuffled),
            "degree-ascending BFS should co-locate neighbors"
        );
    }
}
