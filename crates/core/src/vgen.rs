//! Vgenerator — the graph-traversal fetch pipeline (Fig. 7a).
//!
//! Each search iteration, the QP reader pulls the current entry-vertex ids
//! out of the query property table and streams them through a three-stage
//! pipeline: the OFS Fetcher reads the offset array, the NBR Fetcher reads
//! the neighbor ids, and the LUN Fetcher reads the neighbors' LUN ids (all
//! from LUNCSR in SSD DRAM). The Pref Unit additionally prefetches
//! second-order neighbor ids for speculative searching. The model charges
//! pipelined DRAM latency plus array-streaming bandwidth.

use ndsearch_flash::timing::{FlashTiming, Nanos};
use ndsearch_graph::luncsr::LunCsr;
use ndsearch_vector::VectorId;

/// The output of one Vgenerator pass: per active query, the entry vertex's
/// neighbor ids paired with their LUNs (the `Nid`/`Lid` fractions of the
/// NBR buffer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VgenOutput {
    /// `(query index, neighbor id, lun id)` triples in pipeline order.
    pub triples: Vec<(u32, VectorId, u32)>,
    /// Latency of the pass.
    pub latency_ns: Nanos,
}

/// The Vgenerator model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Vgenerator;

impl Vgenerator {
    /// Runs one pass for `entries` = (query index, entry vertex,
    /// already-filtered neighbor list). The neighbor lists come from the
    /// recorded trace (they are the *unvisited* neighbors the real
    /// algorithm computed); LUN ids come from LUNCSR's LUN array.
    pub fn run(
        &self,
        luncsr: &LunCsr,
        timing: &FlashTiming,
        entries: &[(u32, VectorId, &[VectorId])],
    ) -> VgenOutput {
        let mut triples = Vec::new();
        let mut neighbor_entries = 0u64;
        for &(q, _entry, visited) in entries {
            for &nb in visited {
                triples.push((q, nb, luncsr.lun_of(nb)));
            }
            neighbor_entries += visited.len() as u64;
        }
        // Three pipeline stages, one DRAM access each, overlapped across
        // queries: fill (3 stages) + one beat per query, plus streaming the
        // neighbor+LUN arrays (8 B per entry) from DRAM.
        let beats = entries.len() as u64 + 2;
        let latency_ns =
            beats * timing.t_dram_access_ns + timing.dram_transfer_ns(neighbor_entries * 8);
        VgenOutput {
            triples,
            latency_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_flash::geometry::FlashGeometry;
    use ndsearch_graph::csr::Csr;
    use ndsearch_graph::mapping::{PlacementPolicy, VertexMapping};

    fn luncsr(n: usize) -> LunCsr {
        let lists: Vec<Vec<VectorId>> = (0..n as u32).map(|v| vec![(v + 1) % n as u32]).collect();
        let csr = Csr::from_adjacency(&lists).unwrap();
        let mapping = VertexMapping::place(
            FlashGeometry::tiny(),
            n,
            128,
            PlacementPolicy::MultiPlaneAware,
        );
        LunCsr::new(csr, mapping)
    }

    #[test]
    fn triples_carry_lun_ids() {
        let lc = luncsr(100);
        let timing = FlashTiming::default();
        let visited = [5u32, 40, 77];
        let out = Vgenerator.run(&lc, &timing, &[(0, 4, &visited)]);
        assert_eq!(out.triples.len(), 3);
        for (q, nb, lun) in &out.triples {
            assert_eq!(*q, 0);
            assert_eq!(*lun, lc.lun_of(*nb));
        }
    }

    #[test]
    fn latency_grows_with_queries_and_neighbors() {
        let lc = luncsr(200);
        let timing = FlashTiming::default();
        let v1 = [1u32];
        let small = Vgenerator.run(&lc, &timing, &[(0, 0, &v1)]);
        let v2: Vec<u32> = (0..150).collect();
        let entries: Vec<_> = (0..50u32).map(|q| (q, q, &v2[..])).collect();
        let big = Vgenerator.run(&lc, &timing, &entries);
        assert!(big.latency_ns > small.latency_ns);
    }

    #[test]
    fn empty_pass_costs_pipeline_fill_only() {
        let lc = luncsr(10);
        let timing = FlashTiming::default();
        let out = Vgenerator.run(&lc, &timing, &[]);
        assert!(out.triples.is_empty());
        assert_eq!(out.latency_ns, 2 * timing.t_dram_access_ns);
    }
}
