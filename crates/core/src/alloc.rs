//! Allocator — batch-wise dynamic dispatch to LUN accelerators (Fig. 7b).
//!
//! The Dispatcher gathers neighbors with the same LUN id (and their
//! queries) into the same fraction of the Alloc Buffer, then the Alloc CTR
//! generates every neighbor's physical address straight from LUNCSR —
//! avoiding FTL translation on the critical path — and ships (query,
//! address) pairs to the LUN-level accelerators through the Flash CTRs.

use ndsearch_flash::geometry::{LunId, PhysAddr};
use ndsearch_flash::timing::{FlashTiming, Nanos};
use ndsearch_graph::luncsr::LunCsr;
use ndsearch_vector::VectorId;

/// One unit of distance-computation work: a query needs the vector of
/// `vertex` (stored at `addr`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexTask {
    /// Query index within the batch.
    pub query: u32,
    /// Vertex whose feature vector is read.
    pub vertex: VectorId,
    /// Resolved physical address.
    pub addr: PhysAddr,
    /// Whether this task is a speculative prefetch (overlapped, off the
    /// critical path; still costs page accesses).
    pub speculative: bool,
}

/// Work bound for one LUN accelerator in one iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LunWork {
    /// Target LUN.
    pub lun: LunId,
    /// Tasks dispatched to it.
    pub tasks: Vec<VertexTask>,
}

/// Output of the Allocating stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocOutput {
    /// Per-LUN work lists (the "LUN list" iterated by Algorithm 1), sorted
    /// by LUN id for determinism.
    pub work: Vec<LunWork>,
    /// Latency of dispatch + address generation.
    pub latency_ns: Nanos,
}

/// The Allocator model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Allocator;

impl Allocator {
    /// Dispatches `(query, neighbor, lun)` triples (from the Vgenerator)
    /// into per-LUN work lists, resolving physical addresses via LUNCSR.
    pub fn dispatch(
        &self,
        luncsr: &LunCsr,
        timing: &FlashTiming,
        triples: &[(u32, VectorId, u32)],
        speculative: bool,
    ) -> AllocOutput {
        let mut by_lun: std::collections::BTreeMap<LunId, Vec<VertexTask>> =
            std::collections::BTreeMap::new();
        for &(query, vertex, lun) in triples {
            debug_assert_eq!(lun, luncsr.lun_of(vertex));
            by_lun.entry(lun).or_default().push(VertexTask {
                query,
                vertex,
                addr: luncsr.physical_addr(vertex),
                speculative,
            });
        }
        let work: Vec<LunWork> = by_lun
            .into_iter()
            .map(|(lun, tasks)| LunWork { lun, tasks })
            .collect();
        // Address generation is pure logic (a few cycles per neighbor) and
        // the dispatch scan is one pass over the triples.
        let cycles = 2 * triples.len() as u64 + 8;
        let latency_ns = timing.accel_cycles_ns(cycles);
        AllocOutput { work, latency_ns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_flash::geometry::FlashGeometry;
    use ndsearch_graph::csr::Csr;
    use ndsearch_graph::mapping::{PlacementPolicy, VertexMapping};

    fn luncsr(n: usize) -> LunCsr {
        let lists: Vec<Vec<VectorId>> = (0..n as u32).map(|_| Vec::new()).collect();
        let csr = Csr::from_adjacency(&lists).unwrap();
        let mapping = VertexMapping::place(
            FlashGeometry::tiny(),
            n,
            128,
            PlacementPolicy::MultiPlaneAware,
        );
        LunCsr::new(csr, mapping)
    }

    #[test]
    fn groups_by_lun() {
        let lc = luncsr(600);
        let timing = FlashTiming::default();
        // Pick vertices spread across LUNs.
        let triples: Vec<(u32, VectorId, u32)> = (0..600u32)
            .step_by(37)
            .map(|v| (v % 4, v, lc.lun_of(v)))
            .collect();
        let out = Allocator.dispatch(&lc, &timing, &triples, false);
        let total: usize = out.work.iter().map(|w| w.tasks.len()).sum();
        assert_eq!(total, triples.len());
        // Sorted by LUN, and every task's address sits on its LUN.
        for pair in out.work.windows(2) {
            assert!(pair[0].lun < pair[1].lun);
        }
        for w in &out.work {
            for t in &w.tasks {
                assert_eq!(t.addr.lun, w.lun);
                assert_eq!(t.addr, lc.physical_addr(t.vertex));
            }
        }
    }

    #[test]
    fn one_query_can_hit_many_luns() {
        // The paper's Fig. 7 example: q1 goes to LUN1 and LUN3 etc.
        let lc = luncsr(600);
        let timing = FlashTiming::default();
        let triples: Vec<(u32, VectorId, u32)> = [5u32, 100, 300, 550]
            .iter()
            .map(|&v| (0, v, lc.lun_of(v)))
            .collect();
        let out = Allocator.dispatch(&lc, &timing, &triples, false);
        assert!(out.work.len() > 1, "one query should fan out to LUNs");
    }

    #[test]
    fn latency_scales_with_triples() {
        let lc = luncsr(600);
        let timing = FlashTiming::default();
        let few: Vec<_> = (0..4u32).map(|v| (0, v, lc.lun_of(v))).collect();
        let many: Vec<_> = (0..400u32).map(|v| (0, v, lc.lun_of(v))).collect();
        let a = Allocator.dispatch(&lc, &timing, &few, false);
        let b = Allocator.dispatch(&lc, &timing, &many, false);
        assert!(b.latency_ns > a.latency_ns);
    }

    #[test]
    fn speculative_flag_propagates() {
        let lc = luncsr(100);
        let timing = FlashTiming::default();
        let out = Allocator.dispatch(&lc, &timing, &[(0, 1, lc.lun_of(1))], true);
        assert!(out.work[0].tasks[0].speculative);
    }
}
