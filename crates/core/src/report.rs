//! Simulation reports: latency breakdown, statistics, throughput, and the
//! order statistics (p50/p99) the serving layer reports per query.

use ndsearch_flash::stats::FlashStats;
use ndsearch_flash::timing::Nanos;

use crate::speculative::SpeculationStats;

/// Order statistics over a set of latency samples — the shape a serving
/// benchmark reports (mean / p50 / p95 / p99 / max), computed with the
/// nearest-rank method.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median (50th percentile, nearest rank).
    pub p50_ns: Nanos,
    /// 95th percentile.
    pub p95_ns: Nanos,
    /// 99th percentile.
    pub p99_ns: Nanos,
    /// Worst sample.
    pub max_ns: Nanos,
    /// Host wall-clock seconds the simulator spent producing the run the
    /// samples came from (0 when not measured; filled by
    /// [`crate::serve::ServeReport::latency`] and
    /// [`crate::cluster::ClusterReport::latency`]). Wall-clock time is a
    /// host measurement, not a simulation result: it varies run to run,
    /// so every report type excludes it from equality, and in a cluster
    /// it is meaningful only at the *cluster* level — all replica
    /// engines share one host worker pool, so per-replica wall time is
    /// not attributable and per-replica reports carry 0 here.
    pub wall_s: f64,
    /// Wall-clock simulation throughput: simulated nanoseconds advanced
    /// per host second (0 when not measured; same host-measurement
    /// caveats as `wall_s`).
    pub sim_ns_per_wall_s: f64,
}

impl LatencySummary {
    /// Summarizes `samples` (order irrelevant; an empty slice yields the
    /// all-zero summary). The wall-clock fields stay 0 — only a caller
    /// that actually timed the run can fill them.
    pub fn from_samples(samples: &[Nanos]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let pct = |p: f64| -> Nanos {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
            sorted[rank.min(sorted.len()) - 1]
        };
        LatencySummary {
            count: sorted.len(),
            mean_ns: sorted.iter().map(|&x| x as f64).sum::<f64>() / sorted.len() as f64,
            p50_ns: pct(50.0),
            p95_ns: pct(95.0),
            p99_ns: pct(99.0),
            max_ns: *sorted.last().unwrap(),
            wall_s: 0.0,
            sim_ns_per_wall_s: 0.0,
        }
    }
}

/// One query's contribution to the per-tenant roll-up — the neutral shape
/// both [`crate::serve::ServeReport`] and [`crate::cluster::ClusterReport`]
/// lower their outcomes into before calling [`summarize_tenants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSample {
    /// Tenant id of the query.
    pub tenant: u32,
    /// Whether the query completed on time.
    pub completed: bool,
    /// Whether it expired (deadline passed mid-flight or in queue).
    pub expired: bool,
    /// Whether it was rejected (queue overflow or shed at admission).
    pub rejected: bool,
    /// Whether an [`crate::serve::SloPolicy::ShedDoomed`] decision caused
    /// the terminal state.
    pub shed: bool,
    /// Whether the query carried a deadline (counts toward attainment).
    pub has_deadline: bool,
    /// End-to-end latency; meaningful only when `completed`.
    pub latency_ns: Nanos,
}

/// Per-tenant serving roll-up: outcome counts, SLO attainment and the
/// completed-query [`LatencySummary`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantSummary {
    /// Tenant id.
    pub tenant: u32,
    /// Queries this tenant submitted (terminal outcomes observed).
    pub submitted: usize,
    /// Queries completed on time.
    pub completed: usize,
    /// Queries that expired past their deadline.
    pub expired: usize,
    /// Queries rejected at admission (overflow or shed).
    pub rejected: usize,
    /// Queries terminated by a shed decision (subset of
    /// `expired + rejected`).
    pub shed: usize,
    /// Queries that carried a deadline.
    pub deadline_total: usize,
    /// Deadline-carrying queries that completed on time.
    pub deadline_met: usize,
    /// Latency order statistics over this tenant's completed queries.
    pub latency: LatencySummary,
}

impl TenantSummary {
    /// Fraction of this tenant's deadline-carrying queries that completed
    /// on time; `1.0` when the tenant ran only best-effort traffic.
    pub fn slo_attainment(&self) -> f64 {
        if self.deadline_total == 0 {
            1.0
        } else {
            self.deadline_met as f64 / self.deadline_total as f64
        }
    }
}

/// Groups `samples` by tenant id (ascending) and rolls each group up into
/// a [`TenantSummary`].
pub fn summarize_tenants(samples: &[TenantSample]) -> Vec<TenantSummary> {
    let mut by_tenant: std::collections::BTreeMap<u32, (TenantSummary, Vec<Nanos>)> =
        std::collections::BTreeMap::new();
    for s in samples {
        let (summary, lats) = by_tenant.entry(s.tenant).or_insert_with(|| {
            (
                TenantSummary {
                    tenant: s.tenant,
                    ..TenantSummary::default()
                },
                Vec::new(),
            )
        });
        summary.submitted += 1;
        summary.completed += usize::from(s.completed);
        summary.expired += usize::from(s.expired);
        summary.rejected += usize::from(s.rejected);
        summary.shed += usize::from(s.shed);
        summary.deadline_total += usize::from(s.has_deadline);
        summary.deadline_met += usize::from(s.has_deadline && s.completed);
        if s.completed {
            lats.push(s.latency_ns);
        }
    }
    by_tenant
        .into_values()
        .map(|(mut summary, lats)| {
            summary.latency = LatencySummary::from_samples(&lats);
            summary
        })
        .collect()
}

/// Fairness of a per-tenant roll-up: max over mean of the per-tenant p99
/// latencies, over tenants with at least one completion. `1.0` is perfectly
/// fair (every tenant sees the same tail); large values mean one tenant's
/// tail dominates. Returns `1.0` with fewer than two contributing tenants.
pub fn tenant_p99_fairness(summaries: &[TenantSummary]) -> f64 {
    let p99s: Vec<f64> = summaries
        .iter()
        .filter(|t| t.latency.count > 0)
        .map(|t| t.latency.p99_ns as f64)
        .collect();
    if p99s.len() < 2 {
        return 1.0;
    }
    let mean = p99s.iter().sum::<f64>() / p99s.len() as f64;
    if mean == 0.0 {
        return 1.0;
    }
    p99s.iter().cloned().fold(0.0, f64::max) / mean
}

/// Where the execution time went (the categories of Fig. 17).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// NAND array sensing on the critical path.
    pub nand_read_ns: Nanos,
    /// In-LUN ECC decode (incl. soft-decision fallbacks).
    pub ecc_ns: Nanos,
    /// Page-buffer streaming + MAC compute.
    pub compute_ns: Nanos,
    /// SSD internal DRAM traffic (LUNCSR fetches, QPT updates).
    pub dram_ns: Nanos,
    /// Embedded-core bookkeeping (FTL upkeep, QPT logic).
    pub embedded_ns: Nanos,
    /// Non-overlapped Allocating-stage time (dynamic scheduling overhead).
    pub allocating_ns: Nanos,
    /// Channel-bus data-out of computed distances.
    pub bus_ns: Nanos,
    /// Bitonic sorting on the FPGA.
    pub bitonic_ns: Nanos,
    /// PCIe I/O (queries in, result lists to FPGA, top-k out).
    pub pcie_ns: Nanos,
    /// Flash program/erase time charged by the online-update write path
    /// (page programs for inserts, block erases for compaction).
    pub program_ns: Nanos,
    /// Exact-rerank flash reads of compressed-vector search: the final
    /// candidates' full-precision page reads + channel transfer (zero
    /// unless [`crate::config::NdsConfig::quantization`] is enabled).
    pub rerank_ns: Nanos,
}

impl LatencyBreakdown {
    /// Sum of all buckets.
    pub fn total_ns(&self) -> Nanos {
        self.nand_read_ns
            + self.ecc_ns
            + self.compute_ns
            + self.dram_ns
            + self.embedded_ns
            + self.allocating_ns
            + self.bus_ns
            + self.bitonic_ns
            + self.pcie_ns
            + self.program_ns
            + self.rerank_ns
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &LatencyBreakdown) {
        self.nand_read_ns += other.nand_read_ns;
        self.ecc_ns += other.ecc_ns;
        self.compute_ns += other.compute_ns;
        self.dram_ns += other.dram_ns;
        self.embedded_ns += other.embedded_ns;
        self.allocating_ns += other.allocating_ns;
        self.bus_ns += other.bus_ns;
        self.bitonic_ns += other.bitonic_ns;
        self.pcie_ns += other.pcie_ns;
        self.program_ns += other.program_ns;
        self.rerank_ns += other.rerank_ns;
    }

    /// `(label, fraction)` rows for the Fig. 17 stacked bar.
    pub fn fractions(&self) -> Vec<(&'static str, f64)> {
        let total = self.total_ns().max(1) as f64;
        vec![
            ("NAND read", self.nand_read_ns as f64 / total),
            ("ECC", self.ecc_ns as f64 / total),
            ("In-LUN compute", self.compute_ns as f64 / total),
            ("DRAM access", self.dram_ns as f64 / total),
            ("Embedded cores", self.embedded_ns as f64 / total),
            ("Allocating", self.allocating_ns as f64 / total),
            ("Channel bus", self.bus_ns as f64 / total),
            ("Bitonic (FPGA)", self.bitonic_ns as f64 / total),
            ("SSD I/O (PCIe)", self.pcie_ns as f64 / total),
            ("Flash program/erase", self.program_ns as f64 / total),
            ("Flash rerank", self.rerank_ns as f64 / total),
        ]
    }
}

/// Full result of simulating one batch on NDSEARCH.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NdsReport {
    /// Batch size simulated.
    pub queries: usize,
    /// Total visited vertices (trace length).
    pub trace_len: u64,
    /// End-to-end latency of the batch.
    pub total_ns: Nanos,
    /// Where the time went.
    pub breakdown: LatencyBreakdown,
    /// Flash access statistics.
    pub stats: FlashStats,
    /// Speculative-searching accounting.
    pub speculation: SpeculationStats,
    /// Distinct LUNs touched / total LUNs (Fig. 4b).
    pub lun_coverage: f64,
    /// Search iterations executed (engine rounds).
    pub iterations: usize,
    /// Sub-batches the batch was split into (resource cap, Fig. 19).
    pub sub_batches: usize,
    /// Online block-level refreshes performed by the FTL during the run
    /// (0 unless `refresh_read_threshold` is enabled).
    pub refreshes: u64,
}

impl NdsReport {
    /// Throughput in queries per second.
    pub fn qps(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.queries as f64 / (self.total_ns as f64 / 1e9)
        }
    }

    /// Page accesses per visited vertex (the page access ratio of Fig. 14).
    pub fn page_access_ratio(&self) -> f64 {
        self.stats.page_access_ratio(self.trace_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_fractions() {
        let b = LatencyBreakdown {
            nand_read_ns: 60,
            dram_ns: 20,
            pcie_ns: 20,
            ..LatencyBreakdown::default()
        };
        assert_eq!(b.total_ns(), 100);
        let f = b.fractions();
        assert!((f[0].1 - 0.6).abs() < 1e-12);
        let sum: f64 = f.iter().map(|(_, x)| x).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyBreakdown {
            nand_read_ns: 5,
            ..LatencyBreakdown::default()
        };
        a.merge(&LatencyBreakdown {
            nand_read_ns: 7,
            bitonic_ns: 3,
            ..LatencyBreakdown::default()
        });
        assert_eq!(a.nand_read_ns, 12);
        assert_eq!(a.bitonic_ns, 3);
    }

    #[test]
    fn latency_summary_percentiles_are_nearest_rank() {
        let samples: Vec<Nanos> = (1..=100).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p95_ns, 95);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
        // Order must not matter.
        let mut rev = samples.clone();
        rev.reverse();
        assert_eq!(LatencySummary::from_samples(&rev), s);
        // Degenerate cases.
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
        let one = LatencySummary::from_samples(&[7]);
        assert_eq!(one.p50_ns, 7);
        assert_eq!(one.p99_ns, 7);
    }

    #[test]
    fn tenant_rollup_counts_and_fairness() {
        let mk = |tenant: u32, completed: bool, latency_ns: Nanos, shed: bool| TenantSample {
            tenant,
            completed,
            expired: !completed && !shed,
            rejected: shed,
            shed,
            has_deadline: true,
            latency_ns,
        };
        let samples = vec![
            mk(1, true, 100, false),
            mk(1, true, 300, false),
            mk(1, false, 0, true),
            mk(0, true, 100, false),
        ];
        let ts = summarize_tenants(&samples);
        assert_eq!(ts.len(), 2);
        assert_eq!((ts[0].tenant, ts[1].tenant), (0, 1), "ascending tenant id");
        assert_eq!(ts[1].submitted, 3);
        assert_eq!(ts[1].completed, 2);
        assert_eq!(ts[1].shed, 1);
        assert_eq!(ts[1].deadline_total, 3);
        assert_eq!(ts[1].deadline_met, 2);
        assert!((ts[1].slo_attainment() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ts[1].latency.count, 2);
        assert_eq!(ts[0].slo_attainment(), 1.0);
        // p99s are 100 (tenant 0) and 300 (tenant 1): max/mean = 1.5.
        assert!((tenant_p99_fairness(&ts) - 1.5).abs() < 1e-12);
        assert_eq!(tenant_p99_fairness(&ts[..1]), 1.0);
        assert_eq!(tenant_p99_fairness(&[]), 1.0);
    }

    #[test]
    fn qps_math() {
        let r = NdsReport {
            queries: 1000,
            total_ns: 1_000_000_000,
            ..NdsReport::default()
        };
        assert!((r.qps() - 1000.0).abs() < 1e-9);
        assert_eq!(NdsReport::default().qps(), 0.0);
    }
}
