//! NDSEARCH core — the SearSSD near-data ANNS accelerator model.
//!
//! This crate is the paper's primary contribution: a hardware/software
//! co-designed near-data-processing engine that executes the graph-traversal
//! and distance-computation kernels of ANNS *inside* a modified SSD
//! (SearSSD) and the bitonic top-k sort on an attached FPGA.
//!
//! Architecture (Fig. 5a):
//!
//! * [`qpt::QueryPropertyTable`] — per-query search state in SSD DRAM;
//! * [`vgen::Vgenerator`] — 3-stage OFS/NBR/LUN fetch pipeline producing
//!   each entry vertex's neighbor + LUN id lists (Fig. 7a);
//! * [`alloc::Allocator`] — batch-wise dynamic dispatch of (query,
//!   neighbor) work to LUN-level accelerators and direct physical-address
//!   generation from LUNCSR (Fig. 7b);
//! * [`sin`] — SiN engines: LUN-level accelerators with query/vaddr
//!   queues, multi-plane page loads, per-plane hard-decision LDPC, and MAC
//!   groups (Fig. 8);
//! * [`engine::NdsEngine`] — the NDP processing model of Algorithm 1
//!   (Allocating → Searching → Gathering → Sorting with stage overlap),
//!   including the speculative searching of §VI-B2 ([`speculative`]);
//! * [`exec`] — the deterministic data-parallel round executor: pure
//!   per-LUN work units fanned over scoped worker threads
//!   ([`config::NdsConfig::exec_threads`]) and merged in stable LUN
//!   order, bit-identical at any thread count;
//! * [`energy`] / [`area`] — the Table I power/area models and the
//!   storage-density arithmetic of §VII-B;
//! * [`pipeline`] — the end-to-end static-scheduling pipeline: reorder →
//!   place → LUNCSR → relabeled traces;
//! * [`report::NdsReport`] — latency breakdown (Fig. 17), page/LUN
//!   statistics (Fig. 4/14/15), throughput and energy results;
//! * [`serve::ServeEngine`] — the concurrent multi-query serving layer:
//!   query sessions (submit/poll/complete, deadlines, admission and
//!   backpressure) whose live beam-search hops are interleaved across the
//!   flash channels each scheduling round, with per-query p50/p99 latency
//!   reporting; [`stream`] is the coarser closed-batch throughput model;
//! * [`deploy::Deployment`] — versioned mutable deployments: online
//!   insert/delete as update sessions served alongside queries, the
//!   LUNCSR base+delta overlay kept in lock-step with the live index,
//!   the flash program/erase write path (tPROG, wear, amplification),
//!   and deterministic compaction;
//! * [`cluster::ClusterEngine`] — the scale-out tier: a
//!   [`ShardPlan`](ndsearch_vector::shard::ShardPlan)-partitioned
//!   cluster of per-shard deployments, queries scattered to every shard
//!   and gathered by a deterministic `(distance, global id)` merge,
//!   updates routed to their owning shard, per-shard breakdowns and
//!   load-imbalance reporting;
//! * [`traffic::Scenario`] — deterministic production-traffic generation:
//!   Poisson/bursty/diurnal arrival models, Zipfian query hotspots,
//!   multi-tenant streams with per-tenant rate/deadline/top-k profiles
//!   and an update fraction, replayable into any engine tier; paired
//!   with [`serve::SloPolicy`] (deadline-aware shedding and per-tenant
//!   in-flight fairness) and per-tenant SLO reporting on
//!   [`serve::ServeReport`] / [`cluster::ClusterReport`].
//!
//! # Example
//!
//! ```
//! use ndsearch_core::config::NdsConfig;
//! use ndsearch_core::pipeline::Prepared;
//! use ndsearch_anns::{hnsw::{Hnsw, HnswParams}, index::{GraphAnnsIndex, SearchParams}};
//! use ndsearch_vector::synthetic::DatasetSpec;
//!
//! let (base, queries) = DatasetSpec::sift_scaled(400, 8).build_pair();
//! let index = Hnsw::build(&base, HnswParams::default());
//! let out = index.search_batch(&base, &queries, &SearchParams::default());
//! let config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
//! let prepared = Prepared::stage(&config, index.base_graph(), &base, &out.trace);
//! let report = ndsearch_core::engine::NdsEngine::new(&config).run(&prepared);
//! assert!(report.total_ns > 0);
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod area;
pub mod cluster;
pub mod config;
pub mod deploy;
pub mod energy;
pub mod engine;
pub mod exec;
pub mod pipeline;
pub mod qpt;
pub mod report;
pub mod serve;
pub mod sin;
pub mod speculative;
pub mod stream;
pub mod traffic;
pub mod vgen;

pub use cluster::{
    ClusterEngine, ClusterQueryRequest, ClusterReport, FailureEvent, FailureKind, FailureSchedule,
    ReplicaBreakdown, ReplicaPolicy, ReplicationConfig, ShardBreakdown,
};
pub use config::{NdsConfig, SchedulingConfig};
pub use deploy::{CompactionReport, Deployment, InsertError, UpdateTotals};
pub use engine::NdsEngine;
pub use pipeline::Prepared;
pub use report::{LatencyBreakdown, LatencySummary, NdsReport, TenantSummary};
pub use serve::{
    QueryRequest, ServeConfig, ServeEngine, ServeReport, SloPolicy, UpdateOp, UpdateRequest,
};
pub use traffic::{
    ArrivalModel, QueryMix, Scenario, Submitted, TenantProfile, TrafficEvent, TrafficTrace,
    ZipfSampler,
};
