//! Deterministic data-parallel executor for per-LUN work units.
//!
//! The paper's premise is hardware concurrency — a SiN accelerator in
//! every LUN working simultaneously (§V, Fig. 8) — and the simulator
//! exploits the matching *host* concurrency: each round's per-LUN work
//! units are pure functions ([`crate::sin::process_lun_work`] takes no
//! `&mut` state and returns a [`crate::sin::LunOutcome`] delta), so they
//! can be evaluated on a worker pool and merged afterwards.
//!
//! An engine run executes thousands of rounds of ~10–500 µs each, so the
//! pool is *persistent*: [`with_pool`] spawns the scoped workers once
//! (`std::thread::scope` — no added dependencies), the engine loop runs
//! inside the closure, and every round ships its work units to the
//! already-running workers over channels ([`Pool::run`]). Spawning
//! threads per round would cost more than the round itself.
//!
//! Determinism argument:
//!
//! 1. every work unit reads only immutable snapshots (LUNCSR, config,
//!    the ECC engine's counter cursors) — no unit observes another
//!    unit's effects within a round;
//! 2. ECC fault injection is counter-indexed per plane
//!    ([`ndsearch_flash::ecc::EccEngine`]), and each plane belongs to
//!    exactly one LUN, so the decisions a unit draws are independent of
//!    which thread runs it and when;
//! 3. [`Pool::run`] returns results **in job order** (workers tag their
//!    contiguous chunk with its base index and the coordinator
//!    reassembles), so every reduction — sums, maxima with first-wins
//!    tie-breaking, delta application — sees the same operand sequence
//!    at any thread count.
//!
//! Hence reports are bit-identical for
//! [`NdsConfig::exec_threads`](crate::config::NdsConfig::exec_threads)
//! ∈ {1, 2, …}, and `exec_threads = 1` short-circuits to the exact
//! legacy inline loop (no pool, no snapshots).

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{channel, Receiver, Sender};

/// Below this many jobs a round is executed inline even when workers are
/// available: waking the pool costs a few microseconds per worker, which
/// only pays off once a round fans out over enough units. (Callers that
/// must build jobs before calling [`Pool::run`] check it first to skip
/// the construction cost too.)
pub(crate) const PARALLEL_THRESHOLD: usize = 16;

/// Default worker-thread count for
/// [`NdsConfig::exec_threads`](crate::config::NdsConfig::exec_threads):
/// the `NDSEARCH_EXEC_THREADS` environment variable when set to a
/// positive integer, otherwise the host's available parallelism.
///
/// The override rule is the workspace-wide
/// [`ndsearch_vector::env::env_usize`] rule: **only** a value that parses
/// (after trimming whitespace) as an integer ≥ 1 overrides. `0`, a
/// negative or non-numeric value, and an empty string are all treated as
/// "no override" and fall back to the host's available parallelism —
/// never to a zero-thread pool (`with_pool` would interpret 0 as the
/// inline path, silently serializing a run that asked for parallelism).
pub fn default_threads() -> usize {
    ndsearch_vector::env::env_usize("NDSEARCH_EXEC_THREADS")
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Iterations a worker spin-polls its job channel before falling back to
/// a blocking receive. Rounds are tens-to-hundreds of microseconds apart,
/// so a short spin catches the next dispatch without paying the futex
/// wake-up (~5–20 µs) that would otherwise dominate small rounds.
/// Spinning is only enabled when the host has a spare core for every
/// worker *and* the coordinator ([`spin_allowed`]) — on an oversubscribed
/// machine a spinning worker steals the exact cycles the coordinator
/// needs to produce the next round.
const SPIN_POLLS: u32 = 20_000;

/// Whether `workers` spin-polling threads plus the coordinator fit the
/// host without oversubscription.
fn spin_allowed(workers: usize) -> bool {
    std::thread::available_parallelism().is_ok_and(|n| workers < n.get())
}

/// One worker's reply: the chunk's base index and its results, or `Err`
/// if the job function panicked (the worker re-raises the payload, which
/// `std::thread::scope` propagates at join).
type Reply<R> = (usize, Result<Vec<R>, ()>);

/// A persistent pool of scoped worker threads evaluating `fn(J) -> R`
/// jobs by value. Created by [`with_pool`]; one [`run`](Self::run) call
/// per round. Jobs travel into workers and results travel back, so a job
/// may carry owned state (e.g. a live beam searcher) that the caller
/// reclaims from the result.
///
/// With zero workers (`threads <= 1`) every `run` evaluates inline on
/// the caller thread — the exact legacy sequential path.
pub struct Pool<'f, J: Send, R: Send> {
    f: &'f (dyn Fn(J) -> R + Sync),
    /// Per-worker job channels; empty in inline mode.
    workers: Vec<Sender<(usize, Vec<J>)>>,
    /// Shared reply channel; `None` in inline mode.
    back: Option<Receiver<Reply<R>>>,
    /// Reused reply-reassembly buffer (one entry per worker chunk), so a
    /// round's reassembly allocates only the output vector instead of an
    /// `n`-slot `Option` table per run.
    replies: Vec<(usize, Vec<R>)>,
}

impl<J: Send, R: Send> Pool<'_, J, R> {
    /// Whether `run` may actually fan out over worker threads.
    pub fn is_parallel(&self) -> bool {
        !self.workers.is_empty()
    }

    /// [`run_with_min`](Self::run_with_min) with the default fan-out
    /// threshold (16 jobs).
    pub fn run(&mut self, jobs: Vec<J>) -> Vec<R> {
        self.run_with_min(jobs, PARALLEL_THRESHOLD)
    }

    /// Evaluates every job and returns the results **in job order**.
    /// Batches smaller than `min_jobs` (and inline pools) are evaluated
    /// on the caller thread; otherwise the jobs are split into balanced
    /// contiguous chunks, one per worker, and reassembled by base index.
    /// Pick `min_jobs` by job weight: heavier jobs amortize the hand-off
    /// sooner.
    ///
    /// # Panics
    /// Panics if a worker died or the job function panicked on a worker
    /// (the original payload is re-raised when the pool's scope joins).
    pub fn run_with_min(&mut self, jobs: Vec<J>, min_jobs: usize) -> Vec<R> {
        let n = jobs.len();
        if self.workers.is_empty() || n < min_jobs.max(2) {
            return jobs.into_iter().map(self.f).collect();
        }
        let k = self.workers.len().min(n);
        // Balanced contiguous chunks: the first `n % k` chunks get one
        // extra job. Split from the tail so each split is O(chunk).
        let mut jobs = jobs;
        for i in (0..k).rev() {
            let start = i * (n / k) + i.min(n % k);
            let chunk = jobs.split_off(start);
            self.workers[i]
                .send((start, chunk))
                .expect("exec pool worker died");
        }
        let back = self
            .back
            .as_ref()
            .expect("parallel pool has a reply channel");
        // Inline reply aggregation: collect the k chunk replies into the
        // reused buffer, restore job order by base index (chunks are
        // contiguous and disjoint, so a k-entry sort suffices), and move
        // the chunks into the output.
        self.replies.clear();
        for _ in 0..k {
            let (base, reply) = back.recv().expect("exec pool worker died");
            let results = reply.expect("exec pool job panicked on a worker");
            self.replies.push((base, results));
        }
        self.replies.sort_unstable_by_key(|&(base, _)| base);
        let mut out: Vec<R> = Vec::with_capacity(n);
        for (_, chunk) in self.replies.drain(..) {
            out.extend(chunk);
        }
        debug_assert_eq!(out.len(), n, "every chunk was reassembled");
        out
    }
}

/// Receives the next job batch: optionally spin-poll first (the next
/// round usually arrives within microseconds), then block. Returns
/// `None` when the pool has been dropped.
fn next_batch<J>(rx: &Receiver<(usize, Vec<J>)>, spin: bool) -> Option<(usize, Vec<J>)> {
    use std::sync::mpsc::TryRecvError;
    if spin {
        for _ in 0..SPIN_POLLS {
            match rx.try_recv() {
                Ok(batch) => return Some(batch),
                Err(TryRecvError::Empty) => std::hint::spin_loop(),
                Err(TryRecvError::Disconnected) => return None,
            }
        }
    }
    rx.recv().ok()
}

/// Runs `body` with a [`Pool`] of up to `threads` scoped worker threads
/// evaluating `f`. Workers are spawned once, serve every
/// [`Pool::run`] call made inside `body`, and join when `body` returns
/// (or unwinds). `threads <= 1` skips spawning entirely and yields an
/// inline pool.
///
/// # Panics
/// Propagates panics from `body` and from `f` on worker threads.
pub fn with_pool<J, R, T>(
    threads: usize,
    f: impl Fn(J) -> R + Sync,
    body: impl FnOnce(&mut Pool<'_, J, R>) -> T,
) -> T
where
    J: Send,
    R: Send,
{
    if threads <= 1 {
        return body(&mut Pool {
            f: &f,
            workers: Vec::new(),
            back: None,
            replies: Vec::new(),
        });
    }
    std::thread::scope(|scope| {
        let (back_tx, back_rx) = channel::<Reply<R>>();
        let spin = spin_allowed(threads);
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = channel::<(usize, Vec<J>)>();
            workers.push(tx);
            let back_tx = back_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Some((base, jobs)) = next_batch(&rx, spin) {
                    // Catch panics so the coordinator never deadlocks
                    // waiting for a chunk that will not arrive; the
                    // payload is re-raised and propagated by the scope.
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        jobs.into_iter().map(f).collect::<Vec<R>>()
                    }));
                    match result {
                        Ok(results) => {
                            if back_tx.send((base, Ok(results))).is_err() {
                                break;
                            }
                        }
                        Err(payload) => {
                            let _ = back_tx.send((base, Err(())));
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
            });
        }
        let mut pool = Pool {
            f: &f,
            workers,
            back: Some(back_rx),
            replies: Vec::with_capacity(threads),
        };
        let out = body(&mut pool);
        // Dropping the pool closes the job channels; workers drain and
        // exit, and the scope joins them.
        drop(pool);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_job_order() {
        let jobs: Vec<u64> = (0..257).collect();
        let want: Vec<u64> = jobs.iter().map(|&u| u * 3 + 1).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let got = with_pool(threads, |u: u64| u * 3 + 1, |pool| pool.run(jobs.clone()));
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn pool_survives_many_rounds() {
        // The whole point: one spawn, many `run` calls.
        with_pool(
            4,
            |u: u32| u + 1,
            |pool| {
                assert!(pool.is_parallel());
                for round in 0..200u32 {
                    let jobs: Vec<u32> = (0..64).map(|i| round * 64 + i).collect();
                    let want: Vec<u32> = jobs.iter().map(|&u| u + 1).collect();
                    assert_eq!(pool.run(jobs), want);
                }
            },
        );
    }

    #[test]
    fn small_batches_run_inline() {
        with_pool(
            16,
            |u: u32| u + 1,
            |pool| {
                // Below the threshold nothing crosses a channel.
                assert_eq!(pool.run(vec![10, 20]), vec![11, 21]);
                assert!(pool.run(Vec::<u32>::new()).is_empty());
            },
        );
    }

    #[test]
    fn inline_pool_has_no_workers() {
        with_pool(
            1,
            |u: u32| u * 2,
            |pool| {
                assert!(!pool.is_parallel());
                let jobs: Vec<u32> = (0..100).collect();
                let want: Vec<u32> = jobs.iter().map(|&u| u * 2).collect();
                assert_eq!(pool.run(jobs), want);
            },
        );
    }

    #[test]
    fn uneven_chunks_reassemble() {
        // 257 jobs over 7 workers: chunk sizes differ by one.
        let jobs: Vec<usize> = (0..257).collect();
        let got = with_pool(7, |u: usize| u, |pool| pool.run(jobs.clone()));
        assert_eq!(got, jobs);
    }

    #[test]
    fn reply_buffer_reuse_keeps_job_order_across_rounds() {
        // The reply buffer persists across `run` calls; rounds of varying
        // size (different k, different chunkings, inline small rounds in
        // between) must each reassemble in job order.
        with_pool(
            5,
            |u: usize| u.wrapping_mul(7),
            |pool| {
                for n in [257usize, 16, 3, 100, 5, 64, 1, 33] {
                    let jobs: Vec<usize> = (0..n).collect();
                    let want: Vec<usize> = jobs.iter().map(|&u| u.wrapping_mul(7)).collect();
                    assert_eq!(pool.run_with_min(jobs, 4), want, "n = {n}");
                }
            },
        );
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let res = std::panic::catch_unwind(|| {
            with_pool(
                4,
                |u: u32| {
                    assert!(u != 170, "boom");
                    u
                },
                |pool| pool.run((0..256).collect::<Vec<u32>>()),
            )
        });
        assert!(res.is_err());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn env_override_accepts_only_positive_integers() {
        use ndsearch_vector::env::parse_usize;
        assert_eq!(parse_usize(Some("4")), Some(4));
        assert_eq!(parse_usize(Some(" 8 ")), Some(8), "whitespace trims");
        assert_eq!(parse_usize(Some("1")), Some(1));
    }

    #[test]
    fn env_override_zero_falls_back_to_host_parallelism() {
        // `NDSEARCH_EXEC_THREADS=0` must not produce a zero-thread pool:
        // the shared parse rule reports "no override" and
        // `default_threads` falls back to available parallelism (≥ 1).
        assert_eq!(ndsearch_vector::env::parse_usize(Some("0")), None);
    }

    #[test]
    fn env_override_non_numeric_falls_back_to_host_parallelism() {
        use ndsearch_vector::env::parse_usize;
        for junk in ["abc", "", "  ", "-3", "4.5", "1e3", "0x10"] {
            assert_eq!(parse_usize(Some(junk)), None, "input {junk:?}");
        }
        assert_eq!(parse_usize(None), None);
    }
}
