//! Query property table (§IV-C1, dataflow step 1).
//!
//! When a batch arrives, the SSD controller creates a table in internal
//! DRAM holding each query's search status: query id, current entry vertex,
//! the query's feature vector, and its result list. The engine models the
//! table's DRAM footprint and the per-iteration update traffic (the
//! Gathering stage reads computed distances and writes updated properties).

/// Per-query property record sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPropertyTable {
    /// Number of queries resident.
    pub queries: usize,
    /// Feature vector bytes per query.
    pub vector_bytes: usize,
    /// Result list entries retained per query (ids + distances).
    pub result_entries: usize,
}

impl QueryPropertyTable {
    /// Creates the table descriptor.
    pub fn new(queries: usize, vector_bytes: usize, result_entries: usize) -> Self {
        Self {
            queries,
            vector_bytes,
            result_entries,
        }
    }

    /// Bytes of one record: query id (4) + entry vertex (4) + status (4) +
    /// feature vector + result list (8 B per entry: id + f32 distance).
    pub fn record_bytes(&self) -> u64 {
        12 + self.vector_bytes as u64 + 8 * self.result_entries as u64
    }

    /// Total DRAM footprint of the table.
    pub fn total_bytes(&self) -> u64 {
        self.record_bytes() * self.queries as u64
    }

    /// How many query records fit in `budget_bytes` of internal DRAM —
    /// the admission cap the serving layer derives from the QPT footprint
    /// (a resident session holds one record for its whole lifetime).
    pub fn max_resident(&self, budget_bytes: u64) -> usize {
        (budget_bytes / self.record_bytes().max(1)) as usize
    }

    /// DRAM bytes touched when the Gathering stage updates `updates`
    /// queries after `new_distances` fresh distance results arrived:
    /// a fixed read-modify-write of each query's status/entry (64 B) plus
    /// insertion traffic per new candidate (16 B read + write).
    pub fn gather_traffic_bytes(&self, updates: usize, new_distances: u64) -> u64 {
        64 * updates as u64 + 16 * new_distances
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_bytes_match_layout() {
        let q = QueryPropertyTable::new(2048, 512, 64);
        assert_eq!(q.record_bytes(), 12 + 512 + 8 * 64);
        assert_eq!(q.total_bytes(), q.record_bytes() * 2048);
    }

    #[test]
    fn gather_traffic_scales_with_updates_and_distances() {
        let q = QueryPropertyTable::new(100, 128, 16);
        assert_eq!(q.gather_traffic_bytes(0, 0), 0);
        assert_eq!(q.gather_traffic_bytes(10, 0), 640);
        assert_eq!(q.gather_traffic_bytes(10, 100), 640 + 1600);
    }

    #[test]
    fn max_resident_is_budget_over_record() {
        let q = QueryPropertyTable::new(1, 512, 64);
        assert_eq!(q.max_resident(q.record_bytes() * 10), 10);
        assert_eq!(q.max_resident(q.record_bytes() - 1), 0);
        assert_eq!(q.max_resident(0), 0);
    }

    #[test]
    fn paper_scale_fits_internal_dram() {
        // 2048 queries with 512-byte vectors and 64-entry lists must fit
        // comfortably in the 4 GB internal DRAM.
        let q = QueryPropertyTable::new(2048, 512, 64);
        assert!(q.total_bytes() < 4 * 1024 * 1024 * 1024u64 / 100);
    }
}
