//! Concurrent multi-query serving on the SearSSD model.
//!
//! The batch engine ([`crate::engine::NdsEngine`]) replays one recorded
//! trace to completion — the regime the paper evaluates. A production
//! deployment instead sees an *open stream* of queries: they arrive at
//! arbitrary times, each wants its own top-k back as fast as possible, and
//! the device should keep every channel and die busy by interleaving work
//! from many in-flight searches. This module provides that layer:
//!
//! * [`QueryRequest`] / [`QueryOutcome`] — a query session with arrival
//!   time, optional absolute deadline, and per-query top-k state;
//! * [`ServeEngine`] — submit / poll / step / complete. Each scheduling
//!   round takes **one beam-search hop from every in-flight query** (a
//!   live [`BeamSearcher`] per session, relabeled into the reordered id
//!   space via [`Prepared::relabel_hop`]) and executes the merged work on
//!   the SearSSD model through the same round executor as the batch
//!   engine, so static scheduling (reorder + multi-plane placement, baked
//!   into [`Prepared`]) and dynamic allocating (alloc-stage overlap) apply
//!   unchanged;
//! * [`ServeConfig`] — admission and backpressure: in-flight sessions are
//!   capped by the configured limit, the device's batch resource cap, and
//!   the number of query-property records the internal DRAM budget holds
//!   ([`QueryPropertyTable::max_resident`]); arrivals beyond the wait-queue
//!   capacity are rejected. [`SloPolicy`] layers deadline-aware
//!   scheduling on top: shedding work that cannot meet its deadline
//!   (`ShedDoomed`) and per-tenant in-flight fairness (`TenantFair`),
//!   with per-tenant roll-ups, [`ServeReport::slo_attainment`] and shed
//!   counts on the report;
//! * [`UpdateRequest`] / [`UpdateOutcome`] — online inserts and
//!   tombstone deletes as *update sessions* over a mutable
//!   [`Deployment`]: they arrive, wait in a bounded write queue
//!   (rejection = ingest backpressure), and are applied in admission
//!   order between search rounds, capped per round
//!   ([`ServeConfig::max_updates_per_round`]). Inserts link through the
//!   index's construction kernel, extend the LUNCSR delta segment and
//!   charge the flash program path; each round's jobs read round-boundary
//!   `Arc` snapshots, so mixed query+update serving stays bit-identical
//!   at any [`NdsConfig::exec_threads`];
//! * [`ServeReport`] — QPS over the makespan, per-query latency order
//!   statistics ([`LatencySummary`]), wall-clock simulation
//!   throughput (`wall_s` / [`ServeReport::sim_ns_per_wall_s`]), and the
//!   update stream's outcomes, throughput
//!   ([`ServeReport::update_qps`]) and write amplification.
//!
//! Each scheduling round drives the merged work through the same
//! data-parallel round executor as the batch engine ([`crate::exec`]):
//! per-LUN work units run on [`NdsConfig::exec_threads`] worker threads
//! and merge in stable LUN order, so multi-query serving throughput
//! scales with host cores while every report stays bit-identical to the
//! `exec_threads = 1` legacy path.
//!
//! Because every hop is produced by the same expansion kernel as
//! [`beam_search`](ndsearch_anns::beam::beam_search), a query served
//! concurrently returns exactly the result list it would get from a
//! sequential run — concurrency changes *when* work happens, never *what*
//! is computed. Speculative searching is not modeled here: it keys off the
//! recorded next-iteration entry, which a live search does not know.
//!
//! # Example
//!
//! ```
//! use ndsearch_core::config::NdsConfig;
//! use ndsearch_core::pipeline::Prepared;
//! use ndsearch_core::serve::{QueryRequest, ServeConfig, ServeEngine};
//! use ndsearch_anns::trace::BatchTrace;
//! use ndsearch_anns::vamana::{Vamana, VamanaParams};
//! use ndsearch_anns::index::GraphAnnsIndex;
//! use ndsearch_vector::synthetic::DatasetSpec;
//!
//! let (base, queries) = DatasetSpec::sift_scaled(400, 8).build_pair();
//! let index = Vamana::build(&base, VamanaParams::default());
//! let config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
//! let prepared = Prepared::stage(&config, index.base_graph(), &base, &BatchTrace::default());
//! let mut engine = ServeEngine::new(
//!     &config,
//!     ServeConfig::default(),
//!     &prepared,
//!     &base,
//!     index.base_graph(),
//! );
//! for (_, q) in queries.iter() {
//!     engine.submit(QueryRequest::at(0, q.to_vec(), vec![index.medoid()]));
//! }
//! let report = engine.run_to_completion();
//! assert_eq!(report.completed(), 8);
//! assert!(report.qps() > 0.0);
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::sync::Arc;

use ndsearch_anns::beam::BeamSearcher;
use ndsearch_anns::trace::IterationTrace;
use ndsearch_flash::ecc::EccEngine;
use ndsearch_flash::stats::FlashStats;
use ndsearch_flash::timing::Nanos;
use ndsearch_graph::csr::Csr;
use ndsearch_vector::dataset::Dataset;
use ndsearch_vector::quant::QuantCodes;
use ndsearch_vector::topk::Neighbor;
use ndsearch_vector::{DistanceKind, VectorId};

use crate::config::NdsConfig;
use crate::deploy::{Deployment, UpdateTotals};
use crate::engine::{execute_round, sorting_tail, LunExecutor, RoundSinks};
use crate::exec::Pool;
use crate::pipeline::Prepared;
use crate::qpt::QueryPropertyTable;
use crate::report::{LatencyBreakdown, LatencySummary};
use crate::sin::{process_lun_work, LunJob, LunOutcome};

/// Minimum in-flight hops before the hop stage fans out over workers
/// (hop jobs — one beam expansion plus relabeling — are much heavier
/// than per-LUN units, so they amortize the hand-off sooner).
pub(crate) const HOP_PARALLEL_MIN: usize = 8;

/// Job type of the serving pool: one scheduling round first advances
/// every in-flight session's beam search (`Hop` jobs — independent per
/// session, the searcher travels to the worker and back), then evaluates
/// the merged round's per-LUN work units (`Lun` jobs, via
/// [`LunExecutor`]). Both stages merge in job order, so serving is
/// bit-identical at any thread count.
///
/// Each job carries `Arc` snapshots of the world it reads (dataset, live
/// graph, staged overlay), taken at its round's boundary: online updates
/// mutate the deployment *between* rounds on the scheduler thread, so a
/// job never observes a torn state and never needs a lock.
pub(crate) enum ServeJob {
    /// Advance one session's beam searcher by one hop.
    Hop {
        /// Slot in the in-flight list (admission order).
        slot: u32,
        /// The session's live searcher (returned in the result).
        searcher: BeamSearcher,
        /// Construction-order dataset snapshot.
        dataset: Arc<Dataset>,
        /// Live graph snapshot.
        graph: Arc<Csr>,
        /// Staged overlay snapshot (relabeling).
        prepared: Arc<Prepared>,
        /// Compressed-code snapshot; when present the hop scores
        /// DRAM-resident codes instead of full-precision rows.
        codes: Option<Arc<QuantCodes>>,
    },
    /// One per-LUN work unit of the merged round.
    Lun {
        /// The work unit.
        job: LunJob,
        /// Staged overlay snapshot the unit reads addresses from.
        prepared: Arc<Prepared>,
    },
}

/// Result of one [`ServeJob`].
pub(crate) enum ServeOut {
    /// A hop step's outcome.
    Hop {
        slot: u32,
        searcher: BeamSearcher,
        /// The executed hop, relabeled into the physical id space
        /// (`None` when the candidate list was exhausted).
        hop: Option<IterationTrace>,
        /// Whether the session terminated this round.
        finished: bool,
    },
    /// A per-LUN outcome delta.
    Lun(LunOutcome),
}

/// The serving pool: hop and LUN jobs in, outcomes out. The cluster tier
/// ([`crate::cluster`]) shares one pool across every shard's engine.
pub(crate) type ServePool<'f> = Pool<'f, ServeJob, ServeOut>;

/// The prepared first half of one engine's scheduling round: the hop jobs
/// (one per in-flight session, slot order) plus the round-boundary
/// snapshots `finish_round` needs. Produced by `ServeEngine::begin_round`;
/// the cluster tier takes the jobs, merges them across replicas into one
/// pool round, and hands each engine its slice of the outputs back.
pub(crate) struct RoundPrep {
    /// Hop jobs in admission (slot) order; taken by the dispatcher.
    pub(crate) jobs: Vec<ServeJob>,
    /// PCIe transfer-in time charged by this round's admissions.
    t_in: Nanos,
    /// Round-boundary dataset snapshot.
    dataset: Arc<Dataset>,
    /// Round-boundary live-graph snapshot.
    graph: Arc<Csr>,
    /// Round-boundary staged-overlay snapshot.
    prepared: Arc<Prepared>,
    /// Round-boundary compressed-code snapshot (when quantization is on).
    codes: Option<Arc<QuantCodes>>,
}

/// Evaluates one serving job (worker threads and the inline path share
/// this function, so both produce identical results). All world state
/// arrives inside the job as round-boundary snapshots.
pub(crate) fn run_serve_job(job: ServeJob, config: &NdsConfig) -> ServeOut {
    match job {
        ServeJob::Hop {
            slot,
            mut searcher,
            dataset,
            graph,
            prepared,
            codes,
        } => {
            let hop = match codes.as_deref() {
                Some(codes) => searcher.step(codes, &graph),
                None => searcher.step(dataset.as_ref(), &graph),
            }
            .map(|h| prepared.relabel_hop(&h));
            let finished = hop.is_none() || searcher.is_finished();
            ServeOut::Hop {
                slot,
                searcher,
                hop,
                finished,
            }
        }
        ServeJob::Lun { job, prepared } => ServeOut::Lun(process_lun_work(
            &job.work,
            &prepared.luncsr,
            config,
            &job.ecc,
        )),
    }
}

/// One round's view of the pool: wraps the worker pool together with the
/// round's overlay snapshot, so per-LUN work units fanned out by
/// [`execute_round`] read the same `Prepared` the round's hops did.
struct RoundExecutor<'p, 'f> {
    pool: &'p mut ServePool<'f>,
    prepared: Arc<Prepared>,
}

impl LunExecutor for RoundExecutor<'_, '_> {
    fn parallel_for(&self, units: usize) -> bool {
        self.pool.is_parallel() && units >= crate::exec::PARALLEL_THRESHOLD
    }

    fn run_luns(&mut self, jobs: Vec<LunJob>) -> Vec<LunOutcome> {
        let prepared = &self.prepared;
        self.pool
            .run(
                jobs.into_iter()
                    .map(|job| ServeJob::Lun {
                        job,
                        prepared: Arc::clone(prepared),
                    })
                    .collect(),
            )
            .into_iter()
            .map(|out| match out {
                ServeOut::Lun(out) => out,
                ServeOut::Hop { .. } => unreachable!("a LUN batch returned a hop"),
            })
            .collect()
    }
}

/// Identifier of a submitted query session (dense, in submission order).
pub type QueryId = usize;

/// Admission, backpressure and search knobs of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Maximum concurrently executing sessions. The effective cap is also
    /// bounded by [`NdsConfig::max_batch_inflight`] and by how many QPT
    /// records fit in `qpt_dram_budget_bytes`.
    pub max_inflight: usize,
    /// Arrived-but-not-admitted sessions the wait queue holds; arrivals
    /// beyond this are rejected (backpressure to the caller).
    pub queue_capacity: usize,
    /// Beam width (`ef`) each session searches with.
    pub beam_width: usize,
    /// Top-k entries returned per query.
    pub k: usize,
    /// Distance function (must match graph construction).
    pub distance: DistanceKind,
    /// Internal-DRAM budget for the query property table; divides by the
    /// per-session record size to bound residency.
    pub qpt_dram_budget_bytes: u64,
    /// Updates applied per scheduling round (admission cap of the write
    /// path: the embedded cores apply updates in admission order between
    /// search rounds, so a burst of inserts cannot starve queries).
    pub max_updates_per_round: usize,
    /// Arrived-but-not-applied updates the write queue holds; arrivals
    /// beyond this are rejected (ingest backpressure).
    pub update_queue_capacity: usize,
    /// Deadline-aware admission policy. [`SloPolicy::None`] preserves the
    /// legacy FIFO behavior bit-for-bit.
    pub slo: SloPolicy,
    /// Compressed-vector search only: how many of the best approximate
    /// candidates are rescored with exact distances at completion, each
    /// paying a modeled flash read ([`LatencyBreakdown::rerank_ns`]).
    /// Clamped up to the session's top-k; ignored when
    /// [`NdsConfig::quantization`] is off.
    pub rerank_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_inflight: 64,
            queue_capacity: 4096,
            beam_width: 64,
            k: 10,
            distance: DistanceKind::L2,
            qpt_dram_budget_bytes: 64 << 20,
            max_updates_per_round: 4,
            update_queue_capacity: 4096,
            slo: SloPolicy::None,
            rerank_depth: 32,
        }
    }
}

/// Deadline-aware scheduling policy of the serving layer.
///
/// All decisions run on the simulated clock and on counters derived from
/// the simulation alone, so every policy keeps reports bit-identical at
/// any [`NdsConfig::exec_threads`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloPolicy {
    /// Pure FIFO admission (the legacy behavior): nothing is shed, no
    /// per-tenant caps.
    None,
    /// Shed work that cannot meet its deadline, instead of letting it
    /// burn device time and slow everyone else down.
    ///
    /// The estimator (documented, pinned by `tests/scheduling_invariants.rs`):
    /// the per-hop cost is the observed mean duration of rounds that
    /// executed at least one hop (`0` until the first such round — the
    /// engine starts optimistic and sheds nothing); the expected hop count
    /// is the mean hops of sessions that finished their search (prior:
    /// [`ServeConfig::beam_width`] before any finish). A session with
    /// `hops_done` hops behind it is estimated to finish at
    /// `now + max(expected_hops - hops_done, 1) × per_hop_ns`; it is shed
    /// at the round boundary iff it carries a deadline and
    /// `estimate + min_slack_ns > deadline`. The estimate excludes the
    /// completion tail (PCIe/sorting), which `min_slack_ns` exists to
    /// cover. Queued doomed sessions are `Rejected` before paying the
    /// transfer-in; in-flight doomed sessions are cut off `Expired` with
    /// best-so-far results. Both are flagged [`QueryOutcome::shed`] —
    /// shed work is reported, never silently dropped.
    ShedDoomed {
        /// Safety margin added to the estimated finish before comparing
        /// against the deadline.
        min_slack_ns: Nanos,
    },
    /// Per-tenant in-flight fairness: no tenant may hold more than this
    /// many of the in-flight slots, so an aggressive tenant queues behind
    /// its own cap instead of starving everyone else. Admission stays
    /// FIFO *within* each tenant; capped-out requests are skipped, not
    /// rejected, and admitted once their tenant drains.
    TenantFair {
        /// Maximum concurrently executing sessions per tenant.
        max_inflight_per_tenant: usize,
    },
}

/// One query submitted to the serving engine.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The query feature vector (construction-order id space).
    pub query: Vec<f32>,
    /// Entry vertices to seed the beam search from (construction-order
    /// ids, e.g. the index medoid or entry point).
    pub entries: Vec<VectorId>,
    /// Simulated arrival time.
    pub arrival_ns: Nanos,
    /// Optional absolute deadline. The pinned boundary semantic: a query
    /// is `Completed` **iff its results are back by the deadline**
    /// (`completed_ns <= deadline_ns`); otherwise it is `Expired` with
    /// best-so-far results. The scheduler cuts a session off at the first
    /// round boundary where the clock has *reached* the deadline
    /// (`now_ns >= deadline_ns` — a deadline exactly equal to `now` does
    /// not buy an extra round), and a session that finishes its search in
    /// the very round the deadline passes is still reported `Expired`,
    /// because its completion necessarily lands after the deadline.
    pub deadline_ns: Option<Nanos>,
    /// Tenant the query belongs to (0 = the default tenant). Carried onto
    /// the outcome, rolled up by [`ServeReport::tenant_summaries`] and
    /// enforced by [`SloPolicy::TenantFair`].
    pub tenant: u32,
    /// Per-query top-k override; `None` uses [`ServeConfig::k`].
    pub k: Option<usize>,
}

impl QueryRequest {
    /// A request arriving at `arrival_ns` with no deadline, tenant 0 and
    /// the engine's default top-k.
    pub fn at(arrival_ns: Nanos, query: Vec<f32>, entries: Vec<VectorId>) -> Self {
        Self {
            query,
            entries,
            arrival_ns,
            deadline_ns: None,
            tenant: 0,
            k: None,
        }
    }

    /// Set the tenant id.
    pub fn tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Set the absolute deadline.
    pub fn deadline(mut self, deadline_ns: Nanos) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    /// Set the per-query top-k.
    pub fn top_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }
}

/// Identifier of a submitted update session (dense, in submission order;
/// a separate space from [`QueryId`]).
pub type UpdateId = usize;

/// The mutation an [`UpdateRequest`] carries.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Ingest one vector: append it to the dataset, link it into the live
    /// graph, and program its page through the FTL.
    Insert(Vec<f32>),
    /// Tombstone a construction-order vertex.
    Delete(VectorId),
}

/// One update submitted to the serving engine. Updates are sessions like
/// queries: they arrive, wait in a bounded queue, and are applied by the
/// scheduler in admission order between search rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRequest {
    /// The mutation to apply.
    pub op: UpdateOp,
    /// Simulated arrival time.
    pub arrival_ns: Nanos,
}

impl UpdateRequest {
    /// An insert arriving at `arrival_ns`.
    pub fn insert_at(arrival_ns: Nanos, vector: Vec<f32>) -> Self {
        Self {
            op: UpdateOp::Insert(vector),
            arrival_ns,
        }
    }

    /// A delete arriving at `arrival_ns`.
    pub fn delete_at(arrival_ns: Nanos, id: VectorId) -> Self {
        Self {
            op: UpdateOp::Delete(id),
            arrival_ns,
        }
    }
}

/// Final record of one update session, reported by [`ServeReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Update id (submission order).
    pub id: UpdateId,
    /// Terminal state: `Completed`, or `Rejected` (queue overflow, shape
    /// mismatch, delete of a missing/tombstoned vertex, or an immutable
    /// deployment).
    pub state: SessionState,
    /// When the update arrived.
    pub arrival_ns: Nanos,
    /// When the scheduler started applying it.
    pub admitted_ns: Nanos,
    /// When its effects were durable.
    pub completed_ns: Nanos,
    /// Construction-order id assigned (inserts) or deleted.
    pub assigned: Option<VectorId>,
    /// Vertices whose adjacency was rewritten by backlink repair.
    pub repaired: usize,
    /// NAND pages this update programmed.
    pub pages_programmed: u64,
}

impl UpdateOutcome {
    /// End-to-end latency the ingesting client observed.
    pub fn latency_ns(&self) -> Nanos {
        self.completed_ns.saturating_sub(self.arrival_ns)
    }
}

/// Lifecycle of a query session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Submitted; simulated arrival time not reached yet.
    Pending,
    /// Arrived; waiting in the admission queue for an execution slot.
    Queued,
    /// Admitted; its beam-search hops are being interleaved.
    Running,
    /// Finished; final top-k available.
    Completed,
    /// Dropped at arrival because the admission queue was full.
    Rejected,
    /// Terminated at its deadline with partial (best-so-far) results.
    Expired,
}

/// Final record of one session, reported by [`ServeReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Session id (submission order).
    pub id: QueryId,
    /// Terminal state ([`SessionState::Completed`], `Rejected` or
    /// `Expired`).
    pub state: SessionState,
    /// When the query arrived.
    pub arrival_ns: Nanos,
    /// When it was admitted into execution (equals `completed_ns` for
    /// rejected sessions, which never ran).
    pub admitted_ns: Nanos,
    /// When its results were back at the host.
    pub completed_ns: Nanos,
    /// Beam-search hops it executed.
    pub hops: usize,
    /// Scheduling rounds it spent in flight. Fairness: the round-robin
    /// scheduler advances every in-flight session once per round, so for a
    /// session that ran to completion this exceeds `hops` by at most one
    /// (a final drain round, when the remaining candidates turn out to be
    /// fully visited) — a session never starves in flight.
    pub rounds_inflight: usize,
    /// Top-k neighbors, ascending by distance (partial if `Expired`,
    /// empty if `Rejected`).
    pub results: Vec<Neighbor>,
    /// Tenant the query belonged to.
    pub tenant: u32,
    /// The deadline it carried, if any.
    pub deadline_ns: Option<Nanos>,
    /// Whether a [`SloPolicy::ShedDoomed`] decision produced the terminal
    /// state (a shed session is `Rejected` from the queue or `Expired`
    /// from flight — never silently dropped).
    pub shed: bool,
}

impl QueryOutcome {
    /// Whether this query met its SLO: completed, and by its deadline if
    /// it carried one (completion at the deadline already implies that —
    /// the scheduler never reports `Completed` past the deadline).
    pub fn on_time(&self) -> bool {
        self.state == SessionState::Completed
    }

    /// End-to-end latency the client observed (arrival → results).
    pub fn latency_ns(&self) -> Nanos {
        self.completed_ns.saturating_sub(self.arrival_ns)
    }

    /// Time spent waiting for admission.
    pub fn queue_wait_ns(&self) -> Nanos {
        self.admitted_ns.saturating_sub(self.arrival_ns)
    }
}

/// Result of serving a stream of query sessions.
///
/// Equality ignores the host-side `wall_s` measurement: two runs of the
/// same simulation are equal even though host timing jitters (the
/// determinism tests rely on this).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// One record per submitted session, in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// One record per submitted update, in submission order.
    pub update_outcomes: Vec<UpdateOutcome>,
    /// Write-path totals (programs, erases, amplification inputs).
    pub updates: UpdateTotals,
    /// First arrival → last completion.
    pub makespan_ns: Nanos,
    /// Scheduling rounds executed.
    pub rounds: u64,
    /// Most sessions concurrently in flight.
    pub peak_inflight: usize,
    /// Most sessions concurrently in flight *per tenant*, ascending by
    /// tenant id. Under [`SloPolicy::TenantFair`] no entry ever exceeds
    /// the configured cap (pinned by `tests/scheduling_invariants.rs`).
    pub peak_tenant_inflight: Vec<(u32, usize)>,
    /// Where the device time went (accumulated across rounds).
    pub breakdown: LatencyBreakdown,
    /// Flash access statistics (accumulated across rounds).
    pub stats: FlashStats,
    /// Distinct LUNs touched / total LUNs.
    pub lun_coverage: f64,
    /// Host wall-clock seconds spent inside scheduling rounds — how long
    /// the *simulator* took, as opposed to the simulated `makespan_ns`.
    /// Scales down with [`crate::config::NdsConfig::exec_threads`].
    pub wall_s: f64,
}

impl PartialEq for ServeReport {
    fn eq(&self, other: &Self) -> bool {
        // `wall_s` is deliberately excluded (host timing, not simulation
        // output).
        self.outcomes == other.outcomes
            && self.update_outcomes == other.update_outcomes
            && self.updates == other.updates
            && self.makespan_ns == other.makespan_ns
            && self.rounds == other.rounds
            && self.peak_inflight == other.peak_inflight
            && self.peak_tenant_inflight == other.peak_tenant_inflight
            && self.breakdown == other.breakdown
            && self.stats == other.stats
            && self.lun_coverage == other.lun_coverage
    }
}

impl ServeReport {
    /// Wall-clock simulation throughput: simulated nanoseconds advanced
    /// per host second spent simulating (0 when nothing was measured).
    pub fn sim_ns_per_wall_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.makespan_ns as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Sessions that ran to normal completion.
    pub fn completed(&self) -> usize {
        self.count(SessionState::Completed)
    }

    /// Sessions rejected by backpressure.
    pub fn rejected(&self) -> usize {
        self.count(SessionState::Rejected)
    }

    /// Sessions cut off at their deadline.
    pub fn expired(&self) -> usize {
        self.count(SessionState::Expired)
    }

    fn count(&self, s: SessionState) -> usize {
        self.outcomes.iter().filter(|o| o.state == s).count()
    }

    /// Goodput: normally completed queries per second of makespan.
    pub fn qps(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.completed() as f64 / (self.makespan_ns as f64 / 1e9)
        }
    }

    /// Updates applied to completion.
    pub fn updates_completed(&self) -> usize {
        self.update_outcomes
            .iter()
            .filter(|o| o.state == SessionState::Completed)
            .count()
    }

    /// Updates rejected (backpressure, shape mismatch, missing vertex).
    pub fn updates_rejected(&self) -> usize {
        self.update_outcomes
            .iter()
            .filter(|o| o.state == SessionState::Rejected)
            .count()
    }

    /// Update throughput: completed updates per second of makespan.
    pub fn update_qps(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.updates_completed() as f64 / (self.makespan_ns as f64 / 1e9)
        }
    }

    /// Write amplification of the update stream (flash bytes programmed
    /// per user byte ingested).
    pub fn write_amplification(&self) -> f64 {
        self.updates.write_amplification()
    }

    /// Latency order statistics over normally completed sessions, plus
    /// the wall-clock simulation-throughput fields.
    pub fn latency(&self) -> LatencySummary {
        let samples: Vec<Nanos> = self
            .outcomes
            .iter()
            .filter(|o| o.state == SessionState::Completed)
            .map(|o| o.latency_ns())
            .collect();
        let mut summary = LatencySummary::from_samples(&samples);
        summary.wall_s = self.wall_s;
        summary.sim_ns_per_wall_s = self.sim_ns_per_wall_s();
        summary
    }

    /// Sessions terminated by a [`SloPolicy::ShedDoomed`] decision.
    pub fn sheds(&self) -> usize {
        self.outcomes.iter().filter(|o| o.shed).count()
    }

    /// SLO attainment: the fraction of deadline-carrying sessions that
    /// completed on time; `1.0` when no session carried a deadline.
    pub fn slo_attainment(&self) -> f64 {
        slo_attainment_of(self.outcomes.iter().map(|o| (o.deadline_ns, o.state)))
    }

    /// Per-tenant roll-ups (counts, attainment, latency), ascending by
    /// tenant id.
    pub fn tenant_summaries(&self) -> Vec<crate::report::TenantSummary> {
        crate::report::summarize_tenants(&tenant_samples(self.outcomes.iter().map(outcome_sample)))
    }

    /// Fairness metric: max over mean of the per-tenant p99 latencies
    /// (see [`crate::report::tenant_p99_fairness`]).
    pub fn tenant_p99_fairness(&self) -> f64 {
        crate::report::tenant_p99_fairness(&self.tenant_summaries())
    }
}

/// Shared attainment arithmetic for serve and cluster reports.
pub(crate) fn slo_attainment_of(
    outcomes: impl Iterator<Item = (Option<Nanos>, SessionState)>,
) -> f64 {
    let (mut with_deadline, mut met) = (0usize, 0usize);
    for (deadline, state) in outcomes {
        if deadline.is_some() {
            with_deadline += 1;
            met += usize::from(state == SessionState::Completed);
        }
    }
    if with_deadline == 0 {
        1.0
    } else {
        met as f64 / with_deadline as f64
    }
}

/// Lowers `(tenant, state, shed, deadline, latency)` tuples into
/// [`crate::report::TenantSample`]s.
pub(crate) fn tenant_samples(
    rows: impl Iterator<Item = (u32, SessionState, bool, Option<Nanos>, Nanos)>,
) -> Vec<crate::report::TenantSample> {
    rows.map(
        |(tenant, state, shed, deadline_ns, latency_ns)| crate::report::TenantSample {
            tenant,
            completed: state == SessionState::Completed,
            expired: state == SessionState::Expired,
            rejected: state == SessionState::Rejected,
            shed,
            has_deadline: deadline_ns.is_some(),
            latency_ns,
        },
    )
    .collect()
}

fn outcome_sample(o: &QueryOutcome) -> (u32, SessionState, bool, Option<Nanos>, Nanos) {
    (o.tenant, o.state, o.shed, o.deadline_ns, o.latency_ns())
}

/// Internal per-session state. The searcher (which owns a dataset-sized
/// visited set) exists only while the session is `Running`: it is built at
/// admission from the stored request and dropped at completion/expiry, so
/// resident search memory is bounded by the in-flight cap, not by the
/// total number of submissions.
#[derive(Debug, Clone)]
struct Session {
    arrival_ns: Nanos,
    deadline_ns: Option<Nanos>,
    /// Query vector; moved into the searcher at admission.
    query: Vec<f32>,
    /// Entry vertices; moved into the searcher at admission.
    entries: Vec<VectorId>,
    searcher: Option<BeamSearcher>,
    state: SessionState,
    admitted_ns: Nanos,
    completed_ns: Nanos,
    /// Hop count, snapshotted when the searcher is dropped.
    hops: usize,
    rounds_inflight: usize,
    results: Vec<Neighbor>,
    tenant: u32,
    /// Resolved top-k (the per-query override or the engine default).
    k: usize,
    /// Set when a shed decision produced the terminal state.
    shed: bool,
}

impl Session {
    /// Tears down the searcher, snapshotting its hop count and best-`k`
    /// results into the session record. Tombstoned vertices are filtered
    /// out of the reported list: a deleted vector may still have routed
    /// the search, but it must never be returned to a client.
    fn finish(
        &mut self,
        state: SessionState,
        completed_ns: Nanos,
        deleted: &dyn Fn(VectorId) -> bool,
    ) {
        self.state = state;
        self.completed_ns = completed_ns;
        if let Some(searcher) = self.searcher.take() {
            self.hops = searcher.hops();
            self.results = searcher.found();
            self.results.retain(|n| !deleted(n.id));
            self.results.truncate(self.k);
        }
    }
}

/// Internal per-update state (the op is taken when applied).
#[derive(Debug, Clone)]
struct UpdateSession {
    arrival_ns: Nanos,
    op: Option<UpdateOp>,
    state: SessionState,
    admitted_ns: Nanos,
    completed_ns: Nanos,
    assigned: Option<VectorId>,
    repaired: usize,
    pages_programmed: u64,
}

/// The concurrent serving engine: an event-synchronous scheduler that
/// interleaves beam-search hops from many in-flight query sessions across
/// the SearSSD's flash channels, and applies admitted updates between
/// rounds. See the [module docs](self) for the execution model.
pub struct ServeEngine<'a> {
    config: &'a NdsConfig,
    serve: ServeConfig,
    /// The (possibly mutable) deployment being served.
    deploy: Deployment,
    qpt: QueryPropertyTable,
    sessions: Vec<Session>,
    /// Not-yet-arrived sessions, ordered by (arrival, id).
    arrivals: BinaryHeap<Reverse<(Nanos, QueryId)>>,
    /// Arrived sessions awaiting an execution slot (FIFO).
    queue: VecDeque<QueryId>,
    /// Admitted sessions, in admission order.
    inflight: Vec<QueryId>,
    /// Update sessions, in submission order.
    update_sessions: Vec<UpdateSession>,
    /// Not-yet-arrived updates, ordered by (arrival, id).
    update_arrivals: BinaryHeap<Reverse<(Nanos, UpdateId)>>,
    /// Arrived updates awaiting application (FIFO, bounded).
    update_queue: VecDeque<UpdateId>,
    now_ns: Nanos,
    first_arrival_ns: Option<Nanos>,
    last_completion_ns: Nanos,
    prev_shadow: Nanos,
    rounds: u64,
    peak_inflight: usize,
    /// Peak concurrent in-flight sessions per tenant.
    peak_tenant_inflight: std::collections::BTreeMap<u32, usize>,
    /// Simulated time spent in rounds that executed at least one hop
    /// (numerator of the shed estimator's per-hop cost).
    hop_round_ns_total: Nanos,
    /// Number of rounds that executed at least one hop.
    hop_rounds: u64,
    /// Total hops of sessions whose search ran to completion (numerator
    /// of the estimator's expected hop count).
    finished_hops_total: u64,
    /// Number of sessions whose search ran to completion.
    finished_searches: u64,
    ecc: EccEngine,
    stats: FlashStats,
    breakdown: LatencyBreakdown,
    luns_touched: HashSet<u32>,
    /// Host time spent inside [`step_round`](Self::step_round).
    wall: std::time::Duration,
}

impl<'a> ServeEngine<'a> {
    /// Creates a query-only serving engine over a staged layout (the
    /// legacy path: the borrowed views are cloned into an immutable
    /// [`Deployment`], and update submissions are rejected). `dataset`
    /// and `graph` are the construction-order views the live beam
    /// searches run against; `prepared` carries the reordered physical
    /// layout the hardware model replays.
    ///
    /// # Panics
    /// Panics if the dataset, graph and staged layout disagree on vertex
    /// count.
    pub fn new(
        config: &'a NdsConfig,
        serve: ServeConfig,
        prepared: &Prepared,
        dataset: &Dataset,
        graph: &Csr,
    ) -> Self {
        Self::with_deployment(
            config,
            serve,
            Deployment::from_parts(config, prepared.clone(), dataset.clone(), graph.clone()),
        )
    }

    /// Creates a serving engine over a [`Deployment`]. A deployment
    /// staged with a live index ([`Deployment::stage`]) accepts
    /// [`UpdateRequest`] sessions alongside queries; one built
    /// [`Deployment::from_parts`] is query-only.
    ///
    /// # Panics
    /// Panics if the deployment's dataset, graph and staged layout
    /// disagree on vertex count.
    pub fn with_deployment(config: &'a NdsConfig, serve: ServeConfig, deploy: Deployment) -> Self {
        assert_eq!(
            deploy.graph().num_vertices(),
            deploy.dataset().len(),
            "graph and dataset must agree on vertex count"
        );
        assert_eq!(
            deploy.prepared().luncsr.num_vertices(),
            deploy.dataset().len(),
            "staged layout must cover the dataset"
        );
        // QPT DRAM accounting: under quantization the per-session record
        // stores the compressed code, not the full-precision row, so the
        // same DRAM budget admits more residents.
        let qpt_vector_bytes = deploy
            .codes()
            .map_or(deploy.prepared().vector_bytes, |c| c.code_bytes());
        let qpt = QueryPropertyTable::new(
            serve.max_inflight,
            qpt_vector_bytes,
            config.result_list_entries,
        );
        Self {
            config,
            serve,
            deploy,
            qpt,
            sessions: Vec::new(),
            arrivals: BinaryHeap::new(),
            queue: VecDeque::new(),
            inflight: Vec::new(),
            update_sessions: Vec::new(),
            update_arrivals: BinaryHeap::new(),
            update_queue: VecDeque::new(),
            now_ns: 0,
            first_arrival_ns: None,
            last_completion_ns: 0,
            prev_shadow: 0,
            rounds: 0,
            peak_inflight: 0,
            peak_tenant_inflight: std::collections::BTreeMap::new(),
            hop_round_ns_total: 0,
            hop_rounds: 0,
            finished_hops_total: 0,
            finished_searches: 0,
            ecc: EccEngine::new(&config.geometry, config.ecc),
            stats: FlashStats::new(),
            breakdown: LatencyBreakdown::default(),
            luns_touched: HashSet::new(),
            wall: std::time::Duration::ZERO,
        }
    }

    /// The deployment being served (live overlay state, wear, totals).
    pub fn deployment(&self) -> &Deployment {
        &self.deploy
    }

    /// Consumes the engine, returning the deployment (e.g. to compact it
    /// offline or stage a successor engine).
    pub fn into_deployment(self) -> Deployment {
        self.deploy
    }

    /// The effective in-flight cap: the configured limit, clamped by the
    /// device's batch resource cap and by QPT DRAM residency.
    pub fn max_inflight(&self) -> usize {
        self.serve
            .max_inflight
            .min(self.config.max_batch_inflight)
            .min(self.qpt.max_resident(self.serve.qpt_dram_budget_bytes))
            .max(1)
    }

    /// Registers a query session and returns its id. Arrival times in the
    /// past are clamped to the current simulated time.
    pub fn submit(&mut self, req: QueryRequest) -> QueryId {
        let id = self.sessions.len();
        let arrival = req.arrival_ns.max(self.now_ns);
        self.sessions.push(Session {
            arrival_ns: arrival,
            deadline_ns: req.deadline_ns,
            query: req.query,
            entries: req.entries,
            searcher: None,
            state: SessionState::Pending,
            admitted_ns: 0,
            completed_ns: 0,
            hops: 0,
            rounds_inflight: 0,
            results: Vec::new(),
            tenant: req.tenant,
            k: req.k.unwrap_or(self.serve.k),
            shed: false,
        });
        self.arrivals.push(Reverse((arrival, id)));
        self.first_arrival_ns = Some(self.first_arrival_ns.map_or(arrival, |f| f.min(arrival)));
        id
    }

    /// Registers an update session and returns its id. Arrival times in
    /// the past are clamped to the current simulated time. Updates on a
    /// query-only deployment are rejected immediately.
    pub fn submit_update(&mut self, req: UpdateRequest) -> UpdateId {
        let id = self.update_sessions.len();
        let arrival = req.arrival_ns.max(self.now_ns);
        let state = if self.deploy.is_mutable() {
            SessionState::Pending
        } else {
            SessionState::Rejected
        };
        self.update_sessions.push(UpdateSession {
            arrival_ns: arrival,
            op: Some(req.op),
            state,
            admitted_ns: arrival,
            completed_ns: arrival,
            assigned: None,
            repaired: 0,
            pages_programmed: 0,
        });
        if state == SessionState::Pending {
            self.update_arrivals.push(Reverse((arrival, id)));
            self.first_arrival_ns = Some(self.first_arrival_ns.map_or(arrival, |f| f.min(arrival)));
        }
        id
    }

    /// Current state of a session.
    pub fn poll(&self, id: QueryId) -> SessionState {
        self.sessions[id].state
    }

    /// Current state of an update session.
    pub fn poll_update(&self, id: UpdateId) -> SessionState {
        self.update_sessions[id].state
    }

    /// Final (or partial, if expired) results of a terminal session;
    /// `None` while it is still pending/queued/running.
    pub fn results(&self, id: QueryId) -> Option<&[Neighbor]> {
        match self.sessions[id].state {
            SessionState::Completed | SessionState::Expired | SessionState::Rejected => {
                Some(&self.sessions[id].results)
            }
            _ => None,
        }
    }

    /// Current simulated time.
    pub fn now_ns(&self) -> Nanos {
        self.now_ns
    }

    /// The ECC hard-decision failure probability currently in force.
    pub fn ecc_failure_prob(&self) -> f64 {
        self.ecc.config().hard_decision_failure_prob
    }

    /// Degradation trigger: changes the device's injected ECC
    /// hard-decision failure probability mid-run (an *ECC storm* — every
    /// failed hard decode falls back to a ~10 µs soft decode on the FTL,
    /// slowing each subsequent round). Deterministic at any
    /// `exec_threads`: fault injection stays counter-indexed per plane,
    /// so the decisions drawn after the ramp depend only on the decode
    /// counters, never on worker scheduling.
    pub fn inject_ecc_failure_prob(&mut self, p: f64) {
        self.ecc.set_hard_decision_failure_prob(p);
    }

    /// Degradation trigger: bulk-ages every block of the deployment's
    /// wear model by `cycles` P/E cycles (a *wear-out* event). The caller
    /// maps the aged device's raw BER to an ECC failure probability via
    /// [`inject_ecc_failure_prob`](Self::inject_ecc_failure_prob).
    pub fn age_wear(&mut self, cycles: u32) {
        self.deploy.age_wear(cycles);
    }

    /// Moves sessions whose arrival time has passed into the admission
    /// queues (queries and updates alike), rejecting them if full.
    fn process_arrivals(&mut self) {
        while let Some(&Reverse((t, id))) = self.arrivals.peek() {
            if t > self.now_ns {
                break;
            }
            self.arrivals.pop();
            let s = &mut self.sessions[id];
            if self.queue.len() >= self.serve.queue_capacity {
                s.state = SessionState::Rejected;
                s.admitted_ns = t;
                s.completed_ns = t;
            } else {
                s.state = SessionState::Queued;
                self.queue.push_back(id);
            }
        }
        while let Some(&Reverse((t, id))) = self.update_arrivals.peek() {
            if t > self.now_ns {
                break;
            }
            self.update_arrivals.pop();
            let s = &mut self.update_sessions[id];
            if self.update_queue.len() >= self.serve.update_queue_capacity {
                s.state = SessionState::Rejected;
                s.admitted_ns = t;
                s.completed_ns = t;
            } else {
                s.state = SessionState::Queued;
                self.update_queue.push_back(id);
            }
        }
    }

    /// Terminates queued and in-flight sessions whose deadline the clock
    /// has reached (`now >= deadline` — see [`QueryRequest::deadline_ns`]
    /// for the pinned boundary semantic), returning their best-so-far
    /// top-k.
    fn expire_due(&mut self) {
        let now = self.now_ns;
        let due = |s: &Session| s.deadline_ns.is_some_and(|d| d <= now);
        let expired_inflight: Vec<QueryId> = self
            .inflight
            .iter()
            .copied()
            .filter(|&id| due(&self.sessions[id]))
            .collect();
        self.inflight.retain(|&id| !due(&self.sessions[id]));
        for id in expired_inflight {
            // Partial results still travel the full Sorting-stage path.
            let tail = self.completion_tail_ns();
            let deploy = &self.deploy;
            self.sessions[id].finish(SessionState::Expired, now + tail, &|v| deploy.is_deleted(v));
            self.last_completion_ns = self.last_completion_ns.max(now + tail);
        }
        let sessions = &mut self.sessions;
        let mut newly_expired = Vec::new();
        self.queue.retain(|&id| {
            if sessions[id].deadline_ns.is_some_and(|d| d <= now) {
                newly_expired.push(id);
                false
            } else {
                true
            }
        });
        for id in newly_expired {
            let s = &mut self.sessions[id];
            s.state = SessionState::Expired;
            s.admitted_ns = now;
            s.completed_ns = now;
        }
        self.last_completion_ns = self.last_completion_ns.max(now);
    }

    /// The [`SloPolicy::ShedDoomed`] estimator: when a session with
    /// `hops_done` hops behind it is expected to finish, from the observed
    /// mean duration of hop-executing rounds and the observed mean hop
    /// count of finished searches ([`ServeConfig::beam_width`] before any
    /// search finishes). Returns `now` until the first hop round has been
    /// observed — the engine starts optimistic and sheds nothing.
    fn estimated_finish_ns(&self, hops_done: usize) -> Nanos {
        let per_hop_ns = self
            .hop_round_ns_total
            .checked_div(self.hop_rounds)
            .unwrap_or(0);
        let expected_hops = self
            .finished_hops_total
            .checked_div(self.finished_searches)
            .map_or(self.serve.beam_width as u64, |h| h.max(1));
        let remaining = expected_hops.saturating_sub(hops_done as u64).max(1);
        self.now_ns
            .saturating_add(remaining.saturating_mul(per_hop_ns))
    }

    /// [`SloPolicy::ShedDoomed`]: terminates deadline-carrying sessions
    /// whose estimated finish (plus the configured slack) misses their
    /// deadline. Queued sessions are `Rejected` before paying transfer-in;
    /// in-flight sessions are cut off `Expired` with best-so-far results
    /// through the same Sorting-stage tail as a deadline expiry. Every
    /// decision sets [`QueryOutcome::shed`].
    fn shed_doomed(&mut self) {
        let SloPolicy::ShedDoomed { min_slack_ns } = self.serve.slo else {
            return;
        };
        let now = self.now_ns;
        let doomed = |est: Nanos, deadline: Option<Nanos>| {
            deadline.is_some_and(|d| est.saturating_add(min_slack_ns) > d)
        };
        let doomed_inflight: Vec<QueryId> = self
            .inflight
            .iter()
            .copied()
            .filter(|&id| {
                let s = &self.sessions[id];
                let hops_done = s.searcher.as_ref().map_or(s.hops, |b| b.hops());
                doomed(self.estimated_finish_ns(hops_done), s.deadline_ns)
            })
            .collect();
        self.inflight.retain(|&id| !doomed_inflight.contains(&id));
        for id in doomed_inflight {
            let tail = self.completion_tail_ns();
            let deploy = &self.deploy;
            self.sessions[id].finish(SessionState::Expired, now + tail, &|v| deploy.is_deleted(v));
            self.sessions[id].shed = true;
            self.last_completion_ns = self.last_completion_ns.max(now + tail);
        }
        let queued_estimate = self.estimated_finish_ns(0);
        let sessions = &mut self.sessions;
        let mut shed_queued = Vec::new();
        self.queue.retain(|&id| {
            if doomed(queued_estimate, sessions[id].deadline_ns) {
                shed_queued.push(id);
                false
            } else {
                true
            }
        });
        for id in shed_queued {
            let s = &mut self.sessions[id];
            s.state = SessionState::Rejected;
            s.admitted_ns = now;
            s.completed_ns = now;
            s.shed = true;
        }
        self.last_completion_ns = self.last_completion_ns.max(now);
    }

    /// Simulated duration of one quantized scheduling round: the hops'
    /// distance evaluations read codes from internal DRAM and run on the
    /// embedded cores/accelerator — no NAND access. Derived from the
    /// hop traces alone (slot order), so it is bit-identical at any
    /// `exec_threads`.
    fn quantized_round_ns(&mut self, codes: &QuantCodes, hops: &[(u32, IterationTrace)]) -> Nanos {
        let timing = &self.config.timing;
        let active = hops.len();
        let new_distances: u64 = hops.iter().map(|(_, it)| it.visited.len() as u64).sum();
        // Code fetches for scoring + the usual QPT gathering traffic.
        let code_traffic = new_distances * codes.code_bytes() as u64;
        let dram_ns = timing
            .dram_transfer_ns(code_traffic + self.qpt.gather_traffic_bytes(active, new_distances));
        // Decode+MAC on the accelerator: dim elements per eval over the
        // configured MAC lanes.
        let dim = codes.quantizer().dim() as u64;
        let lanes = u64::from(self.config.mac_lanes()).max(1);
        let compute_ns = timing.accel_cycles_ns(new_distances * dim.div_ceil(lanes));
        let embedded_ns = active as u64 * timing.t_embedded_op_ns;
        self.breakdown.dram_ns += dram_ns;
        self.breakdown.compute_ns += compute_ns;
        self.breakdown.embedded_ns += embedded_ns;
        self.stats.distance_evals += new_distances;
        self.stats.search_ops += active as u64;
        dram_ns + compute_ns + embedded_ns
    }

    /// Exact-rerank tail of one completing quantized session: rescores
    /// the best [`ServeConfig::rerank_depth`] approximate candidates
    /// against the full-precision dataset, charging one NAND page read
    /// per distinct page the candidates occupy plus the channel
    /// transfer of their rows.
    fn rerank_tail_ns(&mut self, id: QueryId, dataset: &Dataset, prepared: &Prepared) -> Nanos {
        let depth = self.serve.rerank_depth.max(self.sessions[id].k);
        let Some(searcher) = self.sessions[id].searcher.as_mut() else {
            return 0;
        };
        let ids = searcher.rerank(dataset, depth);
        if ids.is_empty() {
            return 0;
        }
        let pages: std::collections::BTreeSet<u64> = ids
            .iter()
            .map(|&v| {
                prepared
                    .luncsr
                    .physical_addr(prepared.perm.new_of(v))
                    .page_key(&self.config.geometry)
            })
            .collect();
        let timing = &self.config.timing;
        let read_ns = pages.len() as u64 * timing.t_read_page_ns
            + timing.channel_transfer_ns(ids.len() as u64 * prepared.vector_bytes as u64);
        self.stats.page_reads += pages.len() as u64;
        self.stats.distance_evals += ids.len() as u64;
        self.breakdown.rerank_ns += read_ns;
        read_ns
    }

    /// Per-query Sorting-stage tail: result list over the private FPGA
    /// link, one bitonic sort wave, top-k back over the host link (the
    /// same [`sorting_tail`] model the batch engine uses, for one query).
    /// The tail overlaps subsequent search rounds (§V), so it extends the
    /// query's completion time but not the scheduler clock.
    fn completion_tail_ns(&mut self) -> Nanos {
        let tail = sorting_tail(self.config, 1, self.serve.k);
        self.stats.pcie_bytes += tail.pcie_bytes;
        self.breakdown.bitonic_ns += tail.sort_ns;
        self.breakdown.pcie_ns += tail.fpga_ns + tail.out_ns;
        tail.total_ns()
    }

    /// Executes one scheduling round: process arrivals, expire deadlines,
    /// admit from the queue, take one hop from every in-flight session,
    /// run the merged work on the SearSSD model, and complete finished
    /// sessions. Returns `false` once every submitted session is terminal.
    ///
    /// Single-stepping always uses the inline round executor;
    /// [`run_to_completion`](Self::run_to_completion) attaches the worker
    /// pool (results are bit-identical either way).
    pub fn step_round(&mut self) -> bool {
        self.step_with(None)
    }

    pub(crate) fn step_with(&mut self, pool: Option<&mut ServePool<'_>>) -> bool {
        let wall_start = std::time::Instant::now();
        let more = self.step_round_inner(pool);
        self.wall += wall_start.elapsed();
        more
    }

    fn step_round_inner(&mut self, mut pool: Option<&mut ServePool<'_>>) -> bool {
        let Some(mut prep) = self.begin_round() else {
            return false;
        };
        // ---- Ship the round's hop stage as one pre-chunked batch. The
        // cluster tier calls `begin_round`/`finish_round` directly instead
        // and merges many engines' hop batches into a single pool round.
        let config = self.config;
        let jobs = std::mem::take(&mut prep.jobs);
        let outs: Vec<ServeOut> = match pool.as_deref_mut() {
            Some(pool) => pool.run_with_min(jobs, HOP_PARALLEL_MIN),
            None => jobs.into_iter().map(|j| run_serve_job(j, config)).collect(),
        };
        self.finish_round(prep, outs, pool)
    }

    /// First half of a scheduling round: arrivals, expiry, SLO shedding,
    /// round-boundary snapshots and admission, ending with the round's hop
    /// jobs built but not yet executed. Returns `None` when the engine is
    /// fully drained (no work now or ever — the old `false` return).
    ///
    /// Splitting the round here lets [`crate::cluster`] collect every
    /// replica's hop jobs and run them as **one** pool round: hop jobs are
    /// pure functions of their round-boundary snapshots, so merging
    /// batches across engines changes where they run, never what they
    /// return.
    pub(crate) fn begin_round(&mut self) -> Option<RoundPrep> {
        // Updates applied at the end of the previous round become visible
        // here — one graph re-snapshot per round, not per update (and the
        // snapshot is fresh even when this call ends up idle-returning).
        self.deploy.refresh_graph();
        self.process_arrivals();
        if self.inflight.is_empty() && self.queue.is_empty() && self.update_queue.is_empty() {
            // Idle: fast-forward to the next arrival (query or update).
            let next_query = self.arrivals.peek().map(|&Reverse((t, _))| t);
            let next_update = self.update_arrivals.peek().map(|&Reverse((t, _))| t);
            let next = match (next_query, next_update) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let t = next?;
            self.now_ns = self.now_ns.max(t);
            self.process_arrivals();
        }
        self.expire_due();
        self.shed_doomed();

        // ---- Snapshot the world at the round boundary: jobs dispatched
        // below can never observe a mid-round mutation. ----
        let dataset = Arc::clone(self.deploy.dataset());
        let graph = Arc::clone(self.deploy.graph());
        let prepared = Arc::clone(self.deploy.prepared());
        let codes = self.deploy.codes().cloned();

        // ---- Admission: PCIe-in DMA overlaps the round's search. The
        // searcher (and its dataset-sized visited set) is built here, not
        // at submit, so resident memory tracks the in-flight cap. ----
        let mut t_in: Nanos = 0;
        let (num_vertices, beam_width, distance) =
            (dataset.len(), self.serve.beam_width, self.serve.distance);
        // Per-tenant cap: unbounded unless `TenantFair` is in force, so
        // every other policy admits exactly as the legacy FIFO loop did.
        let tenant_cap = match self.serve.slo {
            SloPolicy::TenantFair {
                max_inflight_per_tenant,
            } => max_inflight_per_tenant.max(1),
            _ => usize::MAX,
        };
        let mut tenant_inflight: std::collections::BTreeMap<u32, usize> =
            std::collections::BTreeMap::new();
        for &id in &self.inflight {
            *tenant_inflight.entry(self.sessions[id].tenant).or_default() += 1;
        }
        // Capped-out requests are skipped, not rejected: they go back to
        // the queue front afterwards, preserving FIFO within each tenant.
        let mut skipped: Vec<QueryId> = Vec::new();
        while self.inflight.len() < self.max_inflight() {
            let Some(id) = self.queue.pop_front() else {
                break;
            };
            let tenant = self.sessions[id].tenant;
            let held = tenant_inflight.entry(tenant).or_default();
            if *held >= tenant_cap {
                skipped.push(id);
                continue;
            }
            *held += 1;
            let s = &mut self.sessions[id];
            s.state = SessionState::Running;
            s.admitted_ns = self.now_ns;
            s.searcher = Some(BeamSearcher::new(
                num_vertices,
                std::mem::take(&mut s.query),
                std::mem::take(&mut s.entries),
                beam_width,
                distance,
            ));
            let bytes = prepared.vector_bytes as u64 + 16;
            t_in += self.config.host_link.transfer_ns(bytes);
            self.stats.pcie_bytes += bytes;
            self.inflight.push(id);
        }
        for id in skipped.into_iter().rev() {
            self.queue.push_front(id);
        }
        self.peak_inflight = self.peak_inflight.max(self.inflight.len());
        for (tenant, held) in tenant_inflight {
            if held > 0 {
                let peak = self.peak_tenant_inflight.entry(tenant).or_default();
                *peak = (*peak).max(held);
            }
        }
        self.breakdown.pcie_ns += t_in;

        // ---- One hop per in-flight session, in admission order. Hop
        // steps are independent per session, so they fan out over the
        // worker pool; results come back in slot order, keeping the
        // round bit-identical to the sequential path. ----
        let mut jobs: Vec<ServeJob> = Vec::with_capacity(self.inflight.len());
        for (slot, &id) in self.inflight.iter().enumerate() {
            let s = &mut self.sessions[id];
            s.rounds_inflight += 1;
            let searcher = s.searcher.take().expect("running session has a searcher");
            jobs.push(ServeJob::Hop {
                slot: slot as u32,
                searcher,
                dataset: Arc::clone(&dataset),
                graph: Arc::clone(&graph),
                prepared: Arc::clone(&prepared),
                codes: codes.clone(),
            });
        }
        Some(RoundPrep {
            jobs,
            t_in,
            dataset,
            graph,
            prepared,
            codes,
        })
    }

    /// Second half of a scheduling round: consumes the hop-stage outputs
    /// (in job order), executes the merged round's LUN stage (on `pool`
    /// when provided), advances the clock, completes sessions and applies
    /// queued updates. Returns whether any work remains.
    pub(crate) fn finish_round(
        &mut self,
        prep: RoundPrep,
        outs: Vec<ServeOut>,
        pool: Option<&mut ServePool<'_>>,
    ) -> bool {
        let RoundPrep {
            jobs: _,
            t_in,
            dataset,
            graph,
            prepared,
            codes,
        } = prep;
        let mut hops: Vec<(u32, IterationTrace)> = Vec::new();
        let mut finished: Vec<QueryId> = Vec::new();
        for out in outs {
            let ServeOut::Hop {
                slot,
                searcher,
                hop,
                finished: done,
            } = out
            else {
                unreachable!("a hop batch returned a LUN outcome");
            };
            let id = self.inflight[slot as usize];
            self.sessions[id].searcher = Some(searcher);
            if done {
                finished.push(id);
            }
            if let Some(hop) = hop {
                hops.push((slot, hop));
            }
        }

        // ---- Execute the merged round on the hardware model. Quantized
        // rounds never touch flash: every distance comes from the
        // DRAM-resident code table, so the round costs DRAM traffic and
        // embedded-core compute instead of NAND sensing — flash is paid
        // only by the exact rerank at completion. ----
        let mut round_exec: Nanos = 0;
        if !hops.is_empty() {
            if let Some(codes) = codes.as_deref() {
                round_exec = self.quantized_round_ns(codes, &hops);
                self.rounds += 1;
            } else {
                let entries: Vec<(u32, VectorId, &[VectorId])> = hops
                    .iter()
                    .map(|(q, it)| (*q, it.entry, it.visited.as_slice()))
                    .collect();
                let mut executor = pool.map(|p| RoundExecutor {
                    pool: p,
                    prepared: Arc::clone(&prepared),
                });
                let round = execute_round(
                    self.config,
                    &prepared.luncsr,
                    &self.qpt,
                    &entries,
                    RoundSinks {
                        ecc: &mut self.ecc,
                        stats: &mut self.stats,
                        luns_touched: &mut self.luns_touched,
                    },
                    executor.as_mut().map(|e| e as &mut dyn LunExecutor),
                );
                let overlap = self.config.scheduling.dynamic_allocating && self.rounds > 0;
                round_exec = round.apply(&mut self.breakdown, &mut self.prev_shadow, overlap);
                self.rounds += 1;
            }
        }
        let advance = round_exec.max(t_in);
        self.now_ns += advance;
        if !hops.is_empty() {
            // Feed the shed estimator: mean duration of hop-executing
            // rounds (simulated values only — bit-identical at any
            // thread count).
            self.hop_round_ns_total += advance;
            self.hop_rounds += 1;
        }

        // ---- Complete sessions that terminated this round. A session
        // whose results land past its deadline — it finished its search in
        // the very round the deadline passed — is `Expired`, not
        // `Completed`: the deadline check at the round *start* cannot see
        // this round's clock advance, so completion re-checks it. ----
        for id in finished {
            self.inflight.retain(|&x| x != id);
            let mut tail = self.completion_tail_ns();
            if codes.is_some() {
                // Exact rerank: the final candidates' full-precision rows
                // are read from flash and rescored before sorting. The
                // read extends this query's completion tail (overlapping
                // subsequent rounds, like the sorting tail), and counts
                // against its deadline below.
                tail += self.rerank_tail_ns(id, &dataset, &prepared);
            }
            let done_ns = self.now_ns + tail;
            let state = match self.sessions[id].deadline_ns {
                Some(d) if done_ns > d => SessionState::Expired,
                _ => SessionState::Completed,
            };
            let deploy = &self.deploy;
            self.sessions[id].finish(state, done_ns, &|v| deploy.is_deleted(v));
            // Feed the shed estimator's expected-hops prior: this session
            // ran its search to the end (even if it expired at the tail).
            self.finished_hops_total += self.sessions[id].hops as u64;
            self.finished_searches += 1;
            self.last_completion_ns = self.last_completion_ns.max(done_ns);
        }

        // ---- Apply admitted updates, in admission order, on the
        // scheduler thread (the write path mutates the deployment, so it
        // never fans out — which also makes mixed query+update rounds
        // trivially bit-identical at any thread count). The next round's
        // snapshots pick the mutations up. The round's own snapshots are
        // released first so `Arc::make_mut` inside the deployment mutates
        // in place instead of deep-cloning the dataset and overlay. ----
        drop(dataset);
        drop(graph);
        drop(prepared);
        for _ in 0..self.serve.max_updates_per_round {
            let Some(uid) = self.update_queue.pop_front() else {
                break;
            };
            self.apply_update(uid);
        }

        !self.inflight.is_empty()
            || !self.queue.is_empty()
            || !self.arrivals.is_empty()
            || !self.update_queue.is_empty()
            || !self.update_arrivals.is_empty()
    }

    /// Applies one update session: mutates the deployment, charges the
    /// flash write path (program latency, wear, stats) and advances the
    /// clock by the update's device occupancy.
    fn apply_update(&mut self, uid: UpdateId) {
        let s = &mut self.update_sessions[uid];
        s.admitted_ns = self.now_ns;
        let op = s.op.take().expect("queued update still has its op");
        let applied = match op {
            UpdateOp::Insert(vector) => self.deploy.insert(self.config, &vector).ok(),
            UpdateOp::Delete(id) => self.deploy.delete(self.config, id),
        };
        let s = &mut self.update_sessions[uid];
        match applied {
            Some(applied) => {
                self.now_ns += applied.duration_ns;
                self.breakdown.program_ns += applied.program_ns;
                self.breakdown.embedded_ns +=
                    applied.duration_ns.saturating_sub(applied.program_ns);
                self.stats.page_programs += applied.pages_programmed;
                s.state = SessionState::Completed;
                s.assigned = Some(applied.id);
                s.repaired = applied.repaired;
                s.pages_programmed = applied.pages_programmed;
            }
            None => {
                s.state = SessionState::Rejected;
            }
        }
        s.completed_ns = self.now_ns;
        self.last_completion_ns = self.last_completion_ns.max(self.now_ns);
    }

    /// Drives the scheduler until every session is terminal and returns
    /// the report.
    ///
    /// Spawns the round executor's worker pool once
    /// ([`NdsConfig::exec_threads`] threads) and drives every scheduling
    /// round through it, so serving throughput scales with host cores
    /// while the report stays bit-identical to single-stepping.
    pub fn run_to_completion(&mut self) -> ServeReport {
        let config = self.config;
        crate::exec::with_pool(
            config.exec_threads,
            move |job: ServeJob| run_serve_job(job, config),
            |pool| {
                while self.step_with(Some(&mut *pool)) {}
                self.report()
            },
        )
    }

    /// Compacts the deployment in place, charging the rewrite's
    /// erase/program time to the simulated clock and the report's
    /// breakdown. Returns `None` for query-only deployments.
    pub fn compact(&mut self) -> Option<crate::deploy::CompactionReport> {
        if !self.deploy.is_mutable() {
            return None;
        }
        let report = self.deploy.compact(self.config);
        self.now_ns += report.duration_ns;
        self.breakdown.program_ns += report.duration_ns;
        self.stats.page_programs += report.pages_programmed;
        self.stats.block_erases += report.blocks_erased;
        self.last_completion_ns = self.last_completion_ns.max(self.now_ns);
        Some(report)
    }

    /// Snapshot of the serving outcome so far (complete once
    /// [`run_to_completion`](Self::run_to_completion) or repeated
    /// [`step_round`](Self::step_round) calls have drained every session).
    pub fn report(&self) -> ServeReport {
        let outcomes = self
            .sessions
            .iter()
            .enumerate()
            .map(|(id, s)| QueryOutcome {
                id,
                state: s.state,
                arrival_ns: s.arrival_ns,
                admitted_ns: s.admitted_ns,
                completed_ns: s.completed_ns,
                hops: s.searcher.as_ref().map_or(s.hops, |b| b.hops()),
                rounds_inflight: s.rounds_inflight,
                results: s.results.clone(),
                tenant: s.tenant,
                deadline_ns: s.deadline_ns,
                shed: s.shed,
            })
            .collect();
        let update_outcomes = self
            .update_sessions
            .iter()
            .enumerate()
            .map(|(id, s)| UpdateOutcome {
                id,
                state: s.state,
                arrival_ns: s.arrival_ns,
                admitted_ns: s.admitted_ns,
                completed_ns: s.completed_ns,
                assigned: s.assigned,
                repaired: s.repaired,
                pages_programmed: s.pages_programmed,
            })
            .collect();
        ServeReport {
            outcomes,
            update_outcomes,
            updates: self.deploy.totals(),
            makespan_ns: self
                .now_ns
                .max(self.last_completion_ns)
                .saturating_sub(self.first_arrival_ns.unwrap_or(0)),
            rounds: self.rounds,
            peak_inflight: self.peak_inflight,
            peak_tenant_inflight: self
                .peak_tenant_inflight
                .iter()
                .map(|(&t, &p)| (t, p))
                .collect(),
            breakdown: self.breakdown,
            stats: self.stats,
            lun_coverage: self.luns_touched.len() as f64
                / f64::from(self.config.geometry.total_luns()),
            wall_s: self.wall.as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_anns::beam::{beam_search, VisitedSet};
    use ndsearch_anns::index::GraphAnnsIndex;
    use ndsearch_anns::trace::BatchTrace;
    use ndsearch_anns::vamana::{Vamana, VamanaParams};
    use ndsearch_vector::synthetic::DatasetSpec;

    struct Fixture {
        base: Dataset,
        queries: Dataset,
        graph: Csr,
        medoid: VectorId,
        config: NdsConfig,
    }

    fn fixture(n: usize, q: usize) -> Fixture {
        let (base, queries) = DatasetSpec::sift_scaled(n, q).build_pair();
        let index = Vamana::build(&base, VamanaParams::default());
        let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
        config.ecc.hard_decision_failure_prob = 0.0;
        Fixture {
            base,
            queries,
            medoid: index.medoid(),
            graph: index.base_graph().clone(),
            config,
        }
    }

    fn stage(fx: &Fixture) -> Prepared {
        Prepared::stage(&fx.config, &fx.graph, &fx.base, &BatchTrace::default())
    }

    fn submit_all(engine: &mut ServeEngine<'_>, fx: &Fixture, arrival: impl Fn(usize) -> Nanos) {
        for (i, (_, q)) in fx.queries.iter().enumerate() {
            engine.submit(QueryRequest::at(arrival(i), q.to_vec(), vec![fx.medoid]));
        }
    }

    #[test]
    fn concurrent_results_match_sequential_beam_search() {
        let fx = fixture(500, 24);
        let prepared = stage(&fx);
        let serve = ServeConfig {
            max_inflight: 8,
            ..ServeConfig::default()
        };
        let mut engine =
            ServeEngine::new(&fx.config, serve.clone(), &prepared, &fx.base, &fx.graph);
        submit_all(&mut engine, &fx, |_| 0);
        let report = engine.run_to_completion();
        assert_eq!(report.completed(), fx.queries.len());

        let mut vs = VisitedSet::new(fx.base.len());
        for (i, (_, q)) in fx.queries.iter().enumerate() {
            let seq = beam_search(
                &fx.base,
                &fx.graph,
                q,
                &[fx.medoid],
                serve.beam_width,
                serve.distance,
                &mut vs,
            );
            let mut want = seq.found;
            want.truncate(serve.k);
            assert_eq!(report.outcomes[i].results, want, "query {i} diverged");
        }
    }

    #[test]
    fn serving_is_deterministic() {
        let fx = fixture(400, 16);
        let prepared = stage(&fx);
        let run = || {
            let serve = ServeConfig {
                max_inflight: 4,
                ..ServeConfig::default()
            };
            let mut engine = ServeEngine::new(&fx.config, serve, &prepared, &fx.base, &fx.graph);
            submit_all(&mut engine, &fx, |i| i as Nanos * 1_000);
            engine.run_to_completion()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn serving_reports_bit_identical_across_thread_counts() {
        let mut fx = fixture(400, 16);
        // Keep ECC fault injection on — its counter-indexed streams are
        // what must not depend on worker scheduling.
        fx.config.ecc.hard_decision_failure_prob = 0.05;
        let prepared = stage(&fx);
        let run = |threads: usize| {
            let mut config = fx.config.clone();
            config.exec_threads = threads;
            let serve = ServeConfig {
                max_inflight: 8,
                ..ServeConfig::default()
            };
            let mut engine = ServeEngine::new(&config, serve, &prepared, &fx.base, &fx.graph);
            submit_all(&mut engine, &fx, |i| i as Nanos * 500);
            engine.run_to_completion()
        };
        let sequential = run(1);
        assert!(sequential.wall_s > 0.0, "wall clock must be measured");
        assert!(sequential.sim_ns_per_wall_s() > 0.0);
        for threads in [2usize, 8] {
            assert_eq!(
                sequential,
                run(threads),
                "serve report diverged at exec_threads = {threads}"
            );
        }
    }

    #[test]
    fn round_robin_never_starves_a_session() {
        let fx = fixture(400, 16);
        let prepared = stage(&fx);
        let serve = ServeConfig {
            max_inflight: 4,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(&fx.config, serve, &prepared, &fx.base, &fx.graph);
        submit_all(&mut engine, &fx, |_| 0);
        let report = engine.run_to_completion();
        for o in &report.outcomes {
            assert_eq!(o.state, SessionState::Completed);
            // Every round a session spends in flight advances it one hop,
            // except at most one final drain round.
            assert!(
                o.rounds_inflight >= o.hops && o.rounds_inflight <= o.hops + 1,
                "session {} stalled: {} rounds for {} hops",
                o.id,
                o.rounds_inflight,
                o.hops
            );
            assert!(o.hops > 0);
        }
        // FIFO admission: same-arrival sessions admitted in submission order.
        let admitted: Vec<Nanos> = report.outcomes.iter().map(|o| o.admitted_ns).collect();
        assert!(admitted.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(report.peak_inflight, 4);
    }

    #[test]
    fn queue_overflow_rejects_and_deadlines_expire() {
        let fx = fixture(400, 16);
        let prepared = stage(&fx);
        let serve = ServeConfig {
            max_inflight: 2,
            queue_capacity: 4,
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(&fx.config, serve, &prepared, &fx.base, &fx.graph);
        submit_all(&mut engine, &fx, |_| 0);
        let report = engine.run_to_completion();
        assert_eq!(
            report.rejected(),
            12,
            "queue holds 4 of 16 same-instant arrivals"
        );
        assert_eq!(report.completed(), 4);
        for o in report
            .outcomes
            .iter()
            .filter(|o| o.state == SessionState::Rejected)
        {
            assert!(o.results.is_empty());
        }

        // A deadline in the past expires a session with partial results.
        let mut engine2 = ServeEngine::new(
            &fx.config,
            ServeConfig::default(),
            &prepared,
            &fx.base,
            &fx.graph,
        );
        let mut req = QueryRequest::at(0, fx.queries.vector(0).to_vec(), vec![fx.medoid]);
        req.deadline_ns = Some(1);
        engine2.submit(req);
        let r2 = engine2.run_to_completion();
        assert_eq!(r2.expired(), 1);
    }

    #[test]
    fn qpt_budget_caps_inflight() {
        let fx = fixture(400, 8);
        let prepared = stage(&fx);
        let serve = ServeConfig {
            max_inflight: 64,
            // Room for exactly 2 QPT records.
            qpt_dram_budget_bytes: 2 * QueryPropertyTable::new(
                64,
                prepared.vector_bytes,
                fx.config.result_list_entries,
            )
            .record_bytes(),
            ..ServeConfig::default()
        };
        let mut engine = ServeEngine::new(&fx.config, serve, &prepared, &fx.base, &fx.graph);
        assert_eq!(engine.max_inflight(), 2);
        submit_all(&mut engine, &fx, |_| 0);
        let report = engine.run_to_completion();
        assert_eq!(report.peak_inflight, 2);
        assert_eq!(report.completed(), 8);
    }

    #[test]
    fn submit_poll_step_lifecycle() {
        let fx = fixture(400, 4);
        let prepared = stage(&fx);
        let mut engine = ServeEngine::new(
            &fx.config,
            ServeConfig::default(),
            &prepared,
            &fx.base,
            &fx.graph,
        );
        let id = engine.submit(QueryRequest::at(
            5_000,
            fx.queries.vector(0).to_vec(),
            vec![fx.medoid],
        ));
        assert_eq!(engine.poll(id), SessionState::Pending);
        assert!(engine.results(id).is_none());
        assert!(engine.step_round()); // fast-forwards to the arrival
        assert_eq!(engine.poll(id), SessionState::Running);
        while engine.step_round() {}
        assert_eq!(engine.poll(id), SessionState::Completed);
        assert_eq!(engine.results(id).unwrap().len(), 10);
        let report = engine.report();
        // Makespan is measured from the first arrival, not from t=0: the
        // idle prefix before the query arrived must not dilute QPS.
        assert_eq!(report.makespan_ns, report.outcomes[0].completed_ns - 5_000);
        assert!(report.latency().p50_ns > 0);
        assert!(report.lun_coverage > 0.0);
    }

    fn mutable_engine(
        fx: &Fixture,
        serve: ServeConfig,
    ) -> (ServeEngine<'_>, ndsearch_vector::Dataset) {
        let index = Vamana::build(&fx.base, VamanaParams::default());
        let deploy = crate::deploy::Deployment::stage(&fx.config, Box::new(index), fx.base.clone());
        (
            ServeEngine::with_deployment(&fx.config, serve, deploy),
            fx.queries.clone(),
        )
    }

    #[test]
    fn mixed_query_update_serving_completes_and_charges_flash() {
        let mut fx = fixture(400, 16);
        // Headroom for the inserts.
        fx.config = NdsConfig::scaled_for(800, fx.base.stored_vector_bytes());
        fx.config.ecc.hard_decision_failure_prob = 0.0;
        let (mut engine, extra) = mutable_engine(
            &fx,
            ServeConfig {
                max_inflight: 4,
                ..ServeConfig::default()
            },
        );
        // Interleave 16 queries with 16 inserts and 4 deletes.
        for (i, (_, q)) in fx.queries.iter().enumerate() {
            engine.submit(QueryRequest::at(
                i as Nanos * 1_000,
                q.to_vec(),
                vec![fx.medoid],
            ));
        }
        for (i, (_, v)) in extra.iter().enumerate() {
            engine.submit_update(UpdateRequest::insert_at(i as Nanos * 1_500, v.to_vec()));
        }
        for i in 0..4u32 {
            engine.submit_update(UpdateRequest::delete_at(20_000 + Nanos::from(i), i));
        }
        let report = engine.run_to_completion();
        assert_eq!(report.completed(), 16);
        assert_eq!(report.updates_completed(), 20);
        assert_eq!(report.updates_rejected(), 0);
        assert!(report.update_qps() > 0.0);
        // The write path demonstrably charged flash program latency, wear
        // and stats.
        assert!(report.updates.inserts == 16 && report.updates.deletes == 4);
        assert!(report.updates.pages_programmed > 0, "no page programmed");
        assert!(report.stats.page_programs > 0);
        assert!(report.breakdown.program_ns > 0, "tPROG not charged");
        assert!(report.write_amplification() > 0.0);
        assert!(engine.deployment().wear().max_wear_ratio() > 0.0);
        // The deployment grew and the deletes tombstoned.
        assert_eq!(engine.deployment().dataset().len(), 416);
        assert_eq!(engine.deployment().live_count(), 412);
        // Inserted ids are reported in submission order.
        for (i, o) in report.update_outcomes.iter().take(16).enumerate() {
            assert_eq!(o.state, SessionState::Completed);
            assert_eq!(o.assigned, Some(400 + i as u32));
        }
    }

    #[test]
    fn deleted_vertices_never_surface_in_results() {
        let fx = fixture(400, 8);
        let (mut engine, _) = mutable_engine(&fx, ServeConfig::default());
        // Find the true top-1 of query 0, delete it, then serve the query.
        let mut vs = VisitedSet::new(fx.base.len());
        let top = beam_search(
            &fx.base,
            &fx.graph,
            fx.queries.vector(0),
            &[fx.medoid],
            64,
            DistanceKind::L2,
            &mut vs,
        )
        .found[0]
            .id;
        let del = engine.submit_update(UpdateRequest::delete_at(0, top));
        let q = engine.submit(QueryRequest::at(
            1_000_000,
            fx.queries.vector(0).to_vec(),
            vec![fx.medoid],
        ));
        let report = engine.run_to_completion();
        assert_eq!(engine.poll_update(del), SessionState::Completed);
        assert_eq!(engine.poll(q), SessionState::Completed);
        assert!(
            !report.outcomes[q].results.iter().any(|n| n.id == top),
            "tombstoned vertex leaked into results"
        );
        assert!(!report.outcomes[q].results.is_empty());
    }

    #[test]
    fn update_queue_overflow_rejects() {
        let fx = fixture(300, 1);
        let (mut engine, _) = mutable_engine(
            &fx,
            ServeConfig {
                update_queue_capacity: 2,
                max_updates_per_round: 1,
                ..ServeConfig::default()
            },
        );
        for _ in 0..6 {
            engine.submit_update(UpdateRequest::delete_at(0, 5));
        }
        let report = engine.run_to_completion();
        // Two fit the queue; the other four bounce. Of the two applied,
        // the first completes, the second is a duplicate delete.
        assert_eq!(report.updates_rejected(), 5);
        assert_eq!(report.updates_completed(), 1);
    }

    #[test]
    fn updates_on_immutable_deployment_are_rejected() {
        let fx = fixture(300, 1);
        let prepared = stage(&fx);
        let mut engine = ServeEngine::new(
            &fx.config,
            ServeConfig::default(),
            &prepared,
            &fx.base,
            &fx.graph,
        );
        let id = engine.submit_update(UpdateRequest::delete_at(0, 3));
        assert_eq!(engine.poll_update(id), SessionState::Rejected);
        let report = engine.run_to_completion();
        assert_eq!(report.updates_rejected(), 1);
        assert_eq!(report.updates.deletes, 0);
    }

    #[test]
    fn serving_compaction_charges_erases_and_keeps_results() {
        let mut fx = fixture(400, 8);
        fx.config = NdsConfig::scaled_for(800, fx.base.stored_vector_bytes());
        fx.config.ecc.hard_decision_failure_prob = 0.0;
        let (mut engine, extra) = mutable_engine(&fx, ServeConfig::default());
        for (_, v) in extra.iter().take(8) {
            engine.submit_update(UpdateRequest::insert_at(0, v.to_vec()));
        }
        engine.run_to_completion();
        let before = engine.deployment().prepared().luncsr.delta_vertices();
        assert!(before > 0);
        let compaction = engine.compact().expect("mutable deployment compacts");
        assert!(compaction.blocks_erased > 0);
        assert_eq!(engine.deployment().prepared().luncsr.delta_vertices(), 0);

        // Query results over the compacted deployment match the overlay.
        for (i, (_, q)) in fx.queries.iter().enumerate() {
            engine.submit(QueryRequest::at(0, q.to_vec(), vec![fx.medoid]));
            let _ = i;
        }
        let report = engine.run_to_completion();
        assert!(report.stats.block_erases > 0);
        let mut vs = VisitedSet::new(engine.deployment().dataset().len());
        for (i, (_, q)) in fx.queries.iter().enumerate() {
            let mut want = beam_search(
                engine.deployment().dataset().as_ref(),
                engine.deployment().graph(),
                q,
                &[fx.medoid],
                ServeConfig::default().beam_width,
                DistanceKind::L2,
                &mut vs,
            )
            .found;
            want.truncate(ServeConfig::default().k);
            assert_eq!(report.outcomes[i].results, want, "query {i} diverged");
        }
    }

    #[test]
    fn empty_engine_reports_zero() {
        let fx = fixture(200, 1);
        let prepared = stage(&fx);
        let mut engine = ServeEngine::new(
            &fx.config,
            ServeConfig::default(),
            &prepared,
            &fx.base,
            &fx.graph,
        );
        let report = engine.run_to_completion();
        assert!(report.outcomes.is_empty());
        assert_eq!(report.qps(), 0.0);
        assert_eq!(report.makespan_ns, 0);
    }
}
