//! Power and energy model (Table I, §VII-B "Power budget and Energy
//! Efficiency").
//!
//! Component powers come from CACTI 6.5 + Synopsys DC at 32 nm in the
//! paper; here they are transcribed constants rolled up the same way. The
//! PCIe interface limits SearSSD's budget to ~55 W; the paper's design
//! lands at 18.82 W for the in-SSD logic plus 7.5 W for the FPGA bitonic
//! sorter = 26.32 W total.

use crate::report::NdsReport;

/// One Table I row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentBudget {
    /// Component name.
    pub name: &'static str,
    /// Configuration note (size / composition).
    pub config: &'static str,
    /// Instance count.
    pub count: u32,
    /// Total power across instances, watts.
    pub power_w: f64,
    /// Total area across instances, mm².
    pub area_mm2: f64,
}

/// The Table I breakdown of SearSSD's customized logic.
pub fn searssd_components() -> Vec<ComponentBudget> {
    vec![
        ComponentBudget {
            name: "MAC group",
            config: "2 MACs",
            count: 512,
            power_w: 1.95,
            area_mm2: 15.04,
        },
        ComponentBudget {
            name: "Vgen Buffer",
            config: "2MB",
            count: 1,
            power_w: 1.71,
            area_mm2: 3.18,
        },
        ComponentBudget {
            name: "Alloc Buffer",
            config: "6MB",
            count: 1,
            power_w: 4.57,
            area_mm2: 8.53,
        },
        ComponentBudget {
            name: "Query Queue",
            config: "24KB",
            count: 256,
            power_w: 5.84,
            area_mm2: 9.76,
        },
        ComponentBudget {
            name: "Vaddr Queue",
            config: "3KB",
            count: 256,
            power_w: 0.87,
            area_mm2: 1.47,
        },
        ComponentBudget {
            name: "Output Buffer",
            config: "1KB",
            count: 512,
            power_w: 0.56,
            area_mm2: 1.12,
        },
        ComponentBudget {
            name: "ECC Decoder",
            config: "LDPC",
            count: 1024,
            power_w: 1.18,
            area_mm2: 2.84,
        },
        ComponentBudget {
            name: "Ctr circuits",
            config: "-",
            count: 0,
            power_w: 2.14,
            area_mm2: 1.15,
        },
    ]
}

/// Platform-level power model for QPS/W comparisons (Fig. 20).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// SearSSD customized-logic power (Table I total).
    pub searssd_logic_w: f64,
    /// FPGA bitonic kernel power.
    pub fpga_w: f64,
    /// Baseline SSD device power (NAND + controller + DRAM).
    pub ssd_device_w: f64,
    /// PCIe-slot power budget for a SmartSSD-class device.
    pub power_budget_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            searssd_logic_w: searssd_components().iter().map(|c| c.power_w).sum(),
            fpga_w: 7.5,
            ssd_device_w: 12.0,
            power_budget_w: 55.0,
        }
    }
}

impl PowerModel {
    /// Total NDSEARCH power draw (paper: 18.82 + 7.5 = 26.32 W of
    /// customized logic; the base SSD device is accounted separately when
    /// comparing against SmartSSD-class designs).
    pub fn ndsearch_total_w(&self) -> f64 {
        self.searssd_logic_w + self.fpga_w
    }

    /// Whether the design fits the PCIe power budget.
    pub fn within_budget(&self) -> bool {
        self.ndsearch_total_w() + self.ssd_device_w <= self.power_budget_w
    }

    /// Energy efficiency in queries per second per watt.
    pub fn qps_per_watt(&self, report: &NdsReport) -> f64 {
        report.qps() / (self.ndsearch_total_w() + self.ssd_device_w)
    }

    /// Energy consumed by a batch in joules (power × time).
    pub fn batch_energy_j(&self, report: &NdsReport) -> f64 {
        (self.ndsearch_total_w() + self.ssd_device_w) * report.total_ns as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_match_paper() {
        let total_power: f64 = searssd_components().iter().map(|c| c.power_w).sum();
        let total_area: f64 = searssd_components().iter().map(|c| c.area_mm2).sum();
        assert!((total_power - 18.82).abs() < 0.01, "power = {total_power}");
        assert!((total_area - 43.09).abs() < 0.01, "area = {total_area}");
    }

    #[test]
    fn ndsearch_fits_power_budget() {
        let p = PowerModel::default();
        assert!((p.ndsearch_total_w() - 26.32).abs() < 0.01);
        assert!(p.within_budget());
    }

    #[test]
    fn qps_per_watt_scales_with_qps() {
        let p = PowerModel::default();
        let fast = NdsReport {
            queries: 2048,
            total_ns: 1_000_000,
            ..NdsReport::default()
        };
        let slow = NdsReport {
            queries: 2048,
            total_ns: 10_000_000,
            ..NdsReport::default()
        };
        assert!(p.qps_per_watt(&fast) > 9.0 * p.qps_per_watt(&slow));
        assert!(p.batch_energy_j(&slow) > p.batch_energy_j(&fast));
    }
}
