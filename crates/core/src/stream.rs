//! Sustained multi-batch throughput.
//!
//! §V (Sorting stage): "When all queries have met the termination
//! condition, a batch of results lists is sent to the FPGA for sorting.
//! Meanwhile, the allocating stage for the next batch can start." A served
//! system never runs one batch in isolation; this module models a stream
//! of batches where each batch's FPGA sorting (and result return) overlaps
//! the next batch's in-SSD search, giving the sustained QPS a deployment
//! would observe.
//!
//! Batches here are *closed*: every query in a batch starts and finishes
//! together, so the stream models throughput but not per-query latency
//! under load. For open-loop arrivals, per-query deadlines and p50/p99
//! tail latencies, use the session-based serving engine in
//! [`crate::serve`], which interleaves hops from many in-flight queries
//! instead of marching a batch in lockstep.

use ndsearch_flash::timing::Nanos;

use crate::engine::NdsEngine;
use crate::pipeline::Prepared;
use crate::report::NdsReport;

/// Outcome of streaming several batches back to back.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Per-batch reports (isolated timings).
    pub batches: Vec<NdsReport>,
    /// End-to-end makespan with sort/search overlap.
    pub makespan_ns: Nanos,
    /// Sum of isolated batch latencies (no overlap), for comparison.
    pub serial_ns: Nanos,
}

impl StreamReport {
    /// Total queries across the stream.
    pub fn queries(&self) -> usize {
        self.batches.iter().map(|b| b.queries).sum()
    }

    /// Sustained throughput (queries per second over the makespan).
    pub fn sustained_qps(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.queries() as f64 / (self.makespan_ns as f64 / 1e9)
        }
    }

    /// Throughput without cross-batch overlap.
    pub fn serial_qps(&self) -> f64 {
        if self.serial_ns == 0 {
            0.0
        } else {
            self.queries() as f64 / (self.serial_ns as f64 / 1e9)
        }
    }

    /// Fraction of time saved by overlapping sorting with the next batch.
    pub fn overlap_gain(&self) -> f64 {
        if self.serial_ns == 0 {
            0.0
        } else {
            1.0 - self.makespan_ns as f64 / self.serial_ns as f64
        }
    }
}

/// Runs a stream of prepared batches, overlapping each batch's
/// sorting/PCIe tail with the next batch's search.
pub fn run_stream(engine: &NdsEngine<'_>, batches: &[&Prepared]) -> StreamReport {
    let reports: Vec<NdsReport> = batches.iter().map(|p| engine.run(p)).collect();
    let mut makespan: Nanos = 0;
    let mut serial: Nanos = 0;
    let mut pending_tail: Nanos = 0;
    for r in &reports {
        serial += r.total_ns;
        let tail = r.breakdown.bitonic_ns + r.breakdown.pcie_ns;
        let body = r.total_ns.saturating_sub(tail);
        // The previous batch's tail overlaps this batch's body.
        makespan += body.max(pending_tail);
        pending_tail = tail;
    }
    makespan += pending_tail; // last tail drains
    StreamReport {
        batches: reports,
        makespan_ns: makespan,
        serial_ns: serial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NdsConfig;
    use ndsearch_anns::hnsw::{Hnsw, HnswParams};
    use ndsearch_anns::index::{GraphAnnsIndex, SearchParams};
    use ndsearch_vector::synthetic::DatasetSpec;

    #[test]
    fn overlap_beats_serial() {
        let (base, queries) = DatasetSpec::sift_scaled(500, 64).build_pair();
        let index = Hnsw::build(&base, HnswParams::default());
        let out = index.search_batch(&base, &queries, &SearchParams::default());
        let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
        config.ecc.hard_decision_failure_prob = 0.0;
        let prepared = Prepared::stage(&config, index.base_graph(), &base, &out.trace);
        let engine = NdsEngine::new(&config);
        let stream = run_stream(&engine, &[&prepared, &prepared, &prepared]);
        assert_eq!(stream.queries(), 3 * 64);
        assert!(stream.makespan_ns <= stream.serial_ns);
        assert!(stream.sustained_qps() >= stream.serial_qps());
        assert!((0.0..1.0).contains(&stream.overlap_gain()));
    }

    #[test]
    fn empty_stream_is_zero() {
        let config = NdsConfig::default();
        let engine = NdsEngine::new(&config);
        let stream = run_stream(&engine, &[]);
        assert_eq!(stream.queries(), 0);
        assert_eq!(stream.sustained_qps(), 0.0);
    }
}
