//! NDSEARCH configuration.
//!
//! [`NdsConfig`] configures the simulated *device* (geometry, timing,
//! ECC, scheduling techniques, executor threads). Serving-layer policy —
//! admission, deadlines and the SLO scheduling of
//! [`crate::serve::SloPolicy`] — lives on [`crate::serve::ServeConfig`],
//! and workload shape (arrival models, tenant mixes) on
//! [`crate::traffic::Scenario`].

use ndsearch_flash::ecc::EccConfig;
use ndsearch_flash::geometry::FlashGeometry;
use ndsearch_flash::timing::{FlashTiming, PcieLink};
use ndsearch_graph::mapping::PlacementPolicy;
use ndsearch_graph::reorder::ReorderMethod;
use ndsearch_vector::quant::QuantSpec;

/// Which scheduling techniques are active — the knobs of the ablation
/// studies (Fig. 14/15/16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulingConfig {
    /// Static scheduling: vertex reordering method.
    pub reorder: ReorderMethod,
    /// Static scheduling: placement policy (multi-plane aware or naive).
    pub placement: PlacementPolicy,
    /// Dynamic scheduling: batch-wise dynamic allocating (§VI-B1).
    pub dynamic_allocating: bool,
    /// Dynamic scheduling: speculative searching (§VI-B2).
    pub speculative: bool,
}

impl SchedulingConfig {
    /// Everything on — the full NDSEARCH design.
    pub fn full() -> Self {
        Self {
            reorder: ReorderMethod::DegreeAscendingBfs,
            placement: PlacementPolicy::MultiPlaneAware,
            dynamic_allocating: true,
            speculative: true,
        }
    }

    /// Everything off — the "Bare" machine of Fig. 16.
    pub fn bare() -> Self {
        Self {
            reorder: ReorderMethod::Identity,
            placement: PlacementPolicy::Linear,
            dynamic_allocating: false,
            speculative: false,
        }
    }

    /// The ablation ladder of Fig. 16: Bare → re → re+mp → re+mp+da →
    /// re+mp+da+sp, with display labels.
    pub fn ablation_ladder() -> Vec<(&'static str, SchedulingConfig)> {
        let bare = Self::bare();
        let re = SchedulingConfig {
            reorder: ReorderMethod::DegreeAscendingBfs,
            ..bare
        };
        let re_mp = SchedulingConfig {
            placement: PlacementPolicy::MultiPlaneAware,
            ..re
        };
        let re_mp_da = SchedulingConfig {
            dynamic_allocating: true,
            ..re_mp
        };
        let full = SchedulingConfig {
            speculative: true,
            ..re_mp_da
        };
        vec![
            ("Bare", bare),
            ("re", re),
            ("re+mp", re_mp),
            ("re+mp+da", re_mp_da),
            ("re+mp+da+sp", full),
        ]
    }
}

impl Default for SchedulingConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// Full NDSEARCH system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NdsConfig {
    /// SiN flash array shape.
    pub geometry: FlashGeometry,
    /// NAND / internal timing parameters.
    pub timing: FlashTiming,
    /// Host PCIe link (queries in, top-k out).
    pub host_link: PcieLink,
    /// Private SSD↔FPGA link for result lists (PCIe 3.0 ×4).
    pub fpga_link: PcieLink,
    /// ECC model parameters.
    pub ecc: EccConfig,
    /// Scheduling toggles.
    pub scheduling: SchedulingConfig,
    /// MAC groups per LUN accelerator (Table I: 2).
    pub mac_groups: u32,
    /// MACs per group (Table I: 2 MACs each).
    pub macs_per_group: u32,
    /// Parallel sorter instances on the FPGA.
    pub fpga_sorters: u32,
    /// FPGA clock in Hz.
    pub fpga_clock_hz: f64,
    /// Bytes per result-list entry crossing the FPGA link (id + distance).
    pub result_entry_bytes: u32,
    /// Result-list entries per query shipped to the FPGA sorter.
    pub result_list_entries: usize,
    /// Batch capacity before a batch must be split into sub-batches
    /// (§VII-B "Batch size": resources bound ~4096 under the power budget).
    pub max_batch_inflight: usize,
    /// Read-disturb refresh threshold: after this many page reads a
    /// block-level refresh fires (within a plane, §VI-A2) and the FTL
    /// updates LUNCSR's BLK array mid-run. 0 disables online refresh
    /// (the search phase is read-only and refresh is rare, §II-B2).
    pub refresh_read_threshold: u64,
    /// Speculative-searching budget as a multiple of the entry vertex's
    /// degree (how many second-order neighbors the Pref Unit fetches per
    /// iteration). Larger budgets raise the hit rate *and* the wasted page
    /// accesses of Fig. 15.
    pub spec_budget_factor: f64,
    /// Compressed-vector codes kept in SSD DRAM for graph traversal
    /// (int8 or product quantization); `QuantSpec::None` (the default)
    /// scores full-precision rows from flash as before. When enabled,
    /// beam traversal scores DRAM-resident codes and only the final
    /// rerank candidates pay flash page reads (see
    /// [`crate::serve::ServeConfig::rerank_depth`]). The
    /// `NDSEARCH_NO_QUANT` environment flag forces this back to `None`
    /// at deployment staging (same parsing rule as `NDSEARCH_NO_SIMD`;
    /// see `ndsearch_vector::env`).
    pub quantization: QuantSpec,
    /// Host worker threads the round executor ([`crate::exec`]) fans
    /// per-LUN work units over. Reports are bit-identical at any value;
    /// `1` runs the exact legacy inline loop. Defaults to the host's
    /// available parallelism (overridable via the `NDSEARCH_EXEC_THREADS`
    /// environment variable).
    pub exec_threads: usize,
    /// Seed for placement/refresh/ECC determinism.
    pub seed: u64,
}

impl Default for NdsConfig {
    fn default() -> Self {
        Self {
            geometry: FlashGeometry::searssd_default(),
            timing: FlashTiming::default(),
            host_link: PcieLink::gen3_x16(),
            fpga_link: PcieLink::gen3_x4(),
            ecc: EccConfig::default(),
            scheduling: SchedulingConfig::full(),
            mac_groups: 2,
            macs_per_group: 2,
            fpga_sorters: 16,
            fpga_clock_hz: 200e6,
            result_entry_bytes: 8,
            result_list_entries: 64,
            max_batch_inflight: 4096,
            refresh_read_threshold: 0,
            spec_budget_factor: 1.0,
            quantization: QuantSpec::None,
            exec_threads: crate::exec::default_threads(),
            seed: 0x6D5,
        }
    }
}

impl NdsConfig {
    /// A configuration whose geometry is scaled down *in proportion with
    /// the dataset*, preserving the ratios that drive the paper's locality
    /// and parallelism effects at simulator scale:
    ///
    /// * the channel/chip/plane/LUN **shape** (and thus the accelerator
    ///   parallelism ratios NDSEARCH : DS-cp : DS-c = 256 : 128 : 32) is
    ///   kept identical to the paper's SearSSD;
    /// * the **page size** shrinks so a page holds ~8 vectors (the paper:
    ///   16 KiB pages hold 16–128 vectors), keeping page-locality effects
    ///   meaningful;
    /// * **blocks × pages per plane** shrink so the dataset covers a large
    ///   fraction of all planes — a billion vectors fill the real device;
    ///   the scaled dataset must likewise span the scaled device, or LUN
    ///   parallelism would be an artifact of under-occupancy.
    pub fn scaled_for(n: usize, vector_bytes: usize) -> Self {
        let base = Self::default();
        let geom = scale_geometry(base.geometry, n, vector_bytes);
        Self {
            geometry: geom,
            ..base
        }
    }

    /// MAC lanes per LUN accelerator (elements per cycle).
    pub fn mac_lanes(&self) -> u32 {
        self.mac_groups * self.macs_per_group
    }
}

/// Scales page size and per-plane page count to the dataset (see
/// [`NdsConfig::scaled_for`]).
fn scale_geometry(mut geom: FlashGeometry, n: usize, vector_bytes: usize) -> FlashGeometry {
    // ~8 vectors per page, power-of-two page size in [1 KiB, 16 KiB] —
    // small enough that a scaled dataset spans several pages per plane
    // (the regime where page-buffer thrashing and dynamic allocating
    // matter), large enough that reordering can co-locate neighbors.
    let want_page = (8 * vector_bytes.max(1)).next_power_of_two() as u32;
    geom.page_bytes = want_page.clamp(1024, 16 * 1024);
    let slots_per_page = (geom.page_bytes as usize / vector_bytes.max(1)).max(1);
    let pages_needed = n.div_ceil(slots_per_page) as u64;
    // Target ~2× headroom spread over all planes; at least 4 pages/plane so
    // block-level refresh and page addressing stay meaningful.
    let per_plane = (2 * pages_needed).div_ceil(u64::from(geom.total_planes()));
    let per_plane = (per_plane.max(4).next_power_of_two() as u32)
        .min(geom.blocks_per_plane * geom.pages_per_block);
    geom.blocks_per_plane = 2;
    geom.pages_per_block = (per_plane / geom.blocks_per_plane).max(2);
    geom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_searssd() {
        let c = NdsConfig::default();
        assert_eq!(c.geometry.total_luns(), 256);
        assert_eq!(c.mac_lanes(), 4);
        assert_eq!(c.max_batch_inflight, 4096);
    }

    #[test]
    fn ablation_ladder_is_monotone_in_features() {
        let ladder = SchedulingConfig::ablation_ladder();
        assert_eq!(ladder.len(), 5);
        assert_eq!(ladder[0].1, SchedulingConfig::bare());
        assert_eq!(ladder[4].1, SchedulingConfig::full());
        assert!(!ladder[2].1.dynamic_allocating);
        assert!(ladder[3].1.dynamic_allocating && !ladder[3].1.speculative);
    }

    #[test]
    fn scaled_geometry_fits_dataset_with_headroom() {
        let c = NdsConfig::scaled_for(20_000, 512);
        let footprint = 20_000u64 * 512;
        let cap = c.geometry.total_capacity_bytes();
        assert!(
            cap >= footprint,
            "capacity {cap} below footprint {footprint}"
        );
        assert!(
            cap <= footprint * 8,
            "capacity {cap} should be within 8x of footprint {footprint}"
        );
        // Shape preserved.
        assert_eq!(c.geometry.total_luns(), 256);
        c.geometry.validate().unwrap();
    }

    #[test]
    fn scaled_geometry_handles_tiny_datasets() {
        let c = NdsConfig::scaled_for(100, 128);
        c.geometry.validate().unwrap();
        assert!(c.geometry.total_capacity_bytes() >= 100 * 128);
    }
}
