//! The NDP processing model of Algorithm 1, executed event-synchronously.
//!
//! Each engine round is one search iteration for every still-active query
//! in the batch:
//!
//! 1. **Allocating** — the Vgenerator fetches each active query's entry
//!    vertex neighbor/LUN lists, and the Allocator dispatches (query,
//!    neighbor) pairs per LUN with direct LUNCSR address generation. With
//!    dynamic scheduling enabled, this stage is overlapped with the
//!    previous round's Searching + Gathering (Fig. 12), so only its
//!    *overhang* lands on the critical path.
//! 2. **Searching** — every LUN accelerator processes its work in parallel
//!    ([`crate::sin::process_lun_work`]); the round's searching latency is
//!    the slowest LUN plus the busiest channel's data-out serialization.
//!    With speculative searching on, the prefetched second-order neighbors
//!    of the previous round have already been computed off the critical
//!    path, shrinking this round's work (hits) at the price of extra page
//!    accesses (misses).
//! 3. **Gathering** — the Apply operator updates the query property table
//!    (embedded cores + DRAM traffic).
//! 4. **Sorting** — once every query terminates, result lists stream over
//!    the private PCIe ×4 link to the FPGA bitonic sorter and top-k goes
//!    back to the host.

use std::collections::HashSet;
use std::sync::Arc;

use ndsearch_anns::bitonic::BitonicStats;
use ndsearch_anns::trace::QueryTrace;
use ndsearch_flash::ecc::EccEngine;
use ndsearch_flash::stats::FlashStats;
use ndsearch_flash::timing::Nanos;
use ndsearch_graph::luncsr::LunCsr;
use ndsearch_vector::VectorId;

use crate::alloc::{Allocator, LunWork};
use crate::config::NdsConfig;
use crate::exec::Pool;
use crate::pipeline::Prepared;
use crate::qpt::QueryPropertyTable;
use crate::report::{LatencyBreakdown, NdsReport};
use crate::sin::{process_lun_work, LunJob, LunOutcome};
use crate::speculative::{select_prefetch, SpeculationStats};
use crate::vgen::Vgenerator;

/// The batch engine's pool type: per-LUN jobs in, outcome deltas out.
pub(crate) type LunPool<'f> = Pool<'f, LunJob, LunOutcome>;

/// Abstraction over a worker pool that can evaluate a round's per-LUN
/// work units. The batch engine's [`LunPool`] implements it directly;
/// the serving engine's pool (whose job type also carries beam-search
/// hops) implements it by wrapping the jobs.
pub(crate) trait LunExecutor {
    /// Whether `units` work units would actually fan out over workers.
    fn parallel_for(&self, units: usize) -> bool;
    /// Evaluates the jobs, returning outcomes **in job order**.
    fn run_luns(&mut self, jobs: Vec<LunJob>) -> Vec<LunOutcome>;
}

impl LunExecutor for LunPool<'_> {
    fn parallel_for(&self, units: usize) -> bool {
        self.is_parallel() && units >= crate::exec::PARALLEL_THRESHOLD
    }

    fn run_luns(&mut self, jobs: Vec<LunJob>) -> Vec<LunOutcome> {
        self.run(jobs)
    }
}

/// The engine-wide mutable accumulators one round commits into — per-LUN
/// outcome deltas merge into these, in stable LUN order, after the fan-out.
pub(crate) struct RoundSinks<'a> {
    /// Engine-wide ECC state (failure-stream cursors advance per round).
    pub ecc: &'a mut EccEngine,
    /// Engine-wide flash statistics.
    pub stats: &'a mut FlashStats,
    /// Distinct LUNs touched so far (LUN-coverage reporting).
    pub luns_touched: &'a mut HashSet<u32>,
}

/// Evaluates a round's per-LUN work units — on the worker pool when one
/// is attached and the round is large enough to amortize the hand-off,
/// inline otherwise — returning outcomes in stable LUN order.
///
/// Invariant: a parallel pool's job function must close over the *same*
/// `luncsr`/`config` passed here (both engines build their pool over
/// `Prepared::luncsr`; the refresh path, which mutates a private LUNCSR
/// copy, always runs with an inline pool). The ECC snapshot travels in
/// the jobs, so it is consistent either way.
fn run_lun_units(
    config: &NdsConfig,
    luncsr: &LunCsr,
    ecc: &EccEngine,
    work: Vec<LunWork>,
    pool: Option<&mut dyn LunExecutor>,
) -> Vec<LunOutcome> {
    match pool {
        Some(pool) if pool.parallel_for(work.len()) => {
            let snapshot = Arc::new(ecc.clone());
            let jobs: Vec<LunJob> = work
                .into_iter()
                .map(|work| LunJob {
                    work,
                    ecc: Arc::clone(&snapshot),
                })
                .collect();
            pool.run_luns(jobs)
        }
        _ => work
            .iter()
            .map(|w| process_lun_work(w, luncsr, config, ecc))
            .collect(),
    }
}

/// Latency contributions of one Allocating → Searching → Gathering round.
///
/// `allocating_ns` is the *raw* stage latency; whether it lands on the
/// critical path (or is hidden behind the previous round's shadow under
/// dynamic allocating) is the caller's decision, because the batch engine
/// and the serving scheduler overlap rounds differently.
#[derive(Debug, Clone, Default)]
pub(crate) struct RoundOutcome {
    /// Vgenerator + Allocator latency (pre-overlap).
    pub allocating_ns: Nanos,
    /// Slowest LUN busy time + busiest channel data-out.
    pub searching_ns: Nanos,
    /// QPT update traffic + embedded-core bookkeeping.
    pub gathering_ns: Nanos,
    /// Busiest channel data-out (the `bus` breakdown bucket).
    pub bus_ns: Nanos,
    /// Gathering DRAM traffic.
    pub dram_ns: Nanos,
    /// Gathering embedded-core time.
    pub embedded_ns: Nanos,
    /// Slowest LUN: NAND sensing.
    pub nand_read_ns: Nanos,
    /// Slowest LUN: ECC decode.
    pub ecc_ns: Nanos,
    /// Slowest LUN: page-buffer streaming + MAC compute.
    pub compute_ns: Nanos,
    /// Global plane of every dispatched task, concatenated in stable LUN
    /// order (the engine's refresh path replays these through the FTL).
    pub touched_planes: Vec<u32>,
}

impl RoundOutcome {
    /// Folds this round into the latency breakdown and the
    /// dynamic-allocating shadow, returning the round's critical-path
    /// time. With `overlap` set, the Allocating stage hides behind the
    /// previous round's Searching+Gathering shadow (§VI-B1) and only its
    /// overhang lands on the path; `prev_shadow` is updated to this
    /// round's shadow either way.
    pub fn apply(
        &self,
        breakdown: &mut LatencyBreakdown,
        prev_shadow: &mut Nanos,
        overlap: bool,
    ) -> Nanos {
        let alloc_on_path = if overlap {
            self.allocating_ns.saturating_sub(*prev_shadow)
        } else {
            self.allocating_ns
        };
        *prev_shadow = self.searching_ns + self.gathering_ns;
        breakdown.allocating_ns += alloc_on_path;
        breakdown.bus_ns += self.bus_ns;
        breakdown.dram_ns += self.dram_ns;
        breakdown.embedded_ns += self.embedded_ns;
        // Decompose the slowest LUN's busy time.
        breakdown.nand_read_ns += self.nand_read_ns;
        breakdown.ecc_ns += self.ecc_ns;
        breakdown.compute_ns += self.compute_ns;
        alloc_on_path + self.searching_ns + self.gathering_ns
    }
}

/// Executes one engine round — the Allocating, Searching and Gathering
/// stages of Algorithm 1 — for `entries` = (query slot, entry vertex,
/// unvisited neighbors), against the staged LUNCSR.
///
/// This is the hot path shared by the run-to-completion batch engine
/// ([`NdsEngine`]) and the interleaved multi-query scheduler
/// ([`crate::serve::ServeEngine`]). The Searching stage fans the per-LUN
/// work units over the persistent worker pool ([`crate::exec`]) — each
/// unit is a pure function of the round's snapshots — then folds the
/// outcomes back in stable LUN order, so the round is bit-identical at
/// any [`NdsConfig::exec_threads`] (`pool = None` is the inline path).
pub(crate) fn execute_round(
    config: &NdsConfig,
    luncsr: &LunCsr,
    qpt: &QueryPropertyTable,
    entries: &[(u32, VectorId, &[VectorId])],
    sinks: RoundSinks<'_>,
    pool: Option<&mut dyn LunExecutor>,
) -> RoundOutcome {
    let timing = &config.timing;

    // ---- Allocating stage. ----
    let vgen_out = Vgenerator.run(luncsr, timing, entries);
    let alloc_out = Allocator.dispatch(luncsr, timing, &vgen_out.triples, false);
    let allocating_ns = vgen_out.latency_ns + alloc_out.latency_ns;

    // ---- Searching stage: all LUN accelerators in parallel — on worker
    // threads too, since each work unit only reads this round's immutable
    // snapshots. ----
    let outcomes = run_lun_units(config, luncsr, sinks.ecc, alloc_out.work, pool);

    // ---- Merge in stable LUN order (determinism: every reduction sees
    // the same operand sequence at any thread count). ----
    let channels = config.geometry.channels as usize;
    let mut channel_out: Vec<Nanos> = vec![0; channels];
    let mut max_busy: Nanos = 0;
    let mut max_busy_rep = crate::sin::SinReport::default();
    let mut touched_planes = Vec::new();
    for out in outcomes {
        sinks.luns_touched.insert(out.lun);
        sinks.ecc.apply(&out.ecc);
        sinks.stats.merge(&out.stats);
        touched_planes.extend_from_slice(&out.touched_planes);
        let rep = out.report;
        let ch = config.geometry.lun_channel(out.lun) as usize;
        channel_out[ch] +=
            timing.channel_transfer_ns(rep.result_bytes) + rep.sense_ops * timing.t_command_ns;
        if rep.busy_ns > max_busy {
            max_busy = rep.busy_ns;
            max_busy_rep = rep;
        }
    }
    let max_channel = channel_out.iter().copied().max().unwrap_or(0);
    let searching_ns = max_busy + max_channel;

    // ---- Gathering stage. ----
    let active = entries.len();
    let new_distances: u64 = entries.iter().map(|(_, _, v)| v.len() as u64).sum();
    let g_dram = timing.dram_transfer_ns(qpt.gather_traffic_bytes(active, new_distances));
    let g_emb = active as u64 * timing.t_embedded_op_ns;

    RoundOutcome {
        allocating_ns,
        searching_ns,
        gathering_ns: g_dram + g_emb,
        bus_ns: max_channel,
        dram_ns: g_dram,
        embedded_ns: g_emb,
        nand_read_ns: max_busy_rep.sense_ns,
        ecc_ns: max_busy_rep.ecc_ns,
        compute_ns: max_busy_rep.compute_ns,
        touched_planes,
    }
}

/// Sorting-stage cost for shipping `nq` result lists to the FPGA sorter
/// and the top-k back to the host (§V, shared by the batch engine's batch
/// tail and the serving engine's per-query completion tail).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SortingTail {
    /// Result lists over the private SSD↔FPGA link.
    pub fpga_ns: Nanos,
    /// Bitonic sorting waves on the FPGA.
    pub sort_ns: Nanos,
    /// Top-k back over the host link.
    pub out_ns: Nanos,
    /// PCIe bytes moved (result lists + top-k out).
    pub pcie_bytes: u64,
}

impl SortingTail {
    /// Total tail latency.
    pub fn total_ns(&self) -> Nanos {
        self.fpga_ns + self.sort_ns + self.out_ns
    }
}

/// Computes the Sorting-stage tail for `nq` queries returning `k` results
/// each: result lists cross the FPGA link, sort in
/// `ceil(nq / sorters)` bitonic waves, and `k` (id, distance) pairs per
/// query return over the host link.
pub(crate) fn sorting_tail(config: &NdsConfig, nq: u64, k: usize) -> SortingTail {
    let list_bytes = nq * config.result_list_entries as u64 * u64::from(config.result_entry_bytes);
    let fpga_ns = config.fpga_link.transfer_ns(list_bytes);
    let stages = BitonicStats::stages_for(config.result_list_entries.next_power_of_two());
    let period_ns = (1e9 / config.fpga_clock_hz).ceil() as u64;
    let waves = nq.div_ceil(u64::from(config.fpga_sorters.max(1)));
    let sort_ns = waves * u64::from(stages) * period_ns;
    let out_bytes = nq * k as u64 * 8;
    let out_ns = config.host_link.transfer_ns(out_bytes);
    SortingTail {
        fpga_ns,
        sort_ns,
        out_ns,
        pcie_bytes: list_bytes + out_bytes,
    }
}

/// The NDSEARCH batch engine.
#[derive(Debug, Clone)]
pub struct NdsEngine<'a> {
    config: &'a NdsConfig,
}

impl<'a> NdsEngine<'a> {
    /// Creates an engine over a configuration.
    pub fn new(config: &'a NdsConfig) -> Self {
        Self { config }
    }

    /// Simulates a full batch (splitting into sub-batches when it exceeds
    /// the resource cap, §VII-B "Batch size") and returns the merged
    /// report.
    ///
    /// The run spawns the round executor's worker pool once
    /// ([`crate::exec::with_pool`], [`NdsConfig::exec_threads`] threads)
    /// and drives every round through it; online refresh mutates a
    /// private LUNCSR copy mid-run, so refresh-enabled runs use the
    /// inline executor (results are identical either way).
    pub fn run(&self, prepared: &Prepared) -> NdsReport {
        let config = self.config;
        let refresh_on = config.refresh_read_threshold > 0;
        let threads = if refresh_on { 1 } else { config.exec_threads };
        crate::exec::with_pool(
            threads,
            |job: LunJob| process_lun_work(&job.work, &prepared.luncsr, config, &job.ecc),
            |pool| self.run_with_pool(prepared, pool),
        )
    }

    fn run_with_pool(&self, prepared: &Prepared, pool: &mut LunPool<'_>) -> NdsReport {
        // A zero cap means "no batching resources": clamp once, here, to
        // the smallest legal sub-batch.
        let cap = self.config.max_batch_inflight.max(1);
        let queries = &prepared.trace.queries;
        let mut merged = NdsReport {
            queries: queries.len(),
            ..NdsReport::default()
        };
        let mut luns_touched: HashSet<u32> = HashSet::new();
        let mut sub_batches = 0;
        for chunk in queries.chunks(cap) {
            sub_batches += 1;
            let sub = self.run_sub(prepared, chunk, &mut luns_touched, pool);
            merged.total_ns += sub.total_ns;
            merged.trace_len += sub.trace_len;
            merged.breakdown.merge(&sub.breakdown);
            merged.stats.merge(&sub.stats);
            merged.speculation.hits += sub.speculation.hits;
            merged.speculation.misses += sub.speculation.misses;
            merged.iterations += sub.iterations;
            merged.refreshes += sub.refreshes;
        }
        if queries.is_empty() {
            sub_batches = 0;
        }
        merged.sub_batches = sub_batches;
        merged.lun_coverage =
            luns_touched.len() as f64 / f64::from(self.config.geometry.total_luns());
        merged
    }

    fn run_sub(
        &self,
        prepared: &Prepared,
        traces: &[QueryTrace],
        luns_touched: &mut HashSet<u32>,
        pool: &mut LunPool<'_>,
    ) -> NdsReport {
        let config = self.config;
        // Online block-level refresh needs a mutable LUNCSR (the FTL
        // rewrites the BLK array mid-run, §II-B2 / Fig. 5b).
        let refresh_on = config.refresh_read_threshold > 0;
        let mut luncsr_owned = refresh_on.then(|| prepared.luncsr.clone());
        let mut ftl = refresh_on.then(|| {
            let mut f = ndsearch_flash::ftl::Ftl::new(config.geometry, config.seed ^ 0xF7);
            f.refresh_read_threshold = config.refresh_read_threshold;
            f
        });
        let timing = &config.timing;
        let nq = traces.len();
        let max_iters = traces.iter().map(|t| t.iterations.len()).max().unwrap_or(0);

        let mut stats = FlashStats::new();
        let mut breakdown = LatencyBreakdown::default();
        let mut speculation = SpeculationStats::default();
        let mut ecc = EccEngine::new(&config.geometry, config.ecc);
        let mut total: Nanos = 0;

        // Host → SSD: query vectors + descriptors over PCIe.
        let in_bytes = nq as u64 * (prepared.vector_bytes as u64 + 16);
        let t_in = config.host_link.transfer_ns(in_bytes);
        stats.pcie_bytes += in_bytes;
        breakdown.pcie_ns += t_in;
        total += t_in;

        let qpt = QueryPropertyTable::new(nq, prepared.vector_bytes, config.result_list_entries);
        let mut prefetched: Vec<HashSet<VectorId>> = vec![HashSet::new(); nq];
        // Per-query visited sets, as the query property table tracks them;
        // the Pref Unit consults these to avoid guaranteed-miss prefetches.
        let mut seen: Vec<HashSet<VectorId>> = vec![HashSet::new(); nq];
        let mut prev_shadow: Nanos = 0; // searching+gathering of previous round

        let mut refreshes = 0u64;
        for r in 0..max_iters {
            let luncsr = luncsr_owned.as_ref().unwrap_or(&prepared.luncsr);
            // The pool's job closure is bound to `prepared.luncsr`; when
            // refresh runs against the privately mutated copy the rounds
            // must stay inline (enforced structurally here, not just by
            // `run` clamping the thread count).
            let round_pool: Option<&mut dyn LunExecutor> = if luncsr_owned.is_some() {
                None
            } else {
                Some(&mut *pool)
            };
            // ---- Collect this round's work from the traces. ----
            let mut filtered: Vec<(u32, VectorId, Vec<VectorId>)> = Vec::new();
            for (qi, t) in traces.iter().enumerate() {
                let Some(it) = t.iterations.get(r) else {
                    continue;
                };
                let mut visited = Vec::with_capacity(it.visited.len());
                for &v in &it.visited {
                    if config.scheduling.speculative && prefetched[qi].remove(&v) {
                        speculation.hits += 1; // distance already computed
                    } else {
                        visited.push(v);
                    }
                }
                // Anything left prefetched from last round was wasted.
                if config.scheduling.speculative {
                    speculation.misses += prefetched[qi].len() as u64;
                    prefetched[qi].clear();
                    seen[qi].insert(it.entry);
                    seen[qi].extend(it.visited.iter().copied());
                }
                filtered.push((qi as u32, it.entry, visited));
            }
            if filtered.is_empty() {
                continue;
            }

            // ---- Allocating + Searching + Gathering (the shared round
            // executor, also driven per-hop by `crate::serve`). ----
            let entries: Vec<(u32, VectorId, &[VectorId])> = filtered
                .iter()
                .map(|(q, e, v)| (*q, *e, v.as_slice()))
                .collect();

            // ---- Speculative prefetch for the next round (overlapped). ----
            let mut spec_triples: Vec<(u32, VectorId, u32)> = Vec::new();
            if config.scheduling.speculative && r + 1 < max_iters {
                for (qi, t) in traces.iter().enumerate() {
                    if t.iterations.get(r).is_none() || t.iterations.get(r + 1).is_none() {
                        continue;
                    }
                    let entry = t.iterations[r].entry;
                    let budget = (luncsr.neighbors(entry).len() as f64 * config.spec_budget_factor)
                        .round() as usize;
                    let picks = select_prefetch(luncsr, entry, budget, &seen[qi]);
                    for v in picks {
                        prefetched[qi].insert(v);
                        spec_triples.push((qi as u32, v, luncsr.lun_of(v)));
                    }
                }
            }

            let round = execute_round(
                config,
                luncsr,
                &qpt,
                &entries,
                RoundSinks {
                    ecc: &mut ecc,
                    stats: &mut stats,
                    luns_touched,
                },
                round_pool,
            );

            // Speculative work executes off the critical path but consumes
            // pages and MACs (visible in the statistics). It fans over the
            // same pool; its deltas commit after the main round's, so the
            // per-plane ECC streams stay in program order.
            if !spec_triples.is_empty() {
                let spec_alloc = Allocator.dispatch(luncsr, timing, &spec_triples, true);
                let spec_pool: Option<&mut dyn LunExecutor> = if luncsr_owned.is_some() {
                    None
                } else {
                    Some(&mut *pool)
                };
                let spec_outcomes = run_lun_units(config, luncsr, &ecc, spec_alloc.work, spec_pool);
                for out in spec_outcomes {
                    luns_touched.insert(out.lun);
                    ecc.apply(&out.ecc);
                    stats.merge(&out.stats);
                }
            }

            // ---- Compose the round's critical path and attribute it to
            // the breakdown buckets. ----
            let overlap = config.scheduling.dynamic_allocating && r > 0;
            total += round.apply(&mut breakdown, &mut prev_shadow, overlap);

            // ---- Online block-level refresh (read disturb). ----
            if let (Some(f), Some(owned)) = (ftl.as_mut(), luncsr_owned.as_mut()) {
                let mut moves = 0u64;
                for &plane in &round.touched_planes {
                    for ev in f.note_read(plane) {
                        owned.apply_refresh(&ev);
                        moves += 1;
                    }
                }
                if moves > 0 {
                    refreshes += moves / 2; // two block moves per swap
                                            // A block move rewrites every page (read + program).
                    let t_move =
                        u64::from(config.geometry.pages_per_block) * 4 * timing.t_read_page_ns;
                    let t = moves * t_move;
                    total += t;
                    breakdown.embedded_ns += t;
                }
            }
        }

        // ---- Sorting stage: SSD → FPGA → host (top-10 returned). ----
        let tail = sorting_tail(config, nq as u64, 10);
        stats.pcie_bytes += tail.pcie_bytes;
        breakdown.bitonic_ns += tail.sort_ns;
        breakdown.pcie_ns += tail.fpga_ns + tail.out_ns;
        total += tail.total_ns();

        NdsReport {
            queries: nq,
            trace_len: traces.iter().map(|t| t.len() as u64).sum(),
            total_ns: total,
            breakdown,
            stats,
            speculation,
            lun_coverage: 0.0, // filled by `run`
            iterations: max_iters,
            sub_batches: 1,
            refreshes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulingConfig;
    use ndsearch_anns::hnsw::{Hnsw, HnswParams};
    use ndsearch_anns::index::{GraphAnnsIndex, SearchParams};
    use ndsearch_anns::trace::BatchTrace;
    use ndsearch_vector::synthetic::DatasetSpec;

    fn fixture() -> (ndsearch_vector::Dataset, ndsearch_graph::Csr, BatchTrace) {
        let (base, queries) = DatasetSpec::sift_scaled(600, 32).build_pair();
        let index = Hnsw::build(&base, HnswParams::default());
        let out = index.search_batch(&base, &queries, &SearchParams::default());
        (base, index.base_graph().clone(), out.trace)
    }

    fn run_with(
        sched: SchedulingConfig,
        base: &ndsearch_vector::Dataset,
        graph: &ndsearch_graph::Csr,
        trace: &BatchTrace,
    ) -> NdsReport {
        let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
        config.scheduling = sched;
        config.ecc.hard_decision_failure_prob = 0.0;
        let prepared = Prepared::stage(&config, graph, base, trace);
        NdsEngine::new(&config).run(&prepared)
    }

    #[test]
    fn engine_produces_consistent_report() {
        let (base, graph, trace) = fixture();
        let r = run_with(SchedulingConfig::full(), &base, &graph, &trace);
        assert_eq!(r.queries, 32);
        assert!(r.total_ns > 0);
        assert!(r.qps() > 0.0);
        assert_eq!(r.trace_len, trace.total_visited());
        assert!(r.stats.page_reads > 0);
        assert!(r.iterations > 0);
        assert!(r.lun_coverage > 0.0 && r.lun_coverage <= 1.0);
        // Breakdown accounts for the whole critical path exactly.
        assert_eq!(r.breakdown.total_ns(), r.total_ns);
    }

    #[test]
    fn dynamic_allocating_reduces_page_reads_and_time() {
        // Use the dense `tiny` geometry so planes hold several hot pages
        // and cross-query interleaving actually thrashes the page buffers
        // without dynamic allocating.
        let (base, graph, trace) = fixture();
        let run_tiny = |sched: SchedulingConfig| {
            let mut config = NdsConfig {
                geometry: ndsearch_flash::geometry::FlashGeometry::tiny(),
                scheduling: sched,
                ..NdsConfig::default()
            };
            config.ecc.hard_decision_failure_prob = 0.0;
            let prepared = Prepared::stage(&config, &graph, &base, &trace);
            NdsEngine::new(&config).run(&prepared)
        };
        let mut without = SchedulingConfig::full();
        without.dynamic_allocating = false;
        without.speculative = false;
        let mut with_da = without;
        with_da.dynamic_allocating = true;
        let a = run_tiny(without);
        let b = run_tiny(with_da);
        assert!(
            b.stats.page_reads < a.stats.page_reads,
            "da should dedup page loads: {} vs {}",
            b.stats.page_reads,
            a.stats.page_reads
        );
        assert!(b.total_ns < a.total_ns, "da should be faster");
    }

    #[test]
    fn speculation_adds_page_reads_but_not_latency() {
        let (base, graph, trace) = fixture();
        let mut da_only = SchedulingConfig::full();
        da_only.speculative = false;
        let a = run_with(da_only, &base, &graph, &trace);
        let b = run_with(SchedulingConfig::full(), &base, &graph, &trace);
        assert!(
            b.stats.page_reads > a.stats.page_reads,
            "speculation must cost extra page accesses"
        );
        assert!(b.total_ns <= a.total_ns, "speculation must not slow down");
        assert!(b.speculation.hits > 0, "some prefetches should hit");
        assert!(b.speculation.misses > 0, "not all prefetches hit");
    }

    #[test]
    fn reordering_improves_page_access_ratio() {
        let (base, graph, trace) = fixture();
        let bare = run_with(SchedulingConfig::bare(), &base, &graph, &trace);
        let mut re = SchedulingConfig::bare();
        re.reorder = ndsearch_graph::reorder::ReorderMethod::DegreeAscendingBfs;
        re.placement = ndsearch_graph::mapping::PlacementPolicy::MultiPlaneAware;
        let ours = run_with(re, &base, &graph, &trace);
        assert!(
            ours.page_access_ratio() <= bare.page_access_ratio(),
            "reordering should not worsen locality: {} vs {}",
            ours.page_access_ratio(),
            bare.page_access_ratio()
        );
    }

    #[test]
    fn determinism() {
        let (base, graph, trace) = fixture();
        let a = run_with(SchedulingConfig::full(), &base, &graph, &trace);
        let b = run_with(SchedulingConfig::full(), &base, &graph, &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_max_batch_inflight_clamps_to_one_query_sub_batches() {
        let (base, graph, trace) = fixture();
        let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
        config.max_batch_inflight = 0;
        config.ecc.hard_decision_failure_prob = 0.0;
        let prepared = Prepared::stage(&config, &graph, &base, &trace);
        let r = NdsEngine::new(&config).run(&prepared);
        // The cap clamps to 1, so every query becomes its own sub-batch —
        // and the degenerate config must behave exactly like cap = 1.
        assert_eq!(r.sub_batches, 32);
        assert_eq!(r.queries, 32);
        assert!(r.total_ns > 0);
        config.max_batch_inflight = 1;
        let one = NdsEngine::new(&config).run(&prepared);
        assert_eq!(r, one);
    }

    #[test]
    fn reports_bit_identical_across_thread_counts() {
        let (base, graph, trace) = fixture();
        let run_threads = |threads: usize| {
            let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
            config.scheduling = SchedulingConfig::full();
            config.exec_threads = threads;
            // Keep fault injection on: the counter-indexed ECC streams are
            // exactly what must not depend on the schedule.
            config.ecc.hard_decision_failure_prob = 0.05;
            let prepared = Prepared::stage(&config, &graph, &base, &trace);
            NdsEngine::new(&config).run(&prepared)
        };
        let sequential = run_threads(1);
        for threads in [2usize, 8] {
            assert_eq!(
                sequential,
                run_threads(threads),
                "report diverged at exec_threads = {threads}"
            );
        }
        assert!(sequential.stats.ecc_soft_fallbacks > 0);
    }

    #[test]
    fn sub_batch_splitting_kicks_in() {
        let (base, graph, trace) = fixture();
        let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
        config.max_batch_inflight = 10;
        config.ecc.hard_decision_failure_prob = 0.0;
        let prepared = Prepared::stage(&config, &graph, &base, &trace);
        let r = NdsEngine::new(&config).run(&prepared);
        assert_eq!(r.sub_batches, 4); // 32 queries / 10
    }

    #[test]
    fn online_refresh_fires_and_stays_consistent() {
        let (base, graph, trace) = fixture();
        let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
        config.ecc.hard_decision_failure_prob = 0.0;
        config.refresh_read_threshold = 200;
        let prepared = Prepared::stage(&config, &graph, &base, &trace);
        let with_refresh = NdsEngine::new(&config).run(&prepared);
        assert!(
            with_refresh.refreshes > 0,
            "the threshold should trigger refreshes"
        );
        config.refresh_read_threshold = 0;
        let without = NdsEngine::new(&config).run(&prepared);
        assert_eq!(without.refreshes, 0);
        assert!(
            with_refresh.total_ns > without.total_ns,
            "block moves must cost time"
        );
        // Deterministic under refresh too.
        config.refresh_read_threshold = 200;
        let again = NdsEngine::new(&config).run(&prepared);
        assert_eq!(with_refresh, again);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (base, graph, _) = fixture();
        let config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
        let prepared = Prepared::stage(&config, &graph, &base, &BatchTrace::default());
        let r = NdsEngine::new(&config).run(&prepared);
        assert_eq!(r.queries, 0);
        assert_eq!(r.total_ns, 0);
    }
}
