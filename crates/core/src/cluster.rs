//! Sharded multi-device serving: a scatter–gather cluster of SearSSDs,
//! with per-shard replication, failover and hedged routing.
//!
//! The paper evaluates one in-NAND accelerator; production DiskANN-family
//! deployments shard billion-point corpora across many SSDs and merge
//! per-shard top-k (Subramanya et al., NeurIPS'19; FreshDiskANN, Singh
//! et al., 2021). This module is that scale-out tier over the existing
//! single-device stack:
//!
//! * a [`ShardPlan`] (hash or
//!   balanced-size policy) splits the dataset into per-shard
//!   sub-datasets, each staged as one or more replica [`Deployment`]s —
//!   each replica its own index build, LUNCSR staging, FTL, ECC engine
//!   and wear model, i.e. its own simulated device;
//! * [`ClusterEngine`] **scatters** every query session to all shards
//!   (one [`ServeEngine`] session on one replica per shard, seeded at
//!   that shard's entry vertex) and drives all replica engines
//!   round-by-round on **one shared worker pool** ([`crate::exec`]);
//! * per-shard top-k lists come back in shard-local ids, are translated
//!   to global ids through the plan, and are **gathered** by a
//!   deterministic stable merge — ascending `(distance, global id)`,
//!   exactly the order [`Neighbor`]'s `Ord` defines — truncated to `k`;
//! * [`UpdateRequest`]s route to their *owning* shard (deletes via the
//!   plan's assignment, inserts via the policy's routing rule) and fan
//!   out to **every alive replica** of that shard, so replicas stay
//!   bit-identical copies and online insert/delete keeps working under
//!   sharding and replication;
//! * [`ClusterReport`] carries the merged per-query outcomes plus
//!   per-shard breakdowns ([`ShardBreakdown`]: per-replica device
//!   reports, availability, failover and hedge counters) and the
//!   cluster's load-imbalance factor.
//!
//! # Replication & failover
//!
//! [`ReplicationConfig`] stages `replicas` copies of every shard. Each
//! replica is a full independent device (same sub-dataset, same
//! deterministic index build, its own flash stack), so any replica can
//! answer any query for its shard. Queries route to one replica per
//! shard by [`ReplicaPolicy`]:
//!
//! * `RoundRobin` — cycle through alive replicas per shard;
//! * `LeastLoaded` — the alive replica with the fewest outstanding
//!   routed sessions at submission time (ties → lowest index);
//! * `Hedged { delay_ns }` — round-robin primary, plus a backup copy of
//!   the session fired on the *next* alive replica once the primary has
//!   been outstanding for `delay_ns` without finishing; the first
//!   completion wins the gather (the classic tail-at-scale hedge).
//!
//! A [`FailureSchedule`] degrades or kills replicas mid-run at simulated
//! timestamps: [`FailureKind::EccStorm`] ramps the device's
//! hard-decision LDPC failure probability (every read pays the
//! soft-decode penalty), [`FailureKind::WearOut`] bulk-ages every block
//! of the wear model and re-derives the failure probability from the
//! worn raw BER, and [`FailureKind::Kill`] drops the device: its
//! in-flight and queued sessions are **re-seeded on a surviving
//! replica** (counted in [`ShardBreakdown::failovers`]) and it receives
//! no further traffic. A shard whose replicas have all been killed
//! freezes its sessions (the cluster outcome stays non-terminal); events
//! scheduled after the last completion never fire.
//!
//! # Determinism and parity
//!
//! Replicas share **no** mutable state: each replica engine owns its
//! deployment, device model and simulated clock, and every per-replica
//! report is bit-identical at any
//! [`exec_threads`](crate::config::NdsConfig::exec_threads) (see
//! [`crate::serve`]). Failure events and hedges fire at round
//! boundaries, in schedule/submission order, from simulated clocks only
//! — never from host time. The gather step is a pure sort by
//! `(distance, global id)`. Hence the cluster report is bit-identical at
//! any thread count *and* invariant under the order shards are stepped
//! in ([`ClusterEngine::run_to_completion_ordered`]) — pinned by
//! `tests/exec_determinism.rs`, failure schedules included.
//!
//! Because replicas of a shard are identical deterministic devices, a
//! no-failure replicated cluster returns **element-identical** results
//! to the single-replica cluster under every policy (only timing
//! changes with load splitting) — pinned by `tests/cluster_parity.rs`.
//!
//! When every shard's search is exhaustive over its sub-corpus (beam
//! width at least the shard size on a connected shard graph), the merge
//! is *provably* lossless: `top_k(S) = top_k(∪ᵢ top_k(Sᵢ))` for any
//! partition `S = ∪ᵢ Sᵢ`, because each of the true top-k lives in
//! exactly one shard and survives that shard's exact top-k. The parity
//! proptest (`tests/cluster_parity.rs`) exercises exactly this regime —
//! sharded results element-identical to the unsharded engine across
//! shard counts and both policies, tombstones included. At production
//! beam widths per-shard search is approximate and the merged recall is
//! gated in `tests/end_to_end.rs` at the single-device thresholds.
//!
//! # Example
//!
//! ```
//! use ndsearch_core::cluster::{
//!     ClusterEngine, ClusterQueryRequest, FailureSchedule, ReplicaPolicy,
//!     ReplicationConfig,
//! };
//! use ndsearch_core::config::NdsConfig;
//! use ndsearch_core::serve::ServeConfig;
//! use ndsearch_anns::index::MutableIndex;
//! use ndsearch_anns::vamana::{Vamana, VamanaParams};
//! use ndsearch_vector::shard::{ShardPlan, ShardPolicy};
//! use ndsearch_vector::synthetic::DatasetSpec;
//!
//! let (base, queries) = DatasetSpec::sift_scaled(300, 4).build_pair();
//! let config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
//! let plan = ShardPlan::partition(base.len(), 2, ShardPolicy::BalancedSize, 7);
//! // Two replicas per shard; kill shard 0's first replica mid-run.
//! let replication = ReplicationConfig::replicated(2)
//!     .with_policy(ReplicaPolicy::RoundRobin)
//!     .with_failures(FailureSchedule::new().kill(2_000_000, 0, 0));
//! let mut cluster = ClusterEngine::stage_replicated(
//!     &config,
//!     ServeConfig::default(),
//!     plan,
//!     replication,
//!     &base,
//!     |shard| {
//!         let index = Vamana::build(shard, VamanaParams::default());
//!         let entry = index.medoid();
//!         (Box::new(index) as Box<dyn MutableIndex>, entry)
//!     },
//! );
//! for (_, q) in queries.iter() {
//!     cluster.submit(ClusterQueryRequest::at(0, q.to_vec()));
//! }
//! let report = cluster.run_to_completion();
//! assert_eq!(report.completed(), 4);
//! assert!(report.availability() > 0.0 && report.availability() <= 1.0);
//! ```

use ndsearch_anns::index::MutableIndex;
use ndsearch_flash::timing::Nanos;
use ndsearch_vector::dataset::Dataset;
use ndsearch_vector::shard::ShardPlan;
use ndsearch_vector::topk::Neighbor;
use ndsearch_vector::VectorId;

use crate::config::NdsConfig;
use crate::deploy::{Deployment, UpdateTotals};
use crate::report::LatencySummary;
use crate::serve::{
    run_serve_job, QueryId, QueryOutcome, QueryRequest, RoundPrep, ServeConfig, ServeEngine,
    ServeJob, ServeOut, ServeReport, SessionState, UpdateId, UpdateOp, UpdateOutcome,
    UpdateRequest, HOP_PARALLEL_MIN,
};

/// Identifier of a cluster query session (dense, submission order).
pub type ClusterQueryId = usize;

/// Identifier of a cluster update session (dense, submission order; a
/// separate space from [`ClusterQueryId`]).
pub type ClusterUpdateId = usize;

/// How queries pick a replica within their shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaPolicy {
    /// Cycle through alive replicas in index order, one per scattered
    /// session.
    RoundRobin,
    /// The alive replica with the fewest outstanding (non-terminal)
    /// routed sessions at submission time; ties break to the lowest
    /// index. With submit-then-run usage this balances outstanding
    /// counts; it diverges from round-robin once failovers or
    /// interleaved submission skew the queues.
    LeastLoaded,
    /// Round-robin primary plus a *hedge*: if the primary session is
    /// still unfinished `delay_ns` after its arrival, an identical
    /// backup session fires on the next alive replica and the first
    /// completion wins the gather. Bounds tail latency when one replica
    /// degrades (e.g. an ECC storm) at the cost of duplicated work.
    Hedged {
        /// How long the primary may run before the backup fires.
        delay_ns: Nanos,
    },
}

/// What a [`FailureEvent`] does to its target replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailureKind {
    /// The device drops out entirely: it stops stepping, receives no
    /// further traffic, and its unfinished sessions are re-seeded on a
    /// surviving replica of the same shard (a *failover*).
    Kill,
    /// The device's hard-decision LDPC failure probability jumps to
    /// `failure_prob` (see
    /// [`EccEngine::set_hard_decision_failure_prob`](ndsearch_flash::ecc::EccEngine::set_hard_decision_failure_prob)):
    /// reads start paying the soft-decode penalty and the replica turns
    /// into a straggler without going down.
    EccStorm {
        /// New hard-decision failure probability, clamped to `[0, 1]`.
        failure_prob: f64,
    },
    /// Every block of the device ages by `cycles` P/E cycles at once
    /// ([`WearModel::age_uniform`](ndsearch_flash::wear::WearModel::age_uniform));
    /// the hard-decision failure probability is re-derived from the
    /// worn mean raw BER, so an end-of-life device degrades like a
    /// physically aged one rather than by a hand-picked constant.
    WearOut {
        /// P/E cycles added to every block.
        cycles: u32,
    },
}

/// One scheduled degradation: at simulated time `at_ns`, `kind` happens
/// to replica `replica` of shard `shard`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureEvent {
    /// Simulated timestamp the event fires at (checked against the
    /// target replica's clock at round boundaries).
    pub at_ns: Nanos,
    /// Target shard index.
    pub shard: usize,
    /// Target replica index within the shard.
    pub replica: usize,
    /// What happens.
    pub kind: FailureKind,
}

/// A deterministic script of mid-run failures (builder-style).
///
/// Events fire at round boundaries once the target replica's simulated
/// clock reaches `at_ns`, in schedule order — host time never enters,
/// so a run with a failure schedule is exactly as reproducible as one
/// without. Events targeting an already-dead replica, an empty shard,
/// or a time past the last completion never fire.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureSchedule {
    events: Vec<FailureEvent>,
}

impl FailureSchedule {
    /// An empty schedule (no failures).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an arbitrary event.
    #[must_use]
    pub fn push(mut self, event: FailureEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Adds a [`FailureKind::Kill`] of `shard`/`replica` at `at_ns`.
    #[must_use]
    pub fn kill(self, at_ns: Nanos, shard: usize, replica: usize) -> Self {
        self.push(FailureEvent {
            at_ns,
            shard,
            replica,
            kind: FailureKind::Kill,
        })
    }

    /// Adds a [`FailureKind::EccStorm`] on `shard`/`replica` at `at_ns`.
    #[must_use]
    pub fn ecc_storm(self, at_ns: Nanos, shard: usize, replica: usize, failure_prob: f64) -> Self {
        self.push(FailureEvent {
            at_ns,
            shard,
            replica,
            kind: FailureKind::EccStorm { failure_prob },
        })
    }

    /// Adds a [`FailureKind::WearOut`] of `shard`/`replica` at `at_ns`.
    #[must_use]
    pub fn wear_out(self, at_ns: Nanos, shard: usize, replica: usize, cycles: u32) -> Self {
        self.push(FailureEvent {
            at_ns,
            shard,
            replica,
            kind: FailureKind::WearOut { cycles },
        })
    }

    /// The scheduled events, in schedule (= firing) order.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Replication knobs for [`ClusterEngine::stage_replicated`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationConfig {
    /// Replicas per shard (≥ 1; 1 reproduces the unreplicated cluster).
    pub replicas: usize,
    /// How queries pick a replica.
    pub policy: ReplicaPolicy,
    /// Scripted mid-run degradations.
    pub failures: FailureSchedule,
}

impl Default for ReplicationConfig {
    /// One replica per shard, round-robin (degenerate: the single
    /// replica), no failures — the pre-replication cluster.
    fn default() -> Self {
        Self {
            replicas: 1,
            policy: ReplicaPolicy::RoundRobin,
            failures: FailureSchedule::new(),
        }
    }
}

impl ReplicationConfig {
    /// `replicas` copies of every shard, round-robin, no failures.
    pub fn replicated(replicas: usize) -> Self {
        Self {
            replicas,
            ..Self::default()
        }
    }

    /// Replaces the routing policy.
    #[must_use]
    pub fn with_policy(mut self, policy: ReplicaPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the failure schedule.
    #[must_use]
    pub fn with_failures(mut self, failures: FailureSchedule) -> Self {
        self.failures = failures;
        self
    }
}

/// One query submitted to the cluster. Unlike the single-device
/// [`QueryRequest`] it carries no entry vertices: the scatter seeds each
/// shard's session at that shard's own entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterQueryRequest {
    /// The query feature vector.
    pub query: Vec<f32>,
    /// Simulated arrival time.
    pub arrival_ns: Nanos,
    /// Optional absolute deadline, applied on every shard (and on every
    /// hedge/failover copy of the session).
    pub deadline_ns: Option<Nanos>,
    /// Tenant the query belongs to (0 = the default tenant); carried to
    /// every per-shard session, so [`crate::serve::SloPolicy::TenantFair`]
    /// and the per-tenant roll-ups apply cluster-wide.
    pub tenant: u32,
    /// Per-query top-k override for the gather; `None` uses the cluster's
    /// [`ServeConfig::k`]. Each shard still returns its own full top-k;
    /// the override bounds the merged list.
    pub k: Option<usize>,
}

impl ClusterQueryRequest {
    /// A request arriving at `arrival_ns` with no deadline, tenant 0 and
    /// the cluster's default top-k.
    pub fn at(arrival_ns: Nanos, query: Vec<f32>) -> Self {
        Self {
            query,
            arrival_ns,
            deadline_ns: None,
            tenant: 0,
            k: None,
        }
    }

    /// Set the tenant id.
    pub fn tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// Set the absolute deadline.
    pub fn deadline(mut self, deadline_ns: Nanos) -> Self {
        self.deadline_ns = Some(deadline_ns);
        self
    }

    /// Set the per-query top-k.
    pub fn top_k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }
}

/// Final record of one cluster query: the gather of its per-shard
/// sessions (per shard, the winning copy — see
/// [`ReplicaPolicy::Hedged`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterQueryOutcome {
    /// Cluster query id (submission order).
    pub id: ClusterQueryId,
    /// Merged terminal state: `Completed` only if every shard session
    /// completed; `Rejected` if any shard rejected the session;
    /// otherwise `Expired` if any shard cut it off at the deadline.
    pub state: SessionState,
    /// The submitted arrival time.
    pub arrival_ns: Nanos,
    /// Latest winning per-shard completion — the gather cannot merge
    /// before the slowest shard has answered.
    pub completed_ns: Nanos,
    /// Beam-search hops executed across all shards, **including** work
    /// spent on hedges and on sessions abandoned by a failover.
    pub hops: usize,
    /// Merged top-k in **global** ids, ascending `(distance, id)`.
    pub results: Vec<Neighbor>,
    /// Tenant the query belonged to.
    pub tenant: u32,
    /// The deadline it carried, if any.
    pub deadline_ns: Option<Nanos>,
    /// Whether any winning shard session was terminated by a
    /// [`crate::serve::SloPolicy::ShedDoomed`] decision.
    pub shed: bool,
}

impl ClusterQueryOutcome {
    /// End-to-end latency the client observed (arrival → merged top-k).
    pub fn latency_ns(&self) -> Nanos {
        self.completed_ns.saturating_sub(self.arrival_ns)
    }
}

/// One replica's slice of a [`ShardBreakdown`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaBreakdown {
    /// Replica index within the shard.
    pub replica: usize,
    /// Whether the device was still up at the end of the run.
    pub alive: bool,
    /// When the device was killed (`None` if it survived).
    pub killed_ns: Option<Nanos>,
    /// Beam-search hops this device executed.
    pub hops: usize,
    /// The replica engine's full device report. Its `wall_s` is zeroed:
    /// all replicas share one worker pool, so per-device host wall-clock
    /// is meaningless — the cluster-level measurement lives in
    /// [`ClusterReport::wall_s`].
    pub report: ServeReport,
}

/// Per-shard slice of a [`ClusterReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardBreakdown {
    /// Shard index in the plan.
    pub shard: usize,
    /// Vectors the shard currently owns.
    pub vertices: usize,
    /// Beam-search hops the shard executed, summed over replicas.
    pub hops: usize,
    /// Sessions re-seeded on a survivor after a replica was killed.
    pub failovers: usize,
    /// Hedge (backup) sessions fired on this shard.
    pub hedges: usize,
    /// Hedges that beat their primary to completion.
    pub hedge_wins: usize,
    /// Fraction of the run's span (first arrival → last completion) the
    /// shard's replicas were up, averaged over replicas: 1.0 with no
    /// kills, in `(0, 1]` otherwise (a replica killed at time `t`
    /// contributes `t / span`).
    pub availability: f64,
    /// Per-replica device reports.
    pub replicas: Vec<ReplicaBreakdown>,
}

/// Result of serving a stream of sessions on the cluster.
///
/// Equality inherits [`ServeReport`]'s convention: host wall-clock
/// fields are excluded, everything else — merged outcomes, update
/// outcomes, every per-shard and per-replica breakdown — must match
/// bit-for-bit for two reports to compare equal.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// One record per submitted cluster query, in submission order.
    pub outcomes: Vec<ClusterQueryOutcome>,
    /// One record per submitted cluster update, in submission order
    /// (`assigned` ids are global).
    pub update_outcomes: Vec<UpdateOutcome>,
    /// Per-shard breakdowns, one per staged shard.
    pub shards: Vec<ShardBreakdown>,
    /// Earliest arrival → latest completion across the whole cluster.
    pub makespan_ns: Nanos,
    /// Host wall-clock seconds spent inside scheduling rounds, measured
    /// **once across the whole cluster**: every replica engine steps on
    /// one shared worker pool, so per-shard wall-clock attribution would
    /// be fiction (the per-replica `wall_s` fields are zeroed). Excluded
    /// from equality.
    pub wall_s: f64,
}

impl PartialEq for ClusterReport {
    fn eq(&self, other: &Self) -> bool {
        // `wall_s` is deliberately excluded (host timing, not simulation
        // output).
        self.outcomes == other.outcomes
            && self.update_outcomes == other.update_outcomes
            && self.shards == other.shards
            && self.makespan_ns == other.makespan_ns
    }
}

impl ClusterReport {
    /// Cluster queries that completed on every shard.
    pub fn completed(&self) -> usize {
        self.count(SessionState::Completed)
    }

    /// Cluster queries rejected by at least one shard's backpressure.
    pub fn rejected(&self) -> usize {
        self.count(SessionState::Rejected)
    }

    /// Cluster queries cut off at their deadline on at least one shard.
    pub fn expired(&self) -> usize {
        self.count(SessionState::Expired)
    }

    fn count(&self, s: SessionState) -> usize {
        self.outcomes.iter().filter(|o| o.state == s).count()
    }

    /// Goodput: fully completed queries per second of cluster makespan.
    pub fn qps(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.completed() as f64 / (self.makespan_ns as f64 / 1e9)
        }
    }

    /// Wall-clock simulation throughput: simulated nanoseconds advanced
    /// per host second spent simulating (0 when nothing was measured).
    pub fn sim_ns_per_wall_s(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.makespan_ns as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Sessions re-seeded on a survivor after a kill, cluster-wide.
    pub fn failovers(&self) -> usize {
        self.shards.iter().map(|s| s.failovers).sum()
    }

    /// Hedge (backup) sessions fired, cluster-wide.
    pub fn hedges(&self) -> usize {
        self.shards.iter().map(|s| s.hedges).sum()
    }

    /// Hedges that beat their primary to completion, cluster-wide.
    pub fn hedge_wins(&self) -> usize {
        self.shards.iter().map(|s| s.hedge_wins).sum()
    }

    /// Fraction of fired hedges that won their race (0 if none fired).
    pub fn hedge_win_rate(&self) -> f64 {
        let fired = self.hedges();
        if fired == 0 {
            0.0
        } else {
            self.hedge_wins() as f64 / fired as f64
        }
    }

    /// Mean shard availability (1.0 with no kills; see
    /// [`ShardBreakdown::availability`]).
    pub fn availability(&self) -> f64 {
        if self.shards.is_empty() {
            return 1.0;
        }
        self.shards.iter().map(|s| s.availability).sum::<f64>() / self.shards.len() as f64
    }

    /// Updates applied to completion.
    pub fn updates_completed(&self) -> usize {
        self.update_outcomes
            .iter()
            .filter(|o| o.state == SessionState::Completed)
            .count()
    }

    /// Updates rejected (routing, backpressure or shard-level rejection).
    pub fn updates_rejected(&self) -> usize {
        self.update_outcomes
            .iter()
            .filter(|o| o.state == SessionState::Rejected)
            .count()
    }

    /// Latency order statistics over fully completed cluster queries,
    /// plus the wall-clock simulation-throughput fields.
    pub fn latency(&self) -> LatencySummary {
        let samples: Vec<Nanos> = self
            .outcomes
            .iter()
            .filter(|o| o.state == SessionState::Completed)
            .map(|o| o.latency_ns())
            .collect();
        let mut summary = LatencySummary::from_samples(&samples);
        summary.wall_s = self.wall_s;
        summary.sim_ns_per_wall_s = self.sim_ns_per_wall_s();
        summary
    }

    /// Cluster queries whose winning session on some shard was shed by a
    /// [`crate::serve::SloPolicy::ShedDoomed`] decision.
    pub fn sheds(&self) -> usize {
        self.outcomes.iter().filter(|o| o.shed).count()
    }

    /// SLO attainment: the fraction of deadline-carrying cluster queries
    /// that completed on time on every shard; `1.0` when none carried a
    /// deadline.
    pub fn slo_attainment(&self) -> f64 {
        crate::serve::slo_attainment_of(self.outcomes.iter().map(|o| (o.deadline_ns, o.state)))
    }

    /// Per-tenant roll-ups over the merged cluster outcomes, ascending by
    /// tenant id.
    pub fn tenant_summaries(&self) -> Vec<crate::report::TenantSummary> {
        crate::report::summarize_tenants(&crate::serve::tenant_samples(
            self.outcomes
                .iter()
                .map(|o| (o.tenant, o.state, o.shed, o.deadline_ns, o.latency_ns())),
        ))
    }

    /// Fairness metric: max over mean of the per-tenant p99 latencies
    /// (see [`crate::report::tenant_p99_fairness`]).
    pub fn tenant_p99_fairness(&self) -> f64 {
        crate::report::tenant_p99_fairness(&self.tenant_summaries())
    }

    /// Write-path totals summed across **every replica device** of every
    /// shard — fleet-level flash wear, not logical update volume:
    /// updates fan out to all replicas, so R replicas program ~R× the
    /// pages of the unreplicated cluster for the same update stream.
    pub fn update_totals(&self) -> UpdateTotals {
        let mut total = UpdateTotals::default();
        for s in &self.shards {
            for r in &s.replicas {
                total.merge(&r.report.updates);
            }
        }
        total
    }

    /// Load-imbalance factor: the busiest shard's beam-search hop count
    /// over the mean (1.0 = perfectly balanced). Falls back to vertex
    /// counts when no search work ran; 0 without shards.
    pub fn load_imbalance(&self) -> f64 {
        let over = |f: fn(&ShardBreakdown) -> usize| -> f64 {
            let max = self.shards.iter().map(f).max().unwrap_or(0) as f64;
            let sum: usize = self.shards.iter().map(f).sum();
            let mean = sum as f64 / self.shards.len().max(1) as f64;
            if mean > 0.0 {
                max / mean
            } else {
                0.0
            }
        };
        if self.shards.is_empty() {
            return 0.0;
        }
        let by_hops = over(|s| s.hops);
        if by_hops > 0.0 {
            by_hops
        } else {
            over(|s| s.vertices)
        }
    }
}

/// One replica device of a shard: a full single-device serving stack
/// plus its local entry vertex and liveness.
struct Replica<'a> {
    engine: ServeEngine<'a>,
    entry: VectorId,
    alive: bool,
    killed_ns: Option<Nanos>,
    /// Every query session ever routed here (primaries, hedges and
    /// failover re-seeds) — the load signal for `LeastLoaded`.
    routed: Vec<QueryId>,
}

/// One staged shard: its replica set plus routing state.
struct Shard<'a> {
    replicas: Vec<Replica<'a>>,
    /// Round-robin position (advances per routed primary).
    cursor: usize,
    failovers: usize,
    hedges: usize,
}

impl Shard<'_> {
    fn has_alive(&self) -> bool {
        self.replicas.iter().any(|r| r.alive)
    }

    /// The next alive replica cyclically after `r` (excluding `r`).
    fn next_alive_after(&self, r: usize) -> Option<usize> {
        let n = self.replicas.len();
        (1..n)
            .map(|i| (r + i) % n)
            .find(|&i| self.replicas[i].alive)
    }

    /// Picks the replica a new primary session routes to, or `None` when
    /// every replica is dead.
    fn route_query(&mut self, policy: ReplicaPolicy) -> Option<usize> {
        let alive: Vec<usize> = (0..self.replicas.len())
            .filter(|&r| self.replicas[r].alive)
            .collect();
        if alive.is_empty() {
            return None;
        }
        match policy {
            ReplicaPolicy::RoundRobin | ReplicaPolicy::Hedged { .. } => {
                let pick = alive[self.cursor % alive.len()];
                self.cursor += 1;
                Some(pick)
            }
            ReplicaPolicy::LeastLoaded => alive.into_iter().min_by_key(|&r| {
                let rep = &self.replicas[r];
                let outstanding = rep
                    .routed
                    .iter()
                    .filter(|&&q| !is_terminal(rep.engine.poll(q)))
                    .count();
                (outstanding, r)
            }),
        }
    }
}

/// Where a cluster update went.
enum Route {
    /// Forwarded to `shard`, fanned out to every replica alive at
    /// submission (`locals` pairs replica index with that replica's
    /// update session id; `delete` carries the global id for translation
    /// back).
    Shard {
        shard: usize,
        locals: Vec<(usize, UpdateId)>,
        delete: Option<VectorId>,
    },
    /// Rejected at the cluster router (unroutable id or shard).
    Cluster { arrival_ns: Nanos },
}

/// One copy of a scattered session on one replica.
#[derive(Debug, Clone, Copy)]
struct ShardSession {
    replica: usize,
    query: QueryId,
}

/// A scattered query's state on one shard: the primary copy, an
/// optional hedge, and any copies abandoned by failovers.
struct ScatterShard {
    primary: ShardSession,
    hedge: Option<ShardSession>,
    /// A hedge was already fired (or deliberately skipped); never fire
    /// another — unless the hedge itself died, which re-arms this.
    hedge_spent: bool,
    /// Copies left frozen on killed replicas (their partial hop work
    /// still counts toward the outcome).
    abandoned: Vec<ShardSession>,
}

/// One scattered query: the request (kept for re-seeding) plus the
/// per-shard session state.
struct Scatter {
    query: Vec<f32>,
    arrival_ns: Nanos,
    deadline_ns: Option<Nanos>,
    tenant: u32,
    /// Per-query top-k override for the gather.
    k: Option<usize>,
    sessions: Vec<Option<ScatterShard>>,
}

/// The scatter–gather cluster engine (see the [module docs](self)).
pub struct ClusterEngine<'a> {
    config: &'a NdsConfig,
    serve: ServeConfig,
    plan: ShardPlan,
    replication: ReplicationConfig,
    /// `None` for shards the plan left empty (possible under the hash
    /// policy on tiny datasets); they serve no traffic.
    shards: Vec<Option<Shard<'a>>>,
    queries: Vec<Scatter>,
    routes: Vec<Route>,
    /// Inserts routed to each shard but not yet resolved into the plan.
    inflight_inserts: Vec<usize>,
    /// Cluster update outcomes resolved so far (prefix of `routes`).
    resolved: Vec<UpdateOutcome>,
    /// Which failure-schedule events already fired.
    fired: Vec<bool>,
    /// Host wall-clock spent inside `run_to_completion*`.
    wall: std::time::Duration,
}

impl<'a> ClusterEngine<'a> {
    /// Stages an unreplicated cluster (one replica per shard, no
    /// failures) — see [`stage_replicated`](Self::stage_replicated).
    pub fn stage(
        config: &'a NdsConfig,
        serve: ServeConfig,
        plan: ShardPlan,
        dataset: &Dataset,
        build: impl Fn(&Dataset) -> (Box<dyn MutableIndex>, VectorId),
    ) -> Self {
        Self::stage_replicated(
            config,
            serve,
            plan,
            ReplicationConfig::default(),
            dataset,
            build,
        )
    }

    /// Stages a replicated cluster: splits `dataset` per the plan and,
    /// for every non-empty shard, builds `replication.replicas` replica
    /// devices — each its own index build and [`Deployment`] (own flash
    /// stack) via `build`, which returns the shard's index and its entry
    /// vertex in shard-local ids (e.g. the Vamana medoid or HNSW entry
    /// point). `build` is deterministic per sub-dataset, so replicas of
    /// a shard start as bit-identical copies.
    ///
    /// Every replica serves with the same `config` (homogeneous devices)
    /// and the same `serve` admission/search knobs.
    ///
    /// # Panics
    /// Panics if the plan's base length differs from the dataset length,
    /// the dataset is empty, `replication.replicas` is 0, or the failure
    /// schedule references a shard/replica outside the staged ranges (or
    /// an [`FailureKind::EccStorm`] probability outside `[0, 1]`).
    pub fn stage_replicated(
        config: &'a NdsConfig,
        serve: ServeConfig,
        plan: ShardPlan,
        replication: ReplicationConfig,
        dataset: &Dataset,
        build: impl Fn(&Dataset) -> (Box<dyn MutableIndex>, VectorId),
    ) -> Self {
        assert!(!dataset.is_empty(), "cluster needs at least one vector");
        assert!(
            replication.replicas >= 1,
            "every shard needs at least one replica"
        );
        let num_shards = plan.num_shards();
        for ev in replication.failures.events() {
            assert!(
                ev.shard < num_shards,
                "failure event targets shard {} of {num_shards}",
                ev.shard
            );
            assert!(
                ev.replica < replication.replicas,
                "failure event targets replica {} of {}",
                ev.replica,
                replication.replicas
            );
            if let FailureKind::EccStorm { failure_prob } = ev.kind {
                assert!(
                    (0.0..=1.0).contains(&failure_prob),
                    "ECC storm probability {failure_prob} outside [0, 1]"
                );
            }
        }
        let shards = plan
            .extract(dataset)
            .into_iter()
            .map(|shard_ds| {
                if shard_ds.is_empty() {
                    return None;
                }
                let replicas = (0..replication.replicas)
                    .map(|_| {
                        let (index, entry) = build(&shard_ds);
                        let deploy = Deployment::stage(config, index, shard_ds.clone());
                        Replica {
                            engine: ServeEngine::with_deployment(config, serve.clone(), deploy),
                            entry,
                            alive: true,
                            killed_ns: None,
                            routed: Vec::new(),
                        }
                    })
                    .collect();
                Some(Shard {
                    replicas,
                    cursor: 0,
                    failovers: 0,
                    hedges: 0,
                })
            })
            .collect();
        let fired = vec![false; replication.failures.events().len()];
        Self {
            config,
            serve,
            plan,
            replication,
            shards,
            queries: Vec::new(),
            routes: Vec::new(),
            inflight_inserts: vec![0; num_shards],
            resolved: Vec::new(),
            fired,
            wall: std::time::Duration::ZERO,
        }
    }

    /// The id plan (ground truth of global ↔ shard-local mapping,
    /// including resolved online inserts).
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards in the plan (staged or empty).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Replicas staged per shard.
    pub fn num_replicas(&self) -> usize {
        self.replication.replicas
    }

    /// A staged shard's serving engine — the lowest-index alive replica
    /// (or replica 0 if the whole shard is down); `None` for empty
    /// shards. With the default single-replica staging this is *the*
    /// shard engine.
    pub fn shard_engine(&self, shard: usize) -> Option<&ServeEngine<'a>> {
        self.shards[shard].as_ref().map(|s| {
            let r = s.replicas.iter().position(|r| r.alive).unwrap_or(0);
            &s.replicas[r].engine
        })
    }

    /// A specific replica's serving engine; `None` for empty shards or
    /// out-of-range replica indices.
    pub fn replica_engine(&self, shard: usize, replica: usize) -> Option<&ServeEngine<'a>> {
        self.shards[shard]
            .as_ref()
            .and_then(|s| s.replicas.get(replica))
            .map(|r| &r.engine)
    }

    /// Scatters one query session to every staged shard — on the replica
    /// the policy picks — and returns the cluster id. Shards whose
    /// replicas are all dead are skipped (the cluster outcome then never
    /// completes, mirroring a real partial outage).
    pub fn submit(&mut self, req: ClusterQueryRequest) -> ClusterQueryId {
        let id = self.queries.len();
        let policy = self.replication.policy;
        let sessions = self
            .shards
            .iter_mut()
            .map(|slot| {
                let shard = slot.as_mut()?;
                let replica = shard.route_query(policy)?;
                let rep = &mut shard.replicas[replica];
                let query = rep.engine.submit(QueryRequest {
                    query: req.query.clone(),
                    entries: vec![rep.entry],
                    arrival_ns: req.arrival_ns,
                    deadline_ns: req.deadline_ns,
                    tenant: req.tenant,
                    k: req.k,
                });
                rep.routed.push(query);
                Some(ScatterShard {
                    primary: ShardSession { replica, query },
                    hedge: None,
                    hedge_spent: false,
                    abandoned: Vec::new(),
                })
            })
            .collect();
        self.queries.push(Scatter {
            query: req.query,
            arrival_ns: req.arrival_ns,
            deadline_ns: req.deadline_ns,
            tenant: req.tenant,
            k: req.k,
            sessions,
        });
        id
    }

    /// Routes one update to its owning shard — fanned out to every alive
    /// replica so copies stay identical — and returns the cluster id.
    /// Deletes carry **global** ids and must reference a vector the plan
    /// already maps (run the cluster to completion to resolve pending
    /// inserts first); inserts are placed by the plan's policy. Updates
    /// that cannot be routed — an out-of-range delete, or a route to an
    /// empty or fully-dead shard — are rejected at the cluster router.
    pub fn submit_update(&mut self, req: UpdateRequest) -> ClusterUpdateId {
        let id = self.routes.len();
        let route = match &req.op {
            UpdateOp::Delete(g) => {
                if (*g as usize) < self.plan.len() {
                    let shard = self.plan.shard_of(*g);
                    let local = self.plan.local_of(*g);
                    Some((shard, UpdateOp::Delete(local), Some(*g)))
                } else {
                    None
                }
            }
            UpdateOp::Insert(v) => {
                // Route only among shards that can still accept writes: a
                // plan can leave a shard empty (no engine) and a failure
                // schedule can kill a whole replica set; the policy must
                // skip both rather than reject inserts forever.
                let live: Vec<bool> = self
                    .shards
                    .iter()
                    .map(|s| s.as_ref().is_some_and(Shard::has_alive))
                    .collect();
                self.plan
                    .route_insert(&self.inflight_inserts, &live)
                    .map(|shard| (shard, UpdateOp::Insert(v.clone()), None))
            }
        };
        let route = match route {
            Some((shard, op, delete))
                if self.shards[shard].as_ref().is_some_and(Shard::has_alive) =>
            {
                if delete.is_none() {
                    self.inflight_inserts[shard] += 1;
                }
                let replicas = &mut self.shards[shard].as_mut().expect("checked").replicas;
                let locals = replicas
                    .iter_mut()
                    .enumerate()
                    .filter(|(_, r)| r.alive)
                    .map(|(ri, r)| {
                        let local = r.engine.submit_update(UpdateRequest {
                            op: op.clone(),
                            arrival_ns: req.arrival_ns,
                        });
                        (ri, local)
                    })
                    .collect();
                Route::Shard {
                    shard,
                    locals,
                    delete,
                }
            }
            _ => Route::Cluster {
                arrival_ns: req.arrival_ns,
            },
        };
        self.routes.push(route);
        id
    }

    /// Merged state of a cluster query: `Completed` only once every
    /// shard delivered an answer (on any replica — a completed hedge
    /// counts for its shard).
    pub fn poll(&self, id: ClusterQueryId) -> SessionState {
        let states: Vec<SessionState> = self.queries[id]
            .sessions
            .iter()
            .enumerate()
            .filter_map(|(s, session)| {
                session.as_ref().map(|sc| {
                    let shard = self.shards[s].as_ref().expect("session on staged shard");
                    let primary = shard.replicas[sc.primary.replica]
                        .engine
                        .poll(sc.primary.query);
                    let hedge = sc
                        .hedge
                        .map(|h| shard.replicas[h.replica].engine.poll(h.query));
                    if primary == SessionState::Completed || hedge == Some(SessionState::Completed)
                    {
                        SessionState::Completed
                    } else {
                        primary
                    }
                })
            })
            .collect();
        merge_states(&states)
    }

    /// State of a cluster update: `Completed` once applied on every
    /// replica that is still alive (cluster-rejected updates report
    /// `Rejected` immediately).
    pub fn poll_update(&self, id: ClusterUpdateId) -> SessionState {
        match &self.routes[id] {
            Route::Cluster { .. } => SessionState::Rejected,
            Route::Shard { shard, locals, .. } => {
                let shard = self.shards[*shard]
                    .as_ref()
                    .expect("routed to staged shard");
                let alive: Vec<SessionState> = locals
                    .iter()
                    .filter(|(ri, _)| shard.replicas[*ri].alive)
                    .map(|(ri, l)| shard.replicas[*ri].engine.poll_update(*l))
                    .collect();
                if alive.is_empty() {
                    // Every replica that received it died: surface the
                    // most advanced state any copy reached.
                    let any = locals
                        .iter()
                        .map(|(ri, l)| shard.replicas[*ri].engine.poll_update(*l))
                        .find(is_terminal_ref);
                    return any.unwrap_or(SessionState::Rejected);
                }
                merge_states(&alive)
            }
        }
    }

    /// Drives every shard to completion, stepping shards in index order
    /// each round on one shared worker pool, and returns the gathered
    /// report.
    pub fn run_to_completion(&mut self) -> ClusterReport {
        let order: Vec<usize> = (0..self.shards.len()).collect();
        self.run_to_completion_ordered(&order)
    }

    /// [`run_to_completion`](Self::run_to_completion) stepping shards in
    /// the given order each round. Shards share no state, and failure
    /// events and hedges fire at round boundaries in fixed
    /// schedule/submission order, so the report is **invariant** under
    /// the order (pinned by `tests/exec_determinism.rs`); the knob
    /// exists to prove exactly that.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..num_shards()`.
    pub fn run_to_completion_ordered(&mut self, order: &[usize]) -> ClusterReport {
        let mut seen = vec![false; self.shards.len()];
        for &s in order {
            assert!(s < seen.len() && !seen[s], "order must be a permutation");
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "order must cover every shard");

        let wall_start = std::time::Instant::now();
        let config = self.config;
        crate::exec::with_pool(
            config.exec_threads,
            move |job: ServeJob| run_serve_job(job, config),
            |pool| loop {
                // Failure events fire at the round boundary, before the
                // round they degrade (an event at t=0 hits a device that
                // has served nothing).
                let mut more = self.fire_due_failures();

                // Phase 1: begin every alive replica's round in step
                // order, concatenating the per-engine hop batches.
                let mut pending: Vec<(usize, usize, RoundPrep)> = Vec::new();
                let mut all_jobs: Vec<ServeJob> = Vec::new();
                let mut counts: Vec<usize> = Vec::new();
                for &s in order {
                    if let Some(shard) = self.shards[s].as_mut() {
                        for (ri, rep) in shard.replicas.iter_mut().enumerate() {
                            if !rep.alive {
                                continue;
                            }
                            if let Some(mut prep) = rep.engine.begin_round() {
                                let jobs = std::mem::take(&mut prep.jobs);
                                counts.push(jobs.len());
                                all_jobs.extend(jobs);
                                pending.push((s, ri, prep));
                            }
                        }
                    }
                }

                // Phase 2: every replica's hop stage as ONE pool round.
                // Hop jobs are pure functions of the round-boundary
                // snapshots they carry and come back in job order, so
                // merging batches across engines changes where the work
                // runs, never what any engine observes.
                let mut outs = pool.run_with_min(all_jobs, HOP_PARALLEL_MIN).into_iter();

                // Phase 3: finish each round in the same order, handing
                // every engine its slice of the merged outputs (LUN
                // stages stay per-engine: their jobs derive from these
                // hop outputs, so they cannot legally merge with them).
                for ((s, ri, prep), count) in pending.into_iter().zip(counts) {
                    let engine_outs: Vec<ServeOut> = outs.by_ref().take(count).collect();
                    let shard = self.shards[s].as_mut().expect("round began on this shard");
                    more |=
                        shard.replicas[ri]
                            .engine
                            .finish_round(prep, engine_outs, Some(&mut *pool));
                }

                more |= self.fire_hedges();
                if !more {
                    break;
                }
            },
        );
        self.wall += wall_start.elapsed();
        self.report()
    }

    /// Compacts every **alive** replica of every staged shard in place
    /// (dead devices are skipped; surviving twins stay identical because
    /// compaction is deterministic), charging each device's rewrite to
    /// its simulated clock. Returns the per-device reports in
    /// `(shard, replica)` order; empty for query-only deployments.
    ///
    /// Call between traffic phases (after a
    /// [`run_to_completion`](Self::run_to_completion) drain) — the
    /// production-day maintenance window.
    pub fn compact_all(&mut self) -> Vec<crate::deploy::CompactionReport> {
        let mut reports = Vec::new();
        for shard in self.shards.iter_mut().flatten() {
            for rep in shard.replicas.iter_mut().filter(|r| r.alive) {
                if let Some(report) = rep.engine.compact() {
                    reports.push(report);
                }
            }
        }
        reports
    }

    /// Fires every not-yet-fired failure event whose target replica's
    /// simulated clock has reached the event time. Returns whether new
    /// work was created (failover re-seeds).
    fn fire_due_failures(&mut self) -> bool {
        let mut new_work = false;
        for ei in 0..self.fired.len() {
            if self.fired[ei] {
                continue;
            }
            let ev = self.replication.failures.events()[ei];
            let due = match self.shards[ev.shard].as_ref() {
                // Empty shard: nothing to degrade, retire the event.
                None => {
                    self.fired[ei] = true;
                    continue;
                }
                Some(shard) => {
                    let rep = &shard.replicas[ev.replica];
                    if !rep.alive {
                        // Already dead: the event can never bite.
                        self.fired[ei] = true;
                        continue;
                    }
                    rep.engine.now_ns() >= ev.at_ns
                }
            };
            if !due {
                continue;
            }
            self.fired[ei] = true;
            new_work |= self.apply_failure(ev);
        }
        new_work
    }

    fn apply_failure(&mut self, ev: FailureEvent) -> bool {
        match ev.kind {
            FailureKind::Kill => return self.kill_replica(ev.shard, ev.replica, ev.at_ns),
            FailureKind::EccStorm { failure_prob } => {
                let rep = self.replica_mut(ev.shard, ev.replica);
                rep.engine.inject_ecc_failure_prob(failure_prob);
            }
            FailureKind::WearOut { cycles } => {
                let rep = self.replica_mut(ev.shard, ev.replica);
                rep.engine.age_wear(cycles);
                // Couple the aged cells back into the ECC engine: scale
                // the failure probability by the raw-BER growth factor
                // (floor 1e-3 so a zero-fault baseline still degrades).
                let wear = rep.engine.deployment().wear();
                let factor = wear.mean_raw_ber() / wear.fresh_ber;
                let prob = (rep.engine.ecc_failure_prob().max(1e-3) * factor).min(1.0);
                rep.engine.inject_ecc_failure_prob(prob);
            }
        }
        false
    }

    fn replica_mut(&mut self, shard: usize, replica: usize) -> &mut Replica<'a> {
        &mut self.shards[shard]
            .as_mut()
            .expect("failure event on staged shard")
            .replicas[replica]
    }

    /// Kills `replica` of `shard` at `at_ns`: the device stops stepping,
    /// and every unfinished session routed to it is re-seeded on the
    /// next alive replica (arriving at the kill time — the failover
    /// detection latency is the round granularity). With no survivor the
    /// sessions stay frozen on the dead device.
    fn kill_replica(&mut self, s: usize, r: usize, at_ns: Nanos) -> bool {
        let shard = self.shards[s].as_mut().expect("kill on staged shard");
        shard.replicas[r].alive = false;
        shard.replicas[r].killed_ns = Some(at_ns);
        let survivor = shard.next_alive_after(r);
        let mut new_work = false;
        for scatter in &mut self.queries {
            let Some(sc) = scatter.sessions[s].as_mut() else {
                continue;
            };
            if let Some(h) = sc.hedge {
                if h.replica == r && !is_terminal(shard.replicas[r].engine.poll(h.query)) {
                    // The backup died mid-race: drop it and re-arm so a
                    // fresh hedge may fire on a survivor later.
                    sc.abandoned.push(h);
                    sc.hedge = None;
                    sc.hedge_spent = false;
                }
            }
            if sc.primary.replica == r
                && !is_terminal(shard.replicas[r].engine.poll(sc.primary.query))
            {
                let Some(surv) = survivor else { continue };
                let rep = &mut shard.replicas[surv];
                let query = rep.engine.submit(QueryRequest {
                    query: scatter.query.clone(),
                    entries: vec![rep.entry],
                    // A session that had not even arrived yet keeps its
                    // original arrival time on the survivor.
                    arrival_ns: at_ns.max(scatter.arrival_ns),
                    deadline_ns: scatter.deadline_ns,
                    tenant: scatter.tenant,
                    k: scatter.k,
                });
                rep.routed.push(query);
                let old = std::mem::replace(
                    &mut sc.primary,
                    ShardSession {
                        replica: surv,
                        query,
                    },
                );
                sc.abandoned.push(old);
                shard.failovers += 1;
                new_work = true;
            }
        }
        new_work
    }

    /// Fires due hedges (policy [`ReplicaPolicy::Hedged`]): for every
    /// scattered session whose primary has been outstanding for the
    /// hedge delay, submit an identical backup on the next alive
    /// replica. Runs after the round's stepping, in submission order, so
    /// the decision depends only on simulated clocks.
    fn fire_hedges(&mut self) -> bool {
        let ReplicaPolicy::Hedged { delay_ns } = self.replication.policy else {
            return false;
        };
        let mut new_work = false;
        for scatter in &mut self.queries {
            let fire_at = scatter.arrival_ns.saturating_add(delay_ns);
            for (s, session) in scatter.sessions.iter_mut().enumerate() {
                let Some(sc) = session else { continue };
                if sc.hedge.is_some() || sc.hedge_spent {
                    continue;
                }
                let shard = self.shards[s].as_mut().expect("session on staged shard");
                let primary = &shard.replicas[sc.primary.replica];
                if !primary.alive || primary.engine.now_ns() < fire_at {
                    continue;
                }
                if is_terminal(primary.engine.poll(sc.primary.query)) {
                    // Finished inside the delay: no hedge ever needed.
                    sc.hedge_spent = true;
                    continue;
                }
                let Some(backup) = shard.next_alive_after(sc.primary.replica) else {
                    sc.hedge_spent = true;
                    continue;
                };
                let rep = &mut shard.replicas[backup];
                let query = rep.engine.submit(QueryRequest {
                    query: scatter.query.clone(),
                    entries: vec![rep.entry],
                    arrival_ns: fire_at,
                    deadline_ns: scatter.deadline_ns,
                    tenant: scatter.tenant,
                    k: scatter.k,
                });
                rep.routed.push(query);
                sc.hedge = Some(ShardSession {
                    replica: backup,
                    query,
                });
                sc.hedge_spent = true;
                shard.hedges += 1;
                new_work = true;
            }
        }
        new_work
    }

    /// Resolves terminal update sessions (in cluster submission order)
    /// into cluster outcomes, extending the plan with the global id of
    /// every completed insert. Stops at the first still-running update
    /// so global ids are always assigned in submission order.
    ///
    /// The *reference replica* — the lowest-index replica still alive
    /// among those the update fanned out to — supplies the outcome; an
    /// update resolves once every alive copy is terminal (replicas are
    /// deterministic twins, so copies agree on state and assigned slot).
    /// If every copy's replica died, the first terminal copy resolves
    /// it, and with none the update is reported rejected (lost with the
    /// devices).
    fn resolve_updates(&mut self, reports: &[Option<Vec<ServeReport>>]) {
        while self.resolved.len() < self.routes.len() {
            let id = self.resolved.len();
            let outcome = match &self.routes[id] {
                Route::Cluster { arrival_ns } => UpdateOutcome {
                    id,
                    state: SessionState::Rejected,
                    arrival_ns: *arrival_ns,
                    admitted_ns: *arrival_ns,
                    completed_ns: *arrival_ns,
                    assigned: None,
                    repaired: 0,
                    pages_programmed: 0,
                },
                Route::Shard {
                    shard,
                    locals,
                    delete,
                } => {
                    let shard_state = self.shards[*shard]
                        .as_ref()
                        .expect("routed to staged shard");
                    let reps = reports[*shard].as_ref().expect("routed to staged shard");
                    let outcome_of = |ri: usize, l: UpdateId| &reps[ri].update_outcomes[l];
                    let alive: Vec<(usize, UpdateId)> = locals
                        .iter()
                        .copied()
                        .filter(|&(ri, _)| shard_state.replicas[ri].alive)
                        .collect();
                    let picked = if alive.is_empty() {
                        // Lost with its devices: any copy that reached a
                        // terminal state before the kill still counts.
                        locals
                            .iter()
                            .copied()
                            .find(|&(ri, l)| is_terminal(outcome_of(ri, l).state))
                    } else {
                        if !alive
                            .iter()
                            .all(|&(ri, l)| is_terminal(outcome_of(ri, l).state))
                        {
                            break; // still pending on an alive replica
                        }
                        debug_assert!(
                            alive.iter().all(|&(ri, l)| {
                                let o = outcome_of(ri, l);
                                let first = outcome_of(alive[0].0, alive[0].1);
                                o.state == first.state && o.assigned == first.assigned
                            }),
                            "replica copies of update {id} diverged"
                        );
                        Some(alive[0])
                    };
                    let Some((ri, l)) = picked else {
                        // Every copy died non-terminal.
                        let o = outcome_of(locals[0].0, locals[0].1);
                        if delete.is_none() {
                            self.inflight_inserts[*shard] -= 1;
                        }
                        self.resolved.push(UpdateOutcome {
                            id,
                            state: SessionState::Rejected,
                            arrival_ns: o.arrival_ns,
                            admitted_ns: o.arrival_ns,
                            completed_ns: o.arrival_ns,
                            assigned: None,
                            repaired: 0,
                            pages_programmed: 0,
                        });
                        continue;
                    };
                    let o = outcome_of(ri, l);
                    let assigned = match (o.state, delete) {
                        (SessionState::Completed, Some(g)) => Some(*g),
                        (SessionState::Completed, None) => {
                            self.inflight_inserts[*shard] -= 1;
                            // Bind the *shard-reported* local slot: the
                            // shard applies updates in arrival order,
                            // which need not match cluster submission
                            // order, so the slot cannot be inferred.
                            let local = o.assigned.expect("completed insert reports its local id");
                            Some(self.plan.push_at(*shard, local))
                        }
                        (_, None) => {
                            self.inflight_inserts[*shard] -= 1;
                            None
                        }
                        _ => None,
                    };
                    UpdateOutcome {
                        id,
                        state: o.state,
                        arrival_ns: o.arrival_ns,
                        admitted_ns: o.admitted_ns,
                        completed_ns: o.completed_ns,
                        assigned,
                        repaired: o.repaired,
                        pages_programmed: o.pages_programmed,
                    }
                }
            };
            self.resolved.push(outcome);
        }
    }

    /// Gathers the cluster report: resolves updates, picks each shard's
    /// winning session copy (primary vs hedge — earliest completion),
    /// translates every result list into global ids, and stable-merges
    /// each query's lists by `(distance, global id)`.
    ///
    /// Meaningful once [`run_to_completion`](Self::run_to_completion)
    /// has drained every session (a mid-stream snapshot only covers the
    /// resolved prefix of updates).
    ///
    /// # Panics
    /// Panics if a result references an insert that is not yet resolved
    /// (only possible mid-stream).
    pub fn report(&mut self) -> ClusterReport {
        let reports: Vec<Option<Vec<ServeReport>>> = self
            .shards
            .iter()
            .map(|slot| {
                slot.as_ref().map(|shard| {
                    shard
                        .replicas
                        .iter()
                        .map(|r| {
                            let mut rep = r.engine.report();
                            // Shared pool: per-device wall-clock is
                            // fiction (see `ClusterReport::wall_s`).
                            rep.wall_s = 0.0;
                            rep
                        })
                        .collect()
                })
            })
            .collect();
        self.resolve_updates(&reports);

        let default_k = self.serve.k;
        let mut hedge_wins = vec![0usize; self.shards.len()];
        let outcomes: Vec<ClusterQueryOutcome> = self
            .queries
            .iter()
            .enumerate()
            .map(|(id, scatter)| {
                let k = scatter.k.unwrap_or(default_k);
                let mut states = Vec::new();
                let mut merged: Vec<Neighbor> = Vec::new();
                let mut completed = 0;
                let mut hops = 0;
                let mut shed = false;
                for (s, session) in scatter.sessions.iter().enumerate() {
                    let Some(sc) = session else { continue };
                    let reps = reports[s].as_ref().expect("session on staged shard");
                    let outcome_of = |ss: &ShardSession| &reps[ss.replica].outcomes[ss.query];
                    let primary = outcome_of(&sc.primary);
                    let hedge = sc.hedge.as_ref().map(&outcome_of);
                    let (winner, hedge_won) = pick_winner(primary, hedge);
                    if hedge_won {
                        hedge_wins[s] += 1;
                    }
                    states.push(winner.state);
                    shed |= winner.shed;
                    completed = completed.max(winner.completed_ns);
                    hops += primary.hops
                        + hedge.map_or(0, |o| o.hops)
                        + sc.abandoned
                            .iter()
                            .map(|a| outcome_of(a).hops)
                            .sum::<usize>();
                    merged.extend(
                        winner
                            .results
                            .iter()
                            .map(|n| Neighbor::new(n.distance, self.plan.global_of(s, n.id))),
                    );
                }
                // The gather: a deterministic stable merge — Neighbor's
                // total order is (distance, id), ties broken by global id.
                merged.sort_unstable();
                merged.truncate(k);
                ClusterQueryOutcome {
                    id,
                    state: merge_states(&states),
                    arrival_ns: scatter.arrival_ns,
                    completed_ns: completed,
                    hops,
                    results: merged,
                    tenant: scatter.tenant,
                    deadline_ns: scatter.deadline_ns,
                    shed,
                }
            })
            .collect();

        let first_arrival = outcomes
            .iter()
            .map(|o| o.arrival_ns)
            .chain(self.resolved.iter().map(|o| o.arrival_ns))
            .min();
        let last_completion = outcomes
            .iter()
            .map(|o| o.completed_ns)
            .chain(self.resolved.iter().map(|o| o.completed_ns))
            .max()
            .unwrap_or(0);

        let shards: Vec<ShardBreakdown> = reports
            .into_iter()
            .enumerate()
            .filter_map(|(s, reps)| {
                let reps = reps?;
                let shard = self.shards[s].as_ref().expect("breakdown of staged shard");
                let replicas: Vec<ReplicaBreakdown> = reps
                    .into_iter()
                    .enumerate()
                    .map(|(ri, report)| ReplicaBreakdown {
                        replica: ri,
                        alive: shard.replicas[ri].alive,
                        killed_ns: shard.replicas[ri].killed_ns,
                        hops: report.outcomes.iter().map(|o| o.hops).sum(),
                        report,
                    })
                    .collect();
                let availability = if last_completion == 0 {
                    1.0
                } else {
                    replicas
                        .iter()
                        .map(|r| match r.killed_ns {
                            None => 1.0,
                            Some(t) => t.min(last_completion) as f64 / last_completion as f64,
                        })
                        .sum::<f64>()
                        / replicas.len() as f64
                };
                Some(ShardBreakdown {
                    shard: s,
                    vertices: self.plan.shard_len(s),
                    hops: replicas.iter().map(|r| r.hops).sum(),
                    failovers: shard.failovers,
                    hedges: shard.hedges,
                    hedge_wins: hedge_wins[s],
                    availability,
                    replicas,
                })
            })
            .collect();

        ClusterReport {
            outcomes,
            update_outcomes: self.resolved.clone(),
            shards,
            makespan_ns: last_completion.saturating_sub(first_arrival.unwrap_or(0)),
            wall_s: self.wall.as_secs_f64(),
        }
    }
}

/// Whether a session state is final.
fn is_terminal(state: SessionState) -> bool {
    matches!(
        state,
        SessionState::Completed | SessionState::Rejected | SessionState::Expired
    )
}

fn is_terminal_ref(state: &SessionState) -> bool {
    is_terminal(*state)
}

/// Picks the copy of a shard session that answers for its shard: a
/// completed hedge wins iff the primary did not complete or completed
/// later (ties go to the primary). Returns the winner and whether the
/// hedge won.
fn pick_winner<'o>(
    primary: &'o QueryOutcome,
    hedge: Option<&'o QueryOutcome>,
) -> (&'o QueryOutcome, bool) {
    let Some(hedge) = hedge else {
        return (primary, false);
    };
    match (
        primary.state == SessionState::Completed,
        hedge.state == SessionState::Completed,
    ) {
        (true, true) if hedge.completed_ns < primary.completed_ns => (hedge, true),
        (false, true) => (hedge, true),
        _ => (primary, false),
    }
}

/// Merges per-shard session states into the cluster-level state.
fn merge_states(states: &[SessionState]) -> SessionState {
    if states.is_empty() {
        return SessionState::Rejected;
    }
    if states.contains(&SessionState::Rejected) {
        return SessionState::Rejected;
    }
    if states.contains(&SessionState::Expired) {
        return SessionState::Expired;
    }
    if states.iter().all(|&s| s == SessionState::Completed) {
        return SessionState::Completed;
    }
    // Mixed non-terminal states: report the least-advanced stage.
    for s in [
        SessionState::Pending,
        SessionState::Queued,
        SessionState::Running,
    ] {
        if states.contains(&s) {
            return s;
        }
    }
    unreachable!("the probes above cover every SessionState variant")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_anns::vamana::{Vamana, VamanaParams};
    use ndsearch_vector::shard::ShardPolicy;
    use ndsearch_vector::synthetic::DatasetSpec;

    fn vamana_builder(ds: &Dataset) -> (Box<dyn MutableIndex>, VectorId) {
        let index = Vamana::build(ds, VamanaParams::default());
        let entry = index.medoid();
        (Box::new(index), entry)
    }

    fn fixture(n: usize, q: usize) -> (NdsConfig, Dataset, Dataset) {
        let (base, queries) = DatasetSpec::sift_scaled(n, q).build_pair();
        let mut config = NdsConfig::scaled_for(n * 2, base.stored_vector_bytes());
        config.ecc.hard_decision_failure_prob = 0.0;
        (config, base, queries)
    }

    #[test]
    fn cluster_serves_and_merges_globally() {
        let (config, base, queries) = fixture(400, 8);
        let plan = ShardPlan::partition(base.len(), 4, ShardPolicy::Hash, 11);
        let mut cluster =
            ClusterEngine::stage(&config, ServeConfig::default(), plan, &base, vamana_builder);
        for (i, (_, q)) in queries.iter().enumerate() {
            cluster.submit(ClusterQueryRequest::at(i as Nanos * 500, q.to_vec()));
        }
        let report = cluster.run_to_completion();
        assert_eq!(report.completed(), 8);
        assert_eq!(report.shards.len(), 4);
        for o in &report.outcomes {
            assert_eq!(o.results.len(), ServeConfig::default().k);
            // Global ids, sorted by (distance, id), no duplicates.
            assert!(o.results.iter().all(|n| (n.id as usize) < base.len()));
            assert!(o.results.windows(2).all(|w| w[0] < w[1]));
            assert!(o.hops > 0);
        }
        assert!(report.load_imbalance() >= 1.0);
        assert!(report.qps() > 0.0);
        assert!(report.latency().p50_ns > 0);
        // No replication: full availability, no failovers or hedges.
        assert_eq!(report.availability(), 1.0);
        assert_eq!(report.failovers(), 0);
        assert_eq!(report.hedges(), 0);
        assert!(report.wall_s > 0.0, "cluster wall clock must be measured");
        assert!(report.sim_ns_per_wall_s() > 0.0);
        for s in &report.shards {
            assert_eq!(s.replicas.len(), 1);
            assert_eq!(s.replicas[0].report.wall_s, 0.0, "per-replica wall zeroed");
        }
    }

    #[test]
    fn updates_route_to_owning_shards() {
        let (config, base, extra) = fixture(300, 30);
        let plan = ShardPlan::partition(base.len(), 3, ShardPolicy::BalancedSize, 0);
        let mut cluster =
            ClusterEngine::stage(&config, ServeConfig::default(), plan, &base, vamana_builder);
        // Deletes by global id; inserts routed by the balanced policy.
        let d0 = cluster.submit_update(UpdateRequest::delete_at(0, 5));
        let d1 = cluster.submit_update(UpdateRequest::delete_at(0, 250));
        let bad = cluster.submit_update(UpdateRequest::delete_at(0, 9_999));
        let mut ins = Vec::new();
        for (_, v) in extra.iter() {
            ins.push(cluster.submit_update(UpdateRequest::insert_at(10, v.to_vec())));
        }
        let report = cluster.run_to_completion();
        assert_eq!(cluster.poll_update(d0), SessionState::Completed);
        assert_eq!(cluster.poll_update(d1), SessionState::Completed);
        assert_eq!(cluster.poll_update(bad), SessionState::Rejected);
        assert_eq!(report.updates_completed(), 2 + extra.len());
        assert_eq!(report.updates_rejected(), 1);
        // Completed inserts got consecutive global ids in submission
        // order, and the plan now maps them.
        for (i, &u) in ins.iter().enumerate() {
            let o = &report.update_outcomes[u];
            assert_eq!(o.state, SessionState::Completed);
            assert_eq!(o.assigned, Some((300 + i) as VectorId));
            let g = o.assigned.unwrap();
            let s = cluster.plan().shard_of(g);
            assert_eq!(cluster.plan().global_of(s, cluster.plan().local_of(g)), g);
            // The owning shard's deployment actually grew.
            let deploy = cluster.shard_engine(s).unwrap().deployment();
            assert!(deploy.dataset().len() > 100);
        }
        // Balanced routing kept shard sizes within one of each other.
        let sizes: Vec<usize> = (0..3).map(|s| cluster.plan().shard_len(s)).collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(hi - lo <= 1, "sizes {sizes:?}");
        // Deletes tombstoned on the owning shard.
        let s5 = cluster.plan().shard_of(5);
        assert!(cluster
            .shard_engine(s5)
            .unwrap()
            .deployment()
            .is_deleted(cluster.plan().local_of(5)));
        // Flash write path charged somewhere.
        assert!(report.update_totals().pages_programmed > 0);
        assert!(report.update_totals().write_amplification() > 0.0);
    }

    #[test]
    fn single_shard_cluster_matches_unsharded_engine() {
        let (config, base, queries) = fixture(300, 6);
        // Unsharded reference.
        let index = Vamana::build(&base, VamanaParams::default());
        let deploy = Deployment::stage(&config, Box::new(index.clone()), base.clone());
        let mut flat = ServeEngine::with_deployment(&config, ServeConfig::default(), deploy);
        for (i, (_, q)) in queries.iter().enumerate() {
            flat.submit(QueryRequest::at(
                i as Nanos * 1_000,
                q.to_vec(),
                vec![index.medoid()],
            ));
        }
        let flat_report = flat.run_to_completion();

        let plan = ShardPlan::partition(base.len(), 1, ShardPolicy::BalancedSize, 0);
        let mut cluster =
            ClusterEngine::stage(&config, ServeConfig::default(), plan, &base, vamana_builder);
        for (i, (_, q)) in queries.iter().enumerate() {
            cluster.submit(ClusterQueryRequest::at(i as Nanos * 1_000, q.to_vec()));
        }
        let report = cluster.run_to_completion();
        // One shard holding everything is the unsharded engine: same
        // results, same timing.
        for (c, f) in report.outcomes.iter().zip(&flat_report.outcomes) {
            assert_eq!(c.results, f.results);
            assert_eq!(c.completed_ns, f.completed_ns);
        }
    }

    #[test]
    fn out_of_order_arrivals_keep_global_ids_consistent() {
        // Shards apply updates in *arrival* order; the cluster assigns
        // global ids in *submission* order. A later-submitted insert
        // with an earlier arrival therefore lands in an earlier local
        // slot — the plan must bind each global id to the slot that
        // actually holds that insert's vector.
        let (config, base, extra) = fixture(200, 4);
        let plan = ShardPlan::partition(base.len(), 1, ShardPolicy::BalancedSize, 0);
        let mut cluster =
            ClusterEngine::stage(&config, ServeConfig::default(), plan, &base, vamana_builder);
        let va = extra.vector(0).to_vec();
        let vb = extra.vector(1).to_vec();
        let a = cluster.submit_update(UpdateRequest::insert_at(1_000_000, va.clone()));
        let b = cluster.submit_update(UpdateRequest::insert_at(0, vb.clone()));
        let report = cluster.run_to_completion();
        assert_eq!(report.updates_completed(), 2);
        let (ga, gb) = (
            report.update_outcomes[a].assigned.unwrap(),
            report.update_outcomes[b].assigned.unwrap(),
        );
        assert_eq!((ga, gb), (200, 201), "dense global ids, submission order");
        let dataset = cluster.shard_engine(0).unwrap().deployment().dataset();
        let plan = cluster.plan();
        assert_eq!(
            dataset.vector(plan.local_of(ga)),
            &va[..],
            "global id A dereferences B's vector"
        );
        assert_eq!(dataset.vector(plan.local_of(gb)), &vb[..]);
    }

    #[test]
    fn hash_routing_survives_empty_shards() {
        // 12 vectors over 8 hash shards leaves some shards empty; insert
        // routing must probe past them instead of rejecting forever.
        let (config, _, extra) = fixture(200, 40);
        let small = {
            let mut ds = Dataset::new(extra.dim());
            ds.set_stored_vector_bytes(extra.stored_vector_bytes());
            for (_, v) in extra.iter().take(12) {
                ds.try_push(v).unwrap();
            }
            ds
        };
        let plan = ShardPlan::partition(small.len(), 8, ShardPolicy::Hash, 3);
        assert!(
            (0..8).any(|s| plan.shard_len(s) == 0),
            "fixture should leave at least one shard empty"
        );
        let mut cluster = ClusterEngine::stage(
            &config,
            ServeConfig::default(),
            plan,
            &small,
            vamana_builder,
        );
        for (_, v) in extra.iter() {
            cluster.submit_update(UpdateRequest::insert_at(0, v.to_vec()));
        }
        let report = cluster.run_to_completion();
        assert_eq!(report.updates_completed(), 40, "inserts livelocked");
        assert_eq!(report.updates_rejected(), 0);
        assert_eq!(cluster.plan().len(), 52);
    }

    #[test]
    fn deadline_expiry_and_mixed_states_merge() {
        let (config, base, queries) = fixture(250, 1);
        let plan = ShardPlan::partition(base.len(), 2, ShardPolicy::BalancedSize, 0);
        let mut cluster =
            ClusterEngine::stage(&config, ServeConfig::default(), plan, &base, vamana_builder);
        let mut req = ClusterQueryRequest::at(0, queries.vector(0).to_vec());
        req.deadline_ns = Some(1);
        let id = cluster.submit(req);
        let report = cluster.run_to_completion();
        assert_eq!(report.outcomes[id].state, SessionState::Expired);
        assert_eq!(report.expired(), 1);
    }

    #[test]
    fn replicated_cluster_matches_single_replica_results() {
        // Replicas are deterministic twins, so a no-failure replicated
        // cluster returns element-identical results under every policy —
        // only timing shifts with the load split.
        let (config, base, queries) = fixture(300, 8);
        let reference = {
            let plan = ShardPlan::partition(base.len(), 2, ShardPolicy::BalancedSize, 0);
            let mut cluster =
                ClusterEngine::stage(&config, ServeConfig::default(), plan, &base, vamana_builder);
            for (i, (_, q)) in queries.iter().enumerate() {
                cluster.submit(ClusterQueryRequest::at(i as Nanos * 2_000, q.to_vec()));
            }
            cluster.run_to_completion()
        };
        for policy in [
            ReplicaPolicy::RoundRobin,
            ReplicaPolicy::LeastLoaded,
            ReplicaPolicy::Hedged { delay_ns: 50_000 },
        ] {
            let plan = ShardPlan::partition(base.len(), 2, ShardPolicy::BalancedSize, 0);
            let replication = ReplicationConfig::replicated(2).with_policy(policy);
            let mut cluster = ClusterEngine::stage_replicated(
                &config,
                ServeConfig::default(),
                plan,
                replication,
                &base,
                vamana_builder,
            );
            for (i, (_, q)) in queries.iter().enumerate() {
                cluster.submit(ClusterQueryRequest::at(i as Nanos * 2_000, q.to_vec()));
            }
            let report = cluster.run_to_completion();
            assert_eq!(report.completed(), 8, "{policy:?}");
            for (r, f) in report.outcomes.iter().zip(&reference.outcomes) {
                assert_eq!(r.results, f.results, "{policy:?} diverged from R=1");
            }
            assert_eq!(report.availability(), 1.0);
            assert_eq!(report.failovers(), 0);
        }
    }

    #[test]
    fn round_robin_spreads_sessions_across_replicas() {
        let (config, base, queries) = fixture(250, 8);
        let plan = ShardPlan::partition(base.len(), 1, ShardPolicy::BalancedSize, 0);
        let mut cluster = ClusterEngine::stage_replicated(
            &config,
            ServeConfig::default(),
            plan,
            ReplicationConfig::replicated(2),
            &base,
            vamana_builder,
        );
        for (i, (_, q)) in queries.iter().enumerate() {
            cluster.submit(ClusterQueryRequest::at(i as Nanos * 2_000, q.to_vec()));
        }
        let report = cluster.run_to_completion();
        assert_eq!(report.completed(), 8);
        let shard = &report.shards[0];
        assert_eq!(shard.replicas.len(), 2);
        for r in &shard.replicas {
            assert_eq!(
                r.report.outcomes.len(),
                4,
                "round robin must split 8 evenly"
            );
            assert!(r.hops > 0);
        }
    }

    #[test]
    fn least_loaded_balances_outstanding_sessions() {
        let (config, base, queries) = fixture(250, 9);
        let plan = ShardPlan::partition(base.len(), 1, ShardPolicy::BalancedSize, 0);
        let replication = ReplicationConfig::replicated(3).with_policy(ReplicaPolicy::LeastLoaded);
        let mut cluster = ClusterEngine::stage_replicated(
            &config,
            ServeConfig::default(),
            plan,
            replication,
            &base,
            vamana_builder,
        );
        for (_, q) in queries.iter() {
            cluster.submit(ClusterQueryRequest::at(0, q.to_vec()));
        }
        let report = cluster.run_to_completion();
        assert_eq!(report.completed(), 9);
        for r in &report.shards[0].replicas {
            assert_eq!(
                r.report.outcomes.len(),
                3,
                "outstanding counts must balance"
            );
        }
    }

    #[test]
    fn kill_fails_over_inflight_sessions_to_survivor() {
        let (config, base, queries) = fixture(300, 10);
        let make = |base: &Dataset| {
            let plan = ShardPlan::partition(base.len(), 2, ShardPolicy::BalancedSize, 0);
            let replication = ReplicationConfig::replicated(2)
                .with_failures(FailureSchedule::new().kill(1, 0, 0));
            ClusterEngine::stage_replicated(
                &config,
                ServeConfig::default(),
                plan,
                replication,
                base,
                vamana_builder,
            )
        };
        let run = |mut cluster: ClusterEngine| {
            for (i, (_, q)) in queries.iter().enumerate() {
                cluster.submit(ClusterQueryRequest::at(i as Nanos * 1_000, q.to_vec()));
            }
            cluster.run_to_completion()
        };
        let report = run(make(&base));
        // The kill fires at the first round boundary: every session the
        // dead replica had was re-seeded and the whole stream completed.
        assert_eq!(report.completed(), 10, "failover lost sessions");
        assert!(report.failovers() > 0, "kill must trigger failovers");
        let s0 = &report.shards[0];
        assert!(!s0.replicas[0].alive);
        assert_eq!(s0.replicas[0].killed_ns, Some(1));
        assert!(s0.replicas[1].alive);
        assert!(s0.availability < 1.0 && s0.availability > 0.0);
        assert_eq!(report.shards[1].availability, 1.0);
        assert!(report.availability() > 0.0 && report.availability() <= 1.0);
        // Bit-identical reruns, failure schedule included.
        assert_eq!(
            report,
            run(make(&base)),
            "failover run must be deterministic"
        );
    }

    #[test]
    fn whole_shard_outage_freezes_its_sessions() {
        let (config, base, queries) = fixture(300, 4);
        let plan = ShardPlan::partition(base.len(), 2, ShardPolicy::BalancedSize, 0);
        let replication = ReplicationConfig::replicated(2)
            .with_failures(FailureSchedule::new().kill(1, 0, 0).kill(1, 0, 1));
        let mut cluster = ClusterEngine::stage_replicated(
            &config,
            ServeConfig::default(),
            plan,
            replication,
            &base,
            vamana_builder,
        );
        for (_, q) in queries.iter() {
            cluster.submit(ClusterQueryRequest::at(0, q.to_vec()));
        }
        // Must terminate (dead devices stop stepping) without completing
        // any cluster query: shard 0 can never answer.
        let report = cluster.run_to_completion();
        assert_eq!(report.completed(), 0);
        for o in &report.outcomes {
            assert!(!is_terminal(o.state), "outage must leave queries pending");
        }
        assert!(report.shards[0].availability < 1.0);
        // New submissions skip the dead shard entirely (and keep the
        // cluster outcome non-terminal rather than panicking).
        let id = cluster.submit(ClusterQueryRequest::at(0, queries.vector(0).to_vec()));
        assert!(!is_terminal(cluster.poll(id)));
    }

    #[test]
    fn hedged_routing_duplicates_slow_sessions_and_wins() {
        let (config, base, queries) = fixture(300, 10);
        // Replica 0 of the only shard is hit by an ECC storm before it
        // serves anything; hedges fired on the healthy replica 1 should
        // win their races.
        let plan = ShardPlan::partition(base.len(), 1, ShardPolicy::BalancedSize, 0);
        let replication = ReplicationConfig::replicated(2)
            .with_policy(ReplicaPolicy::Hedged { delay_ns: 100_000 })
            .with_failures(FailureSchedule::new().ecc_storm(0, 0, 0, 0.95));
        let mut cluster = ClusterEngine::stage_replicated(
            &config,
            ServeConfig::default(),
            plan,
            replication,
            &base,
            vamana_builder,
        );
        for (i, (_, q)) in queries.iter().enumerate() {
            cluster.submit(ClusterQueryRequest::at(i as Nanos * 1_000, q.to_vec()));
        }
        let report = cluster.run_to_completion();
        assert_eq!(report.completed(), 10);
        assert!(report.hedges() > 0, "storm must trigger hedges");
        assert!(report.hedge_wins() > 0, "healthy replica must win races");
        assert!(report.hedge_win_rate() > 0.0 && report.hedge_win_rate() <= 1.0);
        assert_eq!(report.shards[0].hedge_wins, report.hedge_wins());
        // The storm replica actually paid soft-decode penalties.
        let stormed = &report.shards[0].replicas[0].report;
        assert!(stormed.stats.ecc_soft_fallbacks > 0);
    }

    #[test]
    fn wear_out_event_degrades_the_device() {
        let (config, base, queries) = fixture(250, 6);
        let plan = ShardPlan::partition(base.len(), 1, ShardPolicy::BalancedSize, 0);
        let replication = ReplicationConfig::replicated(2)
            .with_failures(FailureSchedule::new().wear_out(0, 0, 0, 20_000));
        let mut cluster = ClusterEngine::stage_replicated(
            &config,
            ServeConfig::default(),
            plan,
            replication,
            &base,
            vamana_builder,
        );
        for (i, (_, q)) in queries.iter().enumerate() {
            cluster.submit(ClusterQueryRequest::at(i as Nanos * 1_000, q.to_vec()));
        }
        let report = cluster.run_to_completion();
        assert_eq!(report.completed(), 6);
        let worn = cluster.replica_engine(0, 0).unwrap();
        let fresh = cluster.replica_engine(0, 1).unwrap();
        assert!(
            worn.ecc_failure_prob() > fresh.ecc_failure_prob(),
            "wear-out must raise the failure probability ({} vs {})",
            worn.ecc_failure_prob(),
            fresh.ecc_failure_prob()
        );
        assert!(worn.deployment().wear().max_wear_ratio() >= 2.0);
    }
}
