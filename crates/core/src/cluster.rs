//! Sharded multi-device serving: a scatter–gather cluster of SearSSDs.
//!
//! The paper evaluates one in-NAND accelerator; production DiskANN-family
//! deployments shard billion-point corpora across many SSDs and merge
//! per-shard top-k (Subramanya et al., NeurIPS'19; FreshDiskANN, Singh
//! et al., 2021). This module is that scale-out tier over the existing
//! single-device stack:
//!
//! * a [`ShardPlan`] (hash or
//!   balanced-size policy) splits the dataset into per-shard
//!   sub-datasets, each staged as its own [`Deployment`] — its own index
//!   build, LUNCSR staging, FTL, ECC engine and wear model, i.e. its own
//!   simulated device;
//! * [`ClusterEngine`] **scatters** every query session to all shards
//!   (one [`ServeEngine`] session per shard, seeded at that shard's
//!   entry vertex) and drives all shard engines round-by-round on **one
//!   shared worker pool** ([`crate::exec`]);
//! * per-shard top-k lists come back in shard-local ids, are translated
//!   to global ids through the plan, and are **gathered** by a
//!   deterministic stable merge — ascending `(distance, global id)`,
//!   exactly the order [`Neighbor`]'s `Ord` defines — truncated to `k`;
//! * [`UpdateRequest`]s route to their *owning* shard (deletes via the
//!   plan's assignment, inserts via the policy's routing rule), so
//!   online insert/delete keeps working under sharding;
//! * [`ClusterReport`] carries the merged per-query outcomes plus
//!   per-shard breakdowns ([`ShardBreakdown`]: QPS, latency
//!   percentiles, pages programmed) and the cluster's load-imbalance
//!   factor.
//!
//! # Determinism and parity
//!
//! Shards share **no** mutable state: each shard engine owns its
//! deployment, device model and simulated clock, and every per-shard
//! report is bit-identical at any
//! [`exec_threads`](crate::config::NdsConfig::exec_threads) (see
//! [`crate::serve`]). The gather step is a pure sort by `(distance,
//! global id)`. Hence the cluster report is bit-identical at any thread
//! count *and* invariant under the order shards are stepped in
//! ([`ClusterEngine::run_to_completion_ordered`]) — pinned by
//! `tests/exec_determinism.rs`.
//!
//! When every shard's search is exhaustive over its sub-corpus (beam
//! width at least the shard size on a connected shard graph), the merge
//! is *provably* lossless: `top_k(S) = top_k(∪ᵢ top_k(Sᵢ))` for any
//! partition `S = ∪ᵢ Sᵢ`, because each of the true top-k lives in
//! exactly one shard and survives that shard's exact top-k. The parity
//! proptest (`tests/cluster_parity.rs`) exercises exactly this regime —
//! sharded results element-identical to the unsharded engine across
//! shard counts and both policies, tombstones included. At production
//! beam widths per-shard search is approximate and the merged recall is
//! gated in `tests/end_to_end.rs` at the single-device thresholds.
//!
//! # Example
//!
//! ```
//! use ndsearch_core::cluster::{ClusterEngine, ClusterQueryRequest};
//! use ndsearch_core::config::NdsConfig;
//! use ndsearch_core::serve::ServeConfig;
//! use ndsearch_anns::index::MutableIndex;
//! use ndsearch_anns::vamana::{Vamana, VamanaParams};
//! use ndsearch_vector::shard::{ShardPlan, ShardPolicy};
//! use ndsearch_vector::synthetic::DatasetSpec;
//!
//! let (base, queries) = DatasetSpec::sift_scaled(300, 4).build_pair();
//! let config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
//! let plan = ShardPlan::partition(base.len(), 2, ShardPolicy::BalancedSize, 7);
//! let mut cluster = ClusterEngine::stage(
//!     &config,
//!     ServeConfig::default(),
//!     plan,
//!     &base,
//!     |shard| {
//!         let index = Vamana::build(shard, VamanaParams::default());
//!         let entry = index.medoid();
//!         (Box::new(index) as Box<dyn MutableIndex>, entry)
//!     },
//! );
//! for (_, q) in queries.iter() {
//!     cluster.submit(ClusterQueryRequest::at(0, q.to_vec()));
//! }
//! let report = cluster.run_to_completion();
//! assert_eq!(report.completed(), 4);
//! assert!(report.qps() > 0.0);
//! ```

use ndsearch_anns::index::MutableIndex;
use ndsearch_flash::timing::Nanos;
use ndsearch_vector::dataset::Dataset;
use ndsearch_vector::shard::ShardPlan;
use ndsearch_vector::topk::Neighbor;
use ndsearch_vector::VectorId;

use crate::config::NdsConfig;
use crate::deploy::{Deployment, UpdateTotals};
use crate::report::LatencySummary;
use crate::serve::{
    run_serve_job, QueryId, QueryRequest, ServeConfig, ServeEngine, ServeJob, ServeReport,
    SessionState, UpdateId, UpdateOp, UpdateOutcome, UpdateRequest,
};

/// Identifier of a cluster query session (dense, submission order).
pub type ClusterQueryId = usize;

/// Identifier of a cluster update session (dense, submission order; a
/// separate space from [`ClusterQueryId`]).
pub type ClusterUpdateId = usize;

/// One query submitted to the cluster. Unlike the single-device
/// [`QueryRequest`] it carries no entry vertices: the scatter seeds each
/// shard's session at that shard's own entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterQueryRequest {
    /// The query feature vector.
    pub query: Vec<f32>,
    /// Simulated arrival time.
    pub arrival_ns: Nanos,
    /// Optional absolute deadline, applied on every shard.
    pub deadline_ns: Option<Nanos>,
}

impl ClusterQueryRequest {
    /// A request arriving at `arrival_ns` with no deadline.
    pub fn at(arrival_ns: Nanos, query: Vec<f32>) -> Self {
        Self {
            query,
            arrival_ns,
            deadline_ns: None,
        }
    }
}

/// Final record of one cluster query: the gather of its per-shard
/// sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterQueryOutcome {
    /// Cluster query id (submission order).
    pub id: ClusterQueryId,
    /// Merged terminal state: `Completed` only if every shard session
    /// completed; `Rejected` if any shard rejected the session;
    /// otherwise `Expired` if any shard cut it off at the deadline.
    pub state: SessionState,
    /// Earliest per-shard arrival (the submitted arrival, clamped).
    pub arrival_ns: Nanos,
    /// Latest per-shard completion — the gather cannot merge before the
    /// slowest shard has answered.
    pub completed_ns: Nanos,
    /// Beam-search hops executed across all shards.
    pub hops: usize,
    /// Merged top-k in **global** ids, ascending `(distance, id)`.
    pub results: Vec<Neighbor>,
}

impl ClusterQueryOutcome {
    /// End-to-end latency the client observed (arrival → merged top-k).
    pub fn latency_ns(&self) -> Nanos {
        self.completed_ns.saturating_sub(self.arrival_ns)
    }
}

/// Per-shard slice of a [`ClusterReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardBreakdown {
    /// Shard index in the plan.
    pub shard: usize,
    /// Vectors the shard currently owns.
    pub vertices: usize,
    /// Beam-search hops the shard executed (its share of the work).
    pub hops: usize,
    /// The shard engine's full report (QPS, latency percentiles, flash
    /// stats, pages programmed — everything a single device reports).
    pub report: ServeReport,
}

/// Result of serving a stream of sessions on the cluster.
///
/// Equality inherits [`ServeReport`]'s convention: host wall-clock
/// fields are excluded, everything else — merged outcomes, update
/// outcomes, every per-shard breakdown — must match bit-for-bit for two
/// reports to compare equal.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// One record per submitted cluster query, in submission order.
    pub outcomes: Vec<ClusterQueryOutcome>,
    /// One record per submitted cluster update, in submission order
    /// (`assigned` ids are global).
    pub update_outcomes: Vec<UpdateOutcome>,
    /// Per-shard breakdowns, one per staged shard.
    pub shards: Vec<ShardBreakdown>,
    /// Earliest arrival → latest completion across the whole cluster.
    pub makespan_ns: Nanos,
}

impl ClusterReport {
    /// Cluster queries that completed on every shard.
    pub fn completed(&self) -> usize {
        self.count(SessionState::Completed)
    }

    /// Cluster queries rejected by at least one shard's backpressure.
    pub fn rejected(&self) -> usize {
        self.count(SessionState::Rejected)
    }

    /// Cluster queries cut off at their deadline on at least one shard.
    pub fn expired(&self) -> usize {
        self.count(SessionState::Expired)
    }

    fn count(&self, s: SessionState) -> usize {
        self.outcomes.iter().filter(|o| o.state == s).count()
    }

    /// Goodput: fully completed queries per second of cluster makespan.
    pub fn qps(&self) -> f64 {
        if self.makespan_ns == 0 {
            0.0
        } else {
            self.completed() as f64 / (self.makespan_ns as f64 / 1e9)
        }
    }

    /// Updates applied to completion.
    pub fn updates_completed(&self) -> usize {
        self.update_outcomes
            .iter()
            .filter(|o| o.state == SessionState::Completed)
            .count()
    }

    /// Updates rejected (routing, backpressure or shard-level rejection).
    pub fn updates_rejected(&self) -> usize {
        self.update_outcomes
            .iter()
            .filter(|o| o.state == SessionState::Rejected)
            .count()
    }

    /// Latency order statistics over fully completed cluster queries.
    pub fn latency(&self) -> LatencySummary {
        let samples: Vec<Nanos> = self
            .outcomes
            .iter()
            .filter(|o| o.state == SessionState::Completed)
            .map(|o| o.latency_ns())
            .collect();
        LatencySummary::from_samples(&samples)
    }

    /// Write-path totals summed across shards.
    pub fn update_totals(&self) -> UpdateTotals {
        let mut total = UpdateTotals::default();
        for s in &self.shards {
            total.merge(&s.report.updates);
        }
        total
    }

    /// Load-imbalance factor: the busiest shard's beam-search hop count
    /// over the mean (1.0 = perfectly balanced). Falls back to vertex
    /// counts when no search work ran; 0 without shards.
    pub fn load_imbalance(&self) -> f64 {
        let over = |f: fn(&ShardBreakdown) -> usize| -> f64 {
            let max = self.shards.iter().map(f).max().unwrap_or(0) as f64;
            let sum: usize = self.shards.iter().map(f).sum();
            let mean = sum as f64 / self.shards.len().max(1) as f64;
            if mean > 0.0 {
                max / mean
            } else {
                0.0
            }
        };
        if self.shards.is_empty() {
            return 0.0;
        }
        let by_hops = over(|s| s.hops);
        if by_hops > 0.0 {
            by_hops
        } else {
            over(|s| s.vertices)
        }
    }
}

/// One staged shard: a full single-device serving stack plus its local
/// entry vertex.
struct Shard<'a> {
    engine: ServeEngine<'a>,
    entry: VectorId,
}

/// Where a cluster update went.
enum Route {
    /// Forwarded to `shard` as its `local` update session (`delete`
    /// carries the global id for translation back).
    Shard {
        shard: usize,
        local: UpdateId,
        delete: Option<VectorId>,
    },
    /// Rejected at the cluster router (unroutable id or shard).
    Cluster { arrival_ns: Nanos },
}

/// One scattered query: the per-shard session ids.
struct Scatter {
    arrival_ns: Nanos,
    sessions: Vec<Option<QueryId>>,
}

/// The scatter–gather cluster engine (see the [module docs](self)).
pub struct ClusterEngine<'a> {
    config: &'a NdsConfig,
    serve: ServeConfig,
    plan: ShardPlan,
    /// `None` for shards the plan left empty (possible under the hash
    /// policy on tiny datasets); they serve no traffic.
    shards: Vec<Option<Shard<'a>>>,
    queries: Vec<Scatter>,
    routes: Vec<Route>,
    /// Inserts routed to each shard but not yet resolved into the plan.
    inflight_inserts: Vec<usize>,
    /// Cluster update outcomes resolved so far (prefix of `routes`).
    resolved: Vec<UpdateOutcome>,
}

impl<'a> ClusterEngine<'a> {
    /// Stages a cluster: splits `dataset` per the plan, builds one index
    /// and one [`Deployment`] (own flash device) per non-empty shard via
    /// `build`, which returns the shard's index and its entry vertex in
    /// shard-local ids (e.g. the Vamana medoid or HNSW entry point).
    ///
    /// Every shard serves with the same `config` (homogeneous devices)
    /// and the same `serve` admission/search knobs.
    ///
    /// # Panics
    /// Panics if the plan's base length differs from the dataset length
    /// or the dataset is empty.
    pub fn stage(
        config: &'a NdsConfig,
        serve: ServeConfig,
        plan: ShardPlan,
        dataset: &Dataset,
        build: impl Fn(&Dataset) -> (Box<dyn MutableIndex>, VectorId),
    ) -> Self {
        assert!(!dataset.is_empty(), "cluster needs at least one vector");
        let num_shards = plan.num_shards();
        let shards = plan
            .extract(dataset)
            .into_iter()
            .map(|shard_ds| {
                if shard_ds.is_empty() {
                    return None;
                }
                let (index, entry) = build(&shard_ds);
                let deploy = Deployment::stage(config, index, shard_ds);
                Some(Shard {
                    engine: ServeEngine::with_deployment(config, serve.clone(), deploy),
                    entry,
                })
            })
            .collect();
        Self {
            config,
            serve,
            plan,
            shards,
            queries: Vec::new(),
            routes: Vec::new(),
            inflight_inserts: vec![0; num_shards],
            resolved: Vec::new(),
        }
    }

    /// The id plan (ground truth of global ↔ shard-local mapping,
    /// including resolved online inserts).
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards in the plan (staged or empty).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// A staged shard's serving engine (e.g. to inspect its deployment);
    /// `None` for empty shards.
    pub fn shard_engine(&self, shard: usize) -> Option<&ServeEngine<'a>> {
        self.shards[shard].as_ref().map(|s| &s.engine)
    }

    /// Scatters one query session to every staged shard and returns the
    /// cluster id.
    pub fn submit(&mut self, req: ClusterQueryRequest) -> ClusterQueryId {
        let id = self.queries.len();
        let sessions = self
            .shards
            .iter_mut()
            .map(|slot| {
                slot.as_mut().map(|shard| {
                    shard.engine.submit(QueryRequest {
                        query: req.query.clone(),
                        entries: vec![shard.entry],
                        arrival_ns: req.arrival_ns,
                        deadline_ns: req.deadline_ns,
                    })
                })
            })
            .collect();
        self.queries.push(Scatter {
            arrival_ns: req.arrival_ns,
            sessions,
        });
        id
    }

    /// Routes one update to its owning shard and returns the cluster id.
    /// Deletes carry **global** ids and must reference a vector the plan
    /// already maps (run the cluster to completion to resolve pending
    /// inserts first); inserts are placed by the plan's policy. Updates
    /// that cannot be routed — an out-of-range delete, or a route to an
    /// empty shard — are rejected at the cluster router.
    pub fn submit_update(&mut self, req: UpdateRequest) -> ClusterUpdateId {
        let id = self.routes.len();
        let route = match &req.op {
            UpdateOp::Delete(g) => {
                if (*g as usize) < self.plan.len() {
                    let shard = self.plan.shard_of(*g);
                    let local = self.plan.local_of(*g);
                    Some((shard, UpdateOp::Delete(local), Some(*g)))
                } else {
                    None
                }
            }
            UpdateOp::Insert(v) => {
                // Route only among staged shards: a plan can leave a
                // shard empty (no engine), and the policy must skip it
                // rather than reject inserts forever.
                let live: Vec<bool> = self.shards.iter().map(Option::is_some).collect();
                self.plan
                    .route_insert(&self.inflight_inserts, &live)
                    .map(|shard| (shard, UpdateOp::Insert(v.clone()), None))
            }
        };
        let route = match route {
            Some((shard, op, delete)) if self.shards[shard].is_some() => {
                if delete.is_none() {
                    self.inflight_inserts[shard] += 1;
                }
                let engine = &mut self.shards[shard].as_mut().expect("checked").engine;
                let local = engine.submit_update(UpdateRequest {
                    op,
                    arrival_ns: req.arrival_ns,
                });
                Route::Shard {
                    shard,
                    local,
                    delete,
                }
            }
            _ => Route::Cluster {
                arrival_ns: req.arrival_ns,
            },
        };
        self.routes.push(route);
        id
    }

    /// Merged state of a cluster query: `Completed` only once every
    /// shard session completed.
    pub fn poll(&self, id: ClusterQueryId) -> SessionState {
        let states: Vec<SessionState> = self.queries[id]
            .sessions
            .iter()
            .enumerate()
            .filter_map(|(s, q)| {
                q.map(|q| {
                    self.shards[s]
                        .as_ref()
                        .expect("session on staged shard")
                        .engine
                        .poll(q)
                })
            })
            .collect();
        merge_states(&states)
    }

    /// State of a cluster update (cluster-rejected updates report
    /// `Rejected` immediately).
    pub fn poll_update(&self, id: ClusterUpdateId) -> SessionState {
        match &self.routes[id] {
            Route::Cluster { .. } => SessionState::Rejected,
            Route::Shard { shard, local, .. } => self.shards[*shard]
                .as_ref()
                .expect("routed to staged shard")
                .engine
                .poll_update(*local),
        }
    }

    /// Drives every shard to completion, stepping shards in index order
    /// each round on one shared worker pool, and returns the gathered
    /// report.
    pub fn run_to_completion(&mut self) -> ClusterReport {
        let order: Vec<usize> = (0..self.shards.len()).collect();
        self.run_to_completion_ordered(&order)
    }

    /// [`run_to_completion`](Self::run_to_completion) stepping shards in
    /// the given order each round. Shards share no state, so the report
    /// is **invariant** under the order (pinned by
    /// `tests/exec_determinism.rs`); the knob exists to prove exactly
    /// that.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..num_shards()`.
    pub fn run_to_completion_ordered(&mut self, order: &[usize]) -> ClusterReport {
        let mut seen = vec![false; self.shards.len()];
        for &s in order {
            assert!(s < seen.len() && !seen[s], "order must be a permutation");
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "order must cover every shard");

        let config = self.config;
        let shards = &mut self.shards;
        crate::exec::with_pool(
            config.exec_threads,
            move |job: ServeJob| run_serve_job(job, config),
            |pool| loop {
                let mut more = false;
                for &s in order {
                    if let Some(shard) = shards[s].as_mut() {
                        more |= shard.engine.step_with(Some(&mut *pool));
                    }
                }
                if !more {
                    break;
                }
            },
        );
        self.report()
    }

    /// Resolves terminal update sessions (in cluster submission order)
    /// into cluster outcomes, extending the plan with the global id of
    /// every completed insert. Stops at the first still-running update
    /// so global ids are always assigned in submission order.
    fn resolve_updates(&mut self, reports: &[Option<ServeReport>]) {
        while self.resolved.len() < self.routes.len() {
            let id = self.resolved.len();
            let outcome = match &self.routes[id] {
                Route::Cluster { arrival_ns } => UpdateOutcome {
                    id,
                    state: SessionState::Rejected,
                    arrival_ns: *arrival_ns,
                    admitted_ns: *arrival_ns,
                    completed_ns: *arrival_ns,
                    assigned: None,
                    repaired: 0,
                    pages_programmed: 0,
                },
                Route::Shard {
                    shard,
                    local,
                    delete,
                } => {
                    let report = reports[*shard].as_ref().expect("routed to staged shard");
                    let o = &report.update_outcomes[*local];
                    match o.state {
                        SessionState::Completed | SessionState::Rejected => {}
                        _ => break, // still pending on its shard
                    }
                    let assigned = match (o.state, delete) {
                        (SessionState::Completed, Some(g)) => Some(*g),
                        (SessionState::Completed, None) => {
                            self.inflight_inserts[*shard] -= 1;
                            // Bind the *shard-reported* local slot: the
                            // shard applies updates in arrival order,
                            // which need not match cluster submission
                            // order, so the slot cannot be inferred.
                            let local = o.assigned.expect("completed insert reports its local id");
                            Some(self.plan.push_at(*shard, local))
                        }
                        (_, None) => {
                            self.inflight_inserts[*shard] -= 1;
                            None
                        }
                        _ => None,
                    };
                    UpdateOutcome {
                        id,
                        state: o.state,
                        arrival_ns: o.arrival_ns,
                        admitted_ns: o.admitted_ns,
                        completed_ns: o.completed_ns,
                        assigned,
                        repaired: o.repaired,
                        pages_programmed: o.pages_programmed,
                    }
                }
            };
            self.resolved.push(outcome);
        }
    }

    /// Gathers the cluster report: resolves updates, translates every
    /// per-shard result list into global ids, and stable-merges each
    /// query's lists by `(distance, global id)`.
    ///
    /// Meaningful once [`run_to_completion`](Self::run_to_completion)
    /// has drained every session (a mid-stream snapshot only covers the
    /// resolved prefix of updates).
    ///
    /// # Panics
    /// Panics if a result references an insert that is not yet resolved
    /// (only possible mid-stream).
    pub fn report(&mut self) -> ClusterReport {
        let reports: Vec<Option<ServeReport>> = self
            .shards
            .iter()
            .map(|s| s.as_ref().map(|s| s.engine.report()))
            .collect();
        self.resolve_updates(&reports);

        let k = self.serve.k;
        let outcomes: Vec<ClusterQueryOutcome> = self
            .queries
            .iter()
            .enumerate()
            .map(|(id, scatter)| {
                let mut states = Vec::new();
                let mut merged: Vec<Neighbor> = Vec::new();
                let mut arrival = Nanos::MAX;
                let mut completed = 0;
                let mut hops = 0;
                for (s, session) in scatter.sessions.iter().enumerate() {
                    let Some(q) = session else { continue };
                    let report = reports[s].as_ref().expect("session on staged shard");
                    let o = &report.outcomes[*q];
                    states.push(o.state);
                    arrival = arrival.min(o.arrival_ns);
                    completed = completed.max(o.completed_ns);
                    hops += o.hops;
                    merged.extend(
                        o.results
                            .iter()
                            .map(|n| Neighbor::new(n.distance, self.plan.global_of(s, n.id))),
                    );
                }
                // The gather: a deterministic stable merge — Neighbor's
                // total order is (distance, id), ties broken by global id.
                merged.sort_unstable();
                merged.truncate(k);
                ClusterQueryOutcome {
                    id,
                    state: merge_states(&states),
                    arrival_ns: if arrival == Nanos::MAX {
                        scatter.arrival_ns
                    } else {
                        arrival
                    },
                    completed_ns: completed,
                    hops,
                    results: merged,
                }
            })
            .collect();

        let shards: Vec<ShardBreakdown> = reports
            .into_iter()
            .enumerate()
            .filter_map(|(s, report)| {
                report.map(|report| ShardBreakdown {
                    shard: s,
                    vertices: self.plan.shard_len(s),
                    hops: report.outcomes.iter().map(|o| o.hops).sum(),
                    report,
                })
            })
            .collect();

        let first_arrival = outcomes
            .iter()
            .map(|o| o.arrival_ns)
            .chain(self.resolved.iter().map(|o| o.arrival_ns))
            .min();
        let last_completion = outcomes
            .iter()
            .map(|o| o.completed_ns)
            .chain(self.resolved.iter().map(|o| o.completed_ns))
            .max()
            .unwrap_or(0);
        ClusterReport {
            outcomes,
            update_outcomes: self.resolved.clone(),
            shards,
            makespan_ns: last_completion.saturating_sub(first_arrival.unwrap_or(0)),
        }
    }
}

/// Merges per-shard session states into the cluster-level state.
fn merge_states(states: &[SessionState]) -> SessionState {
    if states.is_empty() {
        return SessionState::Rejected;
    }
    if states.contains(&SessionState::Rejected) {
        return SessionState::Rejected;
    }
    if states.contains(&SessionState::Expired) {
        return SessionState::Expired;
    }
    if states.iter().all(|&s| s == SessionState::Completed) {
        return SessionState::Completed;
    }
    // Mixed non-terminal states: report the least-advanced stage.
    for s in [
        SessionState::Pending,
        SessionState::Queued,
        SessionState::Running,
    ] {
        if states.contains(&s) {
            return s;
        }
    }
    unreachable!("the probes above cover every SessionState variant")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_anns::vamana::{Vamana, VamanaParams};
    use ndsearch_vector::shard::ShardPolicy;
    use ndsearch_vector::synthetic::DatasetSpec;

    fn vamana_builder(ds: &Dataset) -> (Box<dyn MutableIndex>, VectorId) {
        let index = Vamana::build(ds, VamanaParams::default());
        let entry = index.medoid();
        (Box::new(index), entry)
    }

    fn fixture(n: usize, q: usize) -> (NdsConfig, Dataset, Dataset) {
        let (base, queries) = DatasetSpec::sift_scaled(n, q).build_pair();
        let mut config = NdsConfig::scaled_for(n * 2, base.stored_vector_bytes());
        config.ecc.hard_decision_failure_prob = 0.0;
        (config, base, queries)
    }

    #[test]
    fn cluster_serves_and_merges_globally() {
        let (config, base, queries) = fixture(400, 8);
        let plan = ShardPlan::partition(base.len(), 4, ShardPolicy::Hash, 11);
        let mut cluster =
            ClusterEngine::stage(&config, ServeConfig::default(), plan, &base, vamana_builder);
        for (i, (_, q)) in queries.iter().enumerate() {
            cluster.submit(ClusterQueryRequest::at(i as Nanos * 500, q.to_vec()));
        }
        let report = cluster.run_to_completion();
        assert_eq!(report.completed(), 8);
        assert_eq!(report.shards.len(), 4);
        for o in &report.outcomes {
            assert_eq!(o.results.len(), ServeConfig::default().k);
            // Global ids, sorted by (distance, id), no duplicates.
            assert!(o.results.iter().all(|n| (n.id as usize) < base.len()));
            assert!(o.results.windows(2).all(|w| w[0] < w[1]));
            assert!(o.hops > 0);
        }
        assert!(report.load_imbalance() >= 1.0);
        assert!(report.qps() > 0.0);
        assert!(report.latency().p50_ns > 0);
    }

    #[test]
    fn updates_route_to_owning_shards() {
        let (config, base, extra) = fixture(300, 30);
        let plan = ShardPlan::partition(base.len(), 3, ShardPolicy::BalancedSize, 0);
        let mut cluster =
            ClusterEngine::stage(&config, ServeConfig::default(), plan, &base, vamana_builder);
        // Deletes by global id; inserts routed by the balanced policy.
        let d0 = cluster.submit_update(UpdateRequest::delete_at(0, 5));
        let d1 = cluster.submit_update(UpdateRequest::delete_at(0, 250));
        let bad = cluster.submit_update(UpdateRequest::delete_at(0, 9_999));
        let mut ins = Vec::new();
        for (_, v) in extra.iter() {
            ins.push(cluster.submit_update(UpdateRequest::insert_at(10, v.to_vec())));
        }
        let report = cluster.run_to_completion();
        assert_eq!(cluster.poll_update(d0), SessionState::Completed);
        assert_eq!(cluster.poll_update(d1), SessionState::Completed);
        assert_eq!(cluster.poll_update(bad), SessionState::Rejected);
        assert_eq!(report.updates_completed(), 2 + extra.len());
        assert_eq!(report.updates_rejected(), 1);
        // Completed inserts got consecutive global ids in submission
        // order, and the plan now maps them.
        for (i, &u) in ins.iter().enumerate() {
            let o = &report.update_outcomes[u];
            assert_eq!(o.state, SessionState::Completed);
            assert_eq!(o.assigned, Some((300 + i) as VectorId));
            let g = o.assigned.unwrap();
            let s = cluster.plan().shard_of(g);
            assert_eq!(cluster.plan().global_of(s, cluster.plan().local_of(g)), g);
            // The owning shard's deployment actually grew.
            let deploy = cluster.shard_engine(s).unwrap().deployment();
            assert!(deploy.dataset().len() > 100);
        }
        // Balanced routing kept shard sizes within one of each other.
        let sizes: Vec<usize> = (0..3).map(|s| cluster.plan().shard_len(s)).collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(hi - lo <= 1, "sizes {sizes:?}");
        // Deletes tombstoned on the owning shard.
        let s5 = cluster.plan().shard_of(5);
        assert!(cluster
            .shard_engine(s5)
            .unwrap()
            .deployment()
            .is_deleted(cluster.plan().local_of(5)));
        // Flash write path charged somewhere.
        assert!(report.update_totals().pages_programmed > 0);
        assert!(report.update_totals().write_amplification() > 0.0);
    }

    #[test]
    fn single_shard_cluster_matches_unsharded_engine() {
        let (config, base, queries) = fixture(300, 6);
        // Unsharded reference.
        let index = Vamana::build(&base, VamanaParams::default());
        let deploy = Deployment::stage(&config, Box::new(index.clone()), base.clone());
        let mut flat = ServeEngine::with_deployment(&config, ServeConfig::default(), deploy);
        for (i, (_, q)) in queries.iter().enumerate() {
            flat.submit(QueryRequest::at(
                i as Nanos * 1_000,
                q.to_vec(),
                vec![index.medoid()],
            ));
        }
        let flat_report = flat.run_to_completion();

        let plan = ShardPlan::partition(base.len(), 1, ShardPolicy::BalancedSize, 0);
        let mut cluster =
            ClusterEngine::stage(&config, ServeConfig::default(), plan, &base, vamana_builder);
        for (i, (_, q)) in queries.iter().enumerate() {
            cluster.submit(ClusterQueryRequest::at(i as Nanos * 1_000, q.to_vec()));
        }
        let report = cluster.run_to_completion();
        // One shard holding everything is the unsharded engine: same
        // results, same timing.
        for (c, f) in report.outcomes.iter().zip(&flat_report.outcomes) {
            assert_eq!(c.results, f.results);
            assert_eq!(c.completed_ns, f.completed_ns);
        }
    }

    #[test]
    fn out_of_order_arrivals_keep_global_ids_consistent() {
        // Shards apply updates in *arrival* order; the cluster assigns
        // global ids in *submission* order. A later-submitted insert
        // with an earlier arrival therefore lands in an earlier local
        // slot — the plan must bind each global id to the slot that
        // actually holds that insert's vector.
        let (config, base, extra) = fixture(200, 4);
        let plan = ShardPlan::partition(base.len(), 1, ShardPolicy::BalancedSize, 0);
        let mut cluster =
            ClusterEngine::stage(&config, ServeConfig::default(), plan, &base, vamana_builder);
        let va = extra.vector(0).to_vec();
        let vb = extra.vector(1).to_vec();
        let a = cluster.submit_update(UpdateRequest::insert_at(1_000_000, va.clone()));
        let b = cluster.submit_update(UpdateRequest::insert_at(0, vb.clone()));
        let report = cluster.run_to_completion();
        assert_eq!(report.updates_completed(), 2);
        let (ga, gb) = (
            report.update_outcomes[a].assigned.unwrap(),
            report.update_outcomes[b].assigned.unwrap(),
        );
        assert_eq!((ga, gb), (200, 201), "dense global ids, submission order");
        let dataset = cluster.shard_engine(0).unwrap().deployment().dataset();
        let plan = cluster.plan();
        assert_eq!(
            dataset.vector(plan.local_of(ga)),
            &va[..],
            "global id A dereferences B's vector"
        );
        assert_eq!(dataset.vector(plan.local_of(gb)), &vb[..]);
    }

    #[test]
    fn hash_routing_survives_empty_shards() {
        // 12 vectors over 8 hash shards leaves some shards empty; insert
        // routing must probe past them instead of rejecting forever.
        let (config, _, extra) = fixture(200, 40);
        let small = {
            let mut ds = Dataset::new(extra.dim());
            ds.set_stored_vector_bytes(extra.stored_vector_bytes());
            for (_, v) in extra.iter().take(12) {
                ds.try_push(v).unwrap();
            }
            ds
        };
        let plan = ShardPlan::partition(small.len(), 8, ShardPolicy::Hash, 3);
        assert!(
            (0..8).any(|s| plan.shard_len(s) == 0),
            "fixture should leave at least one shard empty"
        );
        let mut cluster = ClusterEngine::stage(
            &config,
            ServeConfig::default(),
            plan,
            &small,
            vamana_builder,
        );
        for (_, v) in extra.iter() {
            cluster.submit_update(UpdateRequest::insert_at(0, v.to_vec()));
        }
        let report = cluster.run_to_completion();
        assert_eq!(report.updates_completed(), 40, "inserts livelocked");
        assert_eq!(report.updates_rejected(), 0);
        assert_eq!(cluster.plan().len(), 52);
    }

    #[test]
    fn deadline_expiry_and_mixed_states_merge() {
        let (config, base, queries) = fixture(250, 1);
        let plan = ShardPlan::partition(base.len(), 2, ShardPolicy::BalancedSize, 0);
        let mut cluster =
            ClusterEngine::stage(&config, ServeConfig::default(), plan, &base, vamana_builder);
        let mut req = ClusterQueryRequest::at(0, queries.vector(0).to_vec());
        req.deadline_ns = Some(1);
        let id = cluster.submit(req);
        let report = cluster.run_to_completion();
        assert_eq!(report.outcomes[id].state, SessionState::Expired);
        assert_eq!(report.expired(), 1);
    }
}
