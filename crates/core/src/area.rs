//! Area and storage-density model (§VII-B "Area and storage density").
//!
//! The customized logic in SearSSD totals 43.09 mm² at 32 nm — 82 % and
//! 87 % less than DeepStore's chip-level (236.8 mm²) and channel-level
//! (320 mm²) accelerators, and far below SmartSSD's ~800 mm² FPGA. Adding
//! logic inside the SSD costs storage density: Samsung 983 DCT-class
//! V-NAND MLC stores ~6 Gb/mm²; with SearSSD's logic the effective density
//! drops ~6 % to ~5.64 Gb/mm².

use crate::energy::searssd_components;

/// Area accounting for an accelerator design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Customized-logic area, mm².
    pub logic_mm2: f64,
    /// NAND storage density without the logic, Gb/mm².
    pub base_density_gb_per_mm2: f64,
    /// Device capacity in bytes.
    pub capacity_bytes: u64,
}

impl AreaModel {
    /// The paper's SearSSD numbers: Table I logic area, 6 Gb/mm² V-NAND,
    /// 512 GB of SiN capacity.
    pub fn searssd_default() -> Self {
        Self {
            logic_mm2: searssd_components().iter().map(|c| c.area_mm2).sum(),
            base_density_gb_per_mm2: 6.0,
            capacity_bytes: 512 << 30,
        }
    }

    /// Reference areas of the baselines (§VII-B).
    pub fn baseline_areas_mm2() -> Vec<(&'static str, f64)> {
        vec![
            ("NDSEARCH (SearSSD logic)", 43.09),
            ("DeepStore DS-cp", 236.8),
            ("DeepStore DS-c", 320.0),
            ("SmartSSD FPGA", 800.0),
        ]
    }

    /// Capacity in gigabits.
    pub fn capacity_gbits(&self) -> f64 {
        self.capacity_bytes as f64 * 8.0 / 1e9 * (1e9 / (1 << 30) as f64)
    }

    /// Die area the raw NAND needs, mm².
    pub fn nand_area_mm2(&self) -> f64 {
        let gbits = self.capacity_bytes as f64 * 8.0 / (1 << 30) as f64;
        gbits / self.base_density_gb_per_mm2
    }

    /// Effective storage density after adding the logic, Gb/mm².
    pub fn effective_density(&self) -> f64 {
        let gbits = self.capacity_bytes as f64 * 8.0 / (1 << 30) as f64;
        gbits / (self.nand_area_mm2() + self.logic_mm2)
    }

    /// Relative density degradation (0..1).
    pub fn density_degradation(&self) -> f64 {
        1.0 - self.effective_density() / self.base_density_gb_per_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn searssd_density_matches_paper() {
        let a = AreaModel::searssd_default();
        // Paper: 6 Gb/mm² → 5.64 Gb/mm² (~6 % degradation).
        let d = a.effective_density();
        assert!((d - 5.64).abs() < 0.05, "density = {d}");
        let deg = a.density_degradation();
        assert!((deg - 0.06).abs() < 0.01, "degradation = {deg}");
    }

    #[test]
    fn ndsearch_logic_is_smallest() {
        let areas = AreaModel::baseline_areas_mm2();
        let nds = areas[0].1;
        for (name, area) in &areas[1..] {
            assert!(nds < *area, "{name} should be larger than SearSSD");
        }
        // 82% / 87% smaller than DS-cp / DS-c.
        assert!((1.0 - nds / 236.8 - 0.82).abs() < 0.01);
        assert!((1.0 - nds / 320.0 - 0.87).abs() < 0.01);
    }
}
