//! Versioned, mutable deployments: online insert/delete as a first-class
//! serving workload.
//!
//! The offline pipeline ([`crate::pipeline::Prepared`]) stages a build-once
//! snapshot; a deployed system serving live traffic ingests vectors
//! continuously. A [`Deployment`] bundles everything that must evolve
//! together when it does:
//!
//! * the **live index** — any [`MutableIndex`] (HNSW, Vamana) whose
//!   construction kernels also drive incremental inserts;
//! * the **dataset** — construction-order vectors, appended by
//!   [`Dataset::try_push`];
//! * the **staged overlay** — the flash-resident LUNCSR as a read-mostly
//!   base plus append-only delta ([`ndsearch_graph::luncsr::LunCsr`]),
//!   kept in lock-step with the index through adjacency patches and an
//!   identity-extended permutation;
//! * the **flash write path** — every insert appends its vector through
//!   the FTL as a page program, charging tPROG latency
//!   ([`ndsearch_flash::timing::FlashTiming::t_program_page_ns`]) and wear
//!   ([`ndsearch_flash::wear::WearModel`]); compaction erases the old
//!   blocks and rewrites a fresh base.
//!
//! The dataset/graph/prepared views are held in [`Arc`]s: each scheduling
//! round of the serving engine snapshots them into its worker jobs, so
//! updates applied between rounds never race a search — and because the
//! snapshots are taken at deterministic round boundaries, mixed
//! query+update serving stays bit-identical at any
//! [`crate::config::NdsConfig::exec_threads`].

use std::sync::Arc;

use ndsearch_anns::index::MutableIndex;
use ndsearch_anns::trace::BatchTrace;
use ndsearch_flash::ftl::Ftl;
use ndsearch_flash::timing::Nanos;
use ndsearch_flash::wear::WearModel;
use ndsearch_graph::csr::Csr;
use ndsearch_vector::dataset::{Dataset, ShapeError};
use ndsearch_vector::quant::QuantCodes;
use ndsearch_vector::VectorId;

use crate::config::NdsConfig;
use crate::pipeline::Prepared;

/// Running totals of the update write path, surfaced by the serving
/// report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateTotals {
    /// Vectors inserted online.
    pub inserts: u64,
    /// Vertices tombstoned online.
    pub deletes: u64,
    /// NAND pages programmed by the append path.
    pub pages_programmed: u64,
    /// Blocks erased (compaction).
    pub blocks_erased: u64,
    /// Flash program/erase time charged.
    pub program_ns: Nanos,
    /// User payload bytes ingested (vector bytes, before padding).
    pub user_bytes: u64,
    /// Bytes physically programmed into NAND (whole pages).
    pub flash_bytes: u64,
}

impl UpdateTotals {
    /// Write amplification: flash bytes programmed per user byte ingested
    /// (0 while nothing has been programmed).
    pub fn write_amplification(&self) -> f64 {
        if self.user_bytes == 0 {
            0.0
        } else {
            self.flash_bytes as f64 / self.user_bytes as f64
        }
    }

    /// Element-wise accumulation (e.g. cluster-wide totals across
    /// per-shard deployments). Destructures so a future field cannot be
    /// silently dropped from aggregates.
    pub fn merge(&mut self, other: &UpdateTotals) {
        let UpdateTotals {
            inserts,
            deletes,
            pages_programmed,
            blocks_erased,
            program_ns,
            user_bytes,
            flash_bytes,
        } = *other;
        self.inserts += inserts;
        self.deletes += deletes;
        self.pages_programmed += pages_programmed;
        self.blocks_erased += blocks_erased;
        self.program_ns += program_ns;
        self.user_bytes += user_bytes;
        self.flash_bytes += flash_bytes;
    }
}

/// Why an online insert was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertError {
    /// The vector's dimensionality mismatches the dataset's.
    Shape(ShapeError),
    /// The configured flash geometry has no free slot left; the
    /// deployment needs a larger geometry or an offline rebuild.
    DeviceFull,
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertError::Shape(e) => e.fmt(f),
            InsertError::DeviceFull => f.write_str("device full: no free flash slot"),
        }
    }
}

impl std::error::Error for InsertError {}

impl From<ShapeError> for InsertError {
    fn from(e: ShapeError) -> Self {
        InsertError::Shape(e)
    }
}

/// Cost and effect of one applied update, in simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedUpdate {
    /// Construction-order id assigned (inserts) or deleted.
    pub id: VectorId,
    /// Vertices whose adjacency was rewritten by backlink repair.
    pub repaired: usize,
    /// Pages programmed by this update (0 until the open page fills).
    pub pages_programmed: u64,
    /// Simulated time the update occupied the device (program + metadata
    /// bookkeeping), charged after the round that admitted it.
    pub duration_ns: Nanos,
    /// Of which: flash program time.
    pub program_ns: Nanos,
}

/// What a compaction did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Physical blocks erased (the old overlay's footprint).
    pub blocks_erased: u64,
    /// Pages programmed rewriting the fresh base.
    pub pages_programmed: u64,
    /// Simulated duration (erases and programs overlap across planes,
    /// serialize within one).
    pub duration_ns: Nanos,
}

/// A versioned, mutable deployment (see the [module docs](self)).
pub struct Deployment {
    /// The live index; `None` for query-only deployments staged from
    /// borrowed parts (updates are rejected).
    index: Option<Box<dyn MutableIndex>>,
    dataset: Arc<Dataset>,
    graph: Arc<Csr>,
    /// Whether `graph` lags the index (inserts mark it dirty; the
    /// snapshot is refreshed once per round, not once per update).
    graph_dirty: bool,
    prepared: Arc<Prepared>,
    /// DRAM-resident compressed codes for traversal, trained once at
    /// staging from [`NdsConfig::quantization`] (`None` when
    /// quantization is off or the `NDSEARCH_NO_QUANT` override is set).
    /// Inserts encode through the same trained quantizer; compaction
    /// re-packs the table.
    codes: Option<Arc<QuantCodes>>,
    ftl: Ftl,
    wear: WearModel,
    totals: UpdateTotals,
    /// Vector slots accumulated in the controller's open append page; the
    /// page program fires when it fills.
    open_slots: u32,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("mutable", &self.index.is_some())
            .field("vertices", &self.dataset.len())
            .field("delta", &self.prepared.luncsr.delta_vertices())
            .field("tombstones", &self.prepared.luncsr.tombstone_count())
            .field("totals", &self.totals)
            .finish()
    }
}

/// Trains the deployment's code table per `config.quantization`, unless
/// the `NDSEARCH_NO_QUANT` environment flag (same parsing rule as
/// `NDSEARCH_NO_SIMD`; see `ndsearch_vector::env`) forces compressed
/// search off for an A/B run.
fn train_codes(config: &NdsConfig, dataset: &Dataset) -> Option<Arc<QuantCodes>> {
    if ndsearch_vector::env::env_flag("NDSEARCH_NO_QUANT") {
        return None;
    }
    QuantCodes::train(config.quantization, dataset, config.seed ^ 0xC0DE).map(Arc::new)
}

impl Deployment {
    /// Stages a mutable deployment: runs the offline pipeline over the
    /// index's current base graph and takes ownership of index + dataset.
    ///
    /// # Panics
    /// Panics if the dataset and index disagree on vertex count or the
    /// dataset does not fit the configured geometry.
    pub fn stage(config: &NdsConfig, index: Box<dyn MutableIndex>, dataset: Dataset) -> Self {
        let prepared =
            Prepared::stage(config, index.base_graph(), &dataset, &BatchTrace::default());
        let graph = Arc::new(index.base_graph().clone());
        let open_slots =
            (prepared.luncsr.num_vertices() as u32) % prepared.luncsr.mapping().slots_per_page();
        let codes = train_codes(config, &dataset);
        Self {
            index: Some(index),
            graph,
            graph_dirty: false,
            prepared: Arc::new(prepared),
            dataset: Arc::new(dataset),
            codes,
            ftl: Ftl::new(config.geometry, config.seed ^ 0x5EED),
            wear: WearModel::new(config.geometry),
            totals: UpdateTotals::default(),
            open_slots,
        }
    }

    /// Wraps already-staged parts into a query-only deployment (the
    /// legacy serving path); updates are rejected.
    pub fn from_parts(
        config: &NdsConfig,
        prepared: Prepared,
        dataset: Dataset,
        graph: Csr,
    ) -> Self {
        let open_slots =
            (prepared.luncsr.num_vertices() as u32) % prepared.luncsr.mapping().slots_per_page();
        let codes = train_codes(config, &dataset);
        Self {
            index: None,
            graph: Arc::new(graph),
            graph_dirty: false,
            prepared: Arc::new(prepared),
            dataset: Arc::new(dataset),
            codes,
            ftl: Ftl::new(config.geometry, config.seed ^ 0x5EED),
            wear: WearModel::new(config.geometry),
            totals: UpdateTotals::default(),
            open_slots,
        }
    }

    /// Whether this deployment accepts updates.
    pub fn is_mutable(&self) -> bool {
        self.index.is_some()
    }

    /// The construction-order dataset snapshot.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// The live construction-order graph snapshot. May lag the index by
    /// the updates applied since the last
    /// [`refresh_graph`](Self::refresh_graph) — the serving engine
    /// refreshes once per round boundary.
    pub fn graph(&self) -> &Arc<Csr> {
        &self.graph
    }

    /// Re-snapshots the graph from the live index if any insert has been
    /// applied since the last refresh (one O(V+E) copy per *round* with
    /// updates, instead of one per update).
    pub fn refresh_graph(&mut self) {
        if self.graph_dirty {
            if let Some(index) = self.index.as_mut() {
                index.sync_base_graph();
                self.graph = Arc::new(index.base_graph().clone());
            }
            self.graph_dirty = false;
        }
    }

    /// The staged physical overlay snapshot.
    pub fn prepared(&self) -> &Arc<Prepared> {
        &self.prepared
    }

    /// The DRAM-resident compressed code table, when
    /// [`NdsConfig::quantization`] staged one. Kept in lock-step with
    /// the dataset: inserts append through the same trained quantizer
    /// and compaction re-packs it.
    pub fn codes(&self) -> Option<&Arc<QuantCodes>> {
        self.codes.as_ref()
    }

    /// The live index, if this deployment is mutable.
    pub fn index(&self) -> Option<&dyn MutableIndex> {
        self.index.as_deref()
    }

    /// Update write-path totals so far.
    pub fn totals(&self) -> UpdateTotals {
        self.totals
    }

    /// The wear model charged by the update write path.
    pub fn wear(&self) -> &WearModel {
        &self.wear
    }

    /// Bulk-ages every block of the wear model by `cycles` P/E cycles —
    /// the wear-out degradation trigger a failure schedule fires on this
    /// deployment's device (see [`WearModel::age_uniform`]).
    pub fn age_wear(&mut self, cycles: u32) {
        self.wear.age_uniform(cycles);
    }

    /// Whether a construction-order vertex has been tombstoned.
    pub fn is_deleted(&self, id: VectorId) -> bool {
        self.index
            .as_deref()
            .is_some_and(|ix| (id as usize) < self.dataset.len() && ix.is_deleted(id))
    }

    /// Vertices present and not tombstoned.
    pub fn live_count(&self) -> usize {
        self.index
            .as_deref()
            .map_or(self.dataset.len(), MutableIndex::live_count)
    }

    /// Applies one online insert: appends the vector, links it through the
    /// index's incremental-construction kernel, extends the flash overlay
    /// (delta append + backlink patches), and routes the page program
    /// through the FTL — charging tPROG latency when the open append page
    /// fills, and one block P/E cycle when the append opens a fresh
    /// (erased) block.
    ///
    /// The [`graph`](Self::graph) snapshot is *not* refreshed here — the
    /// serving engine calls [`refresh_graph`](Self::refresh_graph) once
    /// per round boundary, so a burst of updates pays one graph copy, not
    /// one per update.
    ///
    /// # Errors
    /// Returns [`InsertError::Shape`] on a dimensionality mismatch and
    /// [`InsertError::DeviceFull`] when the geometry has no free slot —
    /// both surface as rejected update sessions, not panics.
    pub fn insert(
        &mut self,
        config: &NdsConfig,
        vector: &[f32],
    ) -> Result<AppliedUpdate, InsertError> {
        assert!(self.index.is_some(), "insert on an immutable deployment");
        {
            let mapping = self.prepared.luncsr.mapping();
            if mapping.len() as u64 >= mapping.capacity_slots() {
                return Err(InsertError::DeviceFull);
            }
        }
        let id = Arc::make_mut(&mut self.dataset).try_push(vector)?;
        if let Some(codes) = self.codes.as_mut() {
            // Same trained quantizer as staging: the new row's code is
            // identical to what a fresh repack would produce.
            Arc::make_mut(codes).push(self.dataset.vector(id));
        }
        let index = self.index.as_mut().expect("checked above");
        let report = index.insert(&self.dataset, id);
        self.graph_dirty = true;

        // ---- Extend the staged overlay in lock-step, reading the live
        // adjacency lists (the CSR snapshot lags until the next round
        // boundary — no O(V+E) rebuild per update). ----
        let prepared = Arc::make_mut(&mut self.prepared);
        let adj_phys: Vec<VectorId> = index
            .live_neighbors(id)
            .iter()
            .map(|&nb| prepared.perm.new_of(nb))
            .collect();
        prepared.perm.extend_identity(1);
        let v_phys = prepared.luncsr.append_vertex(adj_phys);
        debug_assert_eq!(v_phys, prepared.perm.new_of(id));
        for &r in &report.repaired {
            let list = index
                .live_neighbors(r)
                .iter()
                .map(|&nb| prepared.perm.new_of(nb))
                .collect();
            prepared.luncsr.set_neighbors(prepared.perm.new_of(r), list);
        }

        // ---- Flash write path: the append lands in the controller's open
        // page; when it fills, a <ProgramPage> goes through the FTL. A
        // P/E *cycle* is charged once per block — when the program lands
        // on the block's first page (the append-only walk writes a fresh
        // block front-to-back after one erase) — matching the refresh
        // path's one-`note_program`-per-block-move convention. ----
        let timing = &config.timing;
        let spp = prepared.luncsr.mapping().slots_per_page();
        self.open_slots += 1;
        let mut pages_programmed = 0u64;
        let mut program_ns: Nanos = 0;
        if self.open_slots >= spp {
            self.open_slots = 0;
            pages_programmed = 1;
            let mapping = prepared.luncsr.mapping();
            let plane = mapping.global_plane_of(v_phys);
            let physical = self
                .ftl
                .program_page(plane, mapping.logical_block_of(v_phys));
            if mapping.page_of(v_phys) == 0 {
                self.wear.note_program(plane, physical);
            }
            program_ns = timing.t_program_page_ns
                + timing.channel_transfer_ns(u64::from(config.geometry.page_bytes));
            self.totals.flash_bytes += u64::from(config.geometry.page_bytes);
        }
        // Metadata bookkeeping: the embedded cores rewrite the repaired
        // vertices' overlay entries in SSD DRAM.
        let bookkeeping = (1 + report.repaired.len() as u64) * timing.t_embedded_op_ns;

        self.totals.inserts += 1;
        self.totals.pages_programmed += pages_programmed;
        self.totals.program_ns += program_ns;
        self.totals.user_bytes += self.dataset.stored_vector_bytes() as u64;
        Ok(AppliedUpdate {
            id,
            repaired: report.repaired.len(),
            pages_programmed,
            duration_ns: program_ns + bookkeeping,
            program_ns,
        })
    }

    /// Applies one online delete (tombstone). Returns `None` when the id
    /// is out of range or already tombstoned.
    pub fn delete(&mut self, config: &NdsConfig, id: VectorId) -> Option<AppliedUpdate> {
        assert!(self.index.is_some(), "delete on an immutable deployment");
        let bound = self.dataset.len();
        let index = self.index.as_mut().expect("checked above");
        if (id as usize) >= bound || !index.delete(id) {
            return None;
        }
        let prepared = Arc::make_mut(&mut self.prepared);
        prepared.luncsr.tombstone(prepared.perm.new_of(id));
        self.totals.deletes += 1;
        Some(AppliedUpdate {
            id,
            repaired: 0,
            pages_programmed: 0,
            duration_ns: config.timing.t_embedded_op_ns,
            program_ns: 0,
        })
    }

    /// Compacts the deployment: re-runs reorder + placement over the live
    /// graph (folding the delta into a fresh read-mostly base), erases the
    /// blocks the old overlay occupied, and rewrites every page — charging
    /// erase/program latency and wear. Tombstones stay marked on the fresh
    /// base (they are dropped from the id space only by a full offline
    /// rebuild), so query results over the compacted deployment match the
    /// overlay's exactly.
    pub fn compact(&mut self, config: &NdsConfig) -> CompactionReport {
        self.refresh_graph();
        let timing = &config.timing;
        // Erase the old footprint: every distinct (plane, logical block)
        // the overlay occupies goes through the FTL as an erase; wear is
        // charged on the physical block it resolves to. One erase +
        // rewrite is one P/E cycle, charged here only — the rewrite loop
        // below must not charge the (largely identical) blocks again.
        let occupied: std::collections::BTreeSet<(u32, u32)> = {
            let lc = &self.prepared.luncsr;
            (0..lc.num_vertices() as u32)
                .map(|v| {
                    (
                        lc.mapping().global_plane_of(v),
                        lc.mapping().logical_block_of(v),
                    )
                })
                .collect()
        };
        let mut per_plane = std::collections::BTreeMap::<u32, u64>::new();
        for &(plane, lblock) in &occupied {
            let physical = self.ftl.erase_logical_block(plane, lblock);
            self.wear.note_program(plane, physical);
            *per_plane.entry(plane).or_default() += 1;
        }
        let erase_rounds = per_plane.values().copied().max().unwrap_or(0);

        // Re-stage from the live construction graph (same id space; the
        // search graph is unchanged, so results are too).
        let restaged = Prepared::stage(config, &self.graph, &self.dataset, &BatchTrace::default());
        let tombstoned: Vec<VectorId> = (0..self.graph.num_vertices() as u32)
            .filter(|&v| self.is_deleted(v))
            .collect();
        self.prepared = Arc::new(restaged);
        let prepared = Arc::make_mut(&mut self.prepared);
        for v in tombstoned {
            prepared.luncsr.tombstone(prepared.perm.new_of(v));
        }

        // Program the fresh base: every page rewritten. Wear for the
        // rewrite was already charged with the erases above (erase +
        // program = one P/E cycle); blocks the new base newly occupies
        // beyond the old footprint get their cycle charged when their
        // first page programs on the append path.
        let pages = prepared.luncsr.mapping().pages_used();
        let planes = u64::from(config.geometry.total_planes()).max(1);
        let program_rounds = pages.div_ceil(planes);
        let duration_ns = erase_rounds * timing.t_erase_block_ns
            + program_rounds
                * (timing.t_program_page_ns
                    + timing.channel_transfer_ns(u64::from(config.geometry.page_bytes)));
        self.open_slots =
            (prepared.luncsr.num_vertices() as u32) % prepared.luncsr.mapping().slots_per_page();

        if let Some(codes) = self.codes.as_mut() {
            // Compaction rewrote the physical layout; re-pack the code
            // table over the (unchanged) construction-order rows —
            // bit-identical codes, fresh contiguous storage.
            let repacked = codes.repack(&self.dataset);
            *Arc::make_mut(codes) = repacked;
        }

        self.totals.blocks_erased += occupied.len() as u64;
        self.totals.pages_programmed += pages;
        self.totals.program_ns += duration_ns;
        self.totals.flash_bytes += pages * u64::from(config.geometry.page_bytes);
        CompactionReport {
            blocks_erased: occupied.len() as u64,
            pages_programmed: pages,
            duration_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_anns::index::GraphAnnsIndex;
    use ndsearch_anns::vamana::{Vamana, VamanaParams};
    use ndsearch_vector::synthetic::DatasetSpec;

    fn mutable_fixture(n: usize) -> (NdsConfig, Deployment, Dataset) {
        let (base, extra) = DatasetSpec::sift_scaled(n, 64).build_pair();
        let index = Vamana::build(&base, VamanaParams::default());
        let mut config = NdsConfig::scaled_for(base.len() * 2, base.stored_vector_bytes());
        config.ecc.hard_decision_failure_prob = 0.0;
        let deploy = Deployment::stage(&config, Box::new(index), base);
        (config, deploy, extra)
    }

    #[test]
    fn inserts_extend_overlay_and_charge_flash() {
        let (config, mut deploy, extra) = mutable_fixture(400);
        assert!(deploy.is_mutable());
        let spp = deploy.prepared().luncsr.mapping().slots_per_page() as usize;
        let mut programmed = 0u64;
        for (i, (_, v)) in extra.iter().enumerate() {
            let applied = deploy.insert(&config, v).unwrap();
            assert_eq!(applied.id as usize, 400 + i);
            programmed += applied.pages_programmed;
        }
        assert_eq!(deploy.dataset().len(), 464);
        // The graph snapshot refreshes at round boundaries, not per update.
        assert_eq!(deploy.graph().num_vertices(), 400);
        deploy.refresh_graph();
        assert_eq!(deploy.graph().num_vertices(), 464);
        assert_eq!(deploy.prepared().luncsr.delta_vertices(), 64);
        let totals = deploy.totals();
        assert_eq!(totals.inserts, 64);
        assert_eq!(totals.pages_programmed, programmed);
        assert!(
            totals.pages_programmed >= (64 / spp) as u64,
            "64 inserts at {spp} slots/page must program pages"
        );
        assert!(totals.program_ns > 0, "programs must charge tPROG");
        assert!(
            totals.write_amplification() > 0.0,
            "amplification must be measured"
        );
        // Wear: some block saw a P/E cycle.
        assert!(deploy.wear().max_wear_ratio() > 0.0);
        // Overlay adjacency mirrors the index, relabeled.
        let prepared = deploy.prepared();
        let graph = deploy.graph();
        for id in [400u32, 463u32] {
            let want: Vec<u32> = graph
                .neighbors(id)
                .iter()
                .map(|&nb| prepared.perm.new_of(nb))
                .collect();
            assert_eq!(prepared.luncsr.neighbors(prepared.perm.new_of(id)), want);
        }
    }

    #[test]
    fn deletes_tombstone_and_reject_duplicates() {
        let (config, mut deploy, _) = mutable_fixture(300);
        assert!(deploy.delete(&config, 5).is_some());
        assert!(deploy.delete(&config, 5).is_none(), "double delete");
        assert!(deploy.delete(&config, 9999).is_none(), "out of range");
        assert!(deploy.is_deleted(5));
        assert_eq!(deploy.live_count(), 299);
        let prepared = deploy.prepared();
        assert!(prepared.luncsr.is_tombstoned(prepared.perm.new_of(5)));
    }

    #[test]
    fn compaction_folds_delta_and_charges_erases() {
        let (config, mut deploy, extra) = mutable_fixture(400);
        for (_, v) in extra.iter() {
            deploy.insert(&config, v).unwrap();
        }
        deploy.delete(&config, 17);
        assert!(deploy.prepared().luncsr.delta_vertices() > 0);
        let before = deploy.totals();
        let report = deploy.compact(&config);
        assert!(report.blocks_erased > 0);
        assert!(report.pages_programmed > 0);
        assert!(report.duration_ns > 0);
        let after = deploy.totals();
        assert_eq!(
            after.blocks_erased,
            before.blocks_erased + report.blocks_erased
        );
        // The delta is folded into a fresh base; tombstones survive.
        let prepared = deploy.prepared();
        assert_eq!(prepared.luncsr.delta_vertices(), 0);
        assert!(prepared.luncsr.is_tombstoned(prepared.perm.new_of(17)));
        // The search graph is untouched by compaction.
        assert_eq!(deploy.graph().num_vertices(), 464);
    }

    #[test]
    fn immutable_deployment_rejects_updates() {
        let base = DatasetSpec::sift_scaled(200, 1).build();
        let index = Vamana::build(&base, VamanaParams::default());
        let config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
        let prepared = Prepared::stage(&config, index.base_graph(), &base, &BatchTrace::default());
        let deploy = Deployment::from_parts(&config, prepared, base, index.base_graph().clone());
        assert!(!deploy.is_mutable());
        assert_eq!(deploy.live_count(), 200);
    }

    #[test]
    fn shape_mismatch_is_reported_not_panicked() {
        let (config, mut deploy, _) = mutable_fixture(200);
        let err = deploy.insert(&config, &[1.0, 2.0]).unwrap_err();
        assert!(err.to_string().contains("dimension"));
        assert_eq!(deploy.dataset().len(), 200, "rejected insert is a no-op");
    }

    #[test]
    fn device_full_rejects_instead_of_panicking() {
        // A deliberately minuscule device: 16 planes × 1 block × 2 pages
        // × 16 slots = 512 slots, 400 of which the base occupies.
        let (base, extra) = DatasetSpec::sift_scaled(400, 4).build_pair();
        let index = Vamana::build(&base, VamanaParams::default());
        let mut geometry = ndsearch_flash::geometry::FlashGeometry::tiny();
        geometry.blocks_per_plane = 1;
        geometry.pages_per_block = 2;
        let mut config = NdsConfig {
            geometry,
            ..NdsConfig::default()
        };
        config.ecc.hard_decision_failure_prob = 0.0;
        let mut deploy = Deployment::stage(&config, Box::new(index), base);
        let capacity = deploy.prepared().luncsr.mapping().capacity_slots();
        assert_eq!(capacity, 512);
        let v = extra.vector(0).to_vec();
        let mut accepted = 0u64;
        loop {
            match deploy.insert(&config, &v) {
                Ok(_) => accepted += 1,
                Err(InsertError::DeviceFull) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(400 + accepted <= capacity, "accepted past capacity");
        }
        assert_eq!(400 + accepted, capacity, "fills exactly to capacity");
        // Further inserts keep being rejected; deletes still work.
        assert_eq!(
            deploy.insert(&config, &v).unwrap_err(),
            InsertError::DeviceFull
        );
        assert!(deploy.delete(&config, 0).is_some());
    }
}
