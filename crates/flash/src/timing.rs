//! Latency and bandwidth parameters.
//!
//! All latencies are in nanoseconds (`u64`), matching the event-driven
//! engine's clock. Defaults are calibrated to the paper's platform: a
//! Samsung 983 DCT-class V-NAND device, ONFI-4-class channel buses, an
//! 800 MHz accelerator clock (§VII-A), a ~30 µs penalty for moving a page
//! buffer out of the NAND die to an external accelerator (§III), and a
//! PCIe 3.0 ×16 host link with 15.4 GB/s peak (§I).

use crate::geometry::FlashGeometry;

/// Nanoseconds, the engine-wide time unit.
pub type Nanos = u64;

/// NAND / SSD timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashTiming {
    /// Page sense time tR: NAND array → plane page buffer.
    pub t_read_page_ns: Nanos,
    /// Page program time tPROG: page buffer → NAND array (online inserts
    /// and refresh/compaction rewrites pay this).
    pub t_program_page_ns: Nanos,
    /// Block erase time tBERS (compaction and refresh relocations pay
    /// this before rewriting a block).
    pub t_erase_block_ns: Nanos,
    /// Channel bus bandwidth in bytes/second (shared by the chips, thus the
    /// LUNs, of one channel).
    pub channel_bus_bytes_per_s: f64,
    /// Extra latency to move a page buffer to an accelerator *outside* the
    /// NAND flash chip (DeepStore-style chip/channel accelerators pay this;
    /// §III measures ~30 µs).
    pub t_buffer_to_external_ns: Nanos,
    /// Time for an in-LUN accelerator to stream one byte out of the page
    /// buffer (sets the internal bandwidth of Fig. 2b).
    pub page_buffer_read_ns_per_byte: f64,
    /// Command issue/decode overhead per NAND command.
    pub t_command_ns: Nanos,
    /// Accelerator (MAC / Vgen / Alloc logic) clock frequency in Hz.
    pub accel_clock_hz: f64,
    /// SSD-internal DRAM random access latency (per 64 B line).
    pub t_dram_access_ns: Nanos,
    /// SSD-internal DRAM bandwidth, bytes/second.
    pub dram_bytes_per_s: f64,
    /// Embedded-core time to process one query-iteration bookkeeping step.
    pub t_embedded_op_ns: Nanos,
}

impl FlashTiming {
    /// Internal bandwidth if every plane's page buffer streams
    /// simultaneously (the "roofline lifting" of Fig. 2b; the paper quotes
    /// 819.2 GB/s for the default geometry).
    pub fn internal_bandwidth_bytes_per_s(&self, geom: &FlashGeometry) -> f64 {
        f64::from(geom.total_planes()) / self.page_buffer_read_ns_per_byte * 1e9
    }

    /// Time to stream `bytes` from a page buffer into the in-LUN
    /// accelerator.
    pub fn page_buffer_stream_ns(&self, bytes: u64) -> Nanos {
        (bytes as f64 * self.page_buffer_read_ns_per_byte).ceil() as Nanos
    }

    /// Time to move `bytes` over one channel bus.
    pub fn channel_transfer_ns(&self, bytes: u64) -> Nanos {
        (bytes as f64 / self.channel_bus_bytes_per_s * 1e9).ceil() as Nanos
    }

    /// Cycles → nanoseconds at the accelerator clock.
    pub fn accel_cycles_ns(&self, cycles: u64) -> Nanos {
        (cycles as f64 / self.accel_clock_hz * 1e9).ceil() as Nanos
    }

    /// Time to move `bytes` through internal DRAM.
    pub fn dram_transfer_ns(&self, bytes: u64) -> Nanos {
        (bytes as f64 / self.dram_bytes_per_s * 1e9).ceil() as Nanos
    }
}

impl Default for FlashTiming {
    fn default() -> Self {
        Self {
            // V-NAND MLC page sense.
            t_read_page_ns: 45_000,
            // V-NAND MLC page program (tPROG ≈ 13–15× tR).
            t_program_page_ns: 600_000,
            // V-NAND block erase (tBERS, milliseconds-class).
            t_erase_block_ns: 3_500_000,
            // ONFI-4-class channel: 800 MB/s.
            channel_bus_bytes_per_s: 800e6,
            // §III: reading page buffer to an accelerator outside the chip.
            t_buffer_to_external_ns: 30_000,
            // Calibrated so the 512-plane default geometry yields the
            // paper's 819.2 GB/s internal bandwidth:
            // 512 planes / x ns-per-byte = 819.2 B/ns  ⇒  x = 0.625.
            page_buffer_read_ns_per_byte: 0.625,
            t_command_ns: 200,
            accel_clock_hz: 800e6,
            t_dram_access_ns: 50,
            dram_bytes_per_s: 12.8e9,
            t_embedded_op_ns: 25,
        }
    }
}

/// A PCIe link with efficiency-derated bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieLink {
    /// Peak (derated) bandwidth in bytes/second.
    pub bytes_per_s: f64,
    /// Fixed per-transfer latency (DMA setup, doorbells).
    pub base_latency_ns: Nanos,
}

impl PcieLink {
    /// PCIe 3.0 ×16 host link; the paper quotes 15.4 GB/s peak.
    pub fn gen3_x16() -> Self {
        Self {
            bytes_per_s: 15.4e9,
            base_latency_ns: 1_000,
        }
    }

    /// PCIe 3.0 ×4 (the private SSD↔FPGA link of SmartSSD, §IV-A).
    pub fn gen3_x4() -> Self {
        Self {
            bytes_per_s: 15.4e9 / 4.0,
            base_latency_ns: 1_000,
        }
    }

    /// Time to move `bytes` across the link.
    pub fn transfer_ns(&self, bytes: u64) -> Nanos {
        self.base_latency_ns + (bytes as f64 / self.bytes_per_s * 1e9).ceil() as Nanos
    }

    /// Effective achieved bandwidth for a transfer of `bytes`
    /// (bytes/second), showing saturation behaviour as transfers grow.
    pub fn achieved_bytes_per_s(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / (self.transfer_ns(bytes) as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_internal_bandwidth_matches_paper() {
        let t = FlashTiming::default();
        let g = FlashGeometry::searssd_default();
        let bw = t.internal_bandwidth_bytes_per_s(&g);
        // Paper: 819.2 GB/s.
        assert!((bw - 819.2e9).abs() / 819.2e9 < 1e-6, "bw = {bw}");
    }

    #[test]
    fn channel_transfer_scales_linearly() {
        let t = FlashTiming::default();
        let one = t.channel_transfer_ns(16 * 1024);
        let two = t.channel_transfer_ns(32 * 1024);
        assert!(two >= 2 * one - 1);
        // 16 KiB at 800 MB/s ≈ 20.48 µs.
        assert!((one as f64 - 20_480.0).abs() < 10.0, "one = {one}");
    }

    #[test]
    fn accel_cycles_at_800mhz() {
        let t = FlashTiming::default();
        // 800 cycles at 800 MHz = 1 µs.
        assert_eq!(t.accel_cycles_ns(800), 1_000);
    }

    #[test]
    fn pcie_x16_vs_x4() {
        let x16 = PcieLink::gen3_x16();
        let x4 = PcieLink::gen3_x4();
        let b = 1 << 20;
        assert!(x4.transfer_ns(b) > 3 * x16.transfer_ns(b) / 2);
    }

    #[test]
    fn pcie_saturates_with_large_transfers() {
        let link = PcieLink::gen3_x16();
        let small = link.achieved_bytes_per_s(4 * 1024);
        let large = link.achieved_bytes_per_s(64 * 1024 * 1024);
        assert!(small < 0.8 * link.bytes_per_s, "small = {small:.3e}");
        assert!(large > 0.99 * link.bytes_per_s, "large = {large:.3e}");
    }

    #[test]
    fn dram_and_page_buffer_helpers() {
        let t = FlashTiming::default();
        assert!(t.page_buffer_stream_ns(16 * 1024) < t.channel_transfer_ns(16 * 1024));
        assert!(t.dram_transfer_ns(64) > 0);
    }
}
