//! Access statistics shared by the platform models.

/// Counters accumulated while replaying a trace against the flash model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlashStats {
    /// Pages sensed from the NAND array into page buffers.
    pub page_reads: u64,
    /// `<SearchPage>` operations executed by in-LUN accelerators.
    pub search_ops: u64,
    /// Page loads avoided because the page was already in a page buffer
    /// (temporal locality exploited by dynamic allocating).
    pub page_buffer_hits: u64,
    /// Bytes moved across channel buses.
    pub bus_bytes: u64,
    /// Bytes moved across the host PCIe link.
    pub pcie_bytes: u64,
    /// Multi-plane command sequences issued.
    pub multi_plane_ops: u64,
    /// Multi-LUN command sequences issued.
    pub multi_lun_ops: u64,
    /// Distance evaluations performed.
    pub distance_evals: u64,
    /// Hard-decision LDPC failures that fell back to soft decision.
    pub ecc_soft_fallbacks: u64,
    /// Pages programmed into the NAND array (online inserts, compaction
    /// rewrites, refresh relocations).
    pub page_programs: u64,
    /// Blocks erased (compaction and refresh relocations).
    pub block_erases: u64,
}

impl FlashStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &FlashStats) {
        self.page_reads += other.page_reads;
        self.search_ops += other.search_ops;
        self.page_buffer_hits += other.page_buffer_hits;
        self.bus_bytes += other.bus_bytes;
        self.pcie_bytes += other.pcie_bytes;
        self.multi_plane_ops += other.multi_plane_ops;
        self.multi_lun_ops += other.multi_lun_ops;
        self.distance_evals += other.distance_evals;
        self.ecc_soft_fallbacks += other.ecc_soft_fallbacks;
        self.page_programs += other.page_programs;
        self.block_erases += other.block_erases;
    }

    /// Page accesses per visited vertex — the paper's *page access ratio*
    /// (§VII-B "Scheduling"): total page reads divided by trace length.
    /// Lower is better spatial locality.
    pub fn page_access_ratio(&self, trace_len: u64) -> f64 {
        if trace_len == 0 {
            0.0
        } else {
            self.page_reads as f64 / trace_len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = FlashStats {
            page_reads: 1,
            bus_bytes: 10,
            ..FlashStats::new()
        };
        let b = FlashStats {
            page_reads: 2,
            pcie_bytes: 5,
            ..FlashStats::new()
        };
        a.merge(&b);
        assert_eq!(a.page_reads, 3);
        assert_eq!(a.bus_bytes, 10);
        assert_eq!(a.pcie_bytes, 5);
    }

    #[test]
    fn page_access_ratio_handles_zero() {
        let s = FlashStats::new();
        assert_eq!(s.page_access_ratio(0), 0.0);
        let s = FlashStats {
            page_reads: 50,
            ..FlashStats::new()
        };
        assert_eq!(s.page_access_ratio(100), 0.5);
    }
}
