//! Trace-driven NAND flash / SSD simulator for the NDSEARCH reproduction.
//!
//! The paper evaluates SearSSD with an in-house simulator built on SSD-Sim:
//! a memory-trace-driven, cycle-level model of a modern SSD. This crate is
//! the from-scratch Rust equivalent. It models:
//!
//! * the physical hierarchy — channels → chips → LUNs → planes → blocks →
//!   pages ([`geometry::FlashGeometry`]) with ONFI-style row/column
//!   addressing ([`geometry::PhysAddr`]);
//! * the command set, including the paper's modified `<SearchPage>`
//!   instruction and the multi-LUN read/search workflows of Fig. 9
//!   ([`command`]);
//! * timing ([`timing::FlashTiming`]) — page sense time, channel bus
//!   transfer, the ~30 µs page-buffer→external-accelerator penalty that
//!   motivates in-LUN compute, and PCIe links;
//! * the flash translation layer with *block-level refresh confined within
//!   a plane* (§II-B2 / §VI-A2), emitting relocation events that the
//!   LUNCSR format consumes ([`ftl::Ftl`]);
//! * LDPC error correction with per-plane raw-BER distribution, in-SiN
//!   hard-decision decoding and FTL soft-decision fallback, plus fault
//!   injection (Fig. 18; [`ecc`]).
//!
//! Everything is deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use ndsearch_flash::{FlashGeometry, FlashTiming};
//!
//! let geom = FlashGeometry::searssd_default();
//! assert_eq!(geom.total_luns(), 256);
//! assert_eq!(geom.total_capacity_bytes(), 512 << 30);
//! let timing = FlashTiming::default();
//! assert!(timing.internal_bandwidth_bytes_per_s(&geom) > 500e9);
//! ```

#![warn(missing_docs)]

pub mod command;
pub mod ecc;
pub mod ftl;
pub mod geometry;
pub mod stats;
pub mod timing;
pub mod wear;

pub use command::{MultiLunOp, NandCommand, SearchPageInstr};
pub use ecc::{EccConfig, EccDelta, EccEngine, EccLunPass};
pub use ftl::{Ftl, RefreshEvent};
pub use geometry::{FlashGeometry, LunId, PhysAddr, PlaneId};
pub use stats::FlashStats;
pub use timing::{FlashTiming, PcieLink};
pub use wear::WearModel;
