//! NAND command model, including the paper's `<SearchPage>` extension.
//!
//! Fig. 9(a) contrasts the stock multi-LUN *read* workflow with the modified
//! multi-LUN *search* workflow: `<ReadPage>` becomes `<SearchPage>` and the
//! `<ReadStatusEnhanced>` / `<ChangeReadColumn>` pair targets the small
//! accelerator *output buffer* instead of the 16 KiB page buffer, so only
//! computed distances — not raw feature vectors — cross the channel bus.
//!
//! Fig. 9(b) gives the `<SearchPage>` operand layout: 2-bit distance kind,
//! 26-bit row address, 3-bit feature-vector dimension code, 4-bit precision
//! code, 1-bit `pageLocBit` flagging that two or more queries' candidates
//! live on the selected page.

use crate::geometry::{FlashGeometry, LunId, PhysAddr};
use crate::timing::{FlashTiming, Nanos};
use ndsearch_vector::DistanceKind;

/// Operands of the `<SearchPage>` instruction (Fig. 9b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchPageInstr {
    /// Which distance the MAC group computes (2 bits).
    pub distance: DistanceKind,
    /// Row address: LUN ‖ plane ‖ block ‖ page (26 bits).
    pub row_address: u64,
    /// Feature-vector dimension code (3 bits; see [`encode_dim`]).
    pub fv_dim_code: u8,
    /// Feature-vector precision code (4 bits; bits per element).
    pub fv_prec_code: u8,
    /// Set when ≥2 queries' candidates sit on the selected page, enabling
    /// page-buffer reuse (1 bit).
    pub page_loc_bit: bool,
}

/// Encodes a vector dimensionality into the 3-bit `fv_dim` field.
/// Code `i` means `2^(4+i)` elements rounded up (16..2048); the paper's
/// benchmarks (96..784 dims) all fit.
pub fn encode_dim(dim: usize) -> u8 {
    let mut code = 0u8;
    while code < 7 && (16usize << code) < dim {
        code += 1;
    }
    code
}

/// Decodes the 3-bit `fv_dim` code back to the padded element count.
pub fn decode_dim(code: u8) -> usize {
    16usize << code.min(7)
}

impl SearchPageInstr {
    /// Builds the instruction for a physical address.
    pub fn new(
        geom: &FlashGeometry,
        addr: PhysAddr,
        distance: DistanceKind,
        dim: usize,
        element_bits: u8,
        page_loc_bit: bool,
    ) -> Self {
        Self {
            distance,
            row_address: addr.row_address(geom),
            fv_dim_code: encode_dim(dim),
            fv_prec_code: element_bits.min(0xF),
            page_loc_bit,
        }
    }

    /// Packs the instruction operands into a word, mirroring the bit layout
    /// of Fig. 9(b): `[distance:2][row:26][dim:3][prec:4][loc:1]` = 36 bits.
    pub fn pack(&self) -> u64 {
        let mut w = u64::from(self.distance.encode());
        w = (w << 26) | (self.row_address & ((1 << 26) - 1));
        w = (w << 3) | u64::from(self.fv_dim_code & 0b111);
        w = (w << 4) | u64::from(self.fv_prec_code & 0xF);
        (w << 1) | u64::from(self.page_loc_bit)
    }

    /// Unpacks a word produced by [`SearchPageInstr::pack`].
    ///
    /// Returns `None` if the distance field holds the reserved encoding.
    pub fn unpack(w: u64) -> Option<Self> {
        let page_loc_bit = (w & 1) != 0;
        let fv_prec_code = ((w >> 1) & 0xF) as u8;
        let fv_dim_code = ((w >> 5) & 0b111) as u8;
        let row_address = (w >> 8) & ((1 << 26) - 1);
        let distance = DistanceKind::decode(((w >> 34) & 0b11) as u8)?;
        Some(Self {
            distance,
            row_address,
            fv_dim_code,
            fv_prec_code,
            page_loc_bit,
        })
    }
}

/// One NAND command in a (multi-LUN) sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NandCommand {
    /// Stock page read: array → page buffer, then data out over the bus.
    ReadPage {
        /// Target LUN.
        lun: LunId,
    },
    /// Modified search: array → page buffer → in-LUN MAC group.
    SearchPage {
        /// Target LUN.
        lun: LunId,
        /// Packed [`SearchPageInstr`] operand word.
        instr_packed: u64,
    },
    /// Selects whose buffer the next column change / data-out targets.
    ReadStatusEnhanced {
        /// Target LUN.
        lun: LunId,
    },
    /// Moves the column pointer within the selected buffer.
    ChangeReadColumn {
        /// Target LUN.
        lun: LunId,
    },
    /// Data-out phase transferring `bytes` over the shared channel bus.
    DataOut {
        /// Target LUN.
        lun: LunId,
        /// Bytes moved over the channel bus.
        bytes: u32,
    },
    /// Data-in phase followed by a page program (tPROG): the online-update
    /// path appends vectors through this command. Programs on distinct
    /// LUNs overlap; the data-in serializes on the channel bus.
    ProgramPage {
        /// Target LUN.
        lun: LunId,
        /// Bytes moved into the page buffer over the channel bus.
        bytes: u32,
    },
    /// Block erase (tBERS) preceding a rewrite — issued by compaction and
    /// block-level refresh, never on the search critical path.
    EraseBlock {
        /// Target LUN.
        lun: LunId,
    },
}

impl NandCommand {
    /// The LUN this command addresses.
    pub fn lun(&self) -> LunId {
        match *self {
            NandCommand::ReadPage { lun }
            | NandCommand::SearchPage { lun, .. }
            | NandCommand::ReadStatusEnhanced { lun }
            | NandCommand::ChangeReadColumn { lun }
            | NandCommand::DataOut { lun, .. }
            | NandCommand::ProgramPage { lun, .. }
            | NandCommand::EraseBlock { lun } => lun,
        }
    }
}

/// Which flavour of multi-LUN operation a sequence implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiLunOp {
    /// Stock multi-LUN read (left of Fig. 9a): full pages cross the bus.
    Read,
    /// Modified multi-LUN search (right of Fig. 9a): only the output
    /// buffer (computed distances) crosses the bus.
    Search,
}

/// Builds the 8-step command sequence of Fig. 9(a) for a set of LUNs on the
/// same channel. For `Read`, each data-out moves a whole page; for
/// `Search`, each data-out moves `result_bytes_per_lun`.
pub fn multi_lun_sequence(
    op: MultiLunOp,
    luns: &[LunId],
    geom: &FlashGeometry,
    result_bytes_per_lun: u32,
) -> Vec<NandCommand> {
    let mut seq = Vec::with_capacity(luns.len() * 4);
    // Steps 1..n: issue the page op to every LUN (they sense in parallel).
    for &lun in luns {
        match op {
            MultiLunOp::Read => seq.push(NandCommand::ReadPage { lun }),
            MultiLunOp::Search => seq.push(NandCommand::SearchPage {
                lun,
                instr_packed: 0,
            }),
        }
    }
    // Then per LUN: select buffer, set column, stream data out.
    for &lun in luns {
        seq.push(NandCommand::ReadStatusEnhanced { lun });
        seq.push(NandCommand::ChangeReadColumn { lun });
        let bytes = match op {
            MultiLunOp::Read => geom.page_bytes,
            MultiLunOp::Search => result_bytes_per_lun,
        };
        seq.push(NandCommand::DataOut { lun, bytes });
    }
    seq
}

/// Computes the latency of a multi-LUN sequence on one channel.
///
/// The page sense (tR) of all LUNs overlaps; command issue and data-out
/// serialize on the shared channel bus (§III's argument for why chip-level
/// accelerators under-utilize parallelism).
pub fn sequence_latency_ns(seq: &[NandCommand], timing: &FlashTiming, op: MultiLunOp) -> Nanos {
    let mut bus_busy: Nanos = 0;
    let mut sense: Nanos = 0;
    for cmd in seq {
        match cmd {
            NandCommand::ReadPage { .. } => {
                bus_busy += timing.t_command_ns;
                sense = timing.t_read_page_ns; // parallel across LUNs
            }
            NandCommand::SearchPage { .. } => {
                bus_busy += timing.t_command_ns;
                sense = timing.t_read_page_ns;
            }
            NandCommand::ReadStatusEnhanced { .. } | NandCommand::ChangeReadColumn { .. } => {
                bus_busy += timing.t_command_ns;
            }
            NandCommand::DataOut { bytes, .. } => {
                bus_busy += timing.channel_transfer_ns(u64::from(*bytes));
            }
            NandCommand::ProgramPage { bytes, .. } => {
                // Data-in over the bus, then the cell program; programs on
                // distinct LUNs overlap like senses do.
                bus_busy += timing.t_command_ns + timing.channel_transfer_ns(u64::from(*bytes));
                sense = sense.max(timing.t_program_page_ns);
            }
            NandCommand::EraseBlock { .. } => {
                bus_busy += timing.t_command_ns;
                sense = sense.max(timing.t_erase_block_ns);
            }
        }
    }
    // Search sequences additionally stream the page buffer through the MAC
    // group in-die, which overlaps with other LUNs' data-out; reads must
    // wait for sense before any data-out, so total = sense + bus activity.
    let _ = op;
    sense + bus_busy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_codes_cover_paper_benchmarks() {
        assert_eq!(decode_dim(encode_dim(96)), 128);
        assert_eq!(decode_dim(encode_dim(100)), 128);
        assert_eq!(decode_dim(encode_dim(128)), 128);
        assert_eq!(decode_dim(encode_dim(784)), 1024);
        assert_eq!(decode_dim(encode_dim(16)), 16);
    }

    #[test]
    fn search_page_pack_round_trips() {
        let geom = FlashGeometry::searssd_default();
        let addr = PhysAddr::checked(&geom, 200, 1, 300, 77, 0).unwrap();
        let instr = SearchPageInstr::new(&geom, addr, DistanceKind::Angular, 128, 8, true);
        let unpacked = SearchPageInstr::unpack(instr.pack()).unwrap();
        assert_eq!(unpacked, instr);
    }

    #[test]
    fn pack_fits_36_bits() {
        let geom = FlashGeometry::searssd_default();
        let addr = PhysAddr::checked(
            &geom,
            geom.total_luns() - 1,
            1,
            geom.blocks_per_plane - 1,
            geom.pages_per_block - 1,
            0,
        )
        .unwrap();
        let instr = SearchPageInstr::new(&geom, addr, DistanceKind::InnerProduct, 784, 8, false);
        assert!(instr.pack() < (1u64 << 36));
    }

    #[test]
    fn sequences_follow_fig9_shape() {
        let geom = FlashGeometry::tiny();
        let seq = multi_lun_sequence(MultiLunOp::Search, &[0, 1], &geom, 64);
        // 2 SearchPage + 2 × (status, column, data-out) = 8 steps.
        assert_eq!(seq.len(), 8);
        assert!(matches!(seq[0], NandCommand::SearchPage { lun: 0, .. }));
        assert!(matches!(seq[1], NandCommand::SearchPage { lun: 1, .. }));
        assert!(matches!(seq[2], NandCommand::ReadStatusEnhanced { lun: 0 }));
        assert!(matches!(seq[7], NandCommand::DataOut { lun: 1, bytes: 64 }));
    }

    #[test]
    fn search_moves_far_fewer_bus_bytes_than_read() {
        let geom = FlashGeometry::searssd_default();
        let timing = FlashTiming::default();
        let luns = [0, 1];
        let read = multi_lun_sequence(MultiLunOp::Read, &luns, &geom, 0);
        let search = multi_lun_sequence(MultiLunOp::Search, &luns, &geom, 128);
        let t_read = sequence_latency_ns(&read, &timing, MultiLunOp::Read);
        let t_search = sequence_latency_ns(&search, &timing, MultiLunOp::Search);
        // The sense time tR dominates both; the difference is the bus time.
        let bus_read = t_read - timing.t_read_page_ns;
        let bus_search = t_search - timing.t_read_page_ns;
        assert!(
            bus_search < bus_read / 10,
            "search bus {bus_search} ns should be far below read bus {bus_read} ns"
        );
    }

    #[test]
    fn sense_overlaps_across_luns() {
        let geom = FlashGeometry::searssd_default();
        let timing = FlashTiming::default();
        let one = sequence_latency_ns(
            &multi_lun_sequence(MultiLunOp::Search, &[0], &geom, 64),
            &timing,
            MultiLunOp::Search,
        );
        let four = sequence_latency_ns(
            &multi_lun_sequence(MultiLunOp::Search, &[0, 1, 2, 3], &geom, 64),
            &timing,
            MultiLunOp::Search,
        );
        // Four LUNs must cost much less than 4× one LUN (sense overlaps).
        assert!(four < 2 * one, "one = {one}, four = {four}");
    }

    #[test]
    fn command_lun_accessor() {
        assert_eq!(NandCommand::ReadPage { lun: 5 }.lun(), 5);
        assert_eq!(NandCommand::DataOut { lun: 9, bytes: 1 }.lun(), 9);
        assert_eq!(NandCommand::ProgramPage { lun: 3, bytes: 64 }.lun(), 3);
        assert_eq!(NandCommand::EraseBlock { lun: 7 }.lun(), 7);
    }

    #[test]
    fn program_and_erase_dominate_a_sequence() {
        let timing = FlashTiming::default();
        let program = [NandCommand::ProgramPage { lun: 0, bytes: 512 }];
        let t_prog = sequence_latency_ns(&program, &timing, MultiLunOp::Read);
        assert!(t_prog >= timing.t_program_page_ns);
        // Programs on distinct LUNs overlap like senses.
        let two = [
            NandCommand::ProgramPage { lun: 0, bytes: 512 },
            NandCommand::ProgramPage { lun: 1, bytes: 512 },
        ];
        let t_two = sequence_latency_ns(&two, &timing, MultiLunOp::Read);
        assert!(t_two < 2 * t_prog, "t_two = {t_two}, t_prog = {t_prog}");
        let erase = [NandCommand::EraseBlock { lun: 0 }];
        let t_erase = sequence_latency_ns(&erase, &timing, MultiLunOp::Read);
        assert!(t_erase >= timing.t_erase_block_ns);
        assert!(t_erase > t_prog, "erase outweighs program");
    }
}
