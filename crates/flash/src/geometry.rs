//! Physical organization of the NAND flash array.
//!
//! §II-B1: storage elements are hierarchically organized as channels →
//! chips → LUNs → planes → blocks → pages. One or more planes form a LUN,
//! the minimal unit that can independently execute commands. The NAND
//! address splits into a *row address* (LUN, block, page) and a *column
//! address* (byte within a page), as Fig. 5(b) illustrates.

/// Global LUN index across the whole device (0 .. total_luns).
pub type LunId = u32;

/// Global plane index across the whole device (0 .. total_planes).
pub type PlaneId = u32;

/// Shape of the flash array.
///
/// The SearSSD configuration from §IV-C: 512 GB of SiN capacity organized
/// as 32 channels × 4 chips × 4 planes (two planes per LUN ⇒ 2 LUNs/chip,
/// 256 LUNs total) × 512 blocks/plane × 128 pages/block × 16 KiB pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlashGeometry {
    /// Number of independent channels.
    pub channels: u32,
    /// Flash chips per channel.
    pub chips_per_channel: u32,
    /// Planes per chip.
    pub planes_per_chip: u32,
    /// Planes grouped into one LUN.
    pub planes_per_lun: u32,
    /// Blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per block.
    pub pages_per_block: u32,
    /// Page size in bytes.
    pub page_bytes: u32,
}

impl FlashGeometry {
    /// The paper's SearSSD configuration (§IV-C): 512 GB, 256 LUNs.
    pub fn searssd_default() -> Self {
        Self {
            channels: 32,
            chips_per_channel: 4,
            planes_per_chip: 4,
            planes_per_lun: 2,
            blocks_per_plane: 512,
            pages_per_block: 128,
            page_bytes: 16 * 1024,
        }
    }

    /// A proportionally scaled-down geometry for simulator-tractable
    /// datasets. Keeps the same channel/chip/plane/LUN *shape* (so
    /// parallelism ratios match the paper) while shrinking blocks per plane.
    ///
    /// # Panics
    /// Panics if `scale == 0`.
    pub fn searssd_scaled(scale: u32) -> Self {
        assert!(scale > 0, "scale must be positive");
        let base = Self::searssd_default();
        Self {
            blocks_per_plane: (base.blocks_per_plane / scale).max(2),
            ..base
        }
    }

    /// A tiny geometry for unit tests: 2 channels × 2 chips × 4 planes
    /// (2 planes/LUN), 4 blocks, 8 pages, 2 KiB pages.
    pub fn tiny() -> Self {
        Self {
            channels: 2,
            chips_per_channel: 2,
            planes_per_chip: 4,
            planes_per_lun: 2,
            blocks_per_plane: 4,
            pages_per_block: 8,
            page_bytes: 2048,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a human-readable message when a field is zero or the plane
    /// count is not divisible into LUNs.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            (self.channels, "channels"),
            (self.chips_per_channel, "chips_per_channel"),
            (self.planes_per_chip, "planes_per_chip"),
            (self.planes_per_lun, "planes_per_lun"),
            (self.blocks_per_plane, "blocks_per_plane"),
            (self.pages_per_block, "pages_per_block"),
            (self.page_bytes, "page_bytes"),
        ];
        for (v, name) in fields {
            if v == 0 {
                return Err(format!("{name} must be positive"));
            }
        }
        if !self.planes_per_chip.is_multiple_of(self.planes_per_lun) {
            return Err(format!(
                "planes_per_chip ({}) must be divisible by planes_per_lun ({})",
                self.planes_per_chip, self.planes_per_lun
            ));
        }
        Ok(())
    }

    /// Total chips in the device.
    pub fn total_chips(&self) -> u32 {
        self.channels * self.chips_per_channel
    }

    /// LUNs per chip.
    pub fn luns_per_chip(&self) -> u32 {
        self.planes_per_chip / self.planes_per_lun
    }

    /// Total LUNs in the device (= number of LUN-level accelerators).
    pub fn total_luns(&self) -> u32 {
        self.total_chips() * self.luns_per_chip()
    }

    /// Total planes in the device (= number of page buffers).
    pub fn total_planes(&self) -> u32 {
        self.total_chips() * self.planes_per_chip
    }

    /// Total pages.
    pub fn total_pages(&self) -> u64 {
        u64::from(self.total_planes())
            * u64::from(self.blocks_per_plane)
            * u64::from(self.pages_per_block)
    }

    /// Total capacity in bytes.
    pub fn total_capacity_bytes(&self) -> u64 {
        self.total_pages() * u64::from(self.page_bytes)
    }

    /// Pages per LUN.
    pub fn pages_per_lun(&self) -> u64 {
        u64::from(self.planes_per_lun)
            * u64::from(self.blocks_per_plane)
            * u64::from(self.pages_per_block)
    }

    /// The channel a global LUN id lives on.
    pub fn lun_channel(&self, lun: LunId) -> u32 {
        lun / (self.chips_per_channel * self.luns_per_chip())
    }

    /// The chip (global index) a LUN lives on.
    pub fn lun_chip(&self, lun: LunId) -> u32 {
        lun / self.luns_per_chip()
    }

    /// Global plane id for a (LUN, plane-in-LUN) pair.
    ///
    /// # Panics
    /// Panics if `plane_in_lun >= planes_per_lun`.
    pub fn plane_of(&self, lun: LunId, plane_in_lun: u32) -> PlaneId {
        assert!(
            plane_in_lun < self.planes_per_lun,
            "plane index out of range"
        );
        lun * self.planes_per_lun + plane_in_lun
    }

    /// Bits needed for the row address (LUN ‖ block ‖ page), as encoded in
    /// the 26-bit row-address field of `<SearchPage>` (Fig. 9b).
    pub fn row_address_bits(&self) -> u32 {
        bits_for(self.total_luns())
            + bits_for(self.planes_per_lun)
            + bits_for(self.blocks_per_plane)
            + bits_for(self.pages_per_block)
    }
}

impl Default for FlashGeometry {
    fn default() -> Self {
        Self::searssd_default()
    }
}

fn bits_for(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        32 - (n - 1).leading_zeros()
    }
}

/// A fully resolved physical NAND address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysAddr {
    /// Global LUN id.
    pub lun: LunId,
    /// Plane within the LUN (0 .. planes_per_lun).
    pub plane_in_lun: u32,
    /// Block within the plane.
    pub block: u32,
    /// Page within the block.
    pub page: u32,
    /// Byte offset within the page (column address).
    pub byte: u32,
}

impl PhysAddr {
    /// Creates an address, validating it against a geometry.
    ///
    /// # Errors
    /// Returns a message naming the out-of-range component.
    pub fn checked(
        geom: &FlashGeometry,
        lun: LunId,
        plane_in_lun: u32,
        block: u32,
        page: u32,
        byte: u32,
    ) -> Result<Self, String> {
        if lun >= geom.total_luns() {
            return Err(format!("lun {lun} out of range"));
        }
        if plane_in_lun >= geom.planes_per_lun {
            return Err(format!("plane {plane_in_lun} out of range"));
        }
        if block >= geom.blocks_per_plane {
            return Err(format!("block {block} out of range"));
        }
        if page >= geom.pages_per_block {
            return Err(format!("page {page} out of range"));
        }
        if byte >= geom.page_bytes {
            return Err(format!("byte {byte} out of range"));
        }
        Ok(Self {
            lun,
            plane_in_lun,
            block,
            page,
            byte,
        })
    }

    /// The global plane this address falls in.
    pub fn global_plane(&self, geom: &FlashGeometry) -> PlaneId {
        geom.plane_of(self.lun, self.plane_in_lun)
    }

    /// A compact global identifier for the *page* part of the address
    /// (ignores the byte/column), used for page-buffer-locality tracking.
    pub fn page_key(&self, geom: &FlashGeometry) -> u64 {
        let plane = u64::from(self.global_plane(geom));
        let pages_per_plane = u64::from(geom.blocks_per_plane) * u64::from(geom.pages_per_block);
        plane * pages_per_plane
            + u64::from(self.block) * u64::from(geom.pages_per_block)
            + u64::from(self.page)
    }

    /// The ONFI-style row address (LUN ‖ plane ‖ block ‖ page).
    pub fn row_address(&self, geom: &FlashGeometry) -> u64 {
        let mut row = u64::from(self.lun);
        row = row * u64::from(geom.planes_per_lun) + u64::from(self.plane_in_lun);
        row = row * u64::from(geom.blocks_per_plane) + u64::from(self.block);
        row * u64::from(geom.pages_per_block) + u64::from(self.page)
    }

    /// The column address (byte within the page).
    pub fn column_address(&self) -> u32 {
        self.byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn searssd_default_matches_paper() {
        let g = FlashGeometry::searssd_default();
        g.validate().unwrap();
        assert_eq!(g.total_luns(), 256);
        assert_eq!(g.total_planes(), 512);
        assert_eq!(g.total_chips(), 128);
        // 512 GB of SiN capacity.
        assert_eq!(g.total_capacity_bytes(), 512 * 1024 * 1024 * 1024);
    }

    #[test]
    fn tiny_geometry_is_valid() {
        let g = FlashGeometry::tiny();
        g.validate().unwrap();
        assert_eq!(g.total_luns(), 8);
        assert_eq!(g.total_planes(), 16);
    }

    #[test]
    fn scaled_keeps_shape() {
        let g = FlashGeometry::searssd_scaled(64);
        g.validate().unwrap();
        assert_eq!(g.total_luns(), 256);
        assert_eq!(g.blocks_per_plane, 8);
    }

    #[test]
    fn validate_rejects_zero_fields() {
        let mut g = FlashGeometry::tiny();
        g.channels = 0;
        assert!(g.validate().unwrap_err().contains("channels"));
    }

    #[test]
    fn validate_rejects_indivisible_planes() {
        let mut g = FlashGeometry::tiny();
        g.planes_per_chip = 3;
        g.planes_per_lun = 2;
        assert!(g.validate().is_err());
    }

    #[test]
    fn lun_to_channel_and_chip() {
        let g = FlashGeometry::searssd_default();
        // 8 LUNs per channel (4 chips × 2 LUNs/chip).
        assert_eq!(g.lun_channel(0), 0);
        assert_eq!(g.lun_channel(7), 0);
        assert_eq!(g.lun_channel(8), 1);
        assert_eq!(g.lun_chip(0), 0);
        assert_eq!(g.lun_chip(1), 0);
        assert_eq!(g.lun_chip(2), 1);
    }

    #[test]
    fn phys_addr_checked_bounds() {
        let g = FlashGeometry::tiny();
        assert!(PhysAddr::checked(&g, 0, 0, 0, 0, 0).is_ok());
        assert!(PhysAddr::checked(&g, 8, 0, 0, 0, 0).is_err());
        assert!(PhysAddr::checked(&g, 0, 2, 0, 0, 0).is_err());
        assert!(PhysAddr::checked(&g, 0, 0, 4, 0, 0).is_err());
        assert!(PhysAddr::checked(&g, 0, 0, 0, 8, 0).is_err());
        assert!(PhysAddr::checked(&g, 0, 0, 0, 0, 2048).is_err());
    }

    #[test]
    fn page_keys_are_unique() {
        let g = FlashGeometry::tiny();
        let mut keys = std::collections::HashSet::new();
        for lun in 0..g.total_luns() {
            for plane in 0..g.planes_per_lun {
                for block in 0..g.blocks_per_plane {
                    for page in 0..g.pages_per_block {
                        let a = PhysAddr::checked(&g, lun, plane, block, page, 0).unwrap();
                        assert!(keys.insert(a.page_key(&g)), "duplicate key for {a:?}");
                    }
                }
            }
        }
        assert_eq!(keys.len() as u64, g.total_pages());
    }

    #[test]
    fn row_address_fits_declared_bits() {
        let g = FlashGeometry::searssd_default();
        let bits = g.row_address_bits();
        // Paper allocates 26 bits for LUN+plane+block+page.
        assert!(bits <= 26, "row address needs {bits} bits");
        let a = PhysAddr::checked(
            &g,
            g.total_luns() - 1,
            g.planes_per_lun - 1,
            g.blocks_per_plane - 1,
            g.pages_per_block - 1,
            0,
        )
        .unwrap();
        assert!(a.row_address(&g) < (1u64 << bits));
    }

    #[test]
    fn global_plane_is_dense() {
        let g = FlashGeometry::tiny();
        let a = PhysAddr::checked(&g, 3, 1, 0, 0, 0).unwrap();
        assert_eq!(a.global_plane(&g), 7);
    }
}
