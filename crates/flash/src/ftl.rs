//! Flash translation layer with block-level refresh.
//!
//! §II-B2: even though the ANNS search phase is read-only, NAND retention
//! and read-disturb require periodic *data refreshing*, which relocates
//! blocks and therefore changes physical addresses. NDSEARCH adopts
//! block-level refreshing, and — critically for the multi-plane mapping of
//! §VI-A2 — confines each relocation *within the same plane* so the
//! multi-plane operation parallelism established by static scheduling is
//! never degraded.
//!
//! The [`Ftl`] keeps a per-plane logical→physical block bijection. Each
//! refresh emits a [`RefreshEvent`] which the LUNCSR consumer applies to its
//! BLK array (the "bijection (update after refreshing)" arrow in Fig. 5b).

use crate::geometry::{FlashGeometry, PlaneId};
use ndsearch_vector::rng::Pcg32;

/// A block relocation performed by refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshEvent {
    /// Plane the relocation happened in (refreshes never cross planes).
    pub plane: PlaneId,
    /// Logical block id (stable name the LUNCSR BLK array stores).
    pub logical_block: u32,
    /// Physical block the data used to live in.
    pub old_physical: u32,
    /// Physical block the data now lives in.
    pub new_physical: u32,
}

/// Per-plane logical→physical block mapping with refresh support.
#[derive(Debug, Clone)]
pub struct Ftl {
    geom: FlashGeometry,
    /// `l2p[plane][logical] = physical`.
    l2p: Vec<Vec<u32>>,
    /// Refresh operations performed so far.
    refresh_count: u64,
    /// Page programs routed through the FTL (online appends, rewrites).
    program_count: u64,
    /// Block erases routed through the FTL (compaction, refresh).
    erase_count: u64,
    /// Per-plane read counters driving read-disturb-triggered refresh.
    plane_reads: Vec<u64>,
    /// Reads per plane after which a refresh of one block is triggered
    /// (0 disables automatic refresh).
    pub refresh_read_threshold: u64,
    rng: Pcg32,
}

impl Ftl {
    /// Creates an identity-mapped FTL for a geometry.
    pub fn new(geom: FlashGeometry, seed: u64) -> Self {
        let planes = geom.total_planes() as usize;
        let ident: Vec<u32> = (0..geom.blocks_per_plane).collect();
        Self {
            geom,
            l2p: vec![ident; planes],
            refresh_count: 0,
            program_count: 0,
            erase_count: 0,
            plane_reads: vec![0; planes],
            refresh_read_threshold: 0,
            rng: Pcg32::seed_from_u64(seed),
        }
    }

    /// The geometry this FTL manages.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geom
    }

    /// Translates a logical block in a plane to its physical block.
    ///
    /// # Panics
    /// Panics if `plane` or `logical_block` is out of range.
    pub fn physical_block(&self, plane: PlaneId, logical_block: u32) -> u32 {
        self.l2p[plane as usize][logical_block as usize]
    }

    /// Total refreshes performed.
    pub fn refresh_count(&self) -> u64 {
        self.refresh_count
    }

    /// Total page programs routed through [`program_page`](Self::program_page).
    pub fn program_count(&self) -> u64 {
        self.program_count
    }

    /// Total block erases routed through
    /// [`erase_logical_block`](Self::erase_logical_block).
    pub fn erase_count(&self) -> u64 {
        self.erase_count
    }

    /// Routes a page program for a logical block through the FTL: counts
    /// the `<ProgramPage>` command and returns the *physical* block the
    /// data lands in, so the caller can charge wear to the right cells.
    /// The online-update path appends every new vector's page this way.
    ///
    /// # Panics
    /// Panics if indices are out of range.
    pub fn program_page(&mut self, plane: PlaneId, logical_block: u32) -> u32 {
        self.program_count += 1;
        self.physical_block(plane, logical_block)
    }

    /// Routes a block erase through the FTL (compaction rewrites a fresh
    /// base, erasing the blocks the old one occupied): counts the erase
    /// and returns the physical block erased.
    ///
    /// # Panics
    /// Panics if indices are out of range.
    pub fn erase_logical_block(&mut self, plane: PlaneId, logical_block: u32) -> u32 {
        self.erase_count += 1;
        self.physical_block(plane, logical_block)
    }

    /// Refreshes one logical block: its data moves to a different physical
    /// block *within the same plane*. The physical slot it moves into is
    /// vacated by swapping with whichever logical block held it, so one
    /// refresh relocates *two* logical blocks (the map stays a bijection).
    /// Both relocation events are returned so the LUNCSR BLK array can be
    /// updated for every affected vertex.
    ///
    /// # Panics
    /// Panics if indices are out of range.
    pub fn refresh_block(&mut self, plane: PlaneId, logical_block: u32) -> Vec<RefreshEvent> {
        let map = &mut self.l2p[plane as usize];
        let old_physical = map[logical_block as usize];
        // Pick a different physical slot in this plane and swap owners.
        let n = map.len() as u32;
        if n <= 1 {
            return Vec::new();
        }
        let mut target = self.rng.next_below(u64::from(n)) as u32;
        while target == old_physical {
            target = self.rng.next_below(u64::from(n)) as u32;
        }
        // Find which logical block currently owns `target` and swap.
        let other_logical = map
            .iter()
            .position(|&p| p == target)
            .expect("bijection invariant broken") as u32;
        map.swap(logical_block as usize, other_logical as usize);
        self.refresh_count += 1;
        vec![
            RefreshEvent {
                plane,
                logical_block,
                old_physical,
                new_physical: target,
            },
            RefreshEvent {
                plane,
                logical_block: other_logical,
                old_physical: target,
                new_physical: old_physical,
            },
        ]
    }

    /// Records a page read in a plane; if the read-disturb threshold is
    /// enabled and crossed, refreshes a deterministic pseudo-random block
    /// and returns the relocation events (empty when no refresh fired).
    pub fn note_read(&mut self, plane: PlaneId) -> Vec<RefreshEvent> {
        let reads = &mut self.plane_reads[plane as usize];
        *reads += 1;
        if self.refresh_read_threshold > 0 && (*reads).is_multiple_of(self.refresh_read_threshold) {
            let block = self.rng.next_below(u64::from(self.geom.blocks_per_plane)) as u32;
            self.refresh_block(plane, block)
        } else {
            Vec::new()
        }
    }

    /// Checks the bijection invariant (every physical block appears exactly
    /// once per plane). Used by tests and debug assertions.
    pub fn is_bijective(&self) -> bool {
        self.l2p.iter().all(|map| {
            let mut seen = vec![false; map.len()];
            map.iter().all(|&p| {
                let i = p as usize;
                i < seen.len() && !std::mem::replace(&mut seen[i], true)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;

    #[test]
    fn identity_at_start() {
        let ftl = Ftl::new(FlashGeometry::tiny(), 1);
        assert_eq!(ftl.physical_block(0, 3), 3);
        assert!(ftl.is_bijective());
    }

    #[test]
    fn refresh_relocates_within_plane() {
        let mut ftl = Ftl::new(FlashGeometry::tiny(), 2);
        let evs = ftl.refresh_block(5, 1);
        assert_eq!(evs.len(), 2, "a swap relocates two logical blocks");
        let ev = evs[0];
        assert_eq!(ev.plane, 5);
        assert_eq!(ev.logical_block, 1);
        assert_ne!(ev.old_physical, ev.new_physical);
        assert_eq!(ftl.physical_block(5, 1), ev.new_physical);
        // The displaced block is reported symmetrically.
        assert_eq!(evs[1].new_physical, ev.old_physical);
        assert_eq!(evs[1].old_physical, ev.new_physical);
        // Other planes untouched.
        assert_eq!(ftl.physical_block(0, 1), 1);
        assert!(ftl.is_bijective());
    }

    #[test]
    fn many_refreshes_keep_bijection() {
        let mut ftl = Ftl::new(FlashGeometry::tiny(), 3);
        for i in 0..500u32 {
            let plane = i % ftl.geometry().total_planes();
            let block = i % ftl.geometry().blocks_per_plane;
            ftl.refresh_block(plane, block);
        }
        assert_eq!(ftl.refresh_count(), 500);
        assert!(ftl.is_bijective());
    }

    #[test]
    fn read_threshold_triggers_refresh() {
        let mut ftl = Ftl::new(FlashGeometry::tiny(), 4);
        ftl.refresh_read_threshold = 10;
        let mut events = 0;
        for _ in 0..100 {
            if !ftl.note_read(2).is_empty() {
                events += 1;
            }
        }
        assert_eq!(events, 10);
        assert!(ftl.is_bijective());
    }

    #[test]
    fn refresh_events_replay_to_the_live_mapping() {
        // Round-trip: replaying every emitted RefreshEvent onto a shadow
        // identity map must reproduce the FTL's live logical→physical map
        // exactly — this is the contract the LUNCSR BLK array relies on.
        let geom = FlashGeometry::tiny();
        let mut ftl = Ftl::new(geom, 6);
        let planes = geom.total_planes() as usize;
        let blocks = geom.blocks_per_plane;
        let mut shadow: Vec<Vec<u32>> = vec![(0..blocks).collect(); planes];
        for i in 0..800u32 {
            let plane = (i * 7) % geom.total_planes();
            let block = (i * 13) % blocks;
            for ev in ftl.refresh_block(plane, block) {
                assert_eq!(ev.plane, plane, "refresh crossed planes");
                let entry = &mut shadow[ev.plane as usize][ev.logical_block as usize];
                assert_eq!(*entry, ev.old_physical, "stale old_physical in event");
                *entry = ev.new_physical;
            }
        }
        for p in 0..geom.total_planes() {
            for b in 0..blocks {
                assert_eq!(
                    shadow[p as usize][b as usize],
                    ftl.physical_block(p, b),
                    "event replay diverged at plane {p} block {b}"
                );
            }
        }
        assert!(ftl.is_bijective());
    }

    #[test]
    fn single_block_plane_refresh_is_a_noop() {
        let mut geom = FlashGeometry::tiny();
        geom.blocks_per_plane = 1;
        let mut ftl = Ftl::new(geom, 7);
        assert!(ftl.refresh_block(0, 0).is_empty());
        assert_eq!(ftl.refresh_count(), 0);
        assert!(ftl.is_bijective());
    }

    #[test]
    fn program_and_erase_route_through_the_mapping() {
        let mut ftl = Ftl::new(FlashGeometry::tiny(), 8);
        assert_eq!(ftl.program_page(2, 3), 3, "identity map at first");
        assert_eq!(ftl.program_count(), 1);
        // After a refresh the program lands on the relocated physical block.
        let evs = ftl.refresh_block(2, 3);
        assert_eq!(ftl.program_page(2, 3), evs[0].new_physical);
        assert_eq!(ftl.erase_logical_block(2, 3), evs[0].new_physical);
        assert_eq!(ftl.program_count(), 2);
        assert_eq!(ftl.erase_count(), 1);
    }

    #[test]
    fn zero_threshold_never_refreshes() {
        let mut ftl = Ftl::new(FlashGeometry::tiny(), 5);
        for _ in 0..1000 {
            assert!(ftl.note_read(0).is_empty());
        }
    }
}
