//! LDPC error correction model and fault injection (Fig. 18).
//!
//! §IV-C5: feature vectors must be corrected *before* entering the MAC
//! group, so each plane gets a hard-decision LDPC decoder between the page
//! buffer and the MACs. Soft-decision decoding stays on the FTL (embedded
//! cores) and is invoked only when hard decision fails, pausing the search
//! iteration and costing ~10 µs extra.
//!
//! §VII-B ("ECC and endurance"): raw bit error rates are generated per
//! plane following measured BER distributions with mean 1e-6, and
//! hard-decision failure probabilities of {1, 5, 10, 30} % are injected to
//! evaluate worst-case slowdown (1.23×–1.66× at 30 %).

use std::collections::BTreeMap;

use crate::geometry::{FlashGeometry, PlaneId};
use crate::timing::Nanos;
use ndsearch_vector::rng::{Pcg32, SplitMix64};

/// ECC model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EccConfig {
    /// Mean raw bit error rate across planes (paper default 1e-6).
    pub mean_raw_ber: f64,
    /// Spread of the per-plane lognormal BER distribution (sigma of ln BER).
    pub ber_sigma: f64,
    /// Probability that the in-SiN hard-decision decode of a page fails and
    /// must fall back to soft decision on the FTL (paper default 1 %).
    pub hard_decision_failure_prob: f64,
    /// Latency of in-plane hard-decision decode (pipelined with the page
    /// buffer stream; small).
    pub t_hard_decode_ns: Nanos,
    /// Extra latency of a soft-decision decode on the FTL (paper: ~10 µs),
    /// which also pauses the search iteration on that LUN.
    pub t_soft_decode_ns: Nanos,
    /// RNG seed for plane BERs and failure injection.
    pub seed: u64,
}

impl Default for EccConfig {
    fn default() -> Self {
        Self {
            mean_raw_ber: 1e-6,
            ber_sigma: 0.6,
            hard_decision_failure_prob: 0.01,
            t_hard_decode_ns: 500,
            t_soft_decode_ns: 10_000,
            seed: 0xECC,
        }
    }
}

impl EccConfig {
    /// The paper's worst-case scenarios sweep (Fig. 18b): hard-decision
    /// failure probabilities of 30 %, 10 %, 5 % and 1 %.
    pub fn failure_sweep() -> [f64; 4] {
        [0.30, 0.10, 0.05, 0.01]
    }
}

/// Mergeable result of a [decoding pass](EccLunPass): per-plane decode
/// counts plus failure totals, produced *without* mutating the engine.
///
/// Deltas merge associatively and commutatively (every field is a sum),
/// so per-LUN passes computed on worker threads in any order fold into
/// the same engine state. Apply them with [`EccEngine::apply`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EccDelta {
    /// `(plane, decode count)` pairs, sorted by plane id.
    plane_decodes: Vec<(PlaneId, u64)>,
    /// Total pages decoded in the pass.
    pub decodes: u64,
    /// Hard-decision failures (soft-decision fallbacks) in the pass.
    pub hard_failures: u64,
}

impl EccDelta {
    /// Folds `other` into `self` (associative, commutative).
    pub fn merge(&mut self, other: &EccDelta) {
        for &(plane, count) in &other.plane_decodes {
            match self.plane_decodes.binary_search_by_key(&plane, |e| e.0) {
                Ok(i) => self.plane_decodes[i].1 += count,
                Err(i) => self.plane_decodes.insert(i, (plane, count)),
            }
        }
        self.decodes += other.decodes;
        self.hard_failures += other.hard_failures;
    }
}

/// A pure per-LUN decoding pass over a read-only [`EccEngine`] snapshot.
///
/// The pass indexes each plane's deterministic failure stream at
/// `engine counter + local counter`, so concurrent passes over *disjoint*
/// planes (each LUN owns its planes) draw exactly the decisions the
/// serial path would, regardless of scheduling. Finish with
/// [`into_delta`](Self::into_delta) and fold the delta back via
/// [`EccEngine::apply`] before the next pass touches the same planes.
#[derive(Debug, Clone)]
pub struct EccLunPass<'a> {
    engine: &'a EccEngine,
    counts: BTreeMap<PlaneId, u64>,
    decodes: u64,
    hard_failures: u64,
}

impl EccLunPass<'_> {
    /// Simulates decoding one page read on `plane`. Returns the added ECC
    /// latency: hard decode always; plus a soft-decision invocation when
    /// the injected fault fires.
    ///
    /// # Panics
    /// Panics if the plane index is out of range for the engine's geometry.
    pub fn decode_page(&mut self, plane: PlaneId) -> Nanos {
        let base = self.engine.plane_decodes[plane as usize];
        let local = self.counts.entry(plane).or_insert(0);
        let index = base + *local;
        *local += 1;
        self.decodes += 1;
        if self.engine.fault_fires(plane, index) {
            self.hard_failures += 1;
            self.engine.config.t_hard_decode_ns + self.engine.config.t_soft_decode_ns
        } else {
            self.engine.config.t_hard_decode_ns
        }
    }

    /// Hard-decision failures this pass has injected so far.
    pub fn hard_failures(&self) -> u64 {
        self.hard_failures
    }

    /// Finishes the pass, yielding its mergeable delta.
    pub fn into_delta(self) -> EccDelta {
        EccDelta {
            plane_decodes: self.counts.into_iter().collect(),
            decodes: self.decodes,
            hard_failures: self.hard_failures,
        }
    }
}

/// Per-plane BER state plus deterministic fault injection.
///
/// Fault injection is *counter-indexed*: whether the `n`-th decode of a
/// plane fails is a pure function of `(seed, plane, n)`, so the failure
/// pattern is independent of the order in which LUNs are processed — the
/// property the data-parallel round executor relies on for bit-identical
/// reports at any thread count.
#[derive(Debug, Clone)]
pub struct EccEngine {
    config: EccConfig,
    /// Per-plane raw BERs, behind an `Arc` so the per-round snapshot
    /// clone the parallel executor takes copies only the cursors below.
    plane_ber: std::sync::Arc<[f64]>,
    /// Decodes committed per plane (the failure-stream cursor).
    plane_decodes: Vec<u64>,
    hard_failures: u64,
    decodes: u64,
}

impl EccEngine {
    /// Builds the engine, sampling one raw BER per plane from a lognormal
    /// centred (in log space) on `mean_raw_ber`.
    pub fn new(geom: &FlashGeometry, config: EccConfig) -> Self {
        let mut rng = Pcg32::seed_from_u64(config.seed);
        let mu = config.mean_raw_ber.ln();
        let plane_ber: std::sync::Arc<[f64]> = (0..geom.total_planes())
            .map(|_| (mu + rng.next_gaussian() * config.ber_sigma).exp())
            .collect();
        let planes = plane_ber.len();
        Self {
            config,
            plane_ber,
            plane_decodes: vec![0; planes],
            hard_failures: 0,
            decodes: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &EccConfig {
        &self.config
    }

    /// Changes the injected hard-decision failure probability mid-run
    /// (clamped to `[0, 1]`) — the degradation trigger an ECC storm or a
    /// wear-out event ramps. Determinism is preserved: fault injection is
    /// counter-indexed, so whether the `n`-th decode of a plane fails is
    /// still a pure function of `(seed, plane, n)` and the probability in
    /// force when that decode happens, independent of thread scheduling.
    pub fn set_hard_decision_failure_prob(&mut self, p: f64) {
        self.config.hard_decision_failure_prob = p.clamp(0.0, 1.0);
    }

    /// Raw BER of a plane.
    ///
    /// # Panics
    /// Panics if the plane index is out of range.
    pub fn plane_raw_ber(&self, plane: PlaneId) -> f64 {
        self.plane_ber[plane as usize]
    }

    /// All plane BERs (for the Fig. 18(a) distribution plot).
    pub fn plane_bers(&self) -> &[f64] {
        &self.plane_ber
    }

    /// Whether the `index`-th decode on `plane` suffers a hard-decision
    /// failure — a pure hash of `(seed, plane, index)`.
    fn fault_fires(&self, plane: PlaneId, index: u64) -> bool {
        let p = self.config.hard_decision_failure_prob;
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let mut mix = SplitMix64::new(
            self.config
                .seed
                .wrapping_add(u64::from(plane).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03)),
        );
        let u = (mix.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Starts a pure decoding pass against the current counters (see
    /// [`EccLunPass`]).
    pub fn begin_lun_pass(&self) -> EccLunPass<'_> {
        EccLunPass {
            engine: self,
            counts: BTreeMap::new(),
            decodes: 0,
            hard_failures: 0,
        }
    }

    /// Commits a pass's delta, advancing the per-plane failure-stream
    /// cursors and the engine totals. Deltas over disjoint planes may be
    /// applied in any order and yield the same state.
    ///
    /// # Panics
    /// Panics if the delta names a plane outside the engine's geometry.
    pub fn apply(&mut self, delta: &EccDelta) {
        for &(plane, count) in &delta.plane_decodes {
            self.plane_decodes[plane as usize] += count;
        }
        self.decodes += delta.decodes;
        self.hard_failures += delta.hard_failures;
    }

    /// Number of pages decoded so far.
    pub fn decode_count(&self) -> u64 {
        self.decodes
    }

    /// Number of hard-decision failures injected so far.
    pub fn hard_failure_count(&self) -> u64 {
        self.hard_failures
    }

    /// Observed failure ratio.
    pub fn observed_failure_ratio(&self) -> f64 {
        if self.decodes == 0 {
            0.0
        } else {
            self.hard_failures as f64 / self.decodes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;

    #[test]
    fn plane_bers_center_on_mean() {
        let geom = FlashGeometry::searssd_default();
        let engine = EccEngine::new(&geom, EccConfig::default());
        let bers = engine.plane_bers();
        assert_eq!(bers.len(), 512);
        let log_mean = bers.iter().map(|b| b.ln()).sum::<f64>() / bers.len() as f64;
        let target = 1e-6f64.ln();
        assert!((log_mean - target).abs() < 0.15, "log mean {log_mean}");
        // There is spread (the Fig. 18a histogram is not a spike).
        let min = bers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = bers.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 3.0, "min {min}, max {max}");
    }

    #[test]
    fn failure_injection_tracks_probability() {
        let geom = FlashGeometry::tiny();
        let mut cfg = EccConfig {
            hard_decision_failure_prob: 0.30,
            ..EccConfig::default()
        };
        cfg.seed = 7;
        let mut engine = EccEngine::new(&geom, cfg);
        let mut pass = engine.begin_lun_pass();
        for i in 0..20_000u32 {
            pass.decode_page(i % geom.total_planes());
        }
        let delta = pass.into_delta();
        engine.apply(&delta);
        assert_eq!(engine.decode_count(), 20_000);
        let p = engine.observed_failure_ratio();
        assert!((p - 0.30).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn soft_decode_costs_more() {
        let geom = FlashGeometry::tiny();
        // Force failures.
        let cfg = EccConfig {
            hard_decision_failure_prob: 1.0,
            ..EccConfig::default()
        };
        let always = EccEngine::new(&geom, cfg);
        let cfg0 = EccConfig {
            hard_decision_failure_prob: 0.0,
            ..EccConfig::default()
        };
        let never = EccEngine::new(&geom, cfg0);
        assert!(
            always.begin_lun_pass().decode_page(0) > never.begin_lun_pass().decode_page(0) + 5_000
        );
    }

    #[test]
    fn determinism_per_seed() {
        let geom = FlashGeometry::tiny();
        let mk = || {
            let mut e = EccEngine::new(&geom, EccConfig::default());
            let mut out = Vec::new();
            for _ in 0..100 {
                let mut pass = e.begin_lun_pass();
                out.push(pass.decode_page(0));
                e.apply(&pass.into_delta());
            }
            out
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn split_passes_match_one_pass() {
        // Decoding a plane N times in one pass, or spread over several
        // applied passes, walks the same counter-indexed failure stream.
        let geom = FlashGeometry::tiny();
        let cfg = EccConfig {
            hard_decision_failure_prob: 0.4,
            ..EccConfig::default()
        };
        let one = {
            let mut e = EccEngine::new(&geom, cfg);
            let mut pass = e.begin_lun_pass();
            let lat: Vec<Nanos> = (0..64).map(|_| pass.decode_page(3)).collect();
            e.apply(&pass.into_delta());
            (lat, e.hard_failure_count())
        };
        let split = {
            let mut e = EccEngine::new(&geom, cfg);
            let mut lat = Vec::new();
            for chunk in [16usize, 1, 40, 7] {
                let mut pass = e.begin_lun_pass();
                for _ in 0..chunk {
                    lat.push(pass.decode_page(3));
                }
                e.apply(&pass.into_delta());
            }
            (lat, e.hard_failure_count())
        };
        assert_eq!(one, split);
    }

    #[test]
    fn disjoint_plane_deltas_merge_in_any_order() {
        // Two passes over disjoint planes taken from the same snapshot —
        // the data-parallel round shape — commit to identical engine state
        // regardless of apply order, and merging the deltas first is
        // equivalent too.
        let geom = FlashGeometry::tiny();
        let cfg = EccConfig {
            hard_decision_failure_prob: 0.5,
            ..EccConfig::default()
        };
        let run = |order_ab: bool, premerge: bool| {
            let mut e = EccEngine::new(&geom, cfg);
            let (da, db) = {
                let mut a = e.begin_lun_pass();
                let mut b = e.begin_lun_pass();
                for _ in 0..10 {
                    a.decode_page(0);
                    a.decode_page(1);
                    b.decode_page(2);
                }
                (a.into_delta(), b.into_delta())
            };
            if premerge {
                let mut d = da.clone();
                d.merge(&db);
                e.apply(&d);
            } else if order_ab {
                e.apply(&da);
                e.apply(&db);
            } else {
                e.apply(&db);
                e.apply(&da);
            }
            (e.decode_count(), e.hard_failure_count())
        };
        assert_eq!(run(true, false), run(false, false));
        assert_eq!(run(true, false), run(true, true));
    }

    #[test]
    fn sweep_matches_paper_points() {
        assert_eq!(EccConfig::failure_sweep(), [0.30, 0.10, 0.05, 0.01]);
    }

    #[test]
    fn mid_run_failure_ramp_is_deterministic_and_bites() {
        // Raising the failure probability mid-run (an ECC storm) must (a)
        // replay bit-identically — the counter-indexed streams don't care
        // when the probability changed — and (b) actually raise the
        // observed failure ratio from that point on.
        let geom = FlashGeometry::tiny();
        let run = || {
            let mut e = EccEngine::new(
                &geom,
                EccConfig {
                    hard_decision_failure_prob: 0.01,
                    ..EccConfig::default()
                },
            );
            let mut latencies = Vec::new();
            let mut fail_before = 0;
            for phase in 0..2 {
                if phase == 1 {
                    fail_before = e.hard_failure_count();
                    e.set_hard_decision_failure_prob(0.9);
                }
                let mut pass = e.begin_lun_pass();
                for i in 0..2_000u32 {
                    latencies.push(pass.decode_page(i % geom.total_planes()));
                }
                e.apply(&pass.into_delta());
            }
            (latencies, fail_before, e.hard_failure_count())
        };
        let (lat_a, before, after) = run();
        let (lat_b, ..) = run();
        assert_eq!(lat_a, lat_b, "storm replay diverged");
        let storm_failures = after - before;
        assert!(
            storm_failures > 10 * before.max(1),
            "storm did not bite: {before} failures before, {storm_failures} during"
        );
    }

    #[test]
    fn failure_prob_setter_clamps() {
        let geom = FlashGeometry::tiny();
        let mut e = EccEngine::new(&geom, EccConfig::default());
        e.set_hard_decision_failure_prob(7.0);
        assert_eq!(e.config().hard_decision_failure_prob, 1.0);
        e.set_hard_decision_failure_prob(-3.0);
        assert_eq!(e.config().hard_decision_failure_prob, 0.0);
    }
}
