//! LDPC error correction model and fault injection (Fig. 18).
//!
//! §IV-C5: feature vectors must be corrected *before* entering the MAC
//! group, so each plane gets a hard-decision LDPC decoder between the page
//! buffer and the MACs. Soft-decision decoding stays on the FTL (embedded
//! cores) and is invoked only when hard decision fails, pausing the search
//! iteration and costing ~10 µs extra.
//!
//! §VII-B ("ECC and endurance"): raw bit error rates are generated per
//! plane following measured BER distributions with mean 1e-6, and
//! hard-decision failure probabilities of {1, 5, 10, 30} % are injected to
//! evaluate worst-case slowdown (1.23×–1.66× at 30 %).

use crate::geometry::{FlashGeometry, PlaneId};
use crate::timing::Nanos;
use ndsearch_vector::rng::Pcg32;

/// ECC model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EccConfig {
    /// Mean raw bit error rate across planes (paper default 1e-6).
    pub mean_raw_ber: f64,
    /// Spread of the per-plane lognormal BER distribution (sigma of ln BER).
    pub ber_sigma: f64,
    /// Probability that the in-SiN hard-decision decode of a page fails and
    /// must fall back to soft decision on the FTL (paper default 1 %).
    pub hard_decision_failure_prob: f64,
    /// Latency of in-plane hard-decision decode (pipelined with the page
    /// buffer stream; small).
    pub t_hard_decode_ns: Nanos,
    /// Extra latency of a soft-decision decode on the FTL (paper: ~10 µs),
    /// which also pauses the search iteration on that LUN.
    pub t_soft_decode_ns: Nanos,
    /// RNG seed for plane BERs and failure injection.
    pub seed: u64,
}

impl Default for EccConfig {
    fn default() -> Self {
        Self {
            mean_raw_ber: 1e-6,
            ber_sigma: 0.6,
            hard_decision_failure_prob: 0.01,
            t_hard_decode_ns: 500,
            t_soft_decode_ns: 10_000,
            seed: 0xECC,
        }
    }
}

impl EccConfig {
    /// The paper's worst-case scenarios sweep (Fig. 18b): hard-decision
    /// failure probabilities of 30 %, 10 %, 5 % and 1 %.
    pub fn failure_sweep() -> [f64; 4] {
        [0.30, 0.10, 0.05, 0.01]
    }
}

/// Per-plane BER state plus deterministic fault injection.
#[derive(Debug, Clone)]
pub struct EccEngine {
    config: EccConfig,
    plane_ber: Vec<f64>,
    rng: Pcg32,
    hard_failures: u64,
    decodes: u64,
}

impl EccEngine {
    /// Builds the engine, sampling one raw BER per plane from a lognormal
    /// centred (in log space) on `mean_raw_ber`.
    pub fn new(geom: &FlashGeometry, config: EccConfig) -> Self {
        let mut rng = Pcg32::seed_from_u64(config.seed);
        let mu = config.mean_raw_ber.ln();
        let plane_ber = (0..geom.total_planes())
            .map(|_| (mu + rng.next_gaussian() * config.ber_sigma).exp())
            .collect();
        Self {
            config,
            plane_ber,
            rng,
            hard_failures: 0,
            decodes: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &EccConfig {
        &self.config
    }

    /// Raw BER of a plane.
    ///
    /// # Panics
    /// Panics if the plane index is out of range.
    pub fn plane_raw_ber(&self, plane: PlaneId) -> f64 {
        self.plane_ber[plane as usize]
    }

    /// All plane BERs (for the Fig. 18(a) distribution plot).
    pub fn plane_bers(&self) -> &[f64] {
        &self.plane_ber
    }

    /// Simulates decoding one page read on `plane`. Returns the added ECC
    /// latency: hard decode always; plus a soft-decision invocation when
    /// the injected fault fires.
    pub fn decode_page(&mut self, _plane: PlaneId) -> Nanos {
        self.decodes += 1;
        if self.rng.chance(self.config.hard_decision_failure_prob) {
            self.hard_failures += 1;
            self.config.t_hard_decode_ns + self.config.t_soft_decode_ns
        } else {
            self.config.t_hard_decode_ns
        }
    }

    /// Number of pages decoded so far.
    pub fn decode_count(&self) -> u64 {
        self.decodes
    }

    /// Number of hard-decision failures injected so far.
    pub fn hard_failure_count(&self) -> u64 {
        self.hard_failures
    }

    /// Observed failure ratio.
    pub fn observed_failure_ratio(&self) -> f64 {
        if self.decodes == 0 {
            0.0
        } else {
            self.hard_failures as f64 / self.decodes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FlashGeometry;

    #[test]
    fn plane_bers_center_on_mean() {
        let geom = FlashGeometry::searssd_default();
        let engine = EccEngine::new(&geom, EccConfig::default());
        let bers = engine.plane_bers();
        assert_eq!(bers.len(), 512);
        let log_mean = bers.iter().map(|b| b.ln()).sum::<f64>() / bers.len() as f64;
        let target = 1e-6f64.ln();
        assert!((log_mean - target).abs() < 0.15, "log mean {log_mean}");
        // There is spread (the Fig. 18a histogram is not a spike).
        let min = bers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = bers.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 3.0, "min {min}, max {max}");
    }

    #[test]
    fn failure_injection_tracks_probability() {
        let geom = FlashGeometry::tiny();
        let mut cfg = EccConfig {
            hard_decision_failure_prob: 0.30,
            ..EccConfig::default()
        };
        cfg.seed = 7;
        let mut engine = EccEngine::new(&geom, cfg);
        for i in 0..20_000u32 {
            engine.decode_page(i % geom.total_planes());
        }
        let p = engine.observed_failure_ratio();
        assert!((p - 0.30).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn soft_decode_costs_more() {
        let geom = FlashGeometry::tiny();
        // Force failures.
        let cfg = EccConfig {
            hard_decision_failure_prob: 1.0,
            ..EccConfig::default()
        };
        let mut always = EccEngine::new(&geom, cfg);
        let cfg0 = EccConfig {
            hard_decision_failure_prob: 0.0,
            ..EccConfig::default()
        };
        let mut never = EccEngine::new(&geom, cfg0);
        assert!(always.decode_page(0) > never.decode_page(0) + 5_000);
    }

    #[test]
    fn determinism_per_seed() {
        let geom = FlashGeometry::tiny();
        let mk = || {
            let mut e = EccEngine::new(&geom, EccConfig::default());
            (0..100).map(|_| e.decode_page(0)).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn sweep_matches_paper_points() {
        assert_eq!(EccConfig::failure_sweep(), [0.30, 0.10, 0.05, 0.01]);
    }
}
