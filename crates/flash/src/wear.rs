//! Endurance / wear model (§VII-B "ECC and endurance").
//!
//! Flash memory cells degrade with program/erase cycles; the paper notes
//! that the probability of hard-decision LDPC failure grows as the device
//! ages ("flash memory cell storage reliability gradually degrades"), and
//! quotes the endurance study it cites as reference 83 for the
//! observation that even at mid-late lifetime the failure
//! probability stays around 1 %. This module tracks per-block P/E cycles
//! (refresh is the only writer during the read-only search phase) and maps
//! wear to a raw-BER growth factor, which feeds the ECC engine's failure
//! sweep with physically-grounded inputs instead of hand-picked points.

use crate::geometry::{FlashGeometry, PlaneId};

/// Per-block program/erase accounting.
#[derive(Debug, Clone)]
pub struct WearModel {
    geom: FlashGeometry,
    /// `pe[plane][block]` = program/erase cycles so far.
    pe: Vec<Vec<u32>>,
    /// Rated endurance (P/E cycles) of the cell type; V-NAND MLC ≈ 10k.
    pub rated_pe_cycles: u32,
    /// Raw BER at zero wear.
    pub fresh_ber: f64,
    /// BER multiplier at rated endurance (end-of-life BER / fresh BER).
    pub eol_ber_factor: f64,
}

impl WearModel {
    /// Creates a fresh-device model.
    pub fn new(geom: FlashGeometry) -> Self {
        let planes = geom.total_planes() as usize;
        let blocks = geom.blocks_per_plane as usize;
        Self {
            geom,
            pe: vec![vec![0; blocks]; planes],
            rated_pe_cycles: 10_000,
            fresh_ber: 1e-6,
            eol_ber_factor: 100.0,
        }
    }

    /// Records one erase+program of a block (e.g. a refresh relocation).
    ///
    /// # Panics
    /// Panics if indices are out of range.
    pub fn note_program(&mut self, plane: PlaneId, block: u32) {
        self.pe[plane as usize][block as usize] += 1;
    }

    /// Adds `cycles` program/erase cycles to **every** block at once — the
    /// bulk wear-out trigger a failure schedule fires to age a whole
    /// device mid-run (e.g. to model a drive reaching end-of-life during a
    /// serving window). Saturates instead of wrapping, so repeated events
    /// cannot roll a block back to fresh.
    pub fn age_uniform(&mut self, cycles: u32) {
        for plane in &mut self.pe {
            for block in plane {
                *block = block.saturating_add(cycles);
            }
        }
    }

    /// P/E cycles a block has seen.
    pub fn pe_cycles(&self, plane: PlaneId, block: u32) -> u32 {
        self.pe[plane as usize][block as usize]
    }

    /// Wear ratio of a block: cycles / rated (≥ 1 past rated life).
    pub fn wear_ratio(&self, plane: PlaneId, block: u32) -> f64 {
        f64::from(self.pe_cycles(plane, block)) / f64::from(self.rated_pe_cycles)
    }

    /// Raw BER of a block under its current wear: exponential interpolation
    /// from `fresh_ber` to `fresh_ber × eol_ber_factor` at rated life (the
    /// standard retention/endurance fit shape from the paper's endurance
    /// reference).
    pub fn block_raw_ber(&self, plane: PlaneId, block: u32) -> f64 {
        let w = self.wear_ratio(plane, block);
        self.fresh_ber * self.eol_ber_factor.powf(w.min(2.0))
    }

    /// Device-mean raw BER (averaged over blocks).
    pub fn mean_raw_ber(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0u64;
        for plane in 0..self.geom.total_planes() {
            for block in 0..self.geom.blocks_per_plane {
                sum += self.block_raw_ber(plane, block);
                count += 1;
            }
        }
        sum / count as f64
    }

    /// Maximum wear ratio across the device — the wear-leveling quality
    /// indicator (block-level refresh spreads relocations pseudo-randomly
    /// within planes, bounding the skew).
    pub fn max_wear_ratio(&self) -> f64 {
        let mut worst = 0.0f64;
        for plane in 0..self.geom.total_planes() {
            for block in 0..self.geom.blocks_per_plane {
                worst = worst.max(self.wear_ratio(plane, block));
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftl::Ftl;

    #[test]
    fn fresh_device_has_fresh_ber() {
        let w = WearModel::new(FlashGeometry::tiny());
        assert_eq!(w.pe_cycles(0, 0), 0);
        assert!((w.block_raw_ber(0, 0) - 1e-6).abs() < 1e-12);
        assert!((w.mean_raw_ber() - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn ber_grows_with_wear() {
        let mut w = WearModel::new(FlashGeometry::tiny());
        for _ in 0..5_000 {
            w.note_program(3, 1);
        }
        let half_life = w.block_raw_ber(3, 1);
        assert!(half_life > 5.0 * w.fresh_ber, "half-life BER {half_life}");
        for _ in 0..5_000 {
            w.note_program(3, 1);
        }
        let eol = w.block_raw_ber(3, 1);
        assert!((eol / w.fresh_ber - 100.0).abs() < 1.0, "EOL factor {eol}");
        assert!(eol > half_life);
    }

    #[test]
    fn ber_growth_saturates_past_rated_life() {
        let mut w = WearModel::new(FlashGeometry::tiny());
        for _ in 0..50_000 {
            w.note_program(0, 0);
        }
        // Capped at wear ratio 2.0 → factor 100².
        let ber = w.block_raw_ber(0, 0);
        assert!(ber <= w.fresh_ber * 100.0f64.powf(2.0) * 1.001);
    }

    #[test]
    fn wear_accounting_is_monotone_and_isolated() {
        // Each note_program bumps exactly the targeted block by one cycle,
        // and every derived statistic (wear ratio, block BER, mean BER,
        // max ratio) is nondecreasing in the number of programs.
        let geom = FlashGeometry::tiny();
        let mut w = WearModel::new(geom);
        let mut prev_cycles = 0;
        let mut prev_ber = w.block_raw_ber(1, 2);
        let mut prev_mean = w.mean_raw_ber();
        let mut prev_max = w.max_wear_ratio();
        for step in 1..=200u32 {
            w.note_program(1, 2);
            let cycles = w.pe_cycles(1, 2);
            assert_eq!(cycles, prev_cycles + 1);
            assert_eq!(cycles, step);
            let ber = w.block_raw_ber(1, 2);
            let mean = w.mean_raw_ber();
            let max = w.max_wear_ratio();
            assert!(ber >= prev_ber, "block BER decreased at step {step}");
            assert!(mean >= prev_mean, "mean BER decreased at step {step}");
            assert!(max >= prev_max, "max wear decreased at step {step}");
            prev_cycles = cycles;
            prev_ber = ber;
            prev_mean = mean;
            prev_max = max;
        }
        // Untouched blocks stay fresh.
        assert_eq!(w.pe_cycles(0, 0), 0);
        assert_eq!(w.pe_cycles(1, 1), 0);
        assert!((w.block_raw_ber(0, 0) - w.fresh_ber).abs() < 1e-15);
        assert!((w.wear_ratio(1, 2) - 200.0 / 10_000.0).abs() < 1e-12);
    }

    #[test]
    fn bulk_aging_raises_every_block_and_saturates() {
        let geom = FlashGeometry::tiny();
        let mut w = WearModel::new(geom);
        w.note_program(1, 2); // pre-existing skew survives the bulk event
        w.age_uniform(5_000);
        for plane in 0..geom.total_planes() {
            for block in 0..geom.blocks_per_plane {
                assert!(w.pe_cycles(plane, block) >= 5_000);
            }
        }
        assert_eq!(w.pe_cycles(1, 2), 5_001);
        let mid_life = w.mean_raw_ber();
        assert!(mid_life > 5.0 * w.fresh_ber, "aging did not raise BER");
        w.age_uniform(u32::MAX);
        assert_eq!(w.pe_cycles(0, 0), u32::MAX, "aging must saturate");
        assert!(w.mean_raw_ber() >= mid_life);
    }

    #[test]
    fn refresh_driven_wear_stays_balanced() {
        // Drive wear through the FTL's pseudo-random refresh target choice
        // and check the skew stays bounded (wear leveling).
        let geom = FlashGeometry::tiny();
        let mut wear = WearModel::new(geom);
        let mut ftl = Ftl::new(geom, 11);
        for i in 0..4_000u32 {
            let plane = i % geom.total_planes();
            let block = i % geom.blocks_per_plane;
            for ev in ftl.refresh_block(plane, block) {
                wear.note_program(ev.plane, ev.new_physical);
            }
        }
        let max = wear.max_wear_ratio();
        let mean: f64 = {
            let mut sum = 0.0;
            let mut n = 0u32;
            for p in 0..geom.total_planes() {
                for b in 0..geom.blocks_per_plane {
                    sum += wear.wear_ratio(p, b);
                    n += 1;
                }
            }
            sum / f64::from(n)
        };
        assert!(
            max < mean * 4.0 + 1e-9,
            "wear skew too high: max {max} vs mean {mean}"
        );
    }
}
