//! Shared experiment harness for the figure/table binaries.
//!
//! Every `fig*` binary follows the paper's methodology (§VII-A): build the
//! dataset, construct the graph with the *real* algorithm, run the real
//! search to record memory traces, then replay the traces on each platform
//! model. This module centralizes that pipeline plus table printing.
//!
//! Scale knobs: the environment variables `NDS_N` (base vectors),
//! `NDS_BATCH` (queries per batch) and `NDS_K` (top-k) override the
//! defaults, so the binaries can be run quickly (`NDS_N=2000`) or at
//! higher fidelity.

use ndsearch_anns::hcnng::{Hcnng, HcnngParams};
use ndsearch_anns::hnsw::{Hnsw, HnswParams};
use ndsearch_anns::index::{AnnsAlgorithm, GraphAnnsIndex, SearchParams};
use ndsearch_anns::togg::{Togg, ToggParams};
use ndsearch_anns::trace::BatchTrace;
use ndsearch_anns::vamana::{Vamana, VamanaParams};
use ndsearch_baselines::{
    CpuPlatform, DeepStorePlatform, GpuPlatform, Platform, PlatformReport, Scenario,
    SmartSsdPlatform,
};
use ndsearch_core::config::{NdsConfig, SchedulingConfig};
use ndsearch_core::energy::PowerModel;
use ndsearch_core::pipeline::Prepared;
use ndsearch_core::{NdsEngine, NdsReport};
use ndsearch_graph::csr::Csr;
use ndsearch_vector::dataset::Dataset;
use ndsearch_vector::recall::{ground_truth, recall_at_k};
use ndsearch_vector::synthetic::{BenchmarkId, DatasetSpec};
use ndsearch_vector::DistanceKind;

/// A fully built experiment input: dataset + graph + recorded traces.
pub struct Workload {
    /// Which paper benchmark this models.
    pub benchmark: BenchmarkId,
    /// Which algorithm built the graph.
    pub algorithm: AnnsAlgorithm,
    /// Base vectors.
    pub base: Dataset,
    /// Query vectors.
    pub queries: Dataset,
    /// The base proximity graph.
    pub graph: Csr,
    /// Recorded batch trace.
    pub trace: BatchTrace,
    /// Achieved recall@10 against brute force.
    pub recall_at_10: f64,
    /// Architectural configuration scaled for this dataset.
    pub config: NdsConfig,
}

/// Reads an env-var scale knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Default base-vector count per benchmark (fashion-mnist's 784 dims make
/// construction expensive, so it runs smaller).
pub fn default_n(benchmark: BenchmarkId) -> usize {
    let n = env_usize("NDS_N", 6000);
    match benchmark {
        BenchmarkId::FashionMnist => n.min(2500),
        _ => n,
    }
}

/// Builds a workload: dataset → graph → batch search → traces → recall.
pub fn build_workload(benchmark: BenchmarkId, algorithm: AnnsAlgorithm, batch: usize) -> Workload {
    let n = default_n(benchmark);
    let spec = DatasetSpec::for_benchmark(benchmark, n, batch);
    let (base, queries) = spec.build_pair();
    let index: Box<dyn GraphAnnsIndex> = match algorithm {
        AnnsAlgorithm::Hnsw => Box::new(Hnsw::build(&base, HnswParams::default())),
        AnnsAlgorithm::DiskAnn => Box::new(Vamana::build(&base, VamanaParams::default())),
        AnnsAlgorithm::Hcnng => Box::new(Hcnng::build(&base, HcnngParams::default())),
        AnnsAlgorithm::Togg => Box::new(Togg::build(&base, ToggParams::default())),
        AnnsAlgorithm::BruteForce => {
            Box::new(ndsearch_anns::bruteforce::BruteForce::new(base.len()))
        }
    };
    let k = env_usize("NDS_K", 10);
    let params = SearchParams::new(k, (k * 8).max(64), DistanceKind::L2);
    let out = index.search_batch(&base, &queries, &params);
    // Recall on a subsample (ground truth is O(n × q)).
    let sample = queries.len().min(64);
    let sample_q = Dataset::from_flat(
        queries.dim(),
        queries.as_flat()[..sample * queries.dim()].to_vec(),
    );
    let gt = ground_truth(&base, &sample_q, k, DistanceKind::L2);
    let found: Vec<Vec<u32>> = out.id_lists().into_iter().take(sample).collect();
    let recall = recall_at_k(&gt, &found, k);
    let config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    Workload {
        benchmark,
        algorithm,
        base,
        queries,
        graph: index.base_graph().clone(),
        trace: out.trace,
        recall_at_10: recall,
        config,
    }
}

impl Workload {
    /// The scenario view platforms replay.
    pub fn scenario(&self) -> Scenario<'_> {
        Scenario {
            benchmark: self.benchmark,
            base: &self.base,
            graph: &self.graph,
            trace: &self.trace,
            config: &self.config,
            k: env_usize("NDS_K", 10),
        }
    }

    /// Runs the NDSEARCH engine under a scheduling configuration.
    pub fn run_ndsearch(&self, scheduling: SchedulingConfig) -> NdsReport {
        let config = NdsConfig {
            scheduling,
            ..self.config.clone()
        };
        let prepared = Prepared::stage(&config, &self.graph, &self.base, &self.trace);
        NdsEngine::new(&config).run(&prepared)
    }

    /// Runs NDSEARCH with the full scheduling stack and adapts the report
    /// to the common [`PlatformReport`] shape.
    pub fn ndsearch_platform_report(&self) -> (NdsReport, PlatformReport) {
        let r = self.run_ndsearch(SchedulingConfig::full());
        let power = PowerModel::default();
        let adapted = PlatformReport {
            name: "NDSEARCH".to_string(),
            queries: r.queries,
            total_ns: r.total_ns,
            io_ns: r.breakdown.pcie_ns,
            compute_ns: r.breakdown.nand_read_ns + r.breakdown.compute_ns,
            sort_ns: r.breakdown.bitonic_ns,
            io_bytes: r.stats.pcie_bytes,
            power_w: power.ndsearch_total_w() + power.ssd_device_w,
        };
        (r, adapted)
    }

    /// Replays all baseline platforms plus NDSEARCH, in the paper's order.
    pub fn all_platform_reports(&self) -> Vec<PlatformReport> {
        let s = self.scenario();
        let mut reports = vec![
            CpuPlatform::paper_default().report(&s),
            GpuPlatform::paper_default().report(&s),
            SmartSsdPlatform::paper_default().report(&s),
            DeepStorePlatform::channel_level().report(&s),
            DeepStorePlatform::chip_level().report(&s),
        ];
        reports.push(self.ndsearch_platform_report().1);
        reports
    }
}

/// Prints an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with fixed precision.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_and_replays() {
        std::env::set_var("NDS_N", "600");
        let w = build_workload(BenchmarkId::Sift1B, AnnsAlgorithm::Hnsw, 32);
        assert!(w.recall_at_10 > 0.7, "recall {}", w.recall_at_10);
        let reports = w.all_platform_reports();
        assert_eq!(reports.len(), 6);
        assert_eq!(reports[5].name, "NDSEARCH");
        for r in &reports {
            assert!(r.total_ns > 0, "{} has zero latency", r.name);
        }
        std::env::remove_var("NDS_N");
    }
}
