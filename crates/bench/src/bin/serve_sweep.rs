//! Concurrency and offered-load sweep of the serving layer.
//!
//! Part 1 runs N ∈ {1, 8, 64} concurrent queries (all arriving at t=0),
//! verifies every query's top-k equals the sequential engine's answer, and
//! reports QPS plus p50/p99 latency. Part 2 sweeps offered load (Poisson
//! arrivals at fractions/multiples of the saturated throughput) against a
//! bounded admission queue, showing queueing delay and backpressure.
//!
//! Scale knobs: `NDS_N` (base vectors), `NDS_K` (top-k).

use ndsearch_anns::beam::{beam_search, VisitedSet};
use ndsearch_anns::index::GraphAnnsIndex;
use ndsearch_anns::trace::BatchTrace;
use ndsearch_anns::vamana::{Vamana, VamanaParams};
use ndsearch_bench::{env_usize, f, print_table};
use ndsearch_core::config::NdsConfig;
use ndsearch_core::pipeline::Prepared;
use ndsearch_core::serve::{QueryRequest, ServeConfig, ServeEngine, ServeReport};
use ndsearch_flash::timing::Nanos;
use ndsearch_vector::recall::{ground_truth, recall_at_k};
use ndsearch_vector::rng::Pcg32;
use ndsearch_vector::synthetic::DatasetSpec;
use ndsearch_vector::{DistanceKind, VectorId};

const MAX_CONCURRENT: usize = 64;

fn main() {
    let n = env_usize("NDS_N", 4000);
    let k = env_usize("NDS_K", 10);
    let (base, queries) = DatasetSpec::sift_scaled(n, MAX_CONCURRENT).build_pair();
    let index = Vamana::build(&base, VamanaParams::default());
    let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    let prepared = Prepared::stage(&config, index.base_graph(), &base, &BatchTrace::default());
    let serve_base = ServeConfig {
        k,
        ..ServeConfig::default()
    };

    // Sequential reference: each query beam-searched to completion alone.
    let mut vs = VisitedSet::new(base.len());
    let sequential: Vec<Vec<VectorId>> = queries
        .iter()
        .map(|(_, q)| {
            let mut found = beam_search(
                &base,
                index.base_graph(),
                q,
                &[index.medoid()],
                serve_base.beam_width,
                DistanceKind::L2,
                &mut vs,
            )
            .found;
            found.truncate(k);
            found.into_iter().map(|nb| nb.id).collect()
        })
        .collect();
    let gt = ground_truth(&base, &queries, k, DistanceKind::L2);
    let seq_recall = recall_at_k(&gt, &sequential, k);

    // ---- Part 1: concurrency sweep at closed load. ----
    let mut rows = Vec::new();
    for concurrency in [1usize, 8, 64] {
        let serve = ServeConfig {
            max_inflight: concurrency,
            ..serve_base.clone()
        };
        let mut engine = ServeEngine::new(&config, serve, &prepared, &base, index.base_graph());
        for (_, q) in queries.iter().take(concurrency) {
            engine.submit(QueryRequest::at(0, q.to_vec(), vec![index.medoid()]));
        }
        let report = engine.run_to_completion();
        assert_eq!(report.completed(), concurrency);
        let ids: Vec<Vec<VectorId>> = report
            .outcomes
            .iter()
            .map(|o| o.results.iter().map(|nb| nb.id).collect())
            .collect();
        for (i, got) in ids.iter().enumerate() {
            assert_eq!(
                got, &sequential[i],
                "query {i} diverged from the sequential engine at N={concurrency}"
            );
        }
        let recall = recall_at_k(&gt[..concurrency], &ids, k);
        let lat = report.latency();
        rows.push(vec![
            concurrency.to_string(),
            report.rounds.to_string(),
            f(report.qps() / 1e3, 1),
            f(lat.p50_ns as f64 / 1e3, 1),
            f(lat.p99_ns as f64 / 1e3, 1),
            f(recall, 3),
            "== sequential".to_string(),
        ]);
        if concurrency == MAX_CONCURRENT {
            println!(
                "sequential recall@{k} = {:.3} (every concurrent run returns identical top-k)",
                seq_recall
            );
        }
    }
    print_table(
        "Concurrency sweep (closed load, all queries at t=0)",
        &[
            "N", "rounds", "kQPS", "p50 us", "p99 us", "recall", "parity",
        ],
        &rows,
    );

    // ---- Part 2: offered-load sweep (open loop, Poisson arrivals). ----
    let saturated_qps = {
        let serve = ServeConfig {
            max_inflight: 16,
            ..serve_base.clone()
        };
        let mut engine = ServeEngine::new(&config, serve, &prepared, &base, index.base_graph());
        for (_, q) in queries.iter() {
            engine.submit(QueryRequest::at(0, q.to_vec(), vec![index.medoid()]));
        }
        engine.run_to_completion().qps()
    };
    let mut rows = Vec::new();
    for load_factor in [0.5, 1.0, 2.0] {
        let offered = saturated_qps * load_factor;
        let report = run_open_loop(
            &config,
            &serve_base,
            &prepared,
            &base,
            index.base_graph(),
            &queries,
            index.medoid(),
            offered,
        );
        let lat = report.latency();
        rows.push(vec![
            f(load_factor, 1),
            f(offered / 1e3, 1),
            f(report.qps() / 1e3, 1),
            f(lat.p50_ns as f64 / 1e3, 1),
            f(lat.p99_ns as f64 / 1e3, 1),
            report.rejected().to_string(),
        ]);
    }
    print_table(
        "Offered-load sweep (open loop, Poisson arrivals, 16 slots, queue 8)",
        &[
            "load",
            "offered kQPS",
            "kQPS",
            "p50 us",
            "p99 us",
            "rejected",
        ],
        &rows,
    );
    println!("\nBelow saturation the tail tracks the service time; past it,");
    println!("queueing dominates p99 and the bounded queue sheds load.");
}

#[allow(clippy::too_many_arguments)]
fn run_open_loop(
    config: &NdsConfig,
    serve_base: &ServeConfig,
    prepared: &Prepared,
    base: &ndsearch_vector::Dataset,
    graph: &ndsearch_graph::Csr,
    queries: &ndsearch_vector::Dataset,
    medoid: VectorId,
    offered_qps: f64,
) -> ServeReport {
    let serve = ServeConfig {
        max_inflight: 16,
        queue_capacity: 8,
        ..serve_base.clone()
    };
    let mut engine = ServeEngine::new(config, serve, prepared, base, graph);
    // Exponential interarrivals, deterministic under the fixed seed.
    let mut rng = Pcg32::seed_from_u64(0xA221);
    let mut t: f64 = 0.0;
    for (_, q) in queries.iter() {
        let u = rng.next_f64().max(1e-12);
        t += -u.ln() / offered_qps * 1e9;
        engine.submit(QueryRequest::at(t as Nanos, q.to_vec(), vec![medoid]));
    }
    engine.run_to_completion()
}
