//! Concurrency and offered-load sweep of the serving layer.
//!
//! Part 1 runs N ∈ {1, 8, 64} concurrent queries (all arriving at t=0),
//! verifies every query's top-k equals the sequential engine's answer, and
//! reports QPS plus p50/p99 latency. Part 2 sweeps offered load (Poisson
//! arrivals at fractions/multiples of the saturated throughput) against a
//! bounded admission queue, showing queueing delay and backpressure.
//! Part 3 sweeps the host-side round executor (`NdsConfig::exec_threads`)
//! on the N = 64 closed-load workload: wall-clock simulation time per
//! thread count, speedup vs the sequential path, and a bit-identity check
//! of the reports. Part 4 serves mixed query+update traffic over a
//! *mutable* deployment (online inserts and tombstone deletes as update
//! sessions), reporting update throughput, flash pages programmed and
//! write amplification. A machine-readable `BENCH_serving.json` snapshot
//! (QPS, p50/p99, wall-clock sim throughput, update-throughput fields)
//! seeds the perf trajectory across PRs.
//!
//! Scale knobs: `NDS_N` (base vectors), `NDS_K` (top-k), `NDS_BENCH_JSON`
//! (snapshot path, default `BENCH_serving.json`).

use ndsearch_anns::beam::{beam_search, VisitedSet};
use ndsearch_anns::index::GraphAnnsIndex;
use ndsearch_anns::trace::BatchTrace;
use ndsearch_anns::vamana::{Vamana, VamanaParams};
use ndsearch_bench::{env_usize, f, print_table};
use ndsearch_core::config::NdsConfig;
use ndsearch_core::pipeline::Prepared;
use ndsearch_core::serve::{QueryRequest, ServeConfig, ServeEngine, ServeReport, UpdateRequest};
use ndsearch_flash::timing::Nanos;
use ndsearch_vector::recall::{ground_truth, recall_at_k};
use ndsearch_vector::rng::Pcg32;
use ndsearch_vector::synthetic::DatasetSpec;
use ndsearch_vector::{DistanceKind, VectorId};

const MAX_CONCURRENT: usize = 64;

fn main() {
    let n = env_usize("NDS_N", 4000);
    let k = env_usize("NDS_K", 10);
    let (base, queries) = DatasetSpec::sift_scaled(n, MAX_CONCURRENT).build_pair();
    let index = Vamana::build(&base, VamanaParams::default());
    let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    let prepared = Prepared::stage(&config, index.base_graph(), &base, &BatchTrace::default());
    let serve_base = ServeConfig {
        k,
        ..ServeConfig::default()
    };

    // Sequential reference: each query beam-searched to completion alone.
    let mut vs = VisitedSet::new(base.len());
    let sequential: Vec<Vec<VectorId>> = queries
        .iter()
        .map(|(_, q)| {
            let mut found = beam_search(
                &base,
                index.base_graph(),
                q,
                &[index.medoid()],
                serve_base.beam_width,
                DistanceKind::L2,
                &mut vs,
            )
            .found;
            found.truncate(k);
            found.into_iter().map(|nb| nb.id).collect()
        })
        .collect();
    let gt = ground_truth(&base, &queries, k, DistanceKind::L2);
    let seq_recall = recall_at_k(&gt, &sequential, k);

    // ---- Part 1: concurrency sweep at closed load. ----
    let mut rows = Vec::new();
    let mut snapshot_closed: Vec<String> = Vec::new();
    for concurrency in [1usize, 8, 64] {
        let serve = ServeConfig {
            max_inflight: concurrency,
            ..serve_base.clone()
        };
        let mut engine = ServeEngine::new(&config, serve, &prepared, &base, index.base_graph());
        for (_, q) in queries.iter().take(concurrency) {
            engine.submit(QueryRequest::at(0, q.to_vec(), vec![index.medoid()]));
        }
        let report = engine.run_to_completion();
        assert_eq!(report.completed(), concurrency);
        let ids: Vec<Vec<VectorId>> = report
            .outcomes
            .iter()
            .map(|o| o.results.iter().map(|nb| nb.id).collect())
            .collect();
        for (i, got) in ids.iter().enumerate() {
            assert_eq!(
                got, &sequential[i],
                "query {i} diverged from the sequential engine at N={concurrency}"
            );
        }
        let recall = recall_at_k(&gt[..concurrency], &ids, k);
        let lat = report.latency();
        snapshot_closed.push(format!(
            "{{\"concurrency\": {}, \"qps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"recall\": {:.3}}}",
            concurrency,
            report.qps(),
            lat.p50_ns as f64 / 1e3,
            lat.p99_ns as f64 / 1e3,
            recall
        ));
        rows.push(vec![
            concurrency.to_string(),
            report.rounds.to_string(),
            f(report.qps() / 1e3, 1),
            f(lat.p50_ns as f64 / 1e3, 1),
            f(lat.p99_ns as f64 / 1e3, 1),
            f(recall, 3),
            "== sequential".to_string(),
        ]);
        if concurrency == MAX_CONCURRENT {
            println!(
                "sequential recall@{k} = {:.3} (every concurrent run returns identical top-k)",
                seq_recall
            );
        }
    }
    print_table(
        "Concurrency sweep (closed load, all queries at t=0)",
        &[
            "N", "rounds", "kQPS", "p50 us", "p99 us", "recall", "parity",
        ],
        &rows,
    );

    // ---- Part 2: offered-load sweep (open loop, Poisson arrivals). ----
    let saturated_qps = {
        let serve = ServeConfig {
            max_inflight: 16,
            ..serve_base.clone()
        };
        let mut engine = ServeEngine::new(&config, serve, &prepared, &base, index.base_graph());
        for (_, q) in queries.iter() {
            engine.submit(QueryRequest::at(0, q.to_vec(), vec![index.medoid()]));
        }
        engine.run_to_completion().qps()
    };
    let mut rows = Vec::new();
    for load_factor in [0.5, 1.0, 2.0] {
        let offered = saturated_qps * load_factor;
        let report = run_open_loop(
            &config,
            &serve_base,
            &prepared,
            &base,
            index.base_graph(),
            &queries,
            index.medoid(),
            offered,
        );
        let lat = report.latency();
        rows.push(vec![
            f(load_factor, 1),
            f(offered / 1e3, 1),
            f(report.qps() / 1e3, 1),
            f(lat.p50_ns as f64 / 1e3, 1),
            f(lat.p99_ns as f64 / 1e3, 1),
            report.rejected().to_string(),
        ]);
    }
    print_table(
        "Offered-load sweep (open loop, Poisson arrivals, 16 slots, queue 8)",
        &[
            "load",
            "offered kQPS",
            "kQPS",
            "p50 us",
            "p99 us",
            "rejected",
        ],
        &rows,
    );
    println!("\nBelow saturation the tail tracks the service time; past it,");
    println!("queueing dominates p99 and the bounded queue sheds load.");

    // ---- Part 3: host-parallel executor sweep (wall clock, N = 64). ----
    // Per-LUN work units are pure and merge in stable LUN order, so the
    // reports must be bit-identical at every thread count while the wall
    // clock drops. Best-of-3 runs smooth scheduler noise.
    let mut rows = Vec::new();
    let mut snapshot_threads: Vec<String> = Vec::new();
    let mut reference: Option<ServeReport> = None;
    let mut wall_1t = 0.0f64;
    let mut speedup_4t = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let mut cfg = config.clone();
        cfg.exec_threads = threads;
        let mut best: Option<ServeReport> = None;
        for _ in 0..3 {
            let serve = ServeConfig {
                max_inflight: MAX_CONCURRENT,
                ..serve_base.clone()
            };
            let mut engine = ServeEngine::new(&cfg, serve, &prepared, &base, index.base_graph());
            for (_, q) in queries.iter() {
                engine.submit(QueryRequest::at(0, q.to_vec(), vec![index.medoid()]));
            }
            let report = engine.run_to_completion();
            if best.as_ref().is_none_or(|b| report.wall_s < b.wall_s) {
                best = Some(report);
            }
        }
        let report = best.expect("three runs happened");
        match &reference {
            None => {
                wall_1t = report.wall_s;
                reference = Some(report.clone());
            }
            Some(r) => assert_eq!(
                r, &report,
                "report diverged at exec_threads={threads} (PartialEq ignores wall_s)"
            ),
        }
        let speedup = wall_1t / report.wall_s.max(1e-12);
        if threads == 4 {
            speedup_4t = speedup;
        }
        snapshot_threads.push(format!(
            "{{\"threads\": {}, \"wall_ms\": {:.3}, \"speedup_vs_1t\": {:.2}, \"sim_ns_per_wall_s\": {:.0}}}",
            threads,
            report.wall_s * 1e3,
            speedup,
            report.sim_ns_per_wall_s()
        ));
        rows.push(vec![
            threads.to_string(),
            f(report.wall_s * 1e3, 2),
            f(speedup, 2),
            f(report.sim_ns_per_wall_s() / 1e6, 1),
            "== 1 thread".to_string(),
        ]);
    }
    print_table(
        "Executor sweep (N=64 closed load, best of 3, bit-identical reports)",
        &["threads", "wall ms", "speedup", "sim ms/s", "parity"],
        &rows,
    );

    // ---- Part 4: mixed query+update serving (mutable deployment). ----
    // Inserts append through the FTL's page-program path and deletes
    // tombstone; update throughput and write amplification come out of
    // the same report as query QPS.
    let mut mut_config = NdsConfig::scaled_for(base.len() * 2, base.stored_vector_bytes());
    mut_config.ecc.hard_decision_failure_prob = 0.0;
    let mut rows = Vec::new();
    let mut snapshot_mixed: Vec<String> = Vec::new();
    for (label, nq, nu) in [
        ("90/10", 58usize, 6usize),
        ("50/50", 32, 32),
        ("10/90", 6, 58),
    ] {
        let deploy = ndsearch_core::deploy::Deployment::stage(
            &mut_config,
            Box::new(index.clone()),
            base.clone(),
        );
        let serve = ServeConfig {
            max_inflight: 16,
            ..serve_base.clone()
        };
        let mut engine = ServeEngine::with_deployment(&mut_config, serve, deploy);
        for i in 0..nq {
            let q = queries.vector((i % queries.len()) as u32);
            engine.submit(QueryRequest::at(
                i as Nanos * 1_000,
                q.to_vec(),
                vec![index.medoid()],
            ));
        }
        for i in 0..nu {
            if i % 4 == 3 {
                engine.submit_update(UpdateRequest::delete_at(
                    i as Nanos * 1_500,
                    (i as u32 * 13) % base.len() as u32,
                ));
            } else {
                let v = queries.vector((i % queries.len()) as u32);
                engine.submit_update(UpdateRequest::insert_at(i as Nanos * 1_500, v.to_vec()));
            }
        }
        let report = engine.run_to_completion();
        assert_eq!(report.completed(), nq, "mixed {label}: queries dropped");
        assert_eq!(
            report.updates_completed(),
            nu,
            "mixed {label}: updates dropped"
        );
        snapshot_mixed.push(format!(
            "{{\"mix\": \"{label}\", \"queries\": {nq}, \"updates\": {nu}, \
             \"qps\": {:.1}, \"update_qps\": {:.1}, \"pages_programmed\": {}, \
             \"blocks_erased\": {}, \"write_amplification\": {:.2}, \"program_ms\": {:.3}}}",
            report.qps(),
            report.update_qps(),
            report.updates.pages_programmed,
            report.updates.blocks_erased,
            report.write_amplification(),
            report.breakdown.program_ns as f64 / 1e6,
        ));
        rows.push(vec![
            label.to_string(),
            format!("{nq}/{nu}"),
            f(report.qps() / 1e3, 1),
            f(report.update_qps() / 1e3, 1),
            report.updates.pages_programmed.to_string(),
            f(report.write_amplification(), 2),
            f(report.breakdown.program_ns as f64 / 1e6, 2),
        ]);
    }
    print_table(
        "Mixed query+update serving (mutable deployment, 16 slots)",
        &["mix", "q/u", "kQPS", "kUPS", "pages", "W-amp", "prog ms"],
        &rows,
    );

    // ---- Machine-readable snapshot for the perf trajectory. ----
    let path = std::env::var("NDS_BENCH_JSON").unwrap_or_else(|_| "BENCH_serving.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"n_base\": {n},\n  \"k\": {k},\n  \
         \"host_threads_available\": {avail},\n  \"closed_load\": [\n    {closed}\n  ],\n  \
         \"exec_threads_sweep\": [\n    {threads}\n  ],\n  \"speedup_4t_vs_1t\": {speedup:.2},\n  \
         \"mixed_serving\": [\n    {mixed}\n  ]\n}}\n",
        n = n,
        k = k,
        avail = std::thread::available_parallelism().map_or(1, |p| p.get()),
        closed = snapshot_closed.join(",\n    "),
        threads = snapshot_threads.join(",\n    "),
        speedup = speedup_4t,
        mixed = snapshot_mixed.join(",\n    "),
    );
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote bench snapshot to {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_open_loop(
    config: &NdsConfig,
    serve_base: &ServeConfig,
    prepared: &Prepared,
    base: &ndsearch_vector::Dataset,
    graph: &ndsearch_graph::Csr,
    queries: &ndsearch_vector::Dataset,
    medoid: VectorId,
    offered_qps: f64,
) -> ServeReport {
    let serve = ServeConfig {
        max_inflight: 16,
        queue_capacity: 8,
        ..serve_base.clone()
    };
    let mut engine = ServeEngine::new(config, serve, prepared, base, graph);
    // Exponential interarrivals, deterministic under the fixed seed.
    let mut rng = Pcg32::seed_from_u64(0xA221);
    let mut t: f64 = 0.0;
    for (_, q) in queries.iter() {
        let u = rng.next_f64().max(1e-12);
        t += -u.ln() / offered_qps * 1e9;
        engine.submit(QueryRequest::at(t as Nanos, q.to_vec(), vec![medoid]));
    }
    engine.run_to_completion()
}
