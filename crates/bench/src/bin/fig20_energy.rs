//! Fig. 20 — Energy efficiency (QPS/W) across platforms, both algorithms,
//! all datasets.
//!
//! Paper shapes: NDSEARCH reaches up to 178.68× / 120.87× / 30.06× / 3.48×
//! higher QPS/W than CPU / GPU / SmartSSD-only / DS-cp — roughly the
//! speedup ratios multiplied by the wall-plug power ratios.

use ndsearch_anns::index::AnnsAlgorithm;
use ndsearch_bench::{build_workload, env_usize, f, print_table};
use ndsearch_vector::synthetic::BenchmarkId;

fn main() {
    let batch = env_usize("NDS_BATCH", 2048);
    for algo in [AnnsAlgorithm::Hnsw, AnnsAlgorithm::DiskAnn] {
        let mut rows = Vec::new();
        for bench in BenchmarkId::ALL {
            let w = build_workload(bench, algo, batch);
            let reports = w.all_platform_reports();
            let nds_eff = reports.last().expect("ndsearch present").qps_per_watt();
            for r in &reports {
                rows.push(vec![
                    bench.to_string(),
                    r.name.clone(),
                    f(r.power_w, 1),
                    f(r.qps_per_watt(), 2),
                    f(nds_eff / r.qps_per_watt().max(1e-12), 1),
                ]);
            }
        }
        print_table(
            &format!("Fig. 20 ({algo}): energy efficiency"),
            &[
                "dataset",
                "platform",
                "power W",
                "QPS/W",
                "NDSEARCH advantage x",
            ],
            &rows,
        );
    }
    println!("\nPaper reference: up to 178.68x / 120.87x / 30.06x / 3.48x higher");
    println!("QPS/W than CPU / GPU / SmartSSD-only / DS-cp.");
}
