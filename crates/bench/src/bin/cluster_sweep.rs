//! Shard-count sweep of the scatter–gather cluster serving tier.
//!
//! Part 1 serves one closed-load query wave through clusters of
//! 1/2/4/8 shards under both partition policies, reporting merged QPS,
//! p50/p99 latency, recall, and the load-imbalance factor — and asserts
//! that the single-shard balanced cluster returns *exactly* the
//! unsharded engine's top-k (it is the same deployment). Part 2 serves a
//! mixed query+update stream on the 4-shard cluster (online inserts
//! routed by policy, deletes routed to their owning shard), reporting
//! update throughput and flash write-path totals. A machine-readable
//! `BENCH_cluster.json` snapshot seeds the perf trajectory across PRs.
//!
//! Scale knobs: `NDS_N` (base vectors), `NDS_K` (top-k),
//! `NDS_BENCH_JSON` (snapshot path, default `BENCH_cluster.json`).

use ndsearch_anns::index::MutableIndex;
use ndsearch_anns::vamana::{Vamana, VamanaParams};
use ndsearch_bench::{env_usize, f, print_table};
use ndsearch_core::cluster::{ClusterEngine, ClusterQueryRequest};
use ndsearch_core::config::NdsConfig;
use ndsearch_core::deploy::Deployment;
use ndsearch_core::serve::{QueryRequest, ServeConfig, ServeEngine, UpdateRequest};
use ndsearch_flash::timing::Nanos;
use ndsearch_vector::recall::{ground_truth, recall_at_k};
use ndsearch_vector::shard::{ShardPlan, ShardPolicy};
use ndsearch_vector::synthetic::DatasetSpec;
use ndsearch_vector::{Dataset, DistanceKind, VectorId};

const N_QUERIES: usize = 32;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const PLAN_SEED: u64 = 0x5A4D;

fn vamana_builder(ds: &Dataset) -> (Box<dyn MutableIndex>, VectorId) {
    let index = Vamana::build(ds, VamanaParams::default());
    let entry = index.medoid();
    (Box::new(index), entry)
}

fn main() {
    let n = env_usize("NDS_N", 3000);
    let k = env_usize("NDS_K", 10);
    let (base, queries) = DatasetSpec::sift_scaled(n, N_QUERIES).build_pair();
    let mut config = NdsConfig::scaled_for(n * 2, base.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    let serve = ServeConfig {
        k,
        ..ServeConfig::default()
    };
    let gt = ground_truth(&base, &queries, k, DistanceKind::L2);

    // ---- Unsharded reference engine. ----
    let flat_report = {
        let index = Vamana::build(&base, VamanaParams::default());
        let medoid = index.medoid();
        let deploy = Deployment::stage(&config, Box::new(index), base.clone());
        let mut engine = ServeEngine::with_deployment(&config, serve.clone(), deploy);
        for (_, q) in queries.iter() {
            engine.submit(QueryRequest::at(0, q.to_vec(), vec![medoid]));
        }
        engine.run_to_completion()
    };
    let flat_ids: Vec<Vec<VectorId>> = flat_report
        .outcomes
        .iter()
        .map(|o| o.results.iter().map(|nb| nb.id).collect())
        .collect();
    let flat_recall = recall_at_k(&gt, &flat_ids, k);
    println!(
        "unsharded reference: {:.1} kQPS, recall@{k} = {flat_recall:.3}",
        flat_report.qps() / 1e3
    );

    // ---- Part 1: shard-count × policy sweep (closed load). ----
    let mut rows = Vec::new();
    let mut snapshot_sweep: Vec<String> = Vec::new();
    for policy in [ShardPolicy::BalancedSize, ShardPolicy::Hash] {
        for shards in SHARD_COUNTS {
            let plan = ShardPlan::partition(n, shards, policy, PLAN_SEED);
            let mut cluster =
                ClusterEngine::stage(&config, serve.clone(), plan, &base, vamana_builder);
            for (_, q) in queries.iter() {
                cluster.submit(ClusterQueryRequest::at(0, q.to_vec()));
            }
            let report = cluster.run_to_completion();
            assert_eq!(
                report.completed(),
                N_QUERIES,
                "{} x{shards}: queries dropped",
                policy.name()
            );
            let ids: Vec<Vec<VectorId>> = report
                .outcomes
                .iter()
                .map(|o| o.results.iter().map(|nb| nb.id).collect())
                .collect();
            if shards == 1 && policy == ShardPolicy::BalancedSize {
                // One shard holding everything IS the unsharded engine.
                assert_eq!(
                    ids, flat_ids,
                    "single-shard cluster diverged from the unsharded engine"
                );
            }
            let recall = recall_at_k(&gt, &ids, k);
            let lat = report.latency();
            let imbalance = report.load_imbalance();
            snapshot_sweep.push(format!(
                "{{\"shards\": {shards}, \"policy\": \"{}\", \"qps\": {:.1}, \
                 \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"recall\": {:.3}, \
                 \"load_imbalance\": {:.3}}}",
                policy.name(),
                report.qps(),
                lat.p50_ns as f64 / 1e3,
                lat.p99_ns as f64 / 1e3,
                recall,
                imbalance
            ));
            rows.push(vec![
                shards.to_string(),
                policy.name().to_string(),
                f(report.qps() / 1e3, 1),
                f(lat.p50_ns as f64 / 1e3, 1),
                f(lat.p99_ns as f64 / 1e3, 1),
                f(recall, 3),
                f(imbalance, 2),
            ]);
        }
    }
    print_table(
        "Shard sweep (closed load, 32 queries at t=0, per-shard devices)",
        &[
            "shards",
            "policy",
            "kQPS",
            "p50 us",
            "p99 us",
            "recall",
            "imbalance",
        ],
        &rows,
    );
    println!("\nEvery shard searches its sub-corpus with the full beam width,");
    println!("so merged recall tracks (and often exceeds) the unsharded engine;");
    println!("per-query latency is the slowest shard plus the gather merge.");

    // ---- Part 2: mixed query+update churn on 4 shards. ----
    let mut rows = Vec::new();
    let mut snapshot_mixed: Vec<String> = Vec::new();
    for policy in [ShardPolicy::BalancedSize, ShardPolicy::Hash] {
        let plan = ShardPlan::partition(n, 4, policy, PLAN_SEED);
        let mut cluster = ClusterEngine::stage(&config, serve.clone(), plan, &base, vamana_builder);
        // Enough inserts per shard to fill open flash pages at any
        // base-size alignment, so the write path demonstrably programs.
        let (nq, nu) = (N_QUERIES, 2 * N_QUERIES);
        for (i, (_, q)) in queries.iter().take(nq).enumerate() {
            cluster.submit(ClusterQueryRequest::at(i as Nanos * 1_000, q.to_vec()));
        }
        for i in 0..nu {
            if i % 4 == 3 {
                cluster.submit_update(UpdateRequest::delete_at(
                    i as Nanos * 1_500,
                    (i as VectorId * 13) % n as VectorId,
                ));
            } else {
                let v = queries.vector((i % queries.len()) as VectorId);
                cluster.submit_update(UpdateRequest::insert_at(i as Nanos * 1_500, v.to_vec()));
            }
        }
        let report = cluster.run_to_completion();
        assert_eq!(report.completed(), nq, "{}: queries dropped", policy.name());
        assert_eq!(
            report.updates_completed(),
            nu,
            "{}: updates dropped",
            policy.name()
        );
        let totals = report.update_totals();
        let update_qps =
            report.updates_completed() as f64 / (report.makespan_ns.max(1) as f64 / 1e9);
        snapshot_mixed.push(format!(
            "{{\"policy\": \"{}\", \"queries\": {nq}, \"updates\": {nu}, \
             \"qps\": {:.1}, \"update_qps\": {update_qps:.1}, \
             \"pages_programmed\": {}, \"write_amplification\": {:.2}, \
             \"load_imbalance\": {:.3}}}",
            policy.name(),
            report.qps(),
            totals.pages_programmed,
            totals.write_amplification(),
            report.load_imbalance()
        ));
        rows.push(vec![
            policy.name().to_string(),
            format!("{nq}/{nu}"),
            f(report.qps() / 1e3, 1),
            f(update_qps / 1e3, 1),
            totals.pages_programmed.to_string(),
            f(totals.write_amplification(), 2),
            f(report.load_imbalance(), 2),
        ]);
    }
    print_table(
        "Mixed query+update churn (4 shards, updates routed to owners)",
        &[
            "policy",
            "q/u",
            "kQPS",
            "kUPS",
            "pages",
            "W-amp",
            "imbalance",
        ],
        &rows,
    );

    // ---- Machine-readable snapshot for the perf trajectory. ----
    let path = std::env::var("NDS_BENCH_JSON").unwrap_or_else(|_| "BENCH_cluster.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"cluster\",\n  \"n_base\": {n},\n  \"k\": {k},\n  \
         \"unsharded_qps\": {flat_qps:.1},\n  \"unsharded_recall\": {flat_recall:.3},\n  \
         \"shard_sweep\": [\n    {sweep}\n  ],\n  \"mixed_cluster\": [\n    {mixed}\n  ]\n}}\n",
        n = n,
        k = k,
        flat_qps = flat_report.qps(),
        flat_recall = flat_recall,
        sweep = snapshot_sweep.join(",\n    "),
        mixed = snapshot_mixed.join(",\n    "),
    );
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote bench snapshot to {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
