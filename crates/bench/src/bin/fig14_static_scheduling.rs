//! Fig. 14 — Static scheduling evaluation: page access ratio and speedup
//! for no reordering (w/o re), random BFS (ran bfs) and the paper's
//! degree-ascending BFS (ours), each with dynamic scheduling enabled,
//! across all datasets and both algorithms.
//!
//! Paper shapes: ours cuts the page access ratio by up to 38 % and yields
//! up to 1.17× speedup over w/o re; random BFS sits in between.

use ndsearch_anns::index::AnnsAlgorithm;
use ndsearch_bench::{build_workload, env_usize, f, print_table};
use ndsearch_core::config::SchedulingConfig;
use ndsearch_graph::mapping::PlacementPolicy;
use ndsearch_graph::reorder::ReorderMethod;
use ndsearch_vector::synthetic::BenchmarkId;

fn main() {
    let batch = env_usize("NDS_BATCH", 2048);
    let settings = [
        ("w/o re", ReorderMethod::Identity),
        ("ran bfs", ReorderMethod::RandomBfs),
        ("ours", ReorderMethod::DegreeAscendingBfs),
    ];
    for algo in [AnnsAlgorithm::Hnsw, AnnsAlgorithm::DiskAnn] {
        let mut rows = Vec::new();
        for bench in BenchmarkId::ALL {
            let w = build_workload(bench, algo, batch);
            let mut base_ns = 0u64;
            for (label, reorder) in settings {
                let sched = SchedulingConfig {
                    reorder,
                    placement: PlacementPolicy::MultiPlaneAware,
                    dynamic_allocating: true,
                    speculative: false,
                };
                let r = w.run_ndsearch(sched);
                if base_ns == 0 {
                    base_ns = r.total_ns;
                }
                rows.push(vec![
                    bench.to_string(),
                    label.to_string(),
                    f(r.page_access_ratio(), 4),
                    f(base_ns as f64 / r.total_ns as f64, 3),
                ]);
            }
        }
        print_table(
            &format!("Fig. 14 ({algo}): static scheduling"),
            &[
                "dataset",
                "setting",
                "page access ratio",
                "speedup vs w/o re",
            ],
            &rows,
        );
    }
    println!("\nPaper reference: page access ratio down by up to 38%,");
    println!("speedup up to 1.17x over no reordering.");
}
