//! Fig. 6 (§IV-B) — Storage/fetch overhead of the legacy interleaved
//! layout (vector + R zero-padded neighbor ids) versus LUNCSR.
//! Paper shape: ≥46.9 % of every page read is wasted neighbor-id bytes.

use ndsearch_bench::{f, print_table};
use ndsearch_graph::legacy::LegacyLayout;

fn main() {
    let mut rows = Vec::new();
    for (name, layout) in [
        (
            "paper example (128 B vec, 4 KiB page)",
            LegacyLayout::paper_example(),
        ),
        (
            "sift-style (128 B vec, 16 KiB page)",
            LegacyLayout {
                page_bytes: 16 * 1024,
                ..LegacyLayout::paper_example()
            },
        ),
        (
            "deep-style (384 B vec, 16 KiB page)",
            LegacyLayout {
                vector_bytes: 384,
                page_bytes: 16 * 1024,
                ..LegacyLayout::paper_example()
            },
        ),
        (
            "glove-style (400 B vec, 16 KiB page)",
            LegacyLayout {
                vector_bytes: 400,
                page_bytes: 16 * 1024,
                ..LegacyLayout::paper_example()
            },
        ),
    ] {
        rows.push(vec![
            name.to_string(),
            layout.slice_bytes().to_string(),
            layout.slices_per_page().to_string(),
            f(100.0 * layout.wasted_fraction(), 1),
            f(100.0 * layout.neighbor_fraction(), 1),
            f(100.0 * layout.padding_waste(24.0), 1),
        ]);
    }
    print_table(
        "Fig. 6: legacy interleaved layout overhead per page read",
        &[
            "configuration",
            "slice B",
            "slices/page",
            "wasted nbr %",
            "nbr area %",
            "pad waste % (deg 24)",
        ],
        &rows,
    );
    println!("\nPaper reference: at least 46.9% storage overhead per page access.");
}
