//! Table I — Power and area breakdown of SearSSD's customized logic, plus
//! the power-budget check and the storage-density computation of §VII-B.
//!
//! Paper values: 18.82 W / 43.09 mm² total; with the 7.5 W FPGA kernel the
//! system draws 26.32 W, inside the ~55 W PCIe budget; storage density
//! drops from 6 Gb/mm² to 5.64 Gb/mm² (~6 %).

use ndsearch_bench::{f, print_table};
use ndsearch_core::area::AreaModel;
use ndsearch_core::energy::{searssd_components, PowerModel};

fn main() {
    let rows: Vec<Vec<String>> = searssd_components()
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                c.config.to_string(),
                if c.count == 0 {
                    "-".into()
                } else {
                    c.count.to_string()
                },
                f(c.power_w, 2),
                f(c.area_mm2, 2),
            ]
        })
        .collect();
    print_table(
        "Table I: power and area breakdown of SearSSD",
        &["component", "config", "num", "power W", "area mm^2"],
        &rows,
    );
    let power = PowerModel::default();
    let total_p: f64 = searssd_components().iter().map(|c| c.power_w).sum();
    let total_a: f64 = searssd_components().iter().map(|c| c.area_mm2).sum();
    println!("SearSSD logic total      : {total_p:.2} W, {total_a:.2} mm^2");
    println!("FPGA bitonic kernel      : {:.2} W", 7.5);
    println!(
        "NDSEARCH total           : {:.2} W",
        power.ndsearch_total_w()
    );
    println!(
        "within ~55 W PCIe budget : {}",
        if power.within_budget() { "yes" } else { "NO" }
    );

    let area = AreaModel::searssd_default();
    println!("\n== Storage density (§VII-B) ==");
    println!(
        "base V-NAND density      : {:.2} Gb/mm^2",
        area.base_density_gb_per_mm2
    );
    println!(
        "effective with SiN logic : {:.2} Gb/mm^2",
        area.effective_density()
    );
    println!(
        "degradation              : {:.1} %",
        100.0 * area.density_degradation()
    );

    let mut rows = Vec::new();
    for (name, mm2) in AreaModel::baseline_areas_mm2() {
        rows.push(vec![name.to_string(), f(mm2, 1)]);
    }
    print_table(
        "Accelerator logic area comparison",
        &["design", "area mm^2"],
        &rows,
    );
    println!("\nPaper reference: 18.82 W / 43.09 mm^2; 26.32 W total; 5.64 Gb/mm^2.");
}
