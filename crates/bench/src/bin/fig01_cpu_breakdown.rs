//! Fig. 1 — Execution-time breakdown of HNSW and DiskANN on the CPU
//! baseline (2× Xeon-class), batch sizes 1024 and 2048, billion-scale
//! datasets. Paper shape: SSD I/O read accounts for ~60–75 % of the total.

use ndsearch_anns::index::AnnsAlgorithm;
use ndsearch_baselines::{CpuPlatform, Platform};
use ndsearch_bench::{build_workload, f, print_table};
use ndsearch_vector::synthetic::BenchmarkId;

fn main() {
    let batches = [1024usize, 2048];
    let datasets = [
        BenchmarkId::Sift1B,
        BenchmarkId::Deep1B,
        BenchmarkId::SpaceV1B,
    ];
    for algo in [AnnsAlgorithm::Hnsw, AnnsAlgorithm::DiskAnn] {
        let mut rows = Vec::new();
        for bench in datasets {
            for &batch in &batches {
                let w = build_workload(bench, algo, batch);
                let r = CpuPlatform::paper_default().report(&w.scenario());
                rows.push(vec![
                    bench.to_string(),
                    batch.to_string(),
                    f(100.0 * r.io_fraction(), 1),
                    f(100.0 * (1.0 - r.io_fraction()), 1),
                    f(w.recall_at_10, 3),
                ]);
            }
        }
        print_table(
            &format!("Fig. 1 ({algo} on CPU): execution time breakdown"),
            &[
                "dataset",
                "batch",
                "SSD I/O read %",
                "compute+sort %",
                "recall@10",
            ],
            &rows,
        );
    }
    println!("\nPaper reference: SSD I/O read = 61-75% across sift/deep/spacev.");
}
