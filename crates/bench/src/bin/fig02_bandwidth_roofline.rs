//! Fig. 2 — (a) host PCIe bandwidth utilization saturates as batch size
//! grows; (b) the roofline lift: SearSSD's internal bandwidth (819.2 GB/s
//! when every page buffer streams) versus the 15.4 GB/s host link, and the
//! resulting NDSEARCH speedup over CPU.

use ndsearch_anns::index::AnnsAlgorithm;
use ndsearch_baselines::{CpuPlatform, Platform};
use ndsearch_bench::{build_workload, f, print_table};
use ndsearch_flash::{FlashGeometry, FlashTiming};
use ndsearch_vector::synthetic::BenchmarkId;

fn main() {
    // (a) Utilization vs batch size on HNSW/sift.
    let mut rows = Vec::new();
    let cpu = CpuPlatform::paper_default();
    for batch in [16usize, 64, 256, 1024, 2048, 4096, 8192] {
        let w = build_workload(BenchmarkId::Sift1B, AnnsAlgorithm::Hnsw, batch);
        let r = cpu.report(&w.scenario());
        rows.push(vec![
            batch.to_string(),
            f(100.0 * r.link_utilization(cpu.pcie_bytes_per_s), 1),
        ]);
    }
    print_table(
        "Fig. 2a (HNSW on sift-1b, CPU): PCIe bandwidth utilization vs batch",
        &["batch", "utilization %"],
        &rows,
    );
    println!("Paper reference: saturates to ~83% past batch 1024.");

    // (b) Roofline lift + speedup.
    let timing = FlashTiming::default();
    let geom = FlashGeometry::searssd_default();
    let internal = timing.internal_bandwidth_bytes_per_s(&geom);
    println!("\n== Fig. 2b: roofline lifting ==");
    println!("SSD I/O (PCIe 3.0 x16) bandwidth : {:>8.1} GB/s", 15.4);
    println!(
        "SearSSD internal bandwidth       : {:>8.1} GB/s",
        internal / 1e9
    );
    println!(
        "lift                             : {:>8.1} x",
        internal / 15.4e9
    );

    let mut rows = Vec::new();
    for bench in BenchmarkId::ALL {
        let w = build_workload(bench, AnnsAlgorithm::Hnsw, 2048);
        let cpu_r = cpu.report(&w.scenario());
        let (nds, _) = w.ndsearch_platform_report();
        rows.push(vec![
            bench.to_string(),
            f(cpu_r.qps() / 1e3, 2),
            f(nds.qps() / 1e3, 2),
            f(nds.qps() / cpu_r.qps(), 1),
        ]);
    }
    print_table(
        "Fig. 2b: HNSW speedup of NDSEARCH over CPU",
        &["dataset", "CPU kQPS", "NDSEARCH kQPS", "speedup x"],
        &rows,
    );
    println!("Paper reference: up to 31.7x on billion-scale datasets.");
}
