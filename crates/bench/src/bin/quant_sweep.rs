//! Compressed-vector search sweep: recall vs QPS across quantization
//! specs and rerank depths.
//!
//! The DiskANN-style recipe on the SearSSD model: beam traversal scores
//! int8 or PQ codes resident in SSD-internal DRAM (no NAND access per
//! hop), and only the final `rerank_depth` candidates pay modeled flash
//! page reads for exact distances. This bin sweeps (quantization spec x
//! rerank depth) against the full-precision serving baseline on a
//! deep-1b-like corpus (f32 components, so int8 is a 4x DRAM saving and
//! PQ far more), reporting recall@k, QPS and the code-DRAM residency
//! fraction. In-bin asserts pin the acceptance gates: reranked recall
//! clears the existing 0.85 recall gate, quantized QPS beats the
//! full-precision baseline at that recall, and code DRAM stays under
//! 0.5x the full-precision bytes. A machine-readable `BENCH_quant.json`
//! snapshot seeds the perf trajectory across PRs.
//!
//! Scale knobs: `NDS_N` (base vectors, default 2800 — 4x the recall
//! gates' corpus), `NDS_K` (top-k), `NDS_BENCH_JSON` (snapshot path,
//! default `BENCH_quant.json`).

use ndsearch_anns::index::GraphAnnsIndex;
use ndsearch_anns::trace::BatchTrace;
use ndsearch_anns::vamana::{Vamana, VamanaParams};
use ndsearch_bench::{env_usize, f, print_table};
use ndsearch_core::config::NdsConfig;
use ndsearch_core::pipeline::Prepared;
use ndsearch_core::serve::{QueryRequest, ServeConfig, ServeEngine, ServeReport};
use ndsearch_vector::quant::QuantSpec;
use ndsearch_vector::recall::{ground_truth, recall_at_k};
use ndsearch_vector::synthetic::DatasetSpec;
use ndsearch_vector::{Dataset, DistanceKind, VectorId};

const QUERIES: usize = 32;
const RECALL_GATE: f64 = 0.85;

struct RunResult {
    report: ServeReport,
    recall: f64,
    code_bytes: usize,
    dram_fraction: f64,
}

#[allow(clippy::too_many_arguments)]
fn serve_run(
    config: &NdsConfig,
    serve: &ServeConfig,
    prepared: &Prepared,
    base: &Dataset,
    graph: &ndsearch_graph::Csr,
    queries: &Dataset,
    medoid: VectorId,
    gt: &[Vec<VectorId>],
    k: usize,
) -> RunResult {
    let mut engine = ServeEngine::new(config, serve.clone(), prepared, base, graph);
    let code_bytes = engine
        .deployment()
        .codes()
        .map_or(base.stored_vector_bytes(), |c| c.code_bytes());
    let dram_fraction = engine.deployment().codes().map_or(1.0, |c| {
        c.total_bytes() as f64 / (base.stored_vector_bytes() * base.len()) as f64
    });
    for (_, q) in queries.iter() {
        engine.submit(QueryRequest::at(0, q.to_vec(), vec![medoid]));
    }
    let report = engine.run_to_completion();
    assert_eq!(report.completed(), queries.len(), "queries dropped");
    let ids: Vec<Vec<VectorId>> = report
        .outcomes
        .iter()
        .map(|o| o.results.iter().map(|nb| nb.id).collect())
        .collect();
    let recall = recall_at_k(gt, &ids, k);
    RunResult {
        report,
        recall,
        code_bytes,
        dram_fraction,
    }
}

fn main() {
    let n = env_usize("NDS_N", 2800);
    let k = env_usize("NDS_K", 10);
    let (base, queries) = DatasetSpec::deep_scaled(n, QUERIES).build_pair();
    let index = Vamana::build(&base, VamanaParams::default());
    let medoid = index.medoid();
    let graph = index.base_graph();
    let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    let prepared = Prepared::stage(&config, graph, &base, &BatchTrace::default());
    let gt = ground_truth(&base, &queries, k, DistanceKind::L2);
    let serve_base = ServeConfig {
        k,
        beam_width: 80,
        max_inflight: 16,
        ..ServeConfig::default()
    };

    // ---- Full-precision baseline (every hop pays NAND reads). ----
    let fp = serve_run(
        &config,
        &serve_base,
        &prepared,
        &base,
        graph,
        &queries,
        medoid,
        &gt,
        k,
    );
    println!(
        "full-precision baseline: recall@{k} = {:.3}, {:.1} kQPS, {} B/vector\n",
        fp.recall,
        fp.report.qps() / 1e3,
        base.stored_vector_bytes()
    );

    // ---- Quantized sweep: spec x rerank depth. ----
    let specs: Vec<(&str, u8, QuantSpec)> = vec![
        ("int8", 8, QuantSpec::Int8),
        ("pq-m24-b8", 8, QuantSpec::Pq { m: 24, bits: 8 }),
        ("pq-m24-b4", 4, QuantSpec::Pq { m: 24, bits: 4 }),
        ("pq-m12-b8", 8, QuantSpec::Pq { m: 12, bits: 8 }),
    ];
    let depths = [k, 32, 64];
    let mut rows = Vec::new();
    let mut snapshot: Vec<String> = Vec::new();
    let mut best_gated_qps: Option<(f64, &str, usize)> = None;
    for (label, bits, spec) in &specs {
        for &depth in &depths {
            let mut cfg = config.clone();
            cfg.quantization = *spec;
            let serve = ServeConfig {
                rerank_depth: depth,
                ..serve_base.clone()
            };
            let r = serve_run(
                &cfg, &serve, &prepared, &base, graph, &queries, medoid, &gt, k,
            );
            assert!(
                r.dram_fraction < 0.5,
                "{label}: code DRAM {:.2}x must stay under 0.5x full precision",
                r.dram_fraction
            );
            assert!(
                r.report.breakdown.rerank_ns > 0,
                "{label}: rerank must charge flash time"
            );
            if r.recall >= RECALL_GATE {
                let qps = r.report.qps();
                if best_gated_qps.is_none_or(|(b, _, _)| qps > b) {
                    best_gated_qps = Some((qps, label, depth));
                }
            }
            snapshot.push(format!(
                "{{\"spec\": \"{label}\", \"bits\": {bits}, \"rerank_depth\": {depth}, \
                 \"recall\": {:.3}, \"qps\": {:.1}, \"code_bytes\": {}, \
                 \"dram_fraction\": {:.3}, \"rerank_ms\": {:.3}}}",
                r.recall,
                r.report.qps(),
                r.code_bytes,
                r.dram_fraction,
                r.report.breakdown.rerank_ns as f64 / 1e6,
            ));
            rows.push(vec![
                label.to_string(),
                depth.to_string(),
                f(r.recall, 3),
                f(r.report.qps() / 1e3, 1),
                r.code_bytes.to_string(),
                f(r.dram_fraction, 2),
                f(r.report.breakdown.rerank_ns as f64 / 1e6, 2),
            ]);
        }
    }
    print_table(
        "Quantized serving sweep (closed load, 16 slots, beam 80)",
        &[
            "spec",
            "depth",
            "recall",
            "kQPS",
            "B/vec",
            "DRAM x",
            "rerank ms",
        ],
        &rows,
    );

    // ---- Acceptance gates (mirrored by CI's snapshot validation). ----
    let (qps, label, depth) =
        best_gated_qps.expect("at least one quantized config must clear the 0.85 recall gate");
    println!(
        "\nbest gated config: {label} @ depth {depth} — {:.1} kQPS vs full-precision {:.1} kQPS",
        qps / 1e3,
        fp.report.qps() / 1e3
    );
    assert!(
        qps > fp.report.qps(),
        "quantized serving ({qps:.0} QPS) must beat full precision ({:.0} QPS) at recall >= {RECALL_GATE}",
        fp.report.qps()
    );

    // ---- Machine-readable snapshot for the perf trajectory. ----
    let path = std::env::var("NDS_BENCH_JSON").unwrap_or_else(|_| "BENCH_quant.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"quant\",\n  \"n_base\": {n},\n  \"k\": {k},\n  \
         \"full_precision\": {{\"recall\": {fp_recall:.3}, \"qps\": {fp_qps:.1}, \
         \"bytes_per_vector\": {fp_bytes}}},\n  \"recall_gate\": {RECALL_GATE},\n  \
         \"best_gated\": {{\"spec\": \"{label}\", \"rerank_depth\": {depth}, \"qps\": {qps:.1}}},\n  \
         \"sweep\": [\n    {sweep}\n  ]\n}}\n",
        fp_recall = fp.recall,
        fp_qps = fp.report.qps(),
        fp_bytes = base.stored_vector_bytes(),
        sweep = snapshot.join(",\n    "),
    );
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote bench snapshot to {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}
