//! Extension ablation (DESIGN.md §7): sweep the speculative-searching
//! budget — how many second-order neighbors the Pref Unit fetches per
//! iteration, as a multiple of the entry degree. The paper fixes this to
//! "the second-order neighbors that have more connections with the
//! first-order neighbors"; this sweep quantifies the hit-rate vs
//! wasted-page-access tradeoff behind that choice.

use ndsearch_anns::index::AnnsAlgorithm;
use ndsearch_bench::{build_workload, env_usize, f, print_table};
use ndsearch_core::config::{NdsConfig, SchedulingConfig};
use ndsearch_core::pipeline::Prepared;
use ndsearch_core::NdsEngine;
use ndsearch_vector::synthetic::BenchmarkId;

fn main() {
    let batch = env_usize("NDS_BATCH", 1024);
    let w = build_workload(BenchmarkId::Sift1B, AnnsAlgorithm::Hnsw, batch);
    let mut rows = Vec::new();
    let mut baseline_ns = 0u64;
    for factor in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut config = NdsConfig {
            scheduling: SchedulingConfig::full(),
            spec_budget_factor: factor,
            ..w.config.clone()
        };
        if factor == 0.0 {
            config.scheduling.speculative = false;
        }
        let prepared = Prepared::stage(&config, &w.graph, &w.base, &w.trace);
        let r = NdsEngine::new(&config).run(&prepared);
        if factor == 0.0 {
            baseline_ns = r.total_ns;
        }
        rows.push(vec![
            if factor == 0.0 {
                "off".to_string()
            } else {
                format!("{factor}x degree")
            },
            f(r.qps() / 1e3, 2),
            f(baseline_ns as f64 / r.total_ns as f64, 3),
            f(100.0 * r.speculation.hit_rate(), 1),
            r.stats.page_reads.to_string(),
        ]);
    }
    print_table(
        "Speculation-budget ablation (HNSW on sift-1b)",
        &["budget", "kQPS", "speedup vs off", "hit %", "page reads"],
        &rows,
    );
    println!("\nLarger budgets buy hits with wasted page accesses; the paper's");
    println!("1x-degree choice sits near the knee.");
}
