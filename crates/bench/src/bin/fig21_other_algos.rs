//! Fig. 21 — HCNNG and TOGG on sift-1b across CPU, CPU-T (terabyte DRAM),
//! SmartSSD, DS-cp and NDSEARCH.
//!
//! Paper shapes: NDSEARCH still wins on these direction-optimized
//! algorithms (irregular data access still dominates); CPU-T gains ~5.3×
//! over the memory-limited CPU but cannot beat the in-storage designs.

use ndsearch_anns::index::AnnsAlgorithm;
use ndsearch_baselines::{CpuPlatform, DeepStorePlatform, Platform, SmartSsdPlatform};
use ndsearch_bench::{build_workload, env_usize, f, print_table};
use ndsearch_vector::synthetic::BenchmarkId;

fn main() {
    let batch = env_usize("NDS_BATCH", 2048);
    for algo in [AnnsAlgorithm::Hcnng, AnnsAlgorithm::Togg] {
        let w = build_workload(BenchmarkId::Sift1B, algo, batch);
        let s = w.scenario();
        let cpu = CpuPlatform::paper_default().report(&s);
        let cpu_t = CpuPlatform::terabyte_dram().report(&s);
        let smart = SmartSsdPlatform::paper_default().report(&s);
        let dscp = DeepStorePlatform::chip_level().report(&s);
        let (nds, nds_pr) = w.ndsearch_platform_report();
        let mut rows = Vec::new();
        for (name, qps) in [
            ("CPU", cpu.qps()),
            ("CPU-T", cpu_t.qps()),
            ("SmartSSD", smart.qps()),
            ("DS-cp", dscp.qps()),
            ("NDSEARCH", nds.qps()),
        ] {
            rows.push(vec![
                name.to_string(),
                f(qps / 1e3, 2),
                f(qps / cpu.qps(), 2),
            ]);
        }
        let _ = nds_pr;
        print_table(
            &format!("Fig. 21 ({algo} on sift-1b): throughput & speedup"),
            &["platform", "kQPS", "speedup vs CPU"],
            &rows,
        );
        println!("recall@10 = {:.3}", w.recall_at_10);
    }
    println!("\nPaper reference: NDSEARCH wins; CPU-T ~5.3x over CPU but below");
    println!("the in-storage accelerators.");
}
