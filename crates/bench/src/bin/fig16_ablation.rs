//! Fig. 16 — Ablation ladder on spacev-1b: Bare → re → re+mp → re+mp+da →
//! re+mp+da+sp, with CPU, GPU and DS-cp reference bars.
//!
//! Paper shapes: even Bare beats CPU by >4× (no PCIe transfer, no host
//! DRAM round trips); without da NDSEARCH can hardly beat DS-cp; the full
//! stack gains ~4.1× over Bare.

use ndsearch_anns::index::AnnsAlgorithm;
use ndsearch_baselines::{CpuPlatform, DeepStorePlatform, GpuPlatform, Platform};
use ndsearch_bench::{build_workload, env_usize, f, print_table};
use ndsearch_core::config::SchedulingConfig;
use ndsearch_vector::synthetic::BenchmarkId;

fn main() {
    let batch = env_usize("NDS_BATCH", 2048);
    for algo in [AnnsAlgorithm::Hnsw, AnnsAlgorithm::DiskAnn] {
        let w = build_workload(BenchmarkId::SpaceV1B, algo, batch);
        let s = w.scenario();
        let cpu = CpuPlatform::paper_default().report(&s);
        let gpu = GpuPlatform::paper_default().report(&s);
        let dscp = DeepStorePlatform::chip_level().report(&s);

        let mut rows = vec![
            vec!["CPU".into(), f(cpu.qps() / 1e3, 2), "1.00".into()],
            vec![
                "GPU".into(),
                f(gpu.qps() / 1e3, 2),
                f(gpu.qps() / cpu.qps(), 2),
            ],
            vec![
                "DS-cp".into(),
                f(dscp.qps() / 1e3, 2),
                f(dscp.qps() / cpu.qps(), 2),
            ],
        ];
        let mut bare_qps = 0.0;
        for (label, sched) in SchedulingConfig::ablation_ladder() {
            let r = w.run_ndsearch(sched);
            let qps = r.qps();
            if label == "Bare" {
                bare_qps = qps;
            }
            rows.push(vec![
                label.to_string(),
                f(qps / 1e3, 2),
                f(qps / cpu.qps(), 2),
            ]);
        }
        let full = w.run_ndsearch(SchedulingConfig::full());
        print_table(
            &format!("Fig. 16 ({algo} on spacev-1b): ablation"),
            &["configuration", "kQPS", "speedup vs CPU"],
            &rows,
        );
        println!(
            "full-stack gain over Bare: {:.2}x",
            full.qps() / bare_qps.max(1e-9)
        );
    }
    println!("\nPaper reference: Bare > 4x over CPU; w/o da barely beats DS-cp;");
    println!("all techniques together gain ~4.1x over Bare.");
}
