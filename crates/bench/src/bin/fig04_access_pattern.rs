//! Fig. 4 — Page and LUN access pattern of the search phase *before* any
//! NDSEARCH scheduling (construction-order layout):
//! (a) per-query #accessed-pages / trace-length and useful-bytes /
//!     page-bytes ratios for 10 sampled queries — high page counts and low
//!     useful fractions show the scattered, irregular pattern;
//! (b) fraction of all LUNs touched per batch across 10 consecutive
//!     batches — the paper measures >82 %, motivating LUN-level
//!     parallelism.

use ndsearch_anns::index::AnnsAlgorithm;
use ndsearch_bench::{build_workload, f, print_table};
use ndsearch_core::config::{NdsConfig, SchedulingConfig};
use ndsearch_core::pipeline::Prepared;
use ndsearch_core::NdsEngine;
use ndsearch_vector::synthetic::BenchmarkId;

fn main() {
    let w = build_workload(BenchmarkId::Sift1B, AnnsAlgorithm::Hnsw, 2048);
    let config = NdsConfig {
        scheduling: SchedulingConfig::bare(),
        ..w.config.clone()
    };
    let prepared = Prepared::stage(&config, &w.graph, &w.base, &w.trace);
    let geom = &config.geometry;
    let slots = prepared.luncsr.mapping().slots_per_page() as f64;

    // (a) 10 sampled queries.
    let mut rows = Vec::new();
    let step = (w.trace.len() / 10).max(1);
    for (qi, q) in w.trace.queries.iter().step_by(step).take(10).enumerate() {
        let mut pages = std::collections::HashSet::new();
        let mut visited = 0u64;
        for v in q.visited_sequence() {
            pages.insert(prepared.luncsr.physical_addr(v).page_key(geom));
            visited += 1;
        }
        let page_ratio = pages.len() as f64 / visited.max(1) as f64;
        let useful = visited as f64 * prepared.vector_bytes as f64
            / (pages.len() as f64 * f64::from(geom.page_bytes));
        rows.push(vec![
            format!("q{qi}"),
            visited.to_string(),
            pages.len().to_string(),
            f(page_ratio, 3),
            f(100.0 * useful.min(1.0), 1),
        ]);
        let _ = slots;
    }
    print_table(
        "Fig. 4a: per-query page access pattern (construction order)",
        &[
            "query",
            "trace len",
            "pages",
            "pages/trace",
            "useful bytes %",
        ],
        &rows,
    );

    // (b) LUN coverage across 10 consecutive batches.
    let mut rows = Vec::new();
    let nq = w.trace.len();
    let per_batch = (nq / 10).max(1);
    for b in 0..10 {
        let lo = b * per_batch;
        if lo >= nq {
            break;
        }
        let hi = ((b + 1) * per_batch).min(nq);
        let sub = ndsearch_anns::trace::BatchTrace {
            queries: w.trace.queries[lo..hi].to_vec(),
        };
        let sub_prepared = Prepared {
            trace: sub.relabel(&ndsearch_graph::reorder::Permutation::identity(
                w.graph.num_vertices(),
            )),
            ..prepared.clone()
        };
        let report = NdsEngine::new(&config).run(&sub_prepared);
        rows.push(vec![
            format!("batch {b}"),
            (hi - lo).to_string(),
            f(100.0 * report.lun_coverage, 1),
        ]);
    }
    print_table(
        "Fig. 4b: LUN coverage per batch (construction order)",
        &["batch", "queries", "LUNs touched %"],
        &rows,
    );
    println!("\nPaper reference: >82% of LUNs accessed per 2048-query batch.");
}
