//! Fig. 19 — Batch-size sweep: NDSEARCH speedup over DS-cp for batch sizes
//! 256…8192 on every dataset, HNSW and DiskANN.
//!
//! Paper shapes: at batch 256 the LUN-level parallelism is starved and the
//! advantage over chip-level accelerators is marginal; the advantage peaks
//! around 2048–4096; past the resource cap (4096 under the power budget)
//! batches split into sub-batches and the speedup declines.
//!
//! Each (dataset, algorithm) workload is built once at the largest batch;
//! smaller batches replay prefixes of the same query stream (queries are
//! i.i.d., so a prefix is an unbiased smaller batch).

use ndsearch_anns::index::AnnsAlgorithm;
use ndsearch_anns::trace::BatchTrace;
use ndsearch_baselines::{DeepStorePlatform, Platform, Scenario};
use ndsearch_bench::{build_workload, f, print_table};
use ndsearch_core::pipeline::Prepared;
use ndsearch_core::NdsEngine;
use ndsearch_vector::synthetic::BenchmarkId;

fn main() {
    let batches = [256usize, 512, 1024, 2048, 4096, 8192];
    for algo in [AnnsAlgorithm::Hnsw, AnnsAlgorithm::DiskAnn] {
        let mut rows = Vec::new();
        for bench in BenchmarkId::ALL {
            let w = build_workload(bench, algo, *batches.last().expect("non-empty"));
            let mut row = vec![bench.to_string()];
            for &batch in &batches {
                let sub = BatchTrace {
                    queries: w.trace.queries[..batch.min(w.trace.len())].to_vec(),
                };
                let s = Scenario {
                    benchmark: bench,
                    base: &w.base,
                    graph: &w.graph,
                    trace: &sub,
                    config: &w.config,
                    k: 10,
                };
                let dscp = DeepStorePlatform::chip_level().report(&s);
                let prepared = Prepared::stage(&w.config, &w.graph, &w.base, &sub);
                let nds = NdsEngine::new(&w.config).run(&prepared);
                row.push(f(nds.qps() / dscp.qps(), 2));
            }
            rows.push(row);
        }
        print_table(
            &format!("Fig. 19 ({algo}): NDSEARCH speedup over DS-cp vs batch size"),
            &["dataset", "256", "512", "1024", "2048", "4096", "8192"],
            &rows,
        );
    }
    println!("\nPaper reference: marginal at 256, peaks ~2048-4096, declines at 8192");
    println!("(batches beyond the 4096 resource cap split into sub-batches).");
}
