//! Fig. 17 — Execution-time breakdown of NDSEARCH itself.
//!
//! Paper shapes: NAND read is the largest bucket (24–38 %); SSD I/O drops
//! to ~6 % (vs ~70 % on CPU+SSD, thanks to SearSSD's "filtering"); the
//! FPGA bitonic kernel stays ≤12 %; DRAM + embedded cores take 20–35 %.

use ndsearch_anns::index::AnnsAlgorithm;
use ndsearch_bench::{build_workload, env_usize, f, print_table};
use ndsearch_core::config::SchedulingConfig;
use ndsearch_vector::synthetic::BenchmarkId;

fn main() {
    let batch = env_usize("NDS_BATCH", 2048);
    for algo in [AnnsAlgorithm::Hnsw, AnnsAlgorithm::DiskAnn] {
        let mut rows = Vec::new();
        for bench in BenchmarkId::ALL {
            let w = build_workload(bench, algo, batch);
            let r = w.run_ndsearch(SchedulingConfig::full());
            let mut row = vec![bench.to_string()];
            for (_, frac) in r.breakdown.fractions() {
                row.push(f(100.0 * frac, 1));
            }
            rows.push(row);
        }
        let headers: Vec<&str> = std::iter::once("dataset")
            .chain([
                "NAND %",
                "ECC %",
                "MAC %",
                "DRAM %",
                "emb %",
                "alloc %",
                "bus %",
                "bitonic %",
                "PCIe %",
            ])
            .collect();
        print_table(
            &format!("Fig. 17 ({algo}): NDSEARCH execution-time breakdown"),
            &headers,
            &rows,
        );
    }
    println!("\nPaper reference: NAND read 24-38%; SSD I/O ~6%; bitonic <=12%;");
    println!("DRAM + embedded cores 20-35%.");
}
