//! Production-traffic scenario sweep: SLO-aware scheduling under
//! generated arrival streams.
//!
//! Part 1 calibrates the unloaded query latency, then drives a sustained
//! ~2x overload (8 arrivals per unloaded latency against 4 in-flight
//! slots, deadlines at 4x) under `SloPolicy::None` vs
//! `SloPolicy::ShedDoomed` — shedding must stop burning capacity on
//! doomed sessions, so the survivors' on-time p99 and the overall SLO
//! attainment must both improve. Part 2 has a hog tenant flood its whole
//! batch ahead of two interactive tenants: under plain FIFO the victims'
//! tails blow up; `SloPolicy::TenantFair` bounds the hog's in-flight
//! share and the max/mean per-tenant p99 ratio must come down. Part 3
//! replays seeded bursty and diurnal multi-tenant scenarios (Zipf
//! hotspots, mixed updates) end to end. A machine-readable
//! `BENCH_scenarios.json` snapshot seeds the perf trajectory across PRs.
//!
//! Scale knobs: `NDS_N` (base vectors), `NDS_K` (top-k),
//! `NDS_BENCH_JSON` (snapshot path, default `BENCH_scenarios.json`).

use ndsearch_anns::index::GraphAnnsIndex;
use ndsearch_anns::trace::BatchTrace;
use ndsearch_anns::vamana::{Vamana, VamanaParams};
use ndsearch_bench::{env_usize, f, print_table};
use ndsearch_core::config::NdsConfig;
use ndsearch_core::pipeline::Prepared;
use ndsearch_core::serve::{QueryRequest, ServeConfig, ServeEngine, ServeReport, SloPolicy};
use ndsearch_core::traffic::{ArrivalModel, QueryMix, Scenario, TenantProfile};
use ndsearch_flash::timing::Nanos;
use ndsearch_vector::synthetic::DatasetSpec;
use ndsearch_vector::{Dataset, VectorId};

const N_QUERIES: usize = 24;
const OVERLOAD_QUERIES: usize = 80;
const SLOTS: usize = 4;

fn vamana(base: &Dataset) -> (Vamana, VectorId) {
    let index = Vamana::build(base, VamanaParams::default());
    let medoid = index.medoid();
    (index, medoid)
}

fn main() {
    let n = env_usize("NDS_N", 2000);
    let k = env_usize("NDS_K", 10);
    let (base, queries) = DatasetSpec::sift_scaled(n, N_QUERIES).build_pair();
    let mut config = NdsConfig::scaled_for(n, base.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    let (index, medoid) = vamana(&base);
    let prepared = Prepared::stage(&config, index.base_graph(), &base, &BatchTrace::default());

    let engine_with = |serve: ServeConfig| -> ServeEngine {
        ServeEngine::new(&config, serve, &prepared, &base, index.base_graph())
    };

    // ---- Calibration: one query, alone, no deadline. ----
    let solo = {
        let mut engine = engine_with(ServeConfig {
            k,
            ..ServeConfig::default()
        });
        engine.submit(QueryRequest::at(
            0,
            queries.vector(0).to_vec(),
            vec![medoid],
        ));
        engine.run_to_completion()
    };
    let unloaded = solo.outcomes[0].latency_ns().max(1);

    // ---- Part 1: ShedDoomed under sustained 2x overload. ----
    let gap = unloaded / (2 * SLOTS as Nanos); // 2x the slot capacity
    let deadline = 4 * unloaded;
    let overload_run = |slo: SloPolicy| -> ServeReport {
        let mut engine = engine_with(ServeConfig {
            k,
            max_inflight: SLOTS,
            slo,
            ..ServeConfig::default()
        });
        for i in 0..OVERLOAD_QUERIES {
            let arrival = i as Nanos * gap;
            let q = queries.vector((i % queries.len()) as VectorId).to_vec();
            let mut req = QueryRequest::at(arrival, q, vec![medoid]);
            req.deadline_ns = Some(arrival + deadline);
            engine.submit(req);
        }
        engine.run_to_completion()
    };
    let mut shed_rows = Vec::new();
    let mut shed_snapshot: Vec<String> = Vec::new();
    let mut on_time_p99 = [0u64; 2];
    let mut on_time_count = [0usize; 2];
    // Shed with one unloaded latency of slack: a session is evicted
    // unless it is expected to finish at least `unloaded` before its
    // deadline. The slack is what moves the on-time p99, not just the
    // on-time count — with zero slack the marginal survivor in *both*
    // runs completes right at the deadline wall.
    let cases = [
        ("none", SloPolicy::None),
        (
            "shed_doomed",
            SloPolicy::ShedDoomed {
                min_slack_ns: unloaded,
            },
        ),
    ];
    for (i, (name, slo)) in cases.into_iter().enumerate() {
        let report = overload_run(slo);
        assert_eq!(report.outcomes.len(), OVERLOAD_QUERIES);
        let on_time = report.completed(); // completed == met its deadline
        let lat = report.latency(); // over on-time completions
        on_time_p99[i] = lat.p99_ns;
        on_time_count[i] = on_time;
        shed_snapshot.push(format!(
            "{{\"policy\": \"{name}\", \"on_time\": {on_time}, \"sheds\": {}, \
             \"expired\": {}, \"attainment\": {:.3}, \"on_time_p99_us\": {:.1}, \
             \"on_time_p50_us\": {:.1}}}",
            report.sheds(),
            report.expired(),
            report.slo_attainment(),
            lat.p99_ns as f64 / 1e3,
            lat.p50_ns as f64 / 1e3,
        ));
        shed_rows.push(vec![
            name.to_string(),
            on_time.to_string(),
            report.sheds().to_string(),
            report.expired().to_string(),
            f(report.slo_attainment(), 3),
            f(lat.p50_ns as f64 / 1e3, 1),
            f(lat.p99_ns as f64 / 1e3, 1),
        ]);
        if name == "shed_doomed" {
            assert!(report.sheds() > 0, "2x overload must shed");
        } else {
            assert_eq!(report.sheds(), 0, "SloPolicy::None must never shed");
        }
    }
    print_table(
        "ShedDoomed under 2x overload (4 slots, deadline 4x, slack 1x unloaded)",
        &[
            "policy", "on-time", "sheds", "expired", "attain", "p50 us", "p99 us",
        ],
        &shed_rows,
    );
    println!(
        "\nUnloaded latency {:.0} us; arrivals every {:.0} us (2x the 4-slot",
        unloaded as f64 / 1e3,
        gap as f64 / 1e3
    );
    println!("capacity). Without shedding, doomed sessions hold slots until their");
    println!("deadlines pass; shedding evicts them early and the survivors win.");
    assert!(
        on_time_count[1] > on_time_count[0],
        "shedding must improve on-time completions: {} !> {}",
        on_time_count[1],
        on_time_count[0]
    );
    assert!(
        on_time_p99[1] < on_time_p99[0],
        "shedding must improve on-time p99: {} ns !< {} ns",
        on_time_p99[1],
        on_time_p99[0]
    );

    // ---- Part 2: TenantFair against a hog tenant. ----
    // Tenant 0 floods its whole batch at t=0; tenants 1 and 2 submit
    // just after. FIFO admission serves the hog's backlog first.
    let fair_run = |slo: SloPolicy| -> ServeReport {
        let mut engine = engine_with(ServeConfig {
            k,
            max_inflight: 6,
            slo,
            ..ServeConfig::default()
        });
        for tenant in 0..3u32 {
            for i in 0..N_QUERIES {
                let q = queries.vector((i % queries.len()) as VectorId).to_vec();
                engine.submit(QueryRequest::at(tenant as Nanos, q, vec![medoid]).tenant(tenant));
            }
        }
        engine.run_to_completion()
    };
    let mut fair_rows = Vec::new();
    let mut fair_snapshot: Vec<String> = Vec::new();
    let mut ratios = [0.0f64; 2];
    let cases = [
        ("none", SloPolicy::None),
        (
            "tenant_fair",
            SloPolicy::TenantFair {
                max_inflight_per_tenant: 2,
            },
        ),
    ];
    for (i, (name, slo)) in cases.into_iter().enumerate() {
        let report = fair_run(slo);
        assert_eq!(report.completed(), 3 * N_QUERIES, "{name}: queries lost");
        let tenants = report.tenant_summaries();
        assert_eq!(tenants.len(), 3, "{name}: tenant summaries incomplete");
        let ratio = report.tenant_p99_fairness();
        ratios[i] = ratio;
        let p99s: Vec<f64> = tenants
            .iter()
            .map(|t| t.latency.p99_ns as f64 / 1e3)
            .collect();
        fair_snapshot.push(format!(
            "{{\"policy\": \"{name}\", \"fairness_ratio\": {ratio:.3}, \
             \"per_tenant_p99_us\": [{}]}}",
            p99s.iter()
                .map(|p| format!("{p:.1}"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        fair_rows.push(vec![
            name.to_string(),
            f(ratio, 3),
            f(p99s[0], 1),
            f(p99s[1], 1),
            f(p99s[2], 1),
        ]);
    }
    print_table(
        "TenantFair vs a hog tenant (3 tenants x 24 queries, 6 slots, cap 2)",
        &["policy", "max/mean", "t0 p99 us", "t1 p99 us", "t2 p99 us"],
        &fair_rows,
    );
    println!("\nThe hog submits first and FIFO admission drains it before the");
    println!("interactive tenants; the per-tenant cap interleaves all three.");
    assert!(
        ratios[1] < ratios[0],
        "TenantFair must reduce the max/mean per-tenant p99 ratio: {} !< {}",
        ratios[1],
        ratios[0]
    );

    // ---- Part 3: generated scenario showcase (bursty, diurnal). ----
    let tenants = vec![
        TenantProfile::new(0).weight(2.0).deadline_ns(8 * unloaded),
        TenantProfile::new(1).update_fraction(0.3).k(k.min(5)),
    ];
    let scenarios = [
        (
            "bursty",
            Scenario {
                arrivals: ArrivalModel::Bursty {
                    base_rate_qps: 1e9 / (4 * unloaded) as f64,
                    spike_rate_qps: 1e9 / (unloaded / 4) as f64,
                    spike_windows: vec![(10 * unloaded, 20 * unloaded)],
                },
                mix: QueryMix {
                    zipf_theta: 0.99,
                    delete_fraction: 0.4,
                    tenants: tenants.clone(),
                },
                events: 120,
                start_ns: 0,
                seed: 0xB0,
            },
        ),
        (
            "diurnal",
            Scenario {
                arrivals: ArrivalModel::Diurnal {
                    profile: vec![0.2, 1.0, 0.6, 0.05],
                    period_ns: 200 * unloaded,
                    peak_rate_qps: 1e9 / unloaded as f64,
                },
                mix: QueryMix {
                    zipf_theta: 0.6,
                    delete_fraction: 0.0,
                    tenants,
                },
                events: 120,
                start_ns: 0,
                seed: 0xD1,
            },
        ),
    ];
    let mut scenario_rows = Vec::new();
    let mut scenario_snapshot: Vec<String> = Vec::new();
    for (name, scenario) in scenarios {
        let trace = scenario.generate(queries.len(), queries.len(), 0..(n / 10) as VectorId);
        let mut engine = engine_with(ServeConfig {
            k,
            max_inflight: SLOTS,
            slo: SloPolicy::ShedDoomed { min_slack_ns: 0 },
            ..ServeConfig::default()
        });
        trace.submit_serve(&mut engine, &queries, &queries, &[medoid]);
        let report = engine.run_to_completion();
        assert_eq!(
            report.outcomes.len(),
            trace.queries(),
            "{name}: lost queries"
        );
        let attainment = report.slo_attainment();
        assert!(
            attainment > 0.0 && attainment <= 1.0,
            "{name}: attainment {attainment} outside (0, 1]"
        );
        let lat = report.latency();
        scenario_snapshot.push(format!(
            "{{\"scenario\": \"{name}\", \"events\": {}, \"queries\": {}, \
             \"updates\": {}, \"span_us\": {:.1}, \"attainment\": {attainment:.3}, \
             \"sheds\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"qps\": {:.1}}}",
            trace.len(),
            trace.queries(),
            trace.updates(),
            trace.span_ns() as f64 / 1e3,
            report.sheds(),
            lat.p50_ns as f64 / 1e3,
            lat.p99_ns as f64 / 1e3,
            report.qps(),
        ));
        scenario_rows.push(vec![
            name.to_string(),
            trace.queries().to_string(),
            trace.updates().to_string(),
            f(trace.span_ns() as f64 / 1e6, 1),
            f(attainment, 3),
            report.sheds().to_string(),
            f(lat.p99_ns as f64 / 1e3, 1),
        ]);
    }
    print_table(
        "Generated scenarios (Zipf hotspots, mixed updates, ShedDoomed)",
        &[
            "scenario", "queries", "updates", "span ms", "attain", "sheds", "p99 us",
        ],
        &scenario_rows,
    );

    // ---- Machine-readable snapshot for the perf trajectory. ----
    let path =
        std::env::var("NDS_BENCH_JSON").unwrap_or_else(|_| "BENCH_scenarios.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"scenarios\",\n  \"n_base\": {n},\n  \"k\": {k},\n  \
         \"unloaded_latency_us\": {unloaded_us:.1},\n  \
         \"overload\": {{\"queries\": {oq}, \"slots\": {SLOTS}, \"overload_x\": 2.0, \
         \"deadline_x\": 4.0, \"rows\": [\n    {shed}\n  ]}},\n  \
         \"fairness\": {{\"tenants\": 3, \"cap\": 2, \"rows\": [\n    {fair}\n  ]}},\n  \
         \"scenarios\": [\n    {scen}\n  ]\n}}\n",
        unloaded_us = unloaded as f64 / 1e3,
        oq = OVERLOAD_QUERIES,
        shed = shed_snapshot.join(",\n    "),
        fair = fair_snapshot.join(",\n    "),
        scen = scenario_snapshot.join(",\n    "),
    );
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote bench snapshot to {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
