//! Fig. 18 — ECC evaluation:
//! (a) the per-plane raw-BER distribution sampled for the 512 planes of
//!     SearSSD (lognormal around the 1e-6 mean of modern NAND);
//! (b) normalized HNSW latency when the hard-decision LDPC failure
//!     probability is forced to 30 %, 10 %, 5 % and 1 %.
//!
//! Paper shapes: at 30 % failures the slowdown is 1.23–1.66×; at the 1 %
//! default it is negligible — plane-level hard-decision LDPC suffices.

use ndsearch_anns::index::AnnsAlgorithm;
use ndsearch_bench::{build_workload, env_usize, f, print_table};
use ndsearch_core::config::{NdsConfig, SchedulingConfig};
use ndsearch_core::pipeline::Prepared;
use ndsearch_core::NdsEngine;
use ndsearch_flash::ecc::{EccConfig, EccEngine};
use ndsearch_flash::geometry::FlashGeometry;
use ndsearch_vector::synthetic::BenchmarkId;

fn main() {
    // (a) BER distribution histogram.
    let engine = EccEngine::new(&FlashGeometry::searssd_default(), EccConfig::default());
    let mut buckets = [0u32; 7];
    for &ber in engine.plane_bers() {
        let idx = match ber {
            b if b < 2.5e-7 => 0,
            b if b < 5e-7 => 1,
            b if b < 1e-6 => 2,
            b if b < 2e-6 => 3,
            b if b < 4e-6 => 4,
            b if b < 8e-6 => 5,
            _ => 6,
        };
        buckets[idx] += 1;
    }
    let labels = [
        "<2.5e-7", "<5e-7", "<1e-6", "<2e-6", "<4e-6", "<8e-6", ">=8e-6",
    ];
    let rows: Vec<Vec<String>> = labels
        .iter()
        .zip(buckets.iter())
        .map(|(l, c)| vec![l.to_string(), c.to_string()])
        .collect();
    print_table(
        "Fig. 18a: plane-level raw BER distribution (512 planes)",
        &["raw BER bucket", "#planes"],
        &rows,
    );

    // (b) Latency vs hard-decision failure probability.
    let batch = env_usize("NDS_BATCH", 2048);
    let mut rows = Vec::new();
    for bench in BenchmarkId::ALL {
        let w = build_workload(bench, AnnsAlgorithm::Hnsw, batch);
        let run = |p: f64| {
            let config = NdsConfig {
                scheduling: SchedulingConfig::full(),
                ecc: EccConfig {
                    hard_decision_failure_prob: p,
                    ..EccConfig::default()
                },
                ..w.config.clone()
            };
            let prepared = Prepared::stage(&config, &w.graph, &w.base, &w.trace);
            NdsEngine::new(&config).run(&prepared)
        };
        let base = run(0.01);
        let mut row = vec![bench.to_string()];
        for p in [0.30, 0.10, 0.05, 0.01] {
            let r = run(p);
            row.push(f(r.total_ns as f64 / base.total_ns as f64, 3));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 18b: normalized HNSW latency vs hard-decision failure prob",
        &["dataset", "30%", "10%", "5%", "1%"],
        &rows,
    );
    println!("\nPaper reference: 1.23-1.66x slowdown at 30%; ~1.0x at the 1% default.");
}
