//! Fig. 15 — Dynamic scheduling evaluation: normalized page accesses and
//! speedup for no dynamic scheduling (w/o ds), dynamic allocating (da) and
//! dynamic allocating + speculative searching (da+sp), each with static
//! scheduling enabled.
//!
//! Paper shapes: da cuts page accesses by up to 73 % and brings up to
//! 2.67× speedup; adding sp *increases* page accesses (over half the
//! speculated results are not used) yet adds up to 1.27× more speedup
//! because the speculation is off the critical path.

use ndsearch_anns::index::AnnsAlgorithm;
use ndsearch_bench::{build_workload, env_usize, f, print_table};
use ndsearch_core::config::SchedulingConfig;
use ndsearch_vector::synthetic::BenchmarkId;

fn main() {
    let batch = env_usize("NDS_BATCH", 2048);
    for algo in [AnnsAlgorithm::Hnsw, AnnsAlgorithm::DiskAnn] {
        let mut rows = Vec::new();
        for bench in BenchmarkId::ALL {
            let w = build_workload(bench, algo, batch);
            let mut full = SchedulingConfig::full();
            full.speculative = false;
            full.dynamic_allocating = false;
            let wo_ds = w.run_ndsearch(full);
            full.dynamic_allocating = true;
            let da = w.run_ndsearch(full);
            full.speculative = true;
            let da_sp = w.run_ndsearch(full);
            for (label, r) in [("w/o ds", &wo_ds), ("da", &da), ("da+sp", &da_sp)] {
                rows.push(vec![
                    bench.to_string(),
                    label.to_string(),
                    f(
                        r.stats.page_reads as f64 / wo_ds.stats.page_reads.max(1) as f64,
                        3,
                    ),
                    f(wo_ds.total_ns as f64 / r.total_ns as f64, 2),
                    if label == "da+sp" {
                        f(100.0 * r.speculation.hit_rate(), 1)
                    } else {
                        "-".to_string()
                    },
                ]);
            }
        }
        print_table(
            &format!("Fig. 15 ({algo}): dynamic scheduling"),
            &[
                "dataset",
                "setting",
                "norm. page accesses",
                "speedup vs w/o ds",
                "spec hit %",
            ],
            &rows,
        );
    }
    println!("\nPaper reference: da reduces page accesses up to 73% (<=2.67x");
    println!("speedup); sp raises page accesses but adds up to 1.27x speedup.");
}
