//! Replicated serving sweep: routing policies under a degraded replica,
//! and failover under a mid-run device loss.
//!
//! Part 1 storms one replica of every shard (hard-decision LDPC failure
//! probability 0.9, so each of its reads pays the soft-decode penalty)
//! and serves the same staggered query wave under round-robin,
//! least-loaded and hedged routing, against a healthy baseline. The
//! hedged router fires a backup on the healthy replica once a session
//! has been outstanding for half the baseline median latency — its p99
//! must beat round-robin's, which keeps sending every other query
//! straight into the straggler. Part 2 kills a replica mid-run and reports
//! failover counts, availability and recall of the degraded cluster. A
//! machine-readable `BENCH_replica.json` snapshot seeds the perf
//! trajectory across PRs.
//!
//! Scale knobs: `NDS_N` (base vectors), `NDS_K` (top-k),
//! `NDS_BENCH_JSON` (snapshot path, default `BENCH_replica.json`).

use ndsearch_anns::index::MutableIndex;
use ndsearch_anns::vamana::{Vamana, VamanaParams};
use ndsearch_bench::{env_usize, f, print_table};
use ndsearch_core::cluster::{
    ClusterEngine, ClusterQueryRequest, ClusterReport, FailureSchedule, ReplicaPolicy,
    ReplicationConfig,
};
use ndsearch_core::config::NdsConfig;
use ndsearch_core::serve::ServeConfig;
use ndsearch_flash::timing::Nanos;
use ndsearch_vector::recall::{ground_truth, recall_at_k};
use ndsearch_vector::shard::{ShardPlan, ShardPolicy};
use ndsearch_vector::synthetic::DatasetSpec;
use ndsearch_vector::{Dataset, DistanceKind, VectorId};

const N_QUERIES: usize = 32;
const PLAN_SEED: u64 = 0x5A4D;
const STORM_PROB: f64 = 0.9;
/// Inter-arrival gap: an open, low-load wave so queue depth stays
/// shallow and the straggler replica's service time (not admission
/// queueing) dominates the tail. This is a tail-latency benchmark, not a
/// throughput one — QPS here is bounded by the arrival rate by design.
const GAP_NS: Nanos = 1_000_000;

fn vamana_builder(ds: &Dataset) -> (Box<dyn MutableIndex>, VectorId) {
    let index = Vamana::build(ds, VamanaParams::default());
    let entry = index.medoid();
    (Box::new(index), entry)
}

fn main() {
    let n = env_usize("NDS_N", 3000);
    let k = env_usize("NDS_K", 10);
    let (base, queries) = DatasetSpec::sift_scaled(n, N_QUERIES).build_pair();
    let mut config = NdsConfig::scaled_for(n * 2, base.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    // A severe retention episode: each soft-decision fallback walks a
    // read-retry voltage ladder, not a single re-read, so the stormed
    // replica's reads cost several times a healthy read. This is what
    // makes the straggler slow enough that routing policy matters.
    config.ecc.t_soft_decode_ns = 40_000;
    let serve = ServeConfig {
        k,
        ..ServeConfig::default()
    };
    let gt = ground_truth(&base, &queries, k, DistanceKind::L2);

    let run = |shards: usize, replication: ReplicationConfig| -> ClusterReport {
        let plan = ShardPlan::partition(n, shards, ShardPolicy::BalancedSize, PLAN_SEED);
        let mut cluster = ClusterEngine::stage_replicated(
            &config,
            serve.clone(),
            plan,
            replication,
            &base,
            vamana_builder,
        );
        for (i, (_, q)) in queries.iter().enumerate() {
            cluster.submit(ClusterQueryRequest::at(i as Nanos * GAP_NS, q.to_vec()));
        }
        cluster.run_to_completion()
    };
    let recall_of = |report: &ClusterReport| -> f64 {
        let ids: Vec<Vec<VectorId>> = report
            .outcomes
            .iter()
            .map(|o| o.results.iter().map(|nb| nb.id).collect())
            .collect();
        recall_at_k(&gt, &ids, k)
    };

    // ---- Part 1: routing policies with one stormed replica per shard
    // (2 shards × 2 replicas; replica 0 of each shard degraded). ----
    let storm = (0..2).fold(FailureSchedule::new(), |sch, s| {
        sch.ecc_storm(0, s, 0, STORM_PROB)
    });
    let healthy = run(2, ReplicationConfig::replicated(2));
    assert_eq!(healthy.completed(), N_QUERIES, "healthy: queries dropped");
    // Hedge once a session is outstanding past half the healthy median:
    // a stormed primary pays the retry ladder on most reads, so its
    // backup (delay + healthy service) finishes well ahead of it, while
    // a healthy primary merely wastes its backup and still wins.
    let hedge_delay = (healthy.latency().p50_ns / 2).max(1);

    let mut rows = Vec::new();
    let mut snapshot_routing: Vec<String> = Vec::new();
    let mut stormed_p99 = [0u64; 3];
    let cases: [(&str, bool, ReplicationConfig); 4] = [
        ("round_robin", false, ReplicationConfig::replicated(2)),
        (
            "round_robin",
            true,
            ReplicationConfig::replicated(2).with_failures(storm.clone()),
        ),
        (
            "least_loaded",
            true,
            ReplicationConfig::replicated(2)
                .with_policy(ReplicaPolicy::LeastLoaded)
                .with_failures(storm.clone()),
        ),
        (
            "hedged",
            true,
            ReplicationConfig::replicated(2)
                .with_policy(ReplicaPolicy::Hedged {
                    delay_ns: hedge_delay,
                })
                .with_failures(storm.clone()),
        ),
    ];
    for (i, (name, stormed, replication)) in cases.into_iter().enumerate() {
        let report = if stormed {
            run(2, replication)
        } else {
            healthy.clone()
        };
        assert_eq!(report.completed(), N_QUERIES, "{name}: queries dropped");
        let lat = report.latency();
        if stormed {
            stormed_p99[i - 1] = lat.p99_ns;
        }
        let recall = recall_of(&report);
        snapshot_routing.push(format!(
            "{{\"policy\": \"{name}\", \"stormed\": {stormed}, \"qps\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"recall\": {recall:.3}, \
             \"hedges\": {}, \"hedge_wins\": {}, \"hedge_win_rate\": {:.3}, \
             \"availability\": {:.3}}}",
            report.qps(),
            lat.p50_ns as f64 / 1e3,
            lat.p99_ns as f64 / 1e3,
            report.hedges(),
            report.hedge_wins(),
            report.hedge_win_rate(),
            report.availability(),
        ));
        rows.push(vec![
            name.to_string(),
            if stormed { "storm" } else { "none" }.to_string(),
            f(report.qps() / 1e3, 1),
            f(lat.p50_ns as f64 / 1e3, 1),
            f(lat.p99_ns as f64 / 1e3, 1),
            f(recall, 3),
            format!("{}/{}", report.hedge_wins(), report.hedges()),
        ]);
    }
    print_table(
        "Routing under a stormed replica (2 shards x 2 replicas, replica 0 degraded)",
        &[
            "policy",
            "fault",
            "kQPS",
            "p50 us",
            "p99 us",
            "recall",
            "hedge w/f",
        ],
        &rows,
    );
    println!("\nRound-robin keeps sending every other query into the straggler;");
    println!("hedging re-issues sessions that outlive half the healthy median");
    println!(
        "(delay = {:.0} us) and takes the earlier completion.",
        hedge_delay as f64 / 1e3
    );
    let [rr_p99, _ll_p99, hedged_p99] = stormed_p99;
    assert!(
        hedged_p99 < rr_p99,
        "hedged p99 ({hedged_p99} ns) must beat round-robin p99 ({rr_p99} ns) \
         under an ECC-storm straggler"
    );

    // ---- Part 2: mid-run device loss (4 shards × 2 replicas). ----
    let kill_at = (N_QUERIES as Nanos / 4) * GAP_NS; // 25 % into the wave
    let failover_report = run(
        4,
        ReplicationConfig::replicated(2).with_failures(FailureSchedule::new().kill(kill_at, 0, 0)),
    );
    assert_eq!(
        failover_report.completed(),
        N_QUERIES,
        "failover: queries dropped"
    );
    assert!(
        failover_report.failovers() > 0,
        "mid-run kill produced no failovers"
    );
    let availability = failover_report.availability();
    assert!(
        availability > 0.0 && availability <= 1.0,
        "availability {availability} outside (0, 1]"
    );
    let fo_recall = recall_of(&failover_report);
    let fo_lat = failover_report.latency();
    print_table(
        "Mid-run device loss (4 shards x 2 replicas, shard 0 replica 0 killed)",
        &[
            "kill at us",
            "completed",
            "failovers",
            "avail",
            "kQPS",
            "p99 us",
            "recall",
        ],
        &[vec![
            f(kill_at as f64 / 1e3, 0),
            failover_report.completed().to_string(),
            failover_report.failovers().to_string(),
            f(availability, 3),
            f(failover_report.qps() / 1e3, 1),
            f(fo_lat.p99_ns as f64 / 1e3, 1),
            f(fo_recall, 3),
        ]],
    );
    println!("\nEvery session the dead replica held was re-seeded on its survivor");
    println!("at the kill timestamp; later arrivals route around the dead device.");

    // ---- Machine-readable snapshot for the perf trajectory. ----
    let path = std::env::var("NDS_BENCH_JSON").unwrap_or_else(|_| "BENCH_replica.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"replica\",\n  \"n_base\": {n},\n  \"k\": {k},\n  \
         \"replicas\": 2,\n  \"storm_prob\": {STORM_PROB},\n  \
         \"hedge_delay_us\": {delay:.1},\n  \"routing\": [\n    {routing}\n  ],\n  \
         \"failover\": {{\"shards\": 4, \"kill_at_us\": {kill:.1}, \
         \"completed\": {completed}, \"failovers\": {failovers}, \
         \"availability\": {availability:.3}, \"qps\": {qps:.1}, \
         \"p99_us\": {p99:.1}, \"recall\": {recall:.3}}}\n}}\n",
        delay = hedge_delay as f64 / 1e3,
        routing = snapshot_routing.join(",\n    "),
        kill = kill_at as f64 / 1e3,
        completed = failover_report.completed(),
        failovers = failover_report.failovers(),
        qps = failover_report.qps(),
        p99 = fo_lat.p99_ns as f64 / 1e3,
        recall = fo_recall,
    );
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote bench snapshot to {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
