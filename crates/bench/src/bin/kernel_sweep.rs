//! Distance-kernel tier sweep: scalar reference vs portable unrolled vs
//! batched dispatch (AVX2/FMA when the host supports it and
//! `NDSEARCH_NO_SIMD` is unset), across the paper-relevant dimensions
//! (64/256 power-of-two shapes, sift-style 128, gist-style 960).
//!
//! Each variant scores the same 64-point batch against one query; the
//! reported figure is nanoseconds per scored point (best of several
//! timed runs, so background noise inflates nothing). The binary asserts
//! in-process that the batched kernel beats the scalar reference by at
//! least 4x on 128d — the headline target for this optimisation — and
//! writes a machine-readable `BENCH_kernels.json` snapshot.
//!
//! Scale knobs: `NDS_BATCH` (points per batch), `NDS_MS` (target
//! milliseconds per timed run), `NDS_BENCH_JSON` (snapshot path, default
//! `BENCH_kernels.json`).

use std::hint::black_box;
use std::time::Instant;

use ndsearch_bench::{env_usize, f, print_table};
use ndsearch_vector::distance::{l2_squared_scalar, l2_squared_unrolled, simd_enabled};
use ndsearch_vector::rng::Pcg32;
use ndsearch_vector::{Dataset, DistanceKind, VectorId};

const DIMS: [usize; 4] = [64, 128, 256, 960];

/// Times `run` (one whole-batch scoring pass) often enough to fill
/// roughly `target_ms` of wall clock, three times over, and returns the
/// best-run nanoseconds per scored point.
fn time_per_point(batch: usize, target_ms: usize, mut run: impl FnMut() -> f32) -> f64 {
    // Calibrate the iteration count from a short pilot run.
    let pilot = Instant::now();
    let mut sink = 0.0f32;
    for _ in 0..8 {
        sink += run();
    }
    let pilot_ns = (pilot.elapsed().as_nanos() as f64 / 8.0).max(1.0);
    let iters = ((target_ms as f64 * 1e6 / pilot_ns).ceil() as usize).max(8);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            sink += run();
        }
        let per_point = t.elapsed().as_nanos() as f64 / (iters as f64 * batch as f64);
        best = best.min(per_point);
    }
    black_box(sink);
    best
}

fn main() {
    let batch = env_usize("NDS_BATCH", 64);
    let target_ms = env_usize("NDS_MS", 20);
    let mut rng = Pcg32::seed_from_u64(0x5eed);
    let mut rows = Vec::new();
    let mut snapshot = Vec::new();
    let mut speedup_batched_128d = 0.0f64;

    for dim in DIMS {
        let q: Vec<f32> = (0..dim).map(|_| rng.next_f32()).collect();
        let points: Vec<Vec<f32>> = (0..batch)
            .map(|_| (0..dim).map(|_| rng.next_f32()).collect())
            .collect();
        let ds = Dataset::from_rows(dim, points).unwrap();
        let ids: Vec<VectorId> = (0..batch as VectorId).collect();

        let scalar_ns = time_per_point(batch, target_ms, || {
            let mut acc = 0.0f32;
            for &id in &ids {
                acc += l2_squared_scalar(black_box(&q), black_box(ds.vector(id)));
            }
            acc
        });
        let unrolled_ns = time_per_point(batch, target_ms, || {
            let mut acc = 0.0f32;
            for &id in &ids {
                acc += l2_squared_unrolled(black_box(&q), black_box(ds.vector(id)));
            }
            acc
        });
        let mut out: Vec<f32> = Vec::with_capacity(batch);
        let batched_ns = time_per_point(batch, target_ms, || {
            DistanceKind::L2.eval_batch_ids(black_box(&q), &ds, &ids, &mut out);
            out.iter().sum::<f32>()
        });

        let su_unrolled = scalar_ns / unrolled_ns;
        let su_batched = scalar_ns / batched_ns;
        if dim == 128 {
            speedup_batched_128d = su_batched;
        }
        rows.push(vec![
            dim.to_string(),
            f(scalar_ns, 2),
            f(unrolled_ns, 2),
            f(batched_ns, 2),
            f(su_unrolled, 2),
            f(su_batched, 2),
        ]);
        snapshot.push(format!(
            "{{\"dim\": {dim}, \"scalar_ns_per_point\": {:.3}, \
             \"unrolled_ns_per_point\": {:.3}, \"batched_ns_per_point\": {:.3}, \
             \"speedup_unrolled\": {:.2}, \"speedup_batched\": {:.2}}}",
            scalar_ns, unrolled_ns, batched_ns, su_unrolled, su_batched,
        ));
    }

    print_table(
        &format!(
            "L2 kernel tiers, ns per scored point ({batch}-point batches, simd={})",
            simd_enabled()
        ),
        &[
            "dim", "scalar", "unrolled", "batched", "x unroll", "x batch",
        ],
        &rows,
    );

    // The headline gate: batched dispatch must beat the scalar reference
    // by >= 4x on the sift-style 128d shape.
    assert!(
        speedup_batched_128d >= 4.0,
        "batched 128d speedup {speedup_batched_128d:.2} below the 4x target"
    );
    println!("\n128d batched speedup {speedup_batched_128d:.2}x (target >= 4x): ok");

    // ---- Machine-readable snapshot for the perf trajectory. ----
    let path = std::env::var("NDS_BENCH_JSON").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"batch\": {batch},\n  \"simd\": {simd},\n  \
         \"dims\": [\n    {rows}\n  ],\n  \"speedup_batched_128d\": {su:.2}\n}}\n",
        batch = batch,
        simd = simd_enabled(),
        rows = snapshot.join(",\n    "),
        su = speedup_batched_128d,
    );
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote bench snapshot to {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}
