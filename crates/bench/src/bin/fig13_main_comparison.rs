//! Fig. 13 — The headline comparison: throughput (QPS) and speedup
//! normalized to CPU, for HNSW and DiskANN on all five datasets across
//! CPU, GPU, SmartSSD-only, DS-c, DS-cp and NDSEARCH, batch 2048.
//!
//! Paper shapes: NDSEARCH wins everywhere (up to 31.7× over CPU, 14.6×
//! over GPU, 7.4× over SmartSSD, 2.9× over DS-cp on billion-scale sets;
//! 5.06× / 2.12× over CPU / GPU on the small memory-resident sets);
//! DS-cp > DS-c on this workload.

use ndsearch_anns::index::AnnsAlgorithm;
use ndsearch_bench::{build_workload, env_usize, f, print_table};
use ndsearch_vector::synthetic::BenchmarkId;

fn main() {
    let batch = env_usize("NDS_BATCH", 2048);
    for algo in [AnnsAlgorithm::Hnsw, AnnsAlgorithm::DiskAnn] {
        let mut rows = Vec::new();
        for bench in BenchmarkId::ALL {
            let w = build_workload(bench, algo, batch);
            let reports = w.all_platform_reports();
            let cpu_qps = reports[0].qps();
            for r in &reports {
                rows.push(vec![
                    bench.to_string(),
                    r.name.clone(),
                    f(r.qps() / 1e3, 2),
                    f(r.qps() / cpu_qps, 2),
                    f(w.recall_at_10, 3),
                ]);
            }
        }
        print_table(
            &format!("Fig. 13 ({algo}, batch {batch}): throughput & speedup vs CPU"),
            &["dataset", "platform", "kQPS", "speedup vs CPU", "recall@10"],
            &rows,
        );
    }
    println!("\nPaper reference: NDSEARCH up to 31.7x/14.6x/7.4x/2.9x over");
    println!("CPU/GPU/SmartSSD/DS-cp on billion-scale; 5.06x/2.12x over CPU/GPU");
    println!("on glove-100 & fashion-mnist; DS-cp > DS-c.");
}
