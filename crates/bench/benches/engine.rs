//! Criterion benchmarks for the search kernel and the NDSEARCH engine:
//! beam search over a built graph, static-scheduling staging, a full
//! engine batch, and the platform replay models.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ndsearch_anns::beam::{beam_search, VisitedSet};
use ndsearch_anns::hnsw::{Hnsw, HnswParams};
use ndsearch_anns::index::{GraphAnnsIndex, SearchParams};
use ndsearch_baselines::{CpuPlatform, DeepStorePlatform, Platform, Scenario};
use ndsearch_core::config::{NdsConfig, SchedulingConfig};
use ndsearch_core::pipeline::Prepared;
use ndsearch_core::NdsEngine;
use ndsearch_vector::synthetic::{BenchmarkId, DatasetSpec};
use ndsearch_vector::DistanceKind;

struct Fixture {
    base: ndsearch_vector::Dataset,
    queries: ndsearch_vector::Dataset,
    index: Hnsw,
    trace: ndsearch_anns::trace::BatchTrace,
    config: NdsConfig,
}

fn fixture() -> Fixture {
    let (base, queries) = DatasetSpec::sift_scaled(2000, 128).build_pair();
    let index = Hnsw::build(&base, HnswParams::default());
    let out = index.search_batch(&base, &queries, &SearchParams::default());
    let config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    Fixture {
        base,
        queries,
        index,
        trace: out.trace,
        config,
    }
}

fn bench_beam_search(c: &mut Criterion) {
    let fx = fixture();
    let mut visited = VisitedSet::new(fx.base.len());
    c.bench_function("beam_search_ef64", |b| {
        let mut qi = 0usize;
        b.iter(|| {
            qi = (qi + 1) % fx.queries.len();
            beam_search(
                &fx.base,
                fx.index.base_graph(),
                black_box(fx.queries.vector(qi as u32)),
                &[fx.index.entry_point()],
                64,
                DistanceKind::L2,
                &mut visited,
            )
        })
    });
}

fn bench_staging(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("static_scheduling_stage", |b| {
        b.iter(|| {
            Prepared::stage(
                black_box(&fx.config),
                fx.index.base_graph(),
                &fx.base,
                &fx.trace,
            )
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    let fx = fixture();
    let prepared = Prepared::stage(&fx.config, fx.index.base_graph(), &fx.base, &fx.trace);
    let mut bare_cfg = fx.config.clone();
    bare_cfg.scheduling = SchedulingConfig::bare();
    let prepared_bare = Prepared::stage(&bare_cfg, fx.index.base_graph(), &fx.base, &fx.trace);
    let mut g = c.benchmark_group("engine_batch128");
    g.sample_size(20);
    g.bench_function("full_scheduling", |b| {
        b.iter(|| NdsEngine::new(&fx.config).run(black_box(&prepared)))
    });
    g.bench_function("bare", |b| {
        b.iter(|| NdsEngine::new(&bare_cfg).run(black_box(&prepared_bare)))
    });
    g.finish();
}

fn bench_platform_models(c: &mut Criterion) {
    let fx = fixture();
    let scenario = Scenario {
        benchmark: BenchmarkId::Sift1B,
        base: &fx.base,
        graph: fx.index.base_graph(),
        trace: &fx.trace,
        config: &fx.config,
        k: 10,
    };
    let mut g = c.benchmark_group("platform_replay");
    g.sample_size(20);
    g.bench_function("cpu", |b| {
        b.iter(|| CpuPlatform::paper_default().report(black_box(&scenario)))
    });
    g.bench_function("ds_cp", |b| {
        b.iter(|| DeepStorePlatform::chip_level().report(black_box(&scenario)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_beam_search,
    bench_staging,
    bench_engine,
    bench_platform_models
);
criterion_main!(benches);
