//! Criterion microbenchmarks for the computational kernels: distance
//! functions, bitonic sort vs std sort, top-k, reordering algorithms and
//! LUNCSR address inference.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use ndsearch_anns::bitonic::bitonic_sort;
use ndsearch_flash::geometry::FlashGeometry;
use ndsearch_graph::csr::Csr;
use ndsearch_graph::luncsr::LunCsr;
use ndsearch_graph::mapping::{PlacementPolicy, VertexMapping};
use ndsearch_graph::reorder::ReorderMethod;
use ndsearch_vector::distance::{
    angular, l2_squared, l2_squared_scalar, l2_squared_unrolled, neg_inner_product, DistanceKind,
};
use ndsearch_vector::rng::Pcg32;
use ndsearch_vector::topk::{Neighbor, TopK};
use ndsearch_vector::Dataset;

fn random_vec(rng: &mut Pcg32, dim: usize) -> Vec<f32> {
    (0..dim).map(|_| rng.next_f32()).collect()
}

fn bench_distances(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from_u64(1);
    let a = random_vec(&mut rng, 128);
    let b = random_vec(&mut rng, 128);
    let mut g = c.benchmark_group("distance_128d");
    g.bench_function("l2_squared", |bch| {
        bch.iter(|| l2_squared(black_box(&a), black_box(&b)))
    });
    g.bench_function("angular", |bch| {
        bch.iter(|| angular(black_box(&a), black_box(&b)))
    });
    g.bench_function("inner_product", |bch| {
        bch.iter(|| neg_inner_product(black_box(&a), black_box(&b)))
    });
    g.finish();
}

/// L2 kernel-tier sweep: the old scalar loop vs the portable unrolled
/// kernel vs batched dispatch (AVX2/FMA when the host has it and
/// `NDSEARCH_NO_SIMD` is unset), at the paper-relevant dims (64/256
/// power-of-two shapes, sift-style 128, gist-style 960).
fn bench_kernel_sweep(c: &mut Criterion) {
    const BATCH: usize = 64;
    let mut rng = Pcg32::seed_from_u64(11);
    for dim in [64usize, 128, 256, 960] {
        let q = random_vec(&mut rng, dim);
        let rows: Vec<Vec<f32>> = (0..BATCH).map(|_| random_vec(&mut rng, dim)).collect();
        let ds = Dataset::from_rows(dim, rows).unwrap();
        let ids: Vec<u32> = (0..BATCH as u32).collect();
        let mut g = c.benchmark_group(format!("l2_kernels_{dim}d"));
        // Per-batch timings so all three variants score BATCH points.
        g.bench_function("scalar", |bch| {
            bch.iter(|| {
                let mut acc = 0.0f32;
                for &id in &ids {
                    acc += l2_squared_scalar(black_box(&q), black_box(ds.vector(id)));
                }
                acc
            })
        });
        g.bench_function("unrolled", |bch| {
            bch.iter(|| {
                let mut acc = 0.0f32;
                for &id in &ids {
                    acc += l2_squared_unrolled(black_box(&q), black_box(ds.vector(id)));
                }
                acc
            })
        });
        g.bench_function("batched", |bch| {
            let mut out: Vec<f32> = Vec::with_capacity(BATCH);
            bch.iter(|| {
                DistanceKind::L2.eval_batch_ids(black_box(&q), &ds, &ids, &mut out);
                out.iter().sum::<f32>()
            })
        });
        g.finish();
    }
}

fn bench_sorts(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from_u64(2);
    let data: Vec<u32> = (0..1024).map(|_| rng.next_u32()).collect();
    let mut g = c.benchmark_group("sort_1024");
    g.bench_function("bitonic_network", |bch| {
        bch.iter_batched(
            || data.clone(),
            |mut v| {
                bitonic_sort(&mut v);
                v
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("std_sort_unstable", |bch| {
        bch.iter_batched(
            || data.clone(),
            |mut v| {
                v.sort_unstable();
                v
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from_u64(3);
    let entries: Vec<Neighbor> = (0..4096)
        .map(|i| Neighbor::new(rng.next_f32(), i))
        .collect();
    c.bench_function("topk_10_of_4096", |bch| {
        bch.iter(|| {
            let mut top = TopK::new(10);
            for &n in &entries {
                top.push(n);
            }
            top.into_sorted_vec()
        })
    });
}

fn ring_graph(n: usize) -> Csr {
    let lists: Vec<Vec<u32>> = (0..n as u32)
        .map(|v| {
            vec![
                (v + 1) % n as u32,
                (v + 7) % n as u32,
                (v + n as u32 - 1) % n as u32,
            ]
        })
        .collect();
    Csr::from_adjacency(&lists).unwrap()
}

fn bench_reorder(c: &mut Criterion) {
    let g = ring_graph(4096);
    let shuffled = g.relabel(&ReorderMethod::RandomShuffle.permutation(&g, 9));
    let mut grp = c.benchmark_group("reorder_4096");
    grp.bench_function("degree_ascending_bfs", |bch| {
        bch.iter(|| ReorderMethod::DegreeAscendingBfs.permutation(black_box(&shuffled), 0))
    });
    grp.bench_function("random_bfs", |bch| {
        bch.iter(|| ReorderMethod::RandomBfs.permutation(black_box(&shuffled), 1))
    });
    grp.finish();
}

fn bench_luncsr_inference(c: &mut Criterion) {
    let n = 8192;
    let csr = ring_graph(n);
    let mapping = VertexMapping::place(
        FlashGeometry::searssd_scaled(64),
        n,
        128,
        PlacementPolicy::MultiPlaneAware,
    );
    let luncsr = LunCsr::new(csr, mapping);
    c.bench_function("luncsr_physical_addr", |bch| {
        let mut v = 0u32;
        bch.iter(|| {
            v = (v + 97) % n as u32;
            luncsr.physical_addr(black_box(v))
        })
    });
}

criterion_group!(
    benches,
    bench_distances,
    bench_kernel_sweep,
    bench_sorts,
    bench_topk,
    bench_reorder,
    bench_luncsr_inference
);
criterion_main!(benches);
