//! Criterion benchmarks for the concurrent serving layer: a closed batch
//! of 64 sessions at several in-flight caps, and the per-hop resumable
//! beam searcher against the run-to-completion kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ndsearch_anns::beam::{beam_search, BeamSearcher, VisitedSet};
use ndsearch_anns::index::GraphAnnsIndex;
use ndsearch_anns::trace::BatchTrace;
use ndsearch_anns::vamana::{Vamana, VamanaParams};
use ndsearch_core::config::NdsConfig;
use ndsearch_core::pipeline::Prepared;
use ndsearch_core::serve::{QueryRequest, ServeConfig, ServeEngine};
use ndsearch_vector::synthetic::DatasetSpec;
use ndsearch_vector::DistanceKind;

struct Fixture {
    base: ndsearch_vector::Dataset,
    queries: ndsearch_vector::Dataset,
    index: Vamana,
    config: NdsConfig,
    prepared: Prepared,
}

fn fixture() -> Fixture {
    let (base, queries) = DatasetSpec::sift_scaled(1500, 64).build_pair();
    let index = Vamana::build(&base, VamanaParams::default());
    let mut config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    let prepared = Prepared::stage(&config, index.base_graph(), &base, &BatchTrace::default());
    Fixture {
        base,
        queries,
        index,
        config,
        prepared,
    }
}

fn bench_serve_concurrency(c: &mut Criterion) {
    let fx = fixture();
    let mut g = c.benchmark_group("serve_64_queries");
    for inflight in [1usize, 16, 64] {
        g.bench_function(format!("inflight_{inflight}"), |b| {
            b.iter(|| {
                let serve = ServeConfig {
                    max_inflight: inflight,
                    ..ServeConfig::default()
                };
                let mut engine = ServeEngine::new(
                    &fx.config,
                    serve,
                    &fx.prepared,
                    &fx.base,
                    fx.index.base_graph(),
                );
                for (_, q) in fx.queries.iter() {
                    engine.submit(QueryRequest::at(0, q.to_vec(), vec![fx.index.medoid()]));
                }
                let report = engine.run_to_completion();
                black_box(report.qps())
            })
        });
    }
    g.finish();
}

fn bench_stepwise_vs_whole_beam(c: &mut Criterion) {
    let fx = fixture();
    let graph = fx.index.base_graph();
    c.bench_function("beam_searcher_stepwise", |b| {
        let mut qi = 0usize;
        b.iter(|| {
            qi = (qi + 1) % fx.queries.len();
            let mut s = BeamSearcher::new(
                fx.base.len(),
                fx.queries.vector(qi as u32).to_vec(),
                vec![fx.index.medoid()],
                64,
                DistanceKind::L2,
            );
            let mut hops = 0usize;
            while s.step(&fx.base, graph).is_some() {
                hops += 1;
            }
            black_box((hops, s.found().len()))
        })
    });
    c.bench_function("beam_search_whole", |b| {
        let mut visited = VisitedSet::new(fx.base.len());
        let mut qi = 0usize;
        b.iter(|| {
            qi = (qi + 1) % fx.queries.len();
            let out = beam_search(
                &fx.base,
                graph,
                black_box(fx.queries.vector(qi as u32)),
                &[fx.index.medoid()],
                64,
                DistanceKind::L2,
                &mut visited,
            );
            black_box(out.found.len())
        })
    });
}

criterion_group!(
    benches,
    bench_serve_concurrency,
    bench_stepwise_vs_whole_beam
);
criterion_main!(benches);
