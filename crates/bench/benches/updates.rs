//! Criterion benchmarks for the online-update serving path: insert-only
//! ingest, delete-heavy churn, and mixed 90/10 query/update serving over
//! a mutable deployment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ndsearch_anns::vamana::{Vamana, VamanaParams};
use ndsearch_core::config::NdsConfig;
use ndsearch_core::deploy::Deployment;
use ndsearch_core::serve::{QueryRequest, ServeConfig, ServeEngine, UpdateRequest};
use ndsearch_vector::synthetic::DatasetSpec;
use ndsearch_vector::VectorId;

const N_BASE: usize = 1000;
const N_EXTRA: usize = 64;

struct Fixture {
    base: ndsearch_vector::Dataset,
    extra: ndsearch_vector::Dataset,
    index: Vamana,
    medoid: VectorId,
    config: NdsConfig,
}

fn fixture() -> Fixture {
    let (base, extra) = DatasetSpec::sift_scaled(N_BASE, N_EXTRA).build_pair();
    let index = Vamana::build(&base, VamanaParams::default());
    let medoid = index.medoid();
    let mut config = NdsConfig::scaled_for(2 * N_BASE, base.stored_vector_bytes());
    config.ecc.hard_decision_failure_prob = 0.0;
    Fixture {
        base,
        extra,
        index,
        medoid,
        config,
    }
}

fn engine<'a>(fx: &'a Fixture, serve: ServeConfig) -> ServeEngine<'a> {
    let deploy = Deployment::stage(&fx.config, Box::new(fx.index.clone()), fx.base.clone());
    ServeEngine::with_deployment(&fx.config, serve, deploy)
}

fn bench_insert_only(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("updates_insert_only_64", |b| {
        b.iter(|| {
            let mut eng = engine(&fx, ServeConfig::default());
            for (_, v) in fx.extra.iter() {
                eng.submit_update(UpdateRequest::insert_at(0, v.to_vec()));
            }
            let report = eng.run_to_completion();
            black_box((report.update_qps(), report.updates.pages_programmed))
        })
    });
}

fn bench_delete_heavy(c: &mut Criterion) {
    let fx = fixture();
    c.bench_function("updates_delete_heavy_256", |b| {
        b.iter(|| {
            let mut eng = engine(&fx, ServeConfig::default());
            for i in 0..256u32 {
                eng.submit_update(UpdateRequest::delete_at(0, (i * 3) % N_BASE as u32));
            }
            let report = eng.run_to_completion();
            black_box(report.updates_completed())
        })
    });
}

fn bench_mixed_90_10(c: &mut Criterion) {
    // 90/10 query/update mix (and the inverse), interleaved arrivals.
    let fx = fixture();
    let mut g = c.benchmark_group("serve_mixed");
    for (name, queries, updates) in [("90q_10u", 58usize, 6usize), ("10q_90u", 6, 58)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut eng = engine(
                    &fx,
                    ServeConfig {
                        max_inflight: 16,
                        ..ServeConfig::default()
                    },
                );
                for i in 0..queries {
                    let q = fx.extra.vector((i % fx.extra.len()) as u32);
                    eng.submit(QueryRequest::at(
                        i as u64 * 1_000,
                        q.to_vec(),
                        vec![fx.medoid],
                    ));
                }
                for i in 0..updates {
                    if i % 4 == 3 {
                        eng.submit_update(UpdateRequest::delete_at(
                            i as u64 * 1_500,
                            (i as u32 * 17) % N_BASE as u32,
                        ));
                    } else {
                        let v = fx.extra.vector((i % fx.extra.len()) as u32);
                        eng.submit_update(UpdateRequest::insert_at(i as u64 * 1_500, v.to_vec()));
                    }
                }
                let report = eng.run_to_completion();
                black_box((report.qps(), report.update_qps()))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_insert_only,
    bench_delete_heavy,
    bench_mixed_90_10
);
criterion_main!(benches);
