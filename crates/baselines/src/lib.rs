//! Baseline platform models for the NDSEARCH comparison (§VII-A).
//!
//! Every platform replays the *same* search traces recorded by the real
//! algorithms in `ndsearch-anns`, exactly as the paper's trace-driven
//! methodology does. The models differ in where feature vectors live, what
//! link they cross, and how much parallelism serves the accesses:
//!
//! * [`cpu::CpuPlatform`] — 2× Xeon-class CPUs with 24 GB DRAM; datasets
//!   whose *original* corpus exceeds memory are k-means-sharded on SSD and
//!   shard misses cross PCIe 3.0 ×16 at 4 KiB granularity (the Fig. 1/2
//!   bottleneck). A terabyte-DRAM variant (`CPU-T`, Fig. 21) removes the
//!   misses but keeps DRAM-latency-bound traversal.
//! * [`gpu::GpuPlatform`] — Titan-RTX-class: 24 GB VRAM, massive compute
//!   parallelism, same PCIe wall for billion-scale corpora.
//! * [`smartssd::SmartSsdPlatform`] — the SmartSSD-only design of Kim et
//!   al. (IEEE TC 2022; reference 47 of the paper): an FPGA behind a
//!   private PCIe 3.0 ×4 link; no in-NAND logic, so every visited vertex
//!   drags a 4 KiB block across the ×4 link.
//! * [`deepstore::DeepStorePlatform`] — DeepStore-style in-storage
//!   accelerators at channel (DS-c) or chip (DS-cp) granularity: they
//!   exploit internal bandwidth but pay the ~30 µs page-buffer→accelerator
//!   move and serialize LUN data-out on shared buses.
//!
//! Each model returns a [`platform::PlatformReport`] with latency split
//! into I/O, compute and sort, plus a wall-plug power figure for the
//! energy-efficiency comparison (Fig. 20).

pub mod cpu;
pub mod deepstore;
pub mod gpu;
pub mod platform;
pub mod smartssd;

pub use cpu::CpuPlatform;
pub use deepstore::{AcceleratorLevel, DeepStorePlatform};
pub use gpu::GpuPlatform;
pub use platform::{Platform, PlatformReport, Scenario};
pub use smartssd::SmartSsdPlatform;
