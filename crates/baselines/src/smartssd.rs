//! SmartSSD-only platform model (Kim et al., IEEE TC 2022 — reference 47
//! of the paper).
//!
//! A SmartSSD pairs a stock SSD with an FPGA over a *private* PCIe 3.0 ×4
//! switch. The FPGA runs graph traversal + distance + sort, which removes
//! the host round-trip — but there is no logic inside the SSD, so every
//! visited vertex still drags a 4 KiB block from flash across the ×4 link
//! before it can be used. Page reuse is per-query only (the FPGA streams
//! one query's working set; there is no batch-wide LUN scheduling), which
//! is precisely the gap NDSEARCH's in-NAND compute + dynamic allocating
//! closes (§IX: the performance of the SmartSSD design "is still limited
//! by the low PCIe bandwidth").

use std::collections::HashSet;

use ndsearch_flash::timing::Nanos;

use crate::platform::{Platform, PlatformReport, Scenario};

/// Tunable SmartSSD model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartSsdPlatform {
    /// Read granularity over the private link, bytes.
    pub block_bytes: u64,
    /// Private link bandwidth (PCIe 3.0 ×4), bytes/second.
    pub link_bytes_per_s: f64,
    /// FPGA distance throughput, elements/second (512 MACs @ 200 MHz).
    pub fpga_elements_per_s: f64,
    /// Per-query FPGA sort cost.
    pub t_sort_per_query_ns: u64,
    /// Wall-plug power (host share + device), watts.
    pub power_w: f64,
    /// Block-fetch reduction from Kim et al.'s optimized on-device data
    /// layout (graph neighborhoods packed into blocks): distinct blocks
    /// fetched are divided by this factor.
    pub layout_locality: f64,
}

impl SmartSsdPlatform {
    /// The paper's SmartSSD-only baseline.
    pub fn paper_default() -> Self {
        Self {
            block_bytes: 4096,
            link_bytes_per_s: 15.4e9 / 4.0,
            fpga_elements_per_s: 512.0 * 200e6,
            t_sort_per_query_ns: 500,
            power_w: 140.0,
            layout_locality: 2.0,
        }
    }
}

impl Platform for SmartSsdPlatform {
    fn name(&self) -> String {
        "SmartSSD".to_string()
    }

    fn report(&self, scenario: &Scenario<'_>) -> PlatformReport {
        let vertex_bytes = scenario.base.stored_vector_bytes() as u64;
        let vectors_per_block = (self.block_bytes / vertex_bytes.max(1)).max(1);

        // Per-query block working set: vertices it visits, rounded up to
        // 4 KiB blocks under the *construction-order* layout (SmartSSD does
        // not reorder vertices).
        let mut io_blocks = 0u64;
        let mut trace_len = 0u64;
        for q in &scenario.trace.queries {
            let blocks: HashSet<u64> = q
                .visited_sequence()
                .map(|v| u64::from(v) / vectors_per_block)
                .collect();
            io_blocks += blocks.len() as u64;
            trace_len += q.len() as u64;
        }
        let io_blocks = (io_blocks as f64 / self.layout_locality.max(1.0)).ceil() as u64;
        let io_bytes = io_blocks * self.block_bytes;
        let io_ns = (io_bytes as f64 / self.link_bytes_per_s * 1e9).ceil() as Nanos;

        let elements = trace_len * scenario.base.dim() as u64;
        let compute_ns = (elements as f64 / self.fpga_elements_per_s * 1e9).ceil() as Nanos;
        let sort_ns = scenario.batch() as u64 * self.t_sort_per_query_ns;

        // I/O and compute pipeline on the FPGA; the link is the bottleneck.
        let total_ns = io_ns.max(compute_ns) + sort_ns;

        PlatformReport {
            name: self.name(),
            queries: scenario.batch(),
            total_ns,
            io_ns,
            compute_ns,
            sort_ns,
            io_bytes,
            power_w: self.power_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuPlatform;
    use ndsearch_anns::trace::{BatchTrace, IterationTrace, QueryTrace};
    use ndsearch_core::config::NdsConfig;
    use ndsearch_graph::csr::Csr;
    use ndsearch_vector::rng::Pcg32;
    use ndsearch_vector::synthetic::{BenchmarkId, DatasetSpec};

    fn fixture(
        n: usize,
        batch: usize,
        per_query: usize,
    ) -> (ndsearch_vector::Dataset, Csr, BatchTrace, NdsConfig) {
        let base = DatasetSpec::sift_scaled(n, 1).build();
        let graph = Csr::from_adjacency(&vec![Vec::new(); n]).unwrap();
        let mut rng = Pcg32::seed_from_u64(3);
        let trace = BatchTrace {
            queries: (0..batch)
                .map(|_| QueryTrace {
                    iterations: vec![IterationTrace {
                        entry: 0,
                        visited: (0..per_query).map(|_| rng.index(n) as u32).collect(),
                    }],
                })
                .collect(),
        };
        let config = NdsConfig::scaled_for(n, base.stored_vector_bytes());
        (base, graph, trace, config)
    }

    #[test]
    fn io_bound_on_the_x4_link() {
        let (base, graph, trace, config) = fixture(4096, 512, 200);
        let s = Scenario {
            benchmark: BenchmarkId::Sift1B,
            base: &base,
            graph: &graph,
            trace: &trace,
            config: &config,
            k: 10,
        };
        let r = SmartSsdPlatform::paper_default().report(&s);
        assert!(r.io_ns > r.compute_ns, "the x4 link should dominate");
        assert!(r.io_bytes > 0);
    }

    #[test]
    fn beats_cpu_on_billion_scale() {
        // Fig. 13: the SmartSSD-only design outperforms the sharded CPU on
        // billion-scale datasets (it avoids the host PCIe round-trip).
        let (base, graph, trace, config) = fixture(4096, 2048, 300);
        let s = Scenario {
            benchmark: BenchmarkId::Sift1B,
            base: &base,
            graph: &graph,
            trace: &trace,
            config: &config,
            k: 10,
        };
        let smart = SmartSsdPlatform::paper_default().report(&s);
        let cpu = CpuPlatform::paper_default().report(&s);
        assert!(
            smart.total_ns < cpu.total_ns,
            "smartssd {} vs cpu {}",
            smart.total_ns,
            cpu.total_ns
        );
    }

    #[test]
    fn shared_blocks_within_a_query_amortize() {
        // Visiting consecutive ids shares blocks; scattered ids do not.
        let base = DatasetSpec::sift_scaled(4096, 1).build();
        let graph = Csr::from_adjacency(&vec![Vec::new(); 4096]).unwrap();
        let config = NdsConfig::scaled_for(4096, base.stored_vector_bytes());
        let make = |visited: Vec<u32>| BatchTrace {
            queries: vec![QueryTrace {
                iterations: vec![IterationTrace { entry: 0, visited }],
            }],
        };
        let dense = make((0..64).collect());
        let sparse = make((0..64).map(|i| i * 64).collect());
        let rep = |t: &BatchTrace| {
            let s = Scenario {
                benchmark: BenchmarkId::Sift1B,
                base: &base,
                graph: &graph,
                trace: t,
                config: &config,
                k: 10,
            };
            SmartSsdPlatform::paper_default().report(&s).io_bytes
        };
        assert!(rep(&dense) < rep(&sparse));
    }
}
