//! The shared platform interface and report type.

use ndsearch_anns::trace::BatchTrace;
use ndsearch_core::config::NdsConfig;
use ndsearch_flash::timing::Nanos;
use ndsearch_graph::csr::Csr;
use ndsearch_vector::dataset::Dataset;
use ndsearch_vector::synthetic::BenchmarkId;

/// Inputs every platform model replays.
#[derive(Debug, Clone, Copy)]
pub struct Scenario<'a> {
    /// Which paper benchmark this models (drives the *original* corpus
    /// footprint used in exceeds-memory decisions).
    pub benchmark: BenchmarkId,
    /// The scaled base dataset.
    pub base: &'a Dataset,
    /// The proximity graph (construction-order ids).
    pub graph: &'a Csr,
    /// Recorded memory traces for the batch.
    pub trace: &'a BatchTrace,
    /// Shared architectural configuration (geometry, timing, links).
    pub config: &'a NdsConfig,
    /// Top-k requested.
    pub k: usize,
}

impl Scenario<'_> {
    /// Bytes per vertex under the legacy interleaved layout (vector + R
    /// padded neighbor ids) that hnswlib/DiskANN use on CPU/GPU.
    pub fn legacy_vertex_bytes(&self) -> u64 {
        self.base.stored_vector_bytes() as u64 + 32 * 4
    }

    /// Bytes the *original* (billion-scale where applicable) corpus
    /// occupies under the legacy layout.
    pub fn original_corpus_bytes(&self) -> u64 {
        self.benchmark.original_count() * self.legacy_vertex_bytes()
    }

    /// Batch size.
    pub fn batch(&self) -> usize {
        self.trace.len()
    }
}

/// What a platform replay produces.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformReport {
    /// Display name ("CPU", "DS-cp", …).
    pub name: String,
    /// Queries simulated.
    pub queries: usize,
    /// End-to-end batch latency.
    pub total_ns: Nanos,
    /// Of which: storage/PCIe I/O.
    pub io_ns: Nanos,
    /// Of which: compute + memory traversal.
    pub compute_ns: Nanos,
    /// Of which: top-k sort.
    pub sort_ns: Nanos,
    /// Bytes moved over the bottleneck link.
    pub io_bytes: u64,
    /// Wall-plug power while running, watts.
    pub power_w: f64,
}

impl PlatformReport {
    /// Throughput in queries per second.
    pub fn qps(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.queries as f64 / (self.total_ns as f64 / 1e9)
        }
    }

    /// Energy efficiency in QPS per watt (Fig. 20's metric).
    pub fn qps_per_watt(&self) -> f64 {
        if self.power_w <= 0.0 {
            0.0
        } else {
            self.qps() / self.power_w
        }
    }

    /// Fraction of time spent in storage I/O (Fig. 1's metric).
    pub fn io_fraction(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.io_ns as f64 / self.total_ns as f64
        }
    }

    /// Achieved / peak utilization of a link moving `io_bytes` during
    /// `io_ns` (Fig. 2a's metric).
    pub fn link_utilization(&self, peak_bytes_per_s: f64) -> f64 {
        if self.io_ns == 0 || peak_bytes_per_s <= 0.0 {
            return 0.0;
        }
        let achieved = self.io_bytes as f64 / (self.io_ns as f64 / 1e9);
        (achieved / peak_bytes_per_s).min(1.0)
    }
}

/// A platform model.
pub trait Platform {
    /// Display name.
    fn name(&self) -> String;

    /// Replays the scenario and reports latency/energy.
    fn report(&self, scenario: &Scenario<'_>) -> PlatformReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_math() {
        let r = PlatformReport {
            name: "x".into(),
            queries: 100,
            total_ns: 1_000_000,
            io_ns: 600_000,
            compute_ns: 300_000,
            sort_ns: 100_000,
            io_bytes: 6_000,
            power_w: 50.0,
        };
        assert!((r.qps() - 100_000.0).abs() < 1e-6);
        assert!((r.io_fraction() - 0.6).abs() < 1e-12);
        assert!((r.qps_per_watt() - 2_000.0).abs() < 1e-6);
        // 6000 B in 600 µs = 10 MB/s.
        assert!((r.link_utilization(20e6) - 0.5).abs() < 1e-9);
    }
}
