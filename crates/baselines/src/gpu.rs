//! GPU platform model (NVIDIA Titan RTX-class, 24 GB VRAM; cuhnsw).
//!
//! The GPU excels at the distance kernel — thousands of lanes hide memory
//! latency — but billion-scale corpora do not fit the 24 GB VRAM, so
//! k-means shards stream from the SSD over PCIe. Shard loads are large and
//! sequential (better link efficiency than the CPU's 4 KiB random reads),
//! yet the volume is the same wall: Fig. 13 shows the GPU beating the CPU
//! by ~2× on billion-scale sets while both stay PCIe-bound.

use ndsearch_flash::timing::Nanos;

use crate::platform::{Platform, PlatformReport, Scenario};

/// Tunable GPU model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuPlatform {
    /// VRAM capacity, bytes.
    pub vram_bytes: u64,
    /// Effective per-visited-vertex traversal cost when resident (kernel
    /// launch + global-memory access amortized over SMs).
    pub t_vertex_ns: u64,
    /// Effective bytes fetched per missed vertex (sequential shard loads
    /// amortize to less than a full 4 KiB random read).
    pub miss_bytes: u64,
    /// PCIe bandwidth, bytes/second.
    pub pcie_bytes_per_s: f64,
    /// Link efficiency for the streaming pattern (0..1).
    pub link_efficiency: f64,
    /// Per-batch fixed kernel-launch/transfer overhead.
    pub t_batch_overhead_ns: u64,
    /// Per-query sort cost (GPU bitonic is fast).
    pub t_sort_per_query_ns: u64,
    /// Wall-plug power, watts.
    pub power_w: f64,
}

impl GpuPlatform {
    /// The paper's GPU baseline.
    pub fn paper_default() -> Self {
        Self {
            vram_bytes: 24 << 30,
            t_vertex_ns: 150,
            miss_bytes: 11_000,
            pcie_bytes_per_s: 15.4e9,
            link_efficiency: 0.92,
            t_batch_overhead_ns: 150_000,
            t_sort_per_query_ns: 300,
            power_w: 280.0,
        }
    }

    /// Fraction of vertex accesses that miss VRAM.
    pub fn miss_fraction(&self, scenario: &Scenario<'_>) -> f64 {
        let corpus = scenario.original_corpus_bytes();
        if corpus <= self.vram_bytes {
            0.0
        } else {
            1.0 - self.vram_bytes as f64 / corpus as f64
        }
    }
}

impl Platform for GpuPlatform {
    fn name(&self) -> String {
        "GPU".to_string()
    }

    fn report(&self, scenario: &Scenario<'_>) -> PlatformReport {
        let trace_len = scenario.trace.total_visited();
        let batch = scenario.batch() as u64;

        let miss = self.miss_fraction(scenario);
        let misses = (trace_len as f64 * miss).round() as u64;
        let io_bytes = misses * self.miss_bytes;
        let io_ns = (io_bytes as f64 / (self.pcie_bytes_per_s * self.link_efficiency) * 1e9).ceil()
            as Nanos;

        let compute_ns = trace_len * self.t_vertex_ns + self.t_batch_overhead_ns;
        let sort_ns = batch * self.t_sort_per_query_ns;

        PlatformReport {
            name: self.name(),
            queries: scenario.batch(),
            total_ns: io_ns + compute_ns + sort_ns,
            io_ns,
            compute_ns,
            sort_ns,
            io_bytes,
            power_w: self.power_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuPlatform;
    use ndsearch_anns::trace::{BatchTrace, IterationTrace, QueryTrace};
    use ndsearch_core::config::NdsConfig;
    use ndsearch_graph::csr::Csr;
    use ndsearch_vector::synthetic::{BenchmarkId, DatasetSpec};

    fn run(benchmark: BenchmarkId) -> (PlatformReport, PlatformReport) {
        let base = DatasetSpec::for_benchmark(benchmark, 256, 1).build();
        let graph = Csr::from_adjacency(&vec![Vec::new(); 256]).unwrap();
        let trace = BatchTrace {
            queries: (0..2048)
                .map(|_| QueryTrace {
                    iterations: vec![IterationTrace {
                        entry: 0,
                        visited: (0..250u32).collect(),
                    }],
                })
                .collect(),
        };
        let config = NdsConfig::scaled_for(256, base.stored_vector_bytes());
        let s = Scenario {
            benchmark,
            base: &base,
            graph: &graph,
            trace: &trace,
            config: &config,
            k: 10,
        };
        (
            GpuPlatform::paper_default().report(&s),
            CpuPlatform::paper_default().report(&s),
        )
    }

    #[test]
    fn gpu_beats_cpu_everywhere() {
        for b in BenchmarkId::ALL {
            let (gpu, cpu) = run(b);
            assert!(
                gpu.total_ns < cpu.total_ns,
                "{b}: gpu {} vs cpu {}",
                gpu.total_ns,
                cpu.total_ns
            );
        }
    }

    #[test]
    fn gpu_advantage_is_moderate_on_billion_scale() {
        // Fig. 13: on billion-scale sets both are PCIe-bound; the GPU wins
        // by roughly 1.5–3×, not by its raw compute ratio.
        let (gpu, cpu) = run(BenchmarkId::Sift1B);
        let ratio = cpu.total_ns as f64 / gpu.total_ns as f64;
        assert!((1.3..=3.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn gpu_io_free_on_small_sets() {
        let (gpu, _) = run(BenchmarkId::Glove100);
        assert_eq!(gpu.io_ns, 0);
    }
}
