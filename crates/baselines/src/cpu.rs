//! CPU platform model (2× Intel Xeon Gold 6254-class, 24 GB DRAM).
//!
//! The paper's CPU baseline runs hnswlib / DiskANN. When the original
//! corpus exceeds main memory, the dataset is k-means-sharded on SSD and a
//! limited number of shards stay resident; every visited vertex that lands
//! outside the resident shards costs a 4 KiB random read over the shared
//! PCIe 3.0 ×16 link. Small-batch runs are latency-bound on the SSD (the
//! queue is shallow); large batches saturate the link's bandwidth — the
//! behaviour of Fig. 2(a). In-memory traversal is DRAM-latency-bound and
//! spread over the cores.

use ndsearch_flash::timing::Nanos;

use crate::platform::{Platform, PlatformReport, Scenario};

/// Tunable CPU model parameters (defaults calibrated in DESIGN.md §1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPlatform {
    /// DRAM capacity available for the dataset, bytes.
    pub dram_bytes: u64,
    /// Effective per-visited-vertex traversal cost once data is in DRAM
    /// (random DRAM access + SIMD distance, amortized over cores).
    pub t_vertex_ns: u64,
    /// SSD random-read granularity, bytes.
    pub ssd_read_bytes: u64,
    /// Read amplification of shard-based loading: bytes actually pulled
    /// from SSD per missed vertex, as a multiple of `ssd_read_bytes`
    /// (k-means shard loads drag in vectors that are never visited).
    pub read_amplification: f64,
    /// Compute-cost multiplier while running sharded (shard routing,
    /// k-means lookups, page-cache churn degrade the traversal itself).
    pub shard_compute_multiplier: f64,
    /// SSD random-read latency (device-level).
    pub t_ssd_latency_ns: u64,
    /// Host PCIe bandwidth, bytes/second.
    pub pcie_bytes_per_s: f64,
    /// Achievable fraction of peak PCIe bandwidth (protocol overheads;
    /// Fig. 2a saturates at ~83 %).
    pub pcie_efficiency: f64,
    /// Effective NVMe queue depth (parallel outstanding reads).
    pub queue_depth: u64,
    /// Fraction of in-flight queries with an outstanding SSD read at any
    /// instant (traversal compute interleaves with I/O).
    pub io_occupancy: f64,
    /// Per-query top-k sort cost.
    pub t_sort_per_query_ns: u64,
    /// Wall-plug power while running, watts.
    pub power_w: f64,
    /// Display label.
    pub label: &'static str,
}

impl CpuPlatform {
    /// The paper's CPU baseline: 24 GB of DRAM usable for the dataset.
    pub fn paper_default() -> Self {
        Self {
            dram_bytes: 24 << 30,
            t_vertex_ns: 350,
            ssd_read_bytes: 4096,
            read_amplification: 5.0,
            shard_compute_multiplier: 1.6,
            t_ssd_latency_ns: 80_000,
            pcie_bytes_per_s: 15.4e9,
            pcie_efficiency: 0.85,
            queue_depth: 256,
            io_occupancy: 0.25,
            t_sort_per_query_ns: 2_000,
            power_w: 215.0,
            label: "CPU",
        }
    }

    /// CPU-T (Fig. 21): the same machine with terabyte-level DRAM, so even
    /// billion-scale corpora are memory-resident — no shard I/O and no
    /// shard-management compute penalty (the paper measures ~5.3× over the
    /// memory-limited CPU).
    pub fn terabyte_dram() -> Self {
        Self {
            dram_bytes: 2 << 40,
            power_w: 400.0,
            label: "CPU-T",
            ..Self::paper_default()
        }
    }

    /// Fraction of vertex accesses that miss DRAM and hit the SSD.
    pub fn miss_fraction(&self, scenario: &Scenario<'_>) -> f64 {
        let corpus = scenario.original_corpus_bytes();
        if corpus <= self.dram_bytes {
            0.0
        } else {
            1.0 - self.dram_bytes as f64 / corpus as f64
        }
    }
}

impl Platform for CpuPlatform {
    fn name(&self) -> String {
        self.label.to_string()
    }

    fn report(&self, scenario: &Scenario<'_>) -> PlatformReport {
        let trace_len = scenario.trace.total_visited();
        let batch = scenario.batch() as u64;

        let miss = self.miss_fraction(scenario);
        let sharded = miss > 0.0;
        let misses = (trace_len as f64 * miss).round() as u64;
        let io_bytes =
            (misses as f64 * self.read_amplification * self.ssd_read_bytes as f64) as u64;
        // Bandwidth-bound component vs latency-bound component: small
        // batches cannot fill the device queue (only ~a quarter of live
        // queries have an I/O outstanding at any instant), so utilization
        // only saturates once batch × occupancy exceeds the queue depth —
        // the Fig. 2a knee near batch 1024.
        let bw_ns = (io_bytes as f64 / (self.pcie_bytes_per_s * self.pcie_efficiency) * 1e9).ceil()
            as Nanos;
        let parallel = ((batch as f64 * self.io_occupancy) as u64).clamp(1, self.queue_depth);
        let lat_ns = misses * self.t_ssd_latency_ns / parallel;
        let io_ns = bw_ns.max(lat_ns);

        let t_vertex = if sharded {
            (self.t_vertex_ns as f64 * self.shard_compute_multiplier) as u64
        } else {
            self.t_vertex_ns
        };
        let compute_ns = trace_len * t_vertex;
        let sort_ns = batch * self.t_sort_per_query_ns;

        PlatformReport {
            name: self.name(),
            queries: scenario.batch(),
            total_ns: io_ns + compute_ns + sort_ns,
            io_ns,
            compute_ns,
            sort_ns,
            io_bytes,
            power_w: self.power_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_anns::trace::{BatchTrace, IterationTrace, QueryTrace};
    use ndsearch_core::config::NdsConfig;
    use ndsearch_graph::csr::Csr;
    use ndsearch_vector::synthetic::{BenchmarkId, DatasetSpec};

    fn scenario_fixture(
        benchmark: BenchmarkId,
        per_query: usize,
        batch: usize,
    ) -> (ndsearch_vector::Dataset, Csr, BatchTrace, NdsConfig) {
        let base = DatasetSpec::for_benchmark(benchmark, 512, 1).build();
        let graph = Csr::from_adjacency(&vec![Vec::new(); 512]).unwrap();
        let trace = BatchTrace {
            queries: (0..batch)
                .map(|q| QueryTrace {
                    iterations: vec![IterationTrace {
                        entry: (q % 512) as u32,
                        visited: (0..per_query as u32).map(|i| (i * 3) % 512).collect(),
                    }],
                })
                .collect(),
        };
        let config = NdsConfig::scaled_for(512, base.stored_vector_bytes());
        (base, graph, trace, config)
    }

    #[test]
    fn billion_scale_is_io_dominated() {
        let (base, graph, trace, config) = scenario_fixture(BenchmarkId::Sift1B, 300, 2048);
        let s = Scenario {
            benchmark: BenchmarkId::Sift1B,
            base: &base,
            graph: &graph,
            trace: &trace,
            config: &config,
            k: 10,
        };
        let r = CpuPlatform::paper_default().report(&s);
        let f = r.io_fraction();
        assert!(
            (0.55..=0.85).contains(&f),
            "io fraction {f} should match Fig. 1's 60-75% band"
        );
    }

    #[test]
    fn small_corpus_has_no_ssd_io() {
        let (base, graph, trace, config) = scenario_fixture(BenchmarkId::FashionMnist, 300, 512);
        let s = Scenario {
            benchmark: BenchmarkId::FashionMnist,
            base: &base,
            graph: &graph,
            trace: &trace,
            config: &config,
            k: 10,
        };
        let r = CpuPlatform::paper_default().report(&s);
        assert_eq!(r.io_ns, 0);
        assert!(r.compute_ns > 0);
    }

    #[test]
    fn cpu_t_removes_io_on_billion_scale() {
        let (base, graph, trace, config) = scenario_fixture(BenchmarkId::Sift1B, 300, 1024);
        let s = Scenario {
            benchmark: BenchmarkId::Sift1B,
            base: &base,
            graph: &graph,
            trace: &trace,
            config: &config,
            k: 10,
        };
        let limited = CpuPlatform::paper_default().report(&s);
        let tb = CpuPlatform::terabyte_dram().report(&s);
        assert_eq!(tb.io_ns, 0);
        assert!(
            tb.total_ns < limited.total_ns / 2,
            "CPU-T should be much faster"
        );
    }

    #[test]
    fn bandwidth_utilization_saturates_with_batch() {
        let util = |batch| {
            let (base, graph, trace, config) = scenario_fixture(BenchmarkId::Sift1B, 300, batch);
            let s = Scenario {
                benchmark: BenchmarkId::Sift1B,
                base: &base,
                graph: &graph,
                trace: &trace,
                config: &config,
                k: 10,
            };
            let cpu = CpuPlatform::paper_default();
            let r = cpu.report(&s);
            r.link_utilization(cpu.pcie_bytes_per_s)
        };
        let small = util(16);
        let big = util(2048);
        assert!(small < 0.3, "small batch util = {small}");
        assert!(
            big > 0.7,
            "large batch util = {big} should approach saturation"
        );
    }
}
