//! DeepStore-style in-storage accelerator models (Mailthody et al.,
//! MICRO'19), at channel (DS-c) and chip (DS-cp) granularity.
//!
//! DeepStore puts accelerators *inside* the SSD but *outside* the NAND
//! dies. Consequences the model captures (§III / §VII-B):
//!
//! * every page consumed by an accelerator must leave the flash chip —
//!   paying the ~30 µs page-buffer→external move, plus (for the
//!   channel-level DS-c) the 16 KiB channel-bus transfer;
//! * only one LUN of a chip can drive the shared bus at a time, so page
//!   sense (tR) overlaps across LUNs but data-out serializes per
//!   accelerator;
//! * parallelism is bounded by the accelerator count: 32 channels (DS-c)
//!   or 128 chips (DS-cp) versus NDSEARCH's 256 LUNs.
//!
//! Following the paper's ablation note ("we actually implement dynamic
//! allocating on DS-cp to maximize its hardware utilization"), both
//! DeepStore variants amortize a loaded page across the queries queued at
//! the accelerator — their request queues naturally provide that reuse,
//! and without it the models degenerate at simulator scale. Neither
//! benefits from NDSEARCH's reordering (the DeepStore layout is
//! construction order) nor from multi-plane sensing.

use std::collections::{BTreeMap, HashSet};

use ndsearch_core::config::{NdsConfig, SchedulingConfig};
use ndsearch_core::pipeline::Prepared;
use ndsearch_flash::timing::Nanos;
use ndsearch_graph::mapping::PlacementPolicy;
use ndsearch_graph::reorder::ReorderMethod;

use crate::platform::{Platform, PlatformReport, Scenario};

/// Where DeepStore's accelerators sit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceleratorLevel {
    /// DS-c: one accelerator per channel.
    Channel,
    /// DS-cp: one accelerator per flash chip.
    Chip,
}

/// The DeepStore platform model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepStorePlatform {
    /// Accelerator granularity.
    pub level: AcceleratorLevel,
    /// Per-query host sort cost (results return to the host).
    pub t_sort_per_query_ns: u64,
    /// Wall-plug power, watts.
    pub power_w: f64,
}

impl DeepStorePlatform {
    /// DS-c: channel-level accelerators.
    pub fn channel_level() -> Self {
        Self {
            level: AcceleratorLevel::Channel,
            t_sort_per_query_ns: 1_000,
            power_w: 55.0,
        }
    }

    /// DS-cp: chip-level accelerators (the stronger baseline in Fig. 13).
    pub fn chip_level() -> Self {
        Self {
            level: AcceleratorLevel::Chip,
            t_sort_per_query_ns: 1_000,
            power_w: 46.0,
        }
    }

    fn has_dynamic_allocating(&self) -> bool {
        true
    }

    /// Accelerator units available.
    /// Accelerator units available (32 channels for DS-c, 128 chips for
    /// DS-cp under the paper's geometry).
    pub fn units(&self, config: &NdsConfig) -> u32 {
        match self.level {
            AcceleratorLevel::Channel => config.geometry.channels,
            AcceleratorLevel::Chip => config.geometry.total_chips(),
        }
    }

    /// Effective pipelined cost of consuming one page at this granularity.
    fn per_page_ns(&self, config: &NdsConfig) -> Nanos {
        let t = &config.timing;
        let luns_served = match self.level {
            AcceleratorLevel::Channel => {
                config.geometry.chips_per_channel * config.geometry.luns_per_chip()
            }
            AcceleratorLevel::Chip => config.geometry.luns_per_chip(),
        };
        // Sense overlaps across the LUNs the unit serves; the buffer move
        // (and for DS-c the channel-bus page transfer) serializes.
        let sense = t.t_read_page_ns / u64::from(luns_served.max(1));
        let move_out = match self.level {
            AcceleratorLevel::Channel => {
                t.t_buffer_to_external_ns
                    + t.channel_transfer_ns(u64::from(config.geometry.page_bytes))
            }
            AcceleratorLevel::Chip => t.t_buffer_to_external_ns,
        };
        sense.max(move_out)
    }
}

impl Platform for DeepStorePlatform {
    fn name(&self) -> String {
        match self.level {
            AcceleratorLevel::Channel => "DS-c".to_string(),
            AcceleratorLevel::Chip => "DS-cp".to_string(),
        }
    }

    fn report(&self, scenario: &Scenario<'_>) -> PlatformReport {
        let config = scenario.config;
        // DeepStore keeps the construction-order layout.
        let ds_config = NdsConfig {
            scheduling: SchedulingConfig {
                reorder: ReorderMethod::Identity,
                placement: PlacementPolicy::Linear,
                dynamic_allocating: self.has_dynamic_allocating(),
                speculative: false,
            },
            ..config.clone()
        };
        let prepared = Prepared::stage(&ds_config, scenario.graph, scenario.base, scenario.trace);
        let luncsr = &prepared.luncsr;
        let geom = &ds_config.geometry;
        let timing = &ds_config.timing;
        let per_page = self.per_page_ns(&ds_config);
        let dynamic = self.has_dynamic_allocating();

        let max_iters = prepared.trace.max_iterations();
        let mut total: Nanos = 0;
        let mut io_ns: Nanos = 0;
        let mut compute_ns: Nanos = 0;
        let mut io_bytes = 0u64;

        for r in 0..max_iters {
            // Page loads per accelerator unit this round.
            let mut unit_pages: BTreeMap<(u32, u32), HashSet<u64>> = BTreeMap::new();
            let mut active = 0u64;
            for (qi, t) in prepared.trace.queries.iter().enumerate() {
                let Some(it) = t.iterations.get(r) else {
                    continue;
                };
                active += 1;
                for &v in &it.visited {
                    let addr = luncsr.physical_addr(v);
                    let unit = match self.level {
                        AcceleratorLevel::Channel => geom.lun_channel(addr.lun),
                        AcceleratorLevel::Chip => geom.lun_chip(addr.lun),
                    };
                    let qkey = if dynamic { u32::MAX } else { qi as u32 };
                    unit_pages
                        .entry((unit, qkey))
                        .or_default()
                        .insert(addr.page_key(geom));
                }
            }
            if active == 0 {
                continue;
            }
            // Each unit's loads serialize; units run in parallel. The unit
            // pipeline (sense → move-out → compute) still pays the first
            // page's full sense latency before steady state.
            let mut per_unit: BTreeMap<u32, u64> = BTreeMap::new();
            for ((unit, _), pages) in &unit_pages {
                *per_unit.entry(*unit).or_default() += pages.len() as u64;
                io_bytes += pages.len() as u64 * u64::from(geom.page_bytes);
            }
            let max_loads = per_unit.values().copied().max().unwrap_or(0);
            let fill = if max_loads > 0 {
                timing.t_read_page_ns
            } else {
                0
            };
            let searching = fill + max_loads * per_page;
            // Embedded-core gathering, as on SearSSD.
            let gathering =
                active * timing.t_embedded_op_ns + timing.dram_transfer_ns(active * 256);
            io_ns += searching;
            compute_ns += gathering;
            total += searching + gathering;
        }

        // Results return to the host for sorting.
        let nq = scenario.batch() as u64;
        let result_bytes = nq * 64 * 8;
        let t_results = config.host_link.transfer_ns(result_bytes);
        let sort_ns = nq * self.t_sort_per_query_ns + t_results;
        total += sort_ns;

        PlatformReport {
            name: self.name(),
            queries: scenario.batch(),
            total_ns: total,
            io_ns,
            compute_ns,
            sort_ns,
            io_bytes,
            power_w: self.power_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_anns::hnsw::{Hnsw, HnswParams};
    use ndsearch_anns::index::{GraphAnnsIndex, SearchParams};
    use ndsearch_vector::synthetic::{BenchmarkId, DatasetSpec};

    fn fixture() -> (
        ndsearch_vector::Dataset,
        ndsearch_graph::Csr,
        ndsearch_anns::trace::BatchTrace,
        NdsConfig,
    ) {
        let (base, queries) = DatasetSpec::sift_scaled(800, 64).build_pair();
        let index = Hnsw::build(&base, HnswParams::default());
        let out = index.search_batch(&base, &queries, &SearchParams::default());
        let config = NdsConfig::scaled_for(base.len(), base.stored_vector_bytes());
        (base, index.base_graph().clone(), out.trace, config)
    }

    #[test]
    fn chip_level_beats_channel_level() {
        let (base, graph, trace, config) = fixture();
        let s = Scenario {
            benchmark: BenchmarkId::Sift1B,
            base: &base,
            graph: &graph,
            trace: &trace,
            config: &config,
            k: 10,
        };
        let dsc = DeepStorePlatform::channel_level().report(&s);
        let dscp = DeepStorePlatform::chip_level().report(&s);
        assert!(
            dscp.total_ns < dsc.total_ns,
            "DS-cp {} should beat DS-c {} (Fig. 13)",
            dscp.total_ns,
            dsc.total_ns
        );
    }

    #[test]
    fn ndsearch_beats_dscp() {
        let (base, graph, trace, config) = fixture();
        let s = Scenario {
            benchmark: BenchmarkId::Sift1B,
            base: &base,
            graph: &graph,
            trace: &trace,
            config: &config,
            k: 10,
        };
        let dscp = DeepStorePlatform::chip_level().report(&s);
        let prepared = Prepared::stage(&config, &graph, &base, &trace);
        let nds = ndsearch_core::NdsEngine::new(&config).run(&prepared);
        let ratio = dscp.total_ns as f64 / nds.total_ns as f64;
        assert!(
            ratio > 1.2,
            "NDSEARCH should clearly beat DS-cp, ratio = {ratio}"
        );
    }

    #[test]
    fn per_page_cost_is_higher_for_channel_level() {
        let (_, _, _, config) = fixture();
        let dsc = DeepStorePlatform::channel_level();
        let dscp = DeepStorePlatform::chip_level();
        assert!(dsc.per_page_ns(&config) > dscp.per_page_ns(&config));
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(DeepStorePlatform::channel_level().name(), "DS-c");
        assert_eq!(DeepStorePlatform::chip_level().name(), "DS-cp");
    }
}
