//! LUNCSR — the paper's NDP graph format (§IV-B, Fig. 5b).
//!
//! LUNCSR extends CSR with two arrays indexed by vertex (or neighbor) id:
//!
//! * the **LUN array** — which physical LUN a vertex's feature vector is
//!   allocated to;
//! * the **BLK array** — the vertex's *relative physical block* within
//!   that LUN's plane.
//!
//! Both are maintained the way a conventional FTL maintains its mapping
//! table (the paper notes LUNCSR *replaces* the mapping table — no extra
//! DRAM), and are updated by the FTL whenever block-level refreshing
//! relocates a block. Given a vertex's logical id, the page and column
//! addresses are direct functions of the static placement (they are not
//! affected by block-level refresh), so the Allocator can infer the final
//! physical address with a lookup in the LUN/BLK arrays plus arithmetic —
//! no embedded-core FTL translation on the critical path.

use ndsearch_flash::ftl::RefreshEvent;
use ndsearch_flash::geometry::{LunId, PhysAddr};
use ndsearch_vector::VectorId;

use crate::csr::Csr;
use crate::mapping::VertexMapping;

/// The LUNCSR structure: CSR adjacency + physical placement arrays.
#[derive(Debug, Clone)]
pub struct LunCsr {
    csr: Csr,
    mapping: VertexMapping,
    /// LUN array: LUN of each vertex.
    lun_array: Vec<LunId>,
    /// BLK array: *physical* block (within the plane) of each vertex.
    blk_array: Vec<u32>,
    /// Reverse index: (global plane, logical block) → vertices, driving the
    /// refresh update path.
    by_plane_block: std::collections::HashMap<(u32, u32), Vec<VectorId>>,
}

impl LunCsr {
    /// Assembles LUNCSR from adjacency and a placement. Physical blocks
    /// start identity-mapped (fresh device).
    ///
    /// # Panics
    /// Panics if the mapping covers a different number of vertices than the
    /// graph has.
    pub fn new(csr: Csr, mapping: VertexMapping) -> Self {
        assert_eq!(
            csr.num_vertices(),
            mapping.len(),
            "mapping must place every vertex"
        );
        let n = csr.num_vertices();
        let mut lun_array = Vec::with_capacity(n);
        let mut blk_array = Vec::with_capacity(n);
        let mut by_plane_block: std::collections::HashMap<(u32, u32), Vec<VectorId>> =
            std::collections::HashMap::new();
        for v in 0..n as u32 {
            lun_array.push(mapping.lun_of(v));
            blk_array.push(mapping.logical_block_of(v));
            by_plane_block
                .entry((mapping.global_plane_of(v), mapping.logical_block_of(v)))
                .or_default()
                .push(v);
        }
        Self {
            csr,
            mapping,
            lun_array,
            blk_array,
            by_plane_block,
        }
    }

    /// The adjacency component.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The placement component.
    pub fn mapping(&self) -> &VertexMapping {
        &self.mapping
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Neighbor list of a vertex (the CSR indexing trace of Fig. 5b:
    /// offset array → neighbor array).
    pub fn neighbors(&self, v: VectorId) -> &[VectorId] {
        self.csr.neighbors(v)
    }

    /// LUN array lookup.
    pub fn lun_of(&self, v: VectorId) -> LunId {
        self.lun_array[v as usize]
    }

    /// BLK array lookup (current physical block).
    pub fn blk_of(&self, v: VectorId) -> u32 {
        self.blk_array[v as usize]
    }

    /// Direct physical-address inference (§IV-B): page/column from the
    /// static placement, block from the BLK array, LUN from the LUN array —
    /// no FTL translation.
    pub fn physical_addr(&self, v: VectorId) -> PhysAddr {
        self.mapping.addr_with_block(v, self.blk_of(v))
    }

    /// Neighbors of `v` together with their LUNs — what the Vgenerator's
    /// OFS/NBR/LUN fetch pipeline produces.
    pub fn neighbor_luns(&self, v: VectorId) -> impl Iterator<Item = (VectorId, LunId)> + '_ {
        self.neighbors(v)
            .iter()
            .map(move |&nb| (nb, self.lun_of(nb)))
    }

    /// Applies a block-level refresh event: every vertex whose data lived
    /// in the relocated (plane, logical block) gets its BLK entry updated —
    /// the "bijection (update after refreshing)" arrow in Fig. 5(b).
    /// Returns how many vertices were touched.
    pub fn apply_refresh(&mut self, event: &RefreshEvent) -> usize {
        let Some(vertices) = self.by_plane_block.get(&(event.plane, event.logical_block)) else {
            return 0;
        };
        for &v in vertices {
            self.blk_array[v as usize] = event.new_physical;
        }
        vertices.len()
    }

    /// DRAM footprint of the metadata arrays (offset + neighbor + LUN +
    /// BLK), which the paper buffers in the SSD's internal DRAM.
    pub fn dram_bytes(&self) -> u64 {
        self.csr.metadata_bytes() + 4 * 2 * self.num_vertices() as u64
    }

    /// Verifies that every vertex's BLK entry matches an FTL's current
    /// logical→physical map. Used by tests.
    pub fn consistent_with_ftl(&self, ftl: &ndsearch_flash::ftl::Ftl) -> bool {
        (0..self.num_vertices() as u32).all(|v| {
            let plane = self.mapping.global_plane_of(v);
            ftl.physical_block(plane, self.mapping.logical_block_of(v)) == self.blk_of(v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::PlacementPolicy;
    use ndsearch_flash::ftl::Ftl;
    use ndsearch_flash::geometry::FlashGeometry;
    use ndsearch_vector::rng::Pcg32;

    fn build(n: usize) -> LunCsr {
        let mut lists = Vec::with_capacity(n);
        for v in 0..n as u32 {
            lists.push(vec![(v + 1) % n as u32, (v + 2) % n as u32]);
        }
        let csr = Csr::from_adjacency(&lists).unwrap();
        let mapping = VertexMapping::place(
            FlashGeometry::tiny(),
            n,
            128,
            PlacementPolicy::MultiPlaneAware,
        );
        LunCsr::new(csr, mapping)
    }

    #[test]
    fn arrays_match_mapping_initially() {
        let lc = build(100);
        for v in 0..100u32 {
            assert_eq!(lc.lun_of(v), lc.mapping().lun_of(v));
            assert_eq!(lc.blk_of(v), lc.mapping().logical_block_of(v));
            let a = lc.physical_addr(v);
            assert_eq!(a, lc.mapping().addr_identity(v));
        }
    }

    #[test]
    fn neighbor_luns_pairs_up() {
        let lc = build(50);
        let pairs: Vec<_> = lc.neighbor_luns(0).collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, 1);
        assert_eq!(pairs[0].1, lc.lun_of(1));
    }

    #[test]
    fn refresh_updates_only_affected_vertices() {
        let mut lc = build(200);
        let mut ftl = Ftl::new(*lc.mapping().geometry(), 42);
        // Pick the plane+block of vertex 0.
        let plane = lc.mapping().global_plane_of(0);
        let block = lc.mapping().logical_block_of(0);
        let evs = ftl.refresh_block(plane, block);
        let mut touched = 0;
        for ev in &evs {
            touched += lc.apply_refresh(ev);
        }
        assert!(touched > 0, "vertex 0's block should host vertices");
        assert_eq!(lc.blk_of(0), evs[0].new_physical);
        assert!(lc.consistent_with_ftl(&ftl));
    }

    #[test]
    fn random_refresh_storm_keeps_consistency() {
        let mut lc = build(500);
        let geom = *lc.mapping().geometry();
        let mut ftl = Ftl::new(geom, 7);
        let mut rng = Pcg32::seed_from_u64(13);
        for _ in 0..300 {
            let plane = rng.index(geom.total_planes() as usize) as u32;
            let block = rng.index(geom.blocks_per_plane as usize) as u32;
            for ev in ftl.refresh_block(plane, block) {
                lc.apply_refresh(&ev);
            }
        }
        assert!(lc.consistent_with_ftl(&ftl));
        // Physical addresses remain valid.
        for v in 0..lc.num_vertices() as u32 {
            let a = lc.physical_addr(v);
            assert!(
                PhysAddr::checked(&geom, a.lun, a.plane_in_lun, a.block, a.page, a.byte).is_ok()
            );
        }
    }

    #[test]
    fn refresh_of_unused_block_touches_nothing() {
        let mut lc = build(16); // only one page's worth of vertices
        let geom = *lc.mapping().geometry();
        let mut ftl = Ftl::new(geom, 1);
        // A far-away plane holds no vertices.
        let evs = ftl.refresh_block(geom.total_planes() - 1, 3);
        let touched: usize = evs.iter().map(|ev| lc.apply_refresh(ev)).sum();
        assert_eq!(touched, 0);
    }

    #[test]
    fn dram_bytes_counts_four_arrays() {
        let lc = build(10);
        // offsets 11 + neighbors 20 + lun 10 + blk 10 = 51 entries × 4 B.
        assert_eq!(lc.dram_bytes(), 4 * (11 + 20 + 10 + 10));
    }

    #[test]
    #[should_panic(expected = "mapping must place every vertex")]
    fn mismatched_sizes_panic() {
        let csr = Csr::from_adjacency(&[vec![], vec![]]).unwrap();
        let mapping = VertexMapping::place(FlashGeometry::tiny(), 5, 128, PlacementPolicy::Linear);
        LunCsr::new(csr, mapping);
    }
}
