//! LUNCSR — the paper's NDP graph format (§IV-B, Fig. 5b).
//!
//! LUNCSR extends CSR with two arrays indexed by vertex (or neighbor) id:
//!
//! * the **LUN array** — which physical LUN a vertex's feature vector is
//!   allocated to;
//! * the **BLK array** — the vertex's *relative physical block* within
//!   that LUN's plane.
//!
//! Both are maintained the way a conventional FTL maintains its mapping
//! table (the paper notes LUNCSR *replaces* the mapping table — no extra
//! DRAM), and are updated by the FTL whenever block-level refreshing
//! relocates a block. Given a vertex's logical id, the page and column
//! addresses are direct functions of the static placement (they are not
//! affected by block-level refresh), so the Allocator can infer the final
//! physical address with a lookup in the LUN/BLK arrays plus arithmetic —
//! no embedded-core FTL translation on the critical path.
//!
//! # Mutability: base + delta segments
//!
//! A deployed index ingests vectors continuously, so LUNCSR is *versioned*:
//! a read-mostly **base segment** (the staged CSR + placement produced by
//! the offline pipeline) plus an append-only **delta segment** holding
//! vertices inserted online ([`LunCsr::append_vertex`]), adjacency
//! *patches* for base vertices whose neighbor lists were rewritten by
//! backlink repair ([`LunCsr::set_neighbors`]), and per-vertex
//! **tombstones** for deletions ([`LunCsr::tombstone`]). Reads resolve
//! patches first, then the base or delta segment, so a search sees one
//! coherent overlay. A deterministic [`LunCsr::compact`] folds the overlay
//! into a fresh base, dropping tombstoned edges and re-running the
//! placement walk.
//!
//! Note the two compaction flavours in the workspace: this graph-level
//! `compact()` *severs* tombstoned vertices (the offline-rebuild
//! semantic, pinned by the reachability proptest), while the serving
//! deployment's compaction (`ndsearch-core`'s `Deployment::compact`)
//! restages the live construction graph unchanged — tombstones stay
//! routable so in-flight query results are unaffected — and only the
//! physical layout is rewritten.

use std::collections::BTreeMap;

use ndsearch_flash::ftl::RefreshEvent;
use ndsearch_flash::geometry::{LunId, PhysAddr};
use ndsearch_vector::VectorId;

use crate::csr::Csr;
use crate::mapping::VertexMapping;

/// The LUNCSR structure: CSR adjacency + physical placement arrays, as a
/// read-mostly base plus an append-only delta overlay (see the
/// [module docs](self)).
#[derive(Debug, Clone)]
pub struct LunCsr {
    /// Base segment: the staged adjacency.
    base: Csr,
    /// Placement of every vertex, base and delta (append continues the
    /// walk where staging stopped).
    mapping: VertexMapping,
    /// LUN array: LUN of each vertex (base + delta).
    lun_array: Vec<LunId>,
    /// BLK array: *physical* block (within the plane) of each vertex.
    blk_array: Vec<u32>,
    /// Reverse index: (global plane, logical block) → vertices, driving the
    /// refresh update path.
    by_plane_block: std::collections::HashMap<(u32, u32), Vec<VectorId>>,
    /// Delta segment: adjacency of vertices appended after staging
    /// (vertex `base.num_vertices() + i` owns `delta_adj[i]`).
    delta_adj: Vec<Vec<VectorId>>,
    /// Adjacency patches for *base* vertices rewritten by backlink repair
    /// (delta vertices are patched in place).
    patches: BTreeMap<VectorId, Vec<VectorId>>,
    /// Tombstones: deleted vertices stay addressable (searches may still
    /// route through them) until compaction drops them.
    tombstones: Vec<bool>,
}

impl LunCsr {
    /// Assembles LUNCSR from adjacency and a placement. Physical blocks
    /// start identity-mapped (fresh device); the delta segment starts
    /// empty.
    ///
    /// # Panics
    /// Panics if the mapping covers a different number of vertices than the
    /// graph has.
    pub fn new(csr: Csr, mapping: VertexMapping) -> Self {
        assert_eq!(
            csr.num_vertices(),
            mapping.len(),
            "mapping must place every vertex"
        );
        let n = csr.num_vertices();
        let mut lun_array = Vec::with_capacity(n);
        let mut blk_array = Vec::with_capacity(n);
        let mut by_plane_block: std::collections::HashMap<(u32, u32), Vec<VectorId>> =
            std::collections::HashMap::new();
        for v in 0..n as u32 {
            lun_array.push(mapping.lun_of(v));
            blk_array.push(mapping.logical_block_of(v));
            by_plane_block
                .entry((mapping.global_plane_of(v), mapping.logical_block_of(v)))
                .or_default()
                .push(v);
        }
        Self {
            base: csr,
            mapping,
            lun_array,
            blk_array,
            by_plane_block,
            delta_adj: Vec::new(),
            patches: BTreeMap::new(),
            tombstones: vec![false; n],
        }
    }

    /// The base segment's adjacency (staged offline; excludes the delta).
    pub fn base_csr(&self) -> &Csr {
        &self.base
    }

    /// The placement component (covers base and delta vertices).
    pub fn mapping(&self) -> &VertexMapping {
        &self.mapping
    }

    /// Number of vertices, base plus delta.
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices() + self.delta_adj.len()
    }

    /// Vertices in the base segment.
    pub fn base_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Vertices appended to the delta segment since staging.
    pub fn delta_vertices(&self) -> usize {
        self.delta_adj.len()
    }

    /// Base vertices whose adjacency has been patched since staging.
    pub fn patched_vertices(&self) -> usize {
        self.patches.len()
    }

    /// Neighbor list of a vertex (the CSR indexing trace of Fig. 5b:
    /// offset array → neighbor array), resolved through the overlay:
    /// patches first, then the delta or base segment.
    pub fn neighbors(&self, v: VectorId) -> &[VectorId] {
        if let Some(list) = self.patches.get(&v) {
            return list;
        }
        let base_n = self.base.num_vertices();
        if (v as usize) < base_n {
            self.base.neighbors(v)
        } else {
            &self.delta_adj[v as usize - base_n]
        }
    }

    /// Appends a vertex to the delta segment: the placement walk advances
    /// one slot (same address arithmetic as the base), the LUN/BLK arrays
    /// grow, and `neighbors` becomes the vertex's adjacency. Returns the
    /// new vertex id. The page program itself (latency, wear) is charged
    /// by the flash layer — this only maintains the mapping.
    ///
    /// # Panics
    /// Panics if a neighbor id is out of range (forward references beyond
    /// the new vertex are not representable) or the device is full.
    pub fn append_vertex(&mut self, neighbors: Vec<VectorId>) -> VectorId {
        let v = self.mapping.append_one();
        debug_assert_eq!(v as usize, self.num_vertices());
        for &nb in &neighbors {
            assert!(
                (nb as usize) <= self.num_vertices(),
                "appended vertex references out-of-range neighbor {nb}"
            );
        }
        self.lun_array.push(self.mapping.lun_of(v));
        self.blk_array.push(self.mapping.logical_block_of(v));
        self.by_plane_block
            .entry((
                self.mapping.global_plane_of(v),
                self.mapping.logical_block_of(v),
            ))
            .or_default()
            .push(v);
        self.delta_adj.push(neighbors);
        self.tombstones.push(false);
        v
    }

    /// Rewrites a vertex's neighbor list (backlink repair after an online
    /// insert): base vertices get an overlay patch, delta vertices are
    /// rewritten in place.
    ///
    /// # Panics
    /// Panics if `v` or a neighbor id is out of range.
    pub fn set_neighbors(&mut self, v: VectorId, neighbors: Vec<VectorId>) {
        let n = self.num_vertices();
        assert!((v as usize) < n, "vertex {v} out of range");
        for &nb in &neighbors {
            assert!((nb as usize) < n, "patch references out-of-range {nb}");
        }
        let base_n = self.base.num_vertices();
        if (v as usize) < base_n {
            self.patches.insert(v, neighbors);
        } else {
            self.delta_adj[v as usize - base_n] = neighbors;
        }
    }

    /// Tombstones a vertex (online delete). The vertex stays addressable —
    /// searches may still route through it — until [`compact`](Self::compact)
    /// drops it. Returns `false` if it was already tombstoned.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn tombstone(&mut self, v: VectorId) -> bool {
        !std::mem::replace(&mut self.tombstones[v as usize], true)
    }

    /// Whether a vertex has been tombstoned.
    pub fn is_tombstoned(&self, v: VectorId) -> bool {
        self.tombstones[v as usize]
    }

    /// Tombstoned vertices awaiting compaction.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.iter().filter(|&&t| t).count()
    }

    /// Folds the overlay into a fresh base: delta adjacency and patches
    /// merge into one CSR, edges to tombstoned vertices are dropped
    /// (tombstoned vertices keep their ids but lose all adjacency), and
    /// the placement walk re-runs from scratch — erasing the
    /// fragmentation appends accumulated. Deterministic: compacting the
    /// same overlay always yields the same base.
    pub fn compact(&self) -> LunCsr {
        let n = self.num_vertices();
        let lists: Vec<Vec<VectorId>> = (0..n as u32)
            .map(|v| {
                if self.tombstones[v as usize] {
                    Vec::new()
                } else {
                    self.neighbors(v)
                        .iter()
                        .copied()
                        .filter(|&nb| !self.tombstones[nb as usize])
                        .collect()
                }
            })
            .collect();
        let csr = Csr::from_adjacency(&lists).expect("overlay ids validated on write");
        let mapping = VertexMapping::place(
            *self.mapping.geometry(),
            n,
            self.mapping.slot_bytes() as usize,
            self.mapping.policy(),
        );
        let mut compacted = LunCsr::new(csr, mapping);
        // Tombstone marks survive compaction: the severed vertices keep
        // their ids, and callers scheduling deletions / filtering results
        // must still see them as dead.
        compacted.tombstones.clone_from(&self.tombstones);
        compacted
    }

    /// Distinct physical blocks currently holding vertex data, as
    /// (global plane, physical block) pairs — what a compaction must erase
    /// before rewriting.
    pub fn occupied_physical_blocks(&self) -> std::collections::BTreeSet<(u32, u32)> {
        (0..self.num_vertices() as u32)
            .map(|v| (self.mapping.global_plane_of(v), self.blk_of(v)))
            .collect()
    }

    /// LUN array lookup.
    pub fn lun_of(&self, v: VectorId) -> LunId {
        self.lun_array[v as usize]
    }

    /// BLK array lookup (current physical block).
    pub fn blk_of(&self, v: VectorId) -> u32 {
        self.blk_array[v as usize]
    }

    /// Direct physical-address inference (§IV-B): page/column from the
    /// static placement, block from the BLK array, LUN from the LUN array —
    /// no FTL translation.
    pub fn physical_addr(&self, v: VectorId) -> PhysAddr {
        self.mapping.addr_with_block(v, self.blk_of(v))
    }

    /// Neighbors of `v` together with their LUNs — what the Vgenerator's
    /// OFS/NBR/LUN fetch pipeline produces.
    pub fn neighbor_luns(&self, v: VectorId) -> impl Iterator<Item = (VectorId, LunId)> + '_ {
        self.neighbors(v)
            .iter()
            .map(move |&nb| (nb, self.lun_of(nb)))
    }

    /// Applies a block-level refresh event: every vertex whose data lived
    /// in the relocated (plane, logical block) gets its BLK entry updated —
    /// the "bijection (update after refreshing)" arrow in Fig. 5(b).
    /// Returns how many vertices were touched.
    pub fn apply_refresh(&mut self, event: &RefreshEvent) -> usize {
        let Some(vertices) = self.by_plane_block.get(&(event.plane, event.logical_block)) else {
            return 0;
        };
        for &v in vertices {
            self.blk_array[v as usize] = event.new_physical;
        }
        vertices.len()
    }

    /// DRAM footprint of the metadata arrays (offset + neighbor + LUN +
    /// BLK, plus the delta segment's adjacency and overlay patches), which
    /// the paper buffers in the SSD's internal DRAM.
    pub fn dram_bytes(&self) -> u64 {
        let delta_edges: u64 = self.delta_adj.iter().map(|l| l.len() as u64).sum();
        let patch_edges: u64 = self.patches.values().map(|l| l.len() as u64 + 1).sum();
        self.base.metadata_bytes()
            + 4 * (delta_edges + self.delta_adj.len() as u64 + patch_edges)
            + 4 * 2 * self.num_vertices() as u64
    }

    /// Verifies that every vertex's BLK entry matches an FTL's current
    /// logical→physical map. Used by tests.
    pub fn consistent_with_ftl(&self, ftl: &ndsearch_flash::ftl::Ftl) -> bool {
        (0..self.num_vertices() as u32).all(|v| {
            let plane = self.mapping.global_plane_of(v);
            ftl.physical_block(plane, self.mapping.logical_block_of(v)) == self.blk_of(v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::PlacementPolicy;
    use ndsearch_flash::ftl::Ftl;
    use ndsearch_flash::geometry::FlashGeometry;
    use ndsearch_vector::rng::Pcg32;

    fn build(n: usize) -> LunCsr {
        let mut lists = Vec::with_capacity(n);
        for v in 0..n as u32 {
            lists.push(vec![(v + 1) % n as u32, (v + 2) % n as u32]);
        }
        let csr = Csr::from_adjacency(&lists).unwrap();
        let mapping = VertexMapping::place(
            FlashGeometry::tiny(),
            n,
            128,
            PlacementPolicy::MultiPlaneAware,
        );
        LunCsr::new(csr, mapping)
    }

    #[test]
    fn arrays_match_mapping_initially() {
        let lc = build(100);
        for v in 0..100u32 {
            assert_eq!(lc.lun_of(v), lc.mapping().lun_of(v));
            assert_eq!(lc.blk_of(v), lc.mapping().logical_block_of(v));
            let a = lc.physical_addr(v);
            assert_eq!(a, lc.mapping().addr_identity(v));
        }
    }

    #[test]
    fn neighbor_luns_pairs_up() {
        let lc = build(50);
        let pairs: Vec<_> = lc.neighbor_luns(0).collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, 1);
        assert_eq!(pairs[0].1, lc.lun_of(1));
    }

    #[test]
    fn refresh_updates_only_affected_vertices() {
        let mut lc = build(200);
        let mut ftl = Ftl::new(*lc.mapping().geometry(), 42);
        // Pick the plane+block of vertex 0.
        let plane = lc.mapping().global_plane_of(0);
        let block = lc.mapping().logical_block_of(0);
        let evs = ftl.refresh_block(plane, block);
        let mut touched = 0;
        for ev in &evs {
            touched += lc.apply_refresh(ev);
        }
        assert!(touched > 0, "vertex 0's block should host vertices");
        assert_eq!(lc.blk_of(0), evs[0].new_physical);
        assert!(lc.consistent_with_ftl(&ftl));
    }

    #[test]
    fn random_refresh_storm_keeps_consistency() {
        let mut lc = build(500);
        let geom = *lc.mapping().geometry();
        let mut ftl = Ftl::new(geom, 7);
        let mut rng = Pcg32::seed_from_u64(13);
        for _ in 0..300 {
            let plane = rng.index(geom.total_planes() as usize) as u32;
            let block = rng.index(geom.blocks_per_plane as usize) as u32;
            for ev in ftl.refresh_block(plane, block) {
                lc.apply_refresh(&ev);
            }
        }
        assert!(lc.consistent_with_ftl(&ftl));
        // Physical addresses remain valid.
        for v in 0..lc.num_vertices() as u32 {
            let a = lc.physical_addr(v);
            assert!(
                PhysAddr::checked(&geom, a.lun, a.plane_in_lun, a.block, a.page, a.byte).is_ok()
            );
        }
    }

    #[test]
    fn refresh_of_unused_block_touches_nothing() {
        let mut lc = build(16); // only one page's worth of vertices
        let geom = *lc.mapping().geometry();
        let mut ftl = Ftl::new(geom, 1);
        // A far-away plane holds no vertices.
        let evs = ftl.refresh_block(geom.total_planes() - 1, 3);
        let touched: usize = evs.iter().map(|ev| lc.apply_refresh(ev)).sum();
        assert_eq!(touched, 0);
    }

    #[test]
    fn dram_bytes_counts_four_arrays() {
        let lc = build(10);
        // offsets 11 + neighbors 20 + lun 10 + blk 10 = 51 entries × 4 B.
        assert_eq!(lc.dram_bytes(), 4 * (11 + 20 + 10 + 10));
    }

    #[test]
    fn append_extends_overlay_with_consistent_addresses() {
        let mut lc = build(100);
        let before = lc.num_vertices();
        let v = lc.append_vertex(vec![0, 5, 99]);
        assert_eq!(v as usize, before);
        assert_eq!(lc.num_vertices(), before + 1);
        assert_eq!(lc.base_vertices(), before);
        assert_eq!(lc.delta_vertices(), 1);
        assert_eq!(lc.neighbors(v), &[0, 5, 99]);
        // The appended vertex's address continues the placement walk and
        // stays valid and distinct.
        let geom = *lc.mapping().geometry();
        let a = lc.physical_addr(v);
        PhysAddr::checked(&geom, a.lun, a.plane_in_lun, a.block, a.page, a.byte).unwrap();
        for u in 0..before as u32 {
            assert_ne!(lc.physical_addr(u), a, "address collision with {u}");
        }
        // LUN/BLK arrays cover the delta.
        assert_eq!(lc.lun_of(v), lc.mapping().lun_of(v));
        assert_eq!(lc.blk_of(v), lc.mapping().logical_block_of(v));
    }

    #[test]
    fn patches_shadow_base_and_delta_adjacency() {
        let mut lc = build(50);
        assert_eq!(lc.neighbors(3), &[4, 5]);
        lc.set_neighbors(3, vec![7]);
        assert_eq!(lc.neighbors(3), &[7]);
        assert_eq!(lc.patched_vertices(), 1);
        let v = lc.append_vertex(vec![3]);
        lc.set_neighbors(v, vec![3, 7]);
        assert_eq!(lc.neighbors(v), &[3, 7]);
        // Delta vertices are patched in place, not via the patch map.
        assert_eq!(lc.patched_vertices(), 1);
    }

    #[test]
    fn refresh_reaches_delta_vertices() {
        let mut lc = build(64);
        let v = lc.append_vertex(Vec::new());
        let mut ftl = Ftl::new(*lc.mapping().geometry(), 9);
        let plane = lc.mapping().global_plane_of(v);
        let block = lc.mapping().logical_block_of(v);
        let touched: usize = ftl
            .refresh_block(plane, block)
            .iter()
            .map(|ev| lc.apply_refresh(ev))
            .sum();
        assert!(touched > 0, "the appended vertex's block must be tracked");
        assert!(lc.consistent_with_ftl(&ftl));
    }

    #[test]
    fn compact_folds_overlay_and_drops_tombstones() {
        let mut lc = build(80);
        let a = lc.append_vertex(vec![0, 1]);
        let b = lc.append_vertex(vec![a, 2]);
        lc.set_neighbors(0, vec![a, b, 1]);
        assert!(lc.tombstone(1));
        assert!(!lc.tombstone(1), "second tombstone is a no-op");
        assert!(lc.is_tombstoned(1));
        assert_eq!(lc.tombstone_count(), 1);

        let compacted = lc.compact();
        assert_eq!(compacted.num_vertices(), lc.num_vertices());
        assert_eq!(compacted.delta_vertices(), 0);
        assert_eq!(compacted.patched_vertices(), 0);
        // Tombstone marks survive the fold.
        assert!(compacted.is_tombstoned(1));
        assert_eq!(compacted.tombstone_count(), 1);
        // Tombstoned vertices lose all adjacency; edges to them vanish.
        assert!(compacted.neighbors(1).is_empty());
        assert_eq!(compacted.neighbors(0), &[a, b]);
        assert_eq!(compacted.neighbors(a), &[0]);
        assert_eq!(compacted.neighbors(b), &[a, 2]);
        // Every live edge survives; no edge touches a tombstone.
        for v in 0..lc.num_vertices() as u32 {
            if lc.is_tombstoned(v) {
                continue;
            }
            let want: Vec<u32> = lc
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&nb| !lc.is_tombstoned(nb))
                .collect();
            assert_eq!(compacted.neighbors(v), want.as_slice(), "vertex {v}");
        }
        // Deterministic.
        assert_eq!(lc.compact().base_csr(), compacted.base_csr());
        // Fresh placement covers everything with valid unique addresses.
        let geom = *compacted.mapping().geometry();
        let mut seen = std::collections::HashSet::new();
        for v in 0..compacted.num_vertices() as u32 {
            let ad = compacted.physical_addr(v);
            PhysAddr::checked(&geom, ad.lun, ad.plane_in_lun, ad.block, ad.page, ad.byte).unwrap();
            assert!(seen.insert((ad.lun, ad.plane_in_lun, ad.block, ad.page, ad.byte)));
        }
    }

    #[test]
    fn occupied_blocks_cover_base_and_delta() {
        let mut lc = build(64);
        let before = lc.occupied_physical_blocks();
        assert!(!before.is_empty());
        // Fill enough delta slots to open a new page/block region.
        for _ in 0..64 {
            lc.append_vertex(Vec::new());
        }
        let after = lc.occupied_physical_blocks();
        assert!(after.len() >= before.len());
        assert!(after.is_superset(&before));
    }

    #[test]
    #[should_panic(expected = "mapping must place every vertex")]
    fn mismatched_sizes_panic() {
        let csr = Csr::from_adjacency(&[vec![], vec![]]).unwrap();
        let mapping = VertexMapping::place(FlashGeometry::tiny(), 5, 128, PlacementPolicy::Linear);
        LunCsr::new(csr, mapping);
    }
}
