//! Static-scheduling vertex reordering (§VI-A1).
//!
//! The goal is to minimize the average vertex bandwidth
//! β(G, f) = (1/n) Σ_v max_{j ∈ E(v)} |f(v) − f(j)| (Eq. 1): a small β
//! means each vertex's neighbors receive nearby indices, so after placement
//! they share NAND pages and page-buffer loads amortize across a search
//! trace. Exact minimization is NP-complete, and randomized BFS reorderings
//! must be re-run many times to get a good draw. The paper's *degree
//! ascending breadth-first* method removes the randomness: the BFS root is
//! the minimum-degree vertex and, when a vertex is expanded, its unnumbered
//! neighbors are numbered in ascending degree order — one run, near-optimal
//! β (Fig. 10).

use ndsearch_vector::rng::Pcg32;
use ndsearch_vector::VectorId;

use crate::csr::Csr;

/// A bijective relabeling of vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    /// `new_of_old[old] = new`.
    new_of_old: Vec<VectorId>,
    /// `old_of_new[new] = old`.
    old_of_new: Vec<VectorId>,
}

impl Permutation {
    /// Identity permutation over `n` vertices.
    pub fn identity(n: usize) -> Self {
        let v: Vec<VectorId> = (0..n as u32).collect();
        Self {
            new_of_old: v.clone(),
            old_of_new: v,
        }
    }

    /// Builds from a `new_of_old` mapping.
    ///
    /// # Errors
    /// Returns a message if the input is not a permutation of `0..n`.
    pub fn from_new_of_old(new_of_old: Vec<VectorId>) -> Result<Self, String> {
        let n = new_of_old.len();
        let mut old_of_new = vec![u32::MAX; n];
        for (old, &new) in new_of_old.iter().enumerate() {
            let idx = new as usize;
            if idx >= n {
                return Err(format!("index {new} out of range"));
            }
            if old_of_new[idx] != u32::MAX {
                return Err(format!("duplicate target index {new}"));
            }
            old_of_new[idx] = old as VectorId;
        }
        Ok(Self {
            new_of_old,
            old_of_new,
        })
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// New id of an old vertex.
    pub fn new_of(&self, old: VectorId) -> VectorId {
        self.new_of_old[old as usize]
    }

    /// Old id of a new vertex.
    pub fn old_of(&self, new: VectorId) -> VectorId {
        self.old_of_new[new as usize]
    }

    /// The `old_of_new` array — exactly the gather order used to physically
    /// rearrange vectors ([`ndsearch_vector::Dataset::permute_gather`]).
    pub fn gather_order(&self) -> &[VectorId] {
        &self.old_of_new
    }

    /// Extends the permutation with `count` identity-mapped tail ids.
    /// Online inserts append to the construction-order and physical id
    /// spaces in the same order, so a vertex appended after staging maps
    /// to itself.
    pub fn extend_identity(&mut self, count: usize) {
        for _ in 0..count {
            let id = self.new_of_old.len() as VectorId;
            self.new_of_old.push(id);
            self.old_of_new.push(id);
        }
    }

    /// Composition: applies `self` then `after`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn then(&self, after: &Permutation) -> Permutation {
        assert_eq!(self.len(), after.len(), "length mismatch");
        let new_of_old = self
            .new_of_old
            .iter()
            .map(|&mid| after.new_of(mid))
            .collect();
        Permutation::from_new_of_old(new_of_old).expect("composition of bijections")
    }
}

/// Average vertex bandwidth β(G, f) of Eq. 1 for the *current* labeling of
/// `csr` (i.e. f = identity; relabel first to evaluate a reordering).
pub fn bandwidth(csr: &Csr) -> f64 {
    let n = csr.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut sum = 0.0f64;
    for v in 0..n as u32 {
        let worst = csr
            .neighbors(v)
            .iter()
            .map(|&j| (i64::from(v) - i64::from(j)).unsigned_abs())
            .max()
            .unwrap_or(0);
        sum += worst as f64;
    }
    sum / n as f64
}

/// Which reordering static scheduling applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReorderMethod {
    /// No reordering — vertices stay in construction order (the paper's
    /// "w/o re" baseline).
    Identity,
    /// Random-rooted BFS with randomly ordered neighbor expansion (the
    /// "ran bfs" baseline of Fig. 14; quality varies run to run).
    RandomBfs,
    /// The paper's deterministic degree-ascending BFS (§VI-A1).
    DegreeAscendingBfs,
    /// Uniformly random relabeling (worst case, for tests/ablation).
    RandomShuffle,
}

impl ReorderMethod {
    /// Computes the permutation for a graph. `seed` only matters for the
    /// randomized methods.
    pub fn permutation(self, csr: &Csr, seed: u64) -> Permutation {
        match self {
            ReorderMethod::Identity => Permutation::identity(csr.num_vertices()),
            ReorderMethod::RandomBfs => random_bfs(csr, seed),
            ReorderMethod::DegreeAscendingBfs => degree_ascending_bfs(csr),
            ReorderMethod::RandomShuffle => random_shuffle(csr.num_vertices(), seed),
        }
    }
}

impl std::fmt::Display for ReorderMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReorderMethod::Identity => "w/o re",
            ReorderMethod::RandomBfs => "ran bfs",
            ReorderMethod::DegreeAscendingBfs => "ours",
            ReorderMethod::RandomShuffle => "shuffle",
        };
        f.write_str(s)
    }
}

fn random_shuffle(n: usize, seed: u64) -> Permutation {
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut v: Vec<VectorId> = (0..n as u32).collect();
    rng.shuffle(&mut v);
    Permutation::from_new_of_old(v).expect("shuffle is a permutation")
}

/// Generic BFS numbering. `pick_root` selects the next component root among
/// unvisited vertices; `order_neighbors` sorts a frontier expansion.
fn bfs_order(
    csr: &Csr,
    mut pick_root: impl FnMut(&[bool]) -> VectorId,
    mut order_neighbors: impl FnMut(&mut Vec<VectorId>),
) -> Permutation {
    let n = csr.num_vertices();
    let mut visited = vec![false; n];
    let mut order: Vec<VectorId> = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    while order.len() < n {
        let root = pick_root(&visited);
        debug_assert!(!visited[root as usize]);
        visited[root as usize] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut next: Vec<VectorId> = csr
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&nb| !visited[nb as usize])
                .collect();
            // Dedup while preserving candidate set.
            next.sort_unstable();
            next.dedup();
            order_neighbors(&mut next);
            for nb in next {
                if !visited[nb as usize] {
                    visited[nb as usize] = true;
                    queue.push_back(nb);
                }
            }
        }
    }
    // `order[k]` is the old id receiving new id k.
    let mut new_of_old = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        new_of_old[old as usize] = new as VectorId;
    }
    Permutation::from_new_of_old(new_of_old).expect("BFS order is a permutation")
}

/// Random BFS: random root, random expansion order.
fn random_bfs(csr: &Csr, seed: u64) -> Permutation {
    let mut rng = Pcg32::seed_from_u64(seed);
    bfs_order(
        csr,
        move |visited| {
            // Uniformly pick among unvisited vertices.
            let unvisited: Vec<u32> = visited
                .iter()
                .enumerate()
                .filter(|(_, &v)| !v)
                .map(|(i, _)| i as u32)
                .collect();
            unvisited[rng.index(unvisited.len())]
        },
        {
            let mut rng2 = Pcg32::seed_from_u64(seed ^ 0x5EED);
            move |next| rng2.shuffle(next)
        },
    )
}

/// The paper's degree-ascending BFS: minimum-degree root (ties by id),
/// neighbors expanded in ascending degree order (ties by id). Fully
/// deterministic — one run suffices (§VI-A1).
fn degree_ascending_bfs(csr: &Csr) -> Permutation {
    let degrees: Vec<u32> = (0..csr.num_vertices() as u32)
        .map(|v| csr.degree(v) as u32)
        .collect();
    let deg_root = degrees.clone();
    let deg_sort = degrees;
    bfs_order(
        csr,
        move |visited| {
            visited
                .iter()
                .enumerate()
                .filter(|(_, &v)| !v)
                .map(|(i, _)| i as u32)
                .min_by_key(|&v| (deg_root[v as usize], v))
                .expect("at least one unvisited vertex")
        },
        move |next| next.sort_unstable_by_key(|&v| (deg_sort[v as usize], v)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 8-vertex example of Fig. 10 (a..h = 0..7):
    /// edges chosen to match the listed degrees
    /// a=2, b=3, c=4, d=4, e=3, f=3, g=1, h=1... the paper's table lists
    /// degrees {h:1, g:1, d:4, a:2, e:3, f:3, c:4, b:3} in ascending order.
    fn fig10_like() -> Csr {
        // a b c d e f g h = 0 1 2 3 4 5 6 7
        let edges = [
            (0, 3), // a-d
            (0, 2), // a-c
            (0, 1), // a-b... a would be degree 3; keep close to figure
            (1, 2), // b-c
            (1, 4), // b-e
            (2, 5), // c-f
            (2, 3), // c-d
            (3, 4), // d-e
            (3, 5), // d-f
            (3, 6), // d-g
            (4, 5), // e-f
            (6, 7), // g-h? (h degree-1 leaf attached to g)
        ];
        Csr::from_edges(8, &edges, true).unwrap()
    }

    #[test]
    fn identity_permutation_is_noop() {
        let p = Permutation::identity(4);
        for v in 0..4u32 {
            assert_eq!(p.new_of(v), v);
            assert_eq!(p.old_of(v), v);
        }
    }

    #[test]
    fn from_new_of_old_validates() {
        assert!(Permutation::from_new_of_old(vec![0, 0]).is_err());
        assert!(Permutation::from_new_of_old(vec![0, 5]).is_err());
        assert!(Permutation::from_new_of_old(vec![1, 0]).is_ok());
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::from_new_of_old(vec![2, 0, 1]).unwrap();
        for v in 0..3u32 {
            assert_eq!(p.old_of(p.new_of(v)), v);
            assert_eq!(p.new_of(p.old_of(v)), v);
        }
    }

    #[test]
    fn composition_applies_in_order() {
        let p = Permutation::from_new_of_old(vec![1, 2, 0]).unwrap();
        let q = Permutation::from_new_of_old(vec![2, 0, 1]).unwrap();
        let r = p.then(&q);
        for v in 0..3u32 {
            assert_eq!(r.new_of(v), q.new_of(p.new_of(v)));
        }
    }

    #[test]
    fn bandwidth_of_path_is_one() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], true).unwrap();
        assert!((bandwidth(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degree_ascending_bfs_is_deterministic() {
        let g = fig10_like();
        let a = ReorderMethod::DegreeAscendingBfs.permutation(&g, 1);
        let b = ReorderMethod::DegreeAscendingBfs.permutation(&g, 999);
        assert_eq!(a, b);
    }

    #[test]
    fn degree_ascending_beats_identity_on_shuffled_graph() {
        // Build a ring + chords, then shuffle its labels so the original
        // order has terrible bandwidth.
        let n = 200usize;
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            edges.push((i, (i + 1) % n as u32));
            edges.push((i, (i + 7) % n as u32));
        }
        let g = Csr::from_edges(n, &edges, true).unwrap();
        let shuffled = g.relabel(&ReorderMethod::RandomShuffle.permutation(&g, 42));
        let before = bandwidth(&shuffled);
        let ours = shuffled.relabel(&ReorderMethod::DegreeAscendingBfs.permutation(&shuffled, 0));
        let after = bandwidth(&ours);
        assert!(
            after < before * 0.5,
            "expected large improvement: before {before}, after {after}"
        );
    }

    #[test]
    fn ours_at_least_matches_average_random_bfs() {
        let g = fig10_like();
        let shuffled = g.relabel(&ReorderMethod::RandomShuffle.permutation(&g, 3));
        let ours = bandwidth(
            &shuffled.relabel(&ReorderMethod::DegreeAscendingBfs.permutation(&shuffled, 0)),
        );
        let mut random_sum = 0.0;
        let runs = 20;
        for s in 0..runs {
            random_sum +=
                bandwidth(&shuffled.relabel(&ReorderMethod::RandomBfs.permutation(&shuffled, s)));
        }
        let random_avg = random_sum / runs as f64;
        assert!(
            ours <= random_avg + 1e-9,
            "ours {ours} should beat avg random BFS {random_avg}"
        );
    }

    #[test]
    fn bfs_covers_disconnected_graphs() {
        let g = Csr::from_edges(6, &[(0, 1), (2, 3)], true).unwrap();
        for m in [
            ReorderMethod::Identity,
            ReorderMethod::RandomBfs,
            ReorderMethod::DegreeAscendingBfs,
            ReorderMethod::RandomShuffle,
        ] {
            let p = m.permutation(&g, 5);
            assert_eq!(p.len(), 6);
            // It must be a bijection (from_new_of_old validated already).
            let mut seen: Vec<_> = (0..6u32).map(|v| p.new_of(v)).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..6u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn random_bfs_varies_with_seed() {
        let g = fig10_like();
        let a = ReorderMethod::RandomBfs.permutation(&g, 1);
        let b = ReorderMethod::RandomBfs.permutation(&g, 2);
        assert_ne!(a, b, "different seeds should give different BFS orders");
    }
}
