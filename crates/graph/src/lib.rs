//! Graph storage, reordering and flash placement for NDSEARCH.
//!
//! This crate owns everything between "an ANNS proximity graph exists" and
//! "every vertex has a physical NAND address":
//!
//! * [`csr::Csr`] — compressed sparse row adjacency, the base format the
//!   paper extends;
//! * [`reorder`] — the static-scheduling reordering algorithms of §VI-A:
//!   the paper's deterministic *degree-ascending breadth-first* method, the
//!   random-BFS baseline it is compared against in Fig. 14, and the
//!   bandwidth objective β(G, f) of Eq. 1;
//! * [`mapping`] — vertex → (LUN, plane, block, page, slot) placement under
//!   the multi-plane addressing restrictions of §VI-A2 / Fig. 11, plus the
//!   naive linear placement used as the `mp` ablation baseline;
//! * [`luncsr::LunCsr`] — the paper's new graph format: CSR extended with
//!   LUN and BLK arrays so the Allocator can infer physical addresses
//!   without invoking FTL translation (§IV-B / Fig. 5b), including the
//!   update path driven by block-level refresh events;
//! * [`legacy`] — the baseline interleaved vector+neighbor layout of Fig. 6
//!   and its storage-overhead arithmetic.
//!
//! # Example
//!
//! ```
//! use ndsearch_graph::{Csr, ReorderMethod};
//! let csr = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)], true).unwrap();
//! let perm = ReorderMethod::DegreeAscendingBfs.permutation(&csr, 0);
//! let reordered = csr.relabel(&perm);
//! assert_eq!(reordered.num_vertices(), 4);
//! ```

#![warn(missing_docs)]

pub mod csr;
pub mod legacy;
pub mod luncsr;
pub mod mapping;
pub mod reorder;

pub use csr::Csr;
pub use luncsr::LunCsr;
pub use mapping::{PlacementPolicy, VertexMapping};
pub use reorder::{bandwidth, Permutation, ReorderMethod};
