//! Compressed sparse row adjacency.
//!
//! §IV-B: "CSR is widely used as an efficient format to store graphs. The
//! original CSR format consists of three one-dimensional arrays: offset,
//! neighbor, and vertex arrays." The vertex (feature) array lives in
//! [`ndsearch_vector::Dataset`]; this type holds the offset and neighbor
//! arrays and the operations the rest of the workspace needs (degree
//! queries, relabeling under a permutation, validation).

use ndsearch_vector::VectorId;

use crate::reorder::Permutation;

/// CSR adjacency over `num_vertices` vertices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    neighbors: Vec<VectorId>,
}

/// Errors constructing a [`Csr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// A neighbor id referenced a vertex outside `0..num_vertices`.
    NeighborOutOfRange {
        /// Owning vertex.
        vertex: VectorId,
        /// Offending neighbor id.
        neighbor: VectorId,
    },
    /// More than `u32::MAX` total edges.
    TooManyEdges,
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::NeighborOutOfRange { vertex, neighbor } => {
                write!(
                    f,
                    "vertex {vertex} references out-of-range neighbor {neighbor}"
                )
            }
            CsrError::TooManyEdges => write!(f, "edge count exceeds u32 range"),
        }
    }
}

impl std::error::Error for CsrError {}

impl Csr {
    /// Builds a CSR from per-vertex adjacency lists.
    ///
    /// # Errors
    /// Returns [`CsrError::NeighborOutOfRange`] if a list references a
    /// vertex ≥ `lists.len()`.
    pub fn from_adjacency(lists: &[Vec<VectorId>]) -> Result<Self, CsrError> {
        let n = lists.len();
        let total: usize = lists.iter().map(Vec::len).sum();
        if total > u32::MAX as usize {
            return Err(CsrError::TooManyEdges);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(total);
        offsets.push(0u32);
        for (v, list) in lists.iter().enumerate() {
            for &nb in list {
                if (nb as usize) >= n {
                    return Err(CsrError::NeighborOutOfRange {
                        vertex: v as VectorId,
                        neighbor: nb,
                    });
                }
                neighbors.push(nb);
            }
            offsets.push(neighbors.len() as u32);
        }
        Ok(Self { offsets, neighbors })
    }

    /// Builds a CSR from an edge list; `undirected` adds both directions.
    ///
    /// # Errors
    /// Same as [`Csr::from_adjacency`].
    pub fn from_edges(
        n: usize,
        edges: &[(VectorId, VectorId)],
        undirected: bool,
    ) -> Result<Self, CsrError> {
        let mut lists = vec![Vec::new(); n];
        for &(a, b) in edges {
            if (a as usize) >= n {
                return Err(CsrError::NeighborOutOfRange {
                    vertex: a,
                    neighbor: a,
                });
            }
            if (b as usize) >= n {
                return Err(CsrError::NeighborOutOfRange {
                    vertex: a,
                    neighbor: b,
                });
            }
            lists[a as usize].push(b);
            if undirected {
                lists[b as usize].push(a);
            }
        }
        Self::from_adjacency(&lists)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored (directed) edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Neighbor list of a vertex.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VectorId) -> &[VectorId] {
        let i = v as usize;
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Out-degree of a vertex.
    pub fn degree(&self, v: VectorId) -> usize {
        self.neighbors(v).len()
    }

    /// The raw offset array (length `n + 1`).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw neighbor array.
    pub fn neighbor_array(&self) -> &[VectorId] {
        &self.neighbors
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VectorId))
            .max()
            .unwrap_or(0)
    }

    /// Mean out-degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Relabels all vertices under a permutation: new vertex `perm.new_of(v)`
    /// takes old vertex `v`'s adjacency (with neighbor ids rewritten).
    ///
    /// # Panics
    /// Panics if the permutation's length differs from the vertex count.
    pub fn relabel(&self, perm: &Permutation) -> Csr {
        assert_eq!(perm.len(), self.num_vertices(), "permutation size mismatch");
        let n = self.num_vertices();
        let mut lists: Vec<Vec<VectorId>> = vec![Vec::new(); n];
        for old in 0..n as u32 {
            let new = perm.new_of(old);
            let list: Vec<VectorId> = self
                .neighbors(old)
                .iter()
                .map(|&nb| perm.new_of(nb))
                .collect();
            lists[new as usize] = list;
        }
        Csr::from_adjacency(&lists).expect("relabel preserves validity")
    }

    /// Bytes the offset + neighbor arrays occupy (4 B entries), i.e. the
    /// metadata footprint buffered in SSD DRAM (§IV-C).
    pub fn metadata_bytes(&self) -> u64 {
        4 * (self.offsets.len() as u64 + self.neighbors.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_adjacency(&[vec![1, 2], vec![0], vec![0, 1], vec![]]).unwrap()
    }

    #[test]
    fn from_adjacency_round_trips() {
        let g = sample();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn rejects_out_of_range_neighbor() {
        let err = Csr::from_adjacency(&[vec![5]]).unwrap_err();
        assert_eq!(
            err,
            CsrError::NeighborOutOfRange {
                vertex: 0,
                neighbor: 5
            }
        );
    }

    #[test]
    fn from_edges_undirected_doubles() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)], true).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn degree_stats() {
        let g = sample();
        assert_eq!(g.max_degree(), 2);
        assert!((g.mean_degree() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn relabel_swaps_ids() {
        let g = Csr::from_adjacency(&[vec![1], vec![0], vec![0]]).unwrap();
        // Swap 0 and 2.
        let perm = Permutation::from_new_of_old(vec![2, 1, 0]).unwrap();
        let r = g.relabel(&perm);
        // Old 0 (neighbors [1]) is now vertex 2.
        assert_eq!(r.neighbors(2), &[1]);
        // Old 2 (neighbors [0]) is now vertex 0 and points at new id 2.
        assert_eq!(r.neighbors(0), &[2]);
    }

    #[test]
    fn metadata_bytes_counts_arrays() {
        let g = sample();
        assert_eq!(g.metadata_bytes(), 4 * (5 + 5));
    }
}
