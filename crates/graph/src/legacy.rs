//! The baseline interleaved data layout of Fig. 6 and its inefficiency.
//!
//! DiskANN and HNSW store, for each vertex, the feature vector immediately
//! followed by the ids of its ≤ R neighbors, zero-padded to exactly R
//! entries. On a CPU (64 B cacheline granularity) that is fine; at NAND
//! page granularity it wastes capacity and drags irrelevant neighbor ids
//! through every page read. With 128-byte vectors, R = 32 and 4 KiB pages,
//! 16 slices fit per page but only one slice's neighbor list is useful per
//! iteration — at least 46.9 % of each page read is wasted (the paper's
//! figure). CSR separates vectors from adjacency and avoids this.

/// Parameters of the legacy interleaved layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LegacyLayout {
    /// Feature vector bytes per vertex.
    pub vector_bytes: u32,
    /// Maximum neighbor count R (DiskANN default 32).
    pub max_neighbors: u32,
    /// Bytes per neighbor id (4 in the paper).
    pub id_bytes: u32,
    /// NAND page size in bytes.
    pub page_bytes: u32,
}

impl LegacyLayout {
    /// The example configuration the paper walks through in §IV-B:
    /// 128-byte vectors, R = 32 four-byte ids, 4 KiB pages.
    pub fn paper_example() -> Self {
        Self {
            vector_bytes: 128,
            max_neighbors: 32,
            id_bytes: 4,
            page_bytes: 4096,
        }
    }

    /// Bytes of one vertex slice (vector + padded neighbor ids).
    pub fn slice_bytes(&self) -> u32 {
        self.vector_bytes + self.max_neighbors * self.id_bytes
    }

    /// Slices per page.
    pub fn slices_per_page(&self) -> u32 {
        self.page_bytes / self.slice_bytes()
    }

    /// Fraction of a page read that is *wasted* neighbor-id bytes when only
    /// one slice's neighbor list is needed (the common case: only the
    /// closest vertex's neighbors feed the next iteration).
    pub fn wasted_fraction(&self) -> f64 {
        let slices = self.slices_per_page();
        if slices == 0 {
            return 0.0;
        }
        let nbr = self.max_neighbors * self.id_bytes;
        f64::from((slices - 1) * nbr) / f64::from(self.page_bytes)
    }

    /// Fraction of a page that holds neighbor ids at all (the padding
    /// overhead CSR eliminates from the vector pages).
    pub fn neighbor_fraction(&self) -> f64 {
        let slices = self.slices_per_page();
        let nbr = self.max_neighbors * self.id_bytes;
        f64::from(slices * nbr) / f64::from(self.page_bytes)
    }

    /// Zero-padding waste for a graph whose mean degree is `mean_degree`:
    /// unused neighbor slots as a fraction of total neighbor area.
    pub fn padding_waste(&self, mean_degree: f64) -> f64 {
        (1.0 - mean_degree / f64::from(self.max_neighbors)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_matches_46_9_percent() {
        let l = LegacyLayout::paper_example();
        assert_eq!(l.slice_bytes(), 256);
        assert_eq!(l.slices_per_page(), 16);
        // (16 - 1) × 128 / 4096 = 46.875 % — the paper's "at least 46.9 %".
        let w = l.wasted_fraction();
        assert!((w - 0.46875).abs() < 1e-9, "w = {w}");
    }

    #[test]
    fn neighbor_fraction_is_half_for_paper_example() {
        let l = LegacyLayout::paper_example();
        assert!((l.neighbor_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn padding_waste_scales_with_degree() {
        let l = LegacyLayout::paper_example();
        assert_eq!(l.padding_waste(32.0), 0.0);
        assert_eq!(l.padding_waste(16.0), 0.5);
        assert_eq!(l.padding_waste(40.0), 0.0);
    }

    #[test]
    fn big_pages_waste_more() {
        let small = LegacyLayout {
            page_bytes: 4096,
            ..LegacyLayout::paper_example()
        };
        let big = LegacyLayout {
            page_bytes: 16 * 1024,
            ..LegacyLayout::paper_example()
        };
        assert!(big.wasted_fraction() > small.wasted_fraction());
    }
}
