//! Vertex → NAND placement (§VI-A2, Fig. 11).
//!
//! After reordering, consecutive vertex ids must land on flash so that (a)
//! neighbors share pages (spatial locality) and (b) consecutive pages fall
//! in *different planes of the same LUN at the same page address*, because
//! multi-plane command sequences require distinct plane bits but identical
//! page/LUN addresses. Naively mapping reordered vertices to consecutive
//! physical addresses keeps (a) but destroys (b) — that is the
//! [`PlacementPolicy::Linear`] ablation baseline. The paper's strategy
//! ([`PlacementPolicy::MultiPlaneAware`]) walks: page *i* of plane *j* in
//! LUN *m* → same page *i* of plane *j+1* (same LUN) → next LUN → … → after
//! all LUNs, back to the first LUN with page *i+1*.

use ndsearch_flash::geometry::{FlashGeometry, LunId, PhysAddr};
use ndsearch_vector::VectorId;

/// How vertices are laid out on the flash array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementPolicy {
    /// Consecutive vertices fill consecutive pages of one plane before
    /// moving on (sacrifices multi-plane parallelism; the "re" ablation
    /// point without "mp").
    Linear,
    /// The paper's multi-plane-aware interleaving (Fig. 11).
    #[default]
    MultiPlaneAware,
}

/// A computed placement: every vertex's (LUN, plane, logical block, page,
/// slot), plus reverse indices the FTL/LUNCSR update path needs.
#[derive(Debug, Clone)]
pub struct VertexMapping {
    geom: FlashGeometry,
    policy: PlacementPolicy,
    slot_bytes: u32,
    slots_per_page: u32,
    /// Per vertex: packed placement.
    lun: Vec<LunId>,
    plane_in_lun: Vec<u8>,
    logical_block: Vec<u32>,
    page: Vec<u32>,
    slot: Vec<u32>,
}

impl VertexMapping {
    /// Places `n` vertices of `vector_bytes` each on `geom` under `policy`.
    ///
    /// # Panics
    /// Panics if a vector does not fit in a page, or if the device cannot
    /// hold all `n` vectors.
    pub fn place(
        geom: FlashGeometry,
        n: usize,
        vector_bytes: usize,
        policy: PlacementPolicy,
    ) -> Self {
        geom.validate().expect("invalid geometry");
        assert!(vector_bytes > 0, "vector bytes must be positive");
        let slot_bytes = vector_bytes as u32;
        let slots_per_page = geom.page_bytes / slot_bytes;
        assert!(
            slots_per_page > 0,
            "vector of {} bytes does not fit a {}-byte page",
            vector_bytes,
            geom.page_bytes
        );
        let capacity = geom.total_pages() * u64::from(slots_per_page);
        assert!(
            (n as u64) <= capacity,
            "{n} vertices exceed device capacity of {capacity} slots"
        );

        let mut m = Self {
            geom,
            policy,
            slot_bytes,
            slots_per_page,
            lun: Vec::with_capacity(n),
            plane_in_lun: Vec::with_capacity(n),
            logical_block: Vec::with_capacity(n),
            page: Vec::with_capacity(n),
            slot: Vec::with_capacity(n),
        };

        let pages_needed = (n as u64).div_ceil(u64::from(slots_per_page));
        let mut placed = 0usize;
        for page_seq in 0..pages_needed {
            let (lun, plane, block, page) = match policy {
                PlacementPolicy::Linear => linear_page(&geom, page_seq),
                PlacementPolicy::MultiPlaneAware => multiplane_page(&geom, page_seq),
            };
            for slot in 0..slots_per_page {
                if placed >= n {
                    break;
                }
                m.lun.push(lun);
                m.plane_in_lun.push(plane as u8);
                m.logical_block.push(block);
                m.page.push(page);
                m.slot.push(slot);
                placed += 1;
            }
        }
        m
    }

    /// Appends one vertex to the placement, continuing the policy's walk
    /// exactly where [`place`](Self::place) stopped (vertex `i` always
    /// occupies slot `i % slots_per_page` of walk page `i / slots_per_page`,
    /// so base and delta vertices share one address arithmetic). Returns
    /// the new vertex id. This is the placement half of an online insert.
    ///
    /// # Panics
    /// Panics if the device has no free slot left.
    pub fn append_one(&mut self) -> VectorId {
        let i = self.len() as u64;
        let capacity = self.capacity_slots();
        assert!(i < capacity, "device full: {capacity} slots all placed");
        let page_seq = i / u64::from(self.slots_per_page);
        let slot = (i % u64::from(self.slots_per_page)) as u32;
        let (lun, plane, block, page) = match self.policy {
            PlacementPolicy::Linear => linear_page(&self.geom, page_seq),
            PlacementPolicy::MultiPlaneAware => multiplane_page(&self.geom, page_seq),
        };
        self.lun.push(lun);
        self.plane_in_lun.push(plane as u8);
        self.logical_block.push(block);
        self.page.push(page);
        self.slot.push(slot);
        (self.len() - 1) as VectorId
    }

    /// NAND pages the placement spans (the sequential walk fills pages
    /// without gaps, so this is `ceil(len / slots_per_page)`).
    pub fn pages_used(&self) -> u64 {
        (self.len() as u64).div_ceil(u64::from(self.slots_per_page))
    }

    /// Total vector slots the geometry can hold under this mapping —
    /// the bound [`append_one`](Self::append_one) enforces. Callers with
    /// a rejection path (the serving layer's ingest backpressure) check
    /// this before appending.
    pub fn capacity_slots(&self) -> u64 {
        self.geom.total_pages() * u64::from(self.slots_per_page)
    }

    /// Geometry the mapping targets.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geom
    }

    /// Placement policy used.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Number of placed vertices.
    pub fn len(&self) -> usize {
        self.lun.len()
    }

    /// Whether no vertices are placed.
    pub fn is_empty(&self) -> bool {
        self.lun.is_empty()
    }

    /// Vectors per page.
    pub fn slots_per_page(&self) -> u32 {
        self.slots_per_page
    }

    /// Bytes per slot.
    pub fn slot_bytes(&self) -> u32 {
        self.slot_bytes
    }

    /// LUN holding a vertex.
    pub fn lun_of(&self, v: VectorId) -> LunId {
        self.lun[v as usize]
    }

    /// Plane-in-LUN holding a vertex.
    pub fn plane_of(&self, v: VectorId) -> u32 {
        u32::from(self.plane_in_lun[v as usize])
    }

    /// Logical (pre-FTL) block holding a vertex.
    pub fn logical_block_of(&self, v: VectorId) -> u32 {
        self.logical_block[v as usize]
    }

    /// Page within the block.
    pub fn page_of(&self, v: VectorId) -> u32 {
        self.page[v as usize]
    }

    /// Physical address of a vertex, given the *current physical block* the
    /// logical block maps to (LUNCSR's BLK array provides this).
    pub fn addr_with_block(&self, v: VectorId, physical_block: u32) -> PhysAddr {
        PhysAddr {
            lun: self.lun_of(v),
            plane_in_lun: self.plane_of(v),
            block: physical_block,
            page: self.page_of(v),
            byte: self.slot[v as usize] * self.slot_bytes,
        }
    }

    /// Physical address assuming identity FTL mapping (fresh device).
    pub fn addr_identity(&self, v: VectorId) -> PhysAddr {
        self.addr_with_block(v, self.logical_block_of(v))
    }

    /// Global plane id of a vertex.
    pub fn global_plane_of(&self, v: VectorId) -> u32 {
        self.geom.plane_of(self.lun_of(v), self.plane_of(v))
    }
}

/// Linear (naive) walk: sequential physical addresses as a real FTL lays
/// them out — striped channel-first for write bandwidth (channel → chip →
/// LUN → plane → page). Spatial spread is preserved, but the *plane*
/// dimension advances last, so two planes of one LUN holding the same
/// (block, page) address are `total_luns × channels`-ish apart in vertex
/// order — multi-plane sequences almost never find aligned work. This is
/// the "sacrifices multi-plane parallelism" baseline of §VI-A2.
fn linear_page(geom: &FlashGeometry, seq: u64) -> (LunId, u32, u32, u32) {
    let channels = u64::from(geom.channels);
    let chips = u64::from(geom.chips_per_channel);
    let luns_per_chip = u64::from(geom.luns_per_chip());
    let planes = u64::from(geom.planes_per_lun);
    let channel = seq % channels;
    let t = seq / channels;
    let chip = t % chips;
    let t = t / chips;
    let lun_in_chip = t % luns_per_chip;
    let t = t / luns_per_chip;
    let plane = (t % planes) as u32;
    let page_seq = t / planes;
    let lun = ((channel * chips + chip) * luns_per_chip + lun_in_chip) as LunId;
    let block = (page_seq / u64::from(geom.pages_per_block)) as u32 % geom.blocks_per_plane;
    let page = (page_seq % u64::from(geom.pages_per_block)) as u32;
    (lun, plane, block, page)
}

/// Fig. 11 walk: the planes of a LUN first (same page address → multi-plane
/// alignment for consecutive pages), then across channels/chips/LUNs, then
/// advance the page address.
fn multiplane_page(geom: &FlashGeometry, seq: u64) -> (LunId, u32, u32, u32) {
    let channels = u64::from(geom.channels);
    let chips = u64::from(geom.chips_per_channel);
    let luns_per_chip = u64::from(geom.luns_per_chip());
    let planes = u64::from(geom.planes_per_lun);
    let plane = (seq % planes) as u32;
    let t = seq / planes;
    let channel = t % channels;
    let t2 = t / channels;
    let chip = t2 % chips;
    let t3 = t2 / chips;
    let lun_in_chip = t3 % luns_per_chip;
    let page_seq = t3 / luns_per_chip;
    let lun = ((channel * chips + chip) * luns_per_chip + lun_in_chip) as LunId;
    let block = (page_seq / u64::from(geom.pages_per_block)) as u32 % geom.blocks_per_plane;
    let page = (page_seq % u64::from(geom.pages_per_block)) as u32;
    (lun, plane, block, page)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FlashGeometry {
        FlashGeometry::tiny()
    }

    #[test]
    fn multiplane_walk_pairs_planes_then_stripes_channels() {
        let g = tiny(); // 8 LUNs, 2 planes/LUN, 2048-byte pages
        let m = VertexMapping::place(g, 1000, 128, PlacementPolicy::MultiPlaneAware);
        let spp = m.slots_per_page(); // 16
        assert_eq!(spp, 16);
        // First page of vertices: LUN 0 plane 0.
        assert_eq!(m.lun_of(0), 0);
        assert_eq!(m.plane_of(0), 0);
        // Next page: same LUN, plane 1, same page address (multi-plane pair).
        let v = spp; // first vertex of second page
        assert_eq!(m.lun_of(v), 0);
        assert_eq!(m.plane_of(v), 1);
        assert_eq!(m.page_of(v), m.page_of(0));
        assert_eq!(m.logical_block_of(v), m.logical_block_of(0));
        // Third page pair: next *channel* (channel striping for spread).
        let v = 2 * spp;
        assert_eq!(g.lun_channel(m.lun_of(v)), 1);
        assert_eq!(m.plane_of(v), 0);
    }

    #[test]
    fn multiplane_pairs_satisfy_restrictions() {
        // Multi-plane restriction: distinct plane bits, same page & LUN.
        let g = tiny();
        let m = VertexMapping::place(g, 512, 128, PlacementPolicy::MultiPlaneAware);
        let spp = m.slots_per_page() as usize;
        for pair_start in (0..m.len() / spp).step_by(2) {
            let a = (pair_start * spp) as u32;
            let b = ((pair_start + 1) * spp) as u32;
            if (b as usize) < m.len() {
                assert_eq!(m.lun_of(a), m.lun_of(b), "same LUN");
                assert_ne!(m.plane_of(a), m.plane_of(b), "distinct planes");
                assert_eq!(m.page_of(a), m.page_of(b), "same page address");
            }
        }
    }

    #[test]
    fn linear_walk_never_pairs_planes_adjacently() {
        let g = tiny();
        let m = VertexMapping::place(g, 1000, 128, PlacementPolicy::Linear);
        let spp = m.slots_per_page();
        // Consecutive pages stripe to a different channel, same plane index:
        // no multi-plane alignment between neighbors in vertex order.
        assert_ne!(g.lun_channel(m.lun_of(0)), g.lun_channel(m.lun_of(spp)));
        assert_eq!(m.plane_of(0), m.plane_of(spp));
        // The plane dimension only advances after all LUNs are covered.
        let pages_before_plane_flip = g.total_luns();
        let v = pages_before_plane_flip * spp;
        assert_eq!(m.plane_of(v), 1);
        assert_eq!(m.lun_of(v), m.lun_of(0));
    }

    #[test]
    fn addresses_are_valid_and_unique() {
        let g = tiny();
        for policy in [PlacementPolicy::Linear, PlacementPolicy::MultiPlaneAware] {
            let m = VertexMapping::place(g, 2000, 100, policy);
            let mut seen = std::collections::HashSet::new();
            for v in 0..m.len() as u32 {
                let a = m.addr_identity(v);
                PhysAddr::checked(&g, a.lun, a.plane_in_lun, a.block, a.page, a.byte)
                    .unwrap_or_else(|e| panic!("{policy:?}: invalid addr for {v}: {e}"));
                assert!(seen.insert((a.lun, a.plane_in_lun, a.block, a.page, a.byte)));
            }
        }
    }

    #[test]
    fn consecutive_vertices_share_pages() {
        let g = tiny();
        let m = VertexMapping::place(g, 64, 128, PlacementPolicy::MultiPlaneAware);
        // Vertices 0..16 share the first page.
        for v in 0..16u32 {
            assert_eq!(m.lun_of(v), m.lun_of(0));
            assert_eq!(m.page_of(v), m.page_of(0));
        }
    }

    #[test]
    fn both_walks_spread_across_all_luns() {
        let g = tiny();
        let n = 16 * 2 * 8 * 2; // two pages per LUN's worth of vertices
        for policy in [PlacementPolicy::MultiPlaneAware, PlacementPolicy::Linear] {
            let m = VertexMapping::place(g, n, 128, policy);
            let luns: std::collections::HashSet<_> =
                (0..m.len() as u32).map(|v| m.lun_of(v)).collect();
            assert_eq!(luns.len(), 8, "{policy:?} should stripe all LUNs");
        }
        // But only the multi-plane walk creates aligned plane pairs among
        // *consecutive* pages.
        let mp = VertexMapping::place(g, n, 128, PlacementPolicy::MultiPlaneAware);
        let lin = VertexMapping::place(g, n, 128, PlacementPolicy::Linear);
        let aligned = |m: &VertexMapping| {
            let spp = m.slots_per_page();
            (0..(n as u32 / spp).saturating_sub(1))
                .filter(|&p| {
                    let a = p * spp;
                    let b = (p + 1) * spp;
                    m.lun_of(a) == m.lun_of(b)
                        && m.plane_of(a) != m.plane_of(b)
                        && m.page_of(a) == m.page_of(b)
                        && m.logical_block_of(a) == m.logical_block_of(b)
                })
                .count()
        };
        assert!(aligned(&mp) > 0, "multi-plane walk must align pairs");
        assert_eq!(aligned(&lin), 0, "linear walk must not align pairs");
    }

    #[test]
    #[should_panic(expected = "exceed device capacity")]
    fn overflow_panics() {
        let g = tiny();
        let capacity = g.total_pages() * (g.page_bytes / 128) as u64;
        VertexMapping::place(
            g,
            capacity as usize + 1,
            128,
            PlacementPolicy::MultiPlaneAware,
        );
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_vector_panics() {
        VertexMapping::place(tiny(), 1, 4096, PlacementPolicy::Linear);
    }

    #[test]
    fn addr_with_block_uses_physical_block() {
        let g = tiny();
        let m = VertexMapping::place(g, 10, 128, PlacementPolicy::MultiPlaneAware);
        let a = m.addr_with_block(0, 3);
        assert_eq!(a.block, 3);
        assert_eq!(a.page, m.page_of(0));
    }
}
