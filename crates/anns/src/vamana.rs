//! Vamana — the graph behind DiskANN (Subramanya et al., NeurIPS'19).
//!
//! Vamana builds a single-layer, degree-bounded (R) proximity graph by
//! iterating over vertices in random order: greedy-search the current graph
//! from the medoid with the vertex as the query, then *robust-prune* the
//! visited set with slack factor α (> 1 keeps longer-range "highway" edges,
//! giving DiskANN its few-hop searches). Two passes are run, the first with
//! α = 1 and the second with the target α. Search is a plain beam search
//! from the medoid — identical to HNSW's layer-0 search, which is why both
//! share [`crate::beam::beam_search`].

use ndsearch_graph::csr::Csr;
use ndsearch_vector::dataset::Dataset;
use ndsearch_vector::rng::Pcg32;
use ndsearch_vector::topk::Neighbor;
use ndsearch_vector::{DistanceKind, VectorId};

use crate::beam::{beam_search, VisitedSet};
use crate::index::{
    AnnsAlgorithm, GraphAnnsIndex, InsertReport, MutableIndex, SearchOutput, SearchParams,
};
use crate::trace::BatchTrace;

/// Vamana construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VamanaParams {
    /// Max out-degree R (the paper's data-layout example uses R = 32).
    pub r: usize,
    /// Construction beam width (DiskANN's L).
    pub l_build: usize,
    /// Pruning slack α for the second pass.
    pub alpha: f32,
    /// Distance function.
    pub distance: DistanceKind,
    /// RNG seed (random init graph + iteration order).
    pub seed: u64,
}

impl Default for VamanaParams {
    fn default() -> Self {
        Self {
            r: 32,
            l_build: 75,
            alpha: 1.2,
            distance: DistanceKind::L2,
            seed: 0xD15C,
        }
    }
}

/// A built Vamana/DiskANN index.
///
/// The adjacency lists are retained after construction so online inserts
/// can run the same greedy-search + RobustPrune kernel the build passes
/// use, repairing backlinks of affected vertices
/// ([`MutableIndex::insert`]); the CSR snapshot lags mutations until
/// [`MutableIndex::sync_base_graph`] folds them in (one O(V+E) rebuild
/// per batch of inserts, not one per insert).
#[derive(Debug, Clone)]
pub struct Vamana {
    params: VamanaParams,
    /// CSR snapshot of `adj`.
    graph: Csr,
    /// Mutable adjacency — the source of truth.
    adj: Vec<Vec<VectorId>>,
    medoid: VectorId,
    /// Tombstones for online deletes.
    deleted: Vec<bool>,
    /// Whether `graph` lags `adj` (set by online inserts, cleared by
    /// [`MutableIndex::sync_base_graph`]).
    graph_dirty: bool,
}

impl Vamana {
    /// Builds the index.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn build(base: &Dataset, params: VamanaParams) -> Self {
        assert!(!base.is_empty(), "dataset must not be empty");
        let n = base.len();
        let dist = params.distance;
        let mut rng = Pcg32::seed_from_u64(params.seed);

        // Random R-regular initial graph.
        let mut adj: Vec<Vec<VectorId>> = (0..n)
            .map(|v| {
                let mut list = Vec::with_capacity(params.r.min(n - 1));
                while list.len() < params.r.min(n.saturating_sub(1)) {
                    let c = rng.index(n) as VectorId;
                    if c != v as VectorId && !list.contains(&c) {
                        list.push(c);
                    }
                }
                list
            })
            .collect();

        let medoid = approximate_medoid(base, dist);
        let mut order: Vec<VectorId> = (0..n as u32).collect();

        // Two passes: α = 1.0 then the target α.
        for &alpha in &[1.0f32, params.alpha] {
            rng.shuffle(&mut order);
            for &v in &order {
                let q = base.vector(v);
                // Greedy search the current graph for v's neighborhood.
                let visited = search_collect(base, &adj, q, medoid, params.l_build, dist);
                let mut pool: Vec<Neighbor> = visited.into_iter().filter(|nb| nb.id != v).collect();
                // Include current neighbors in the pool.
                for &nb in &adj[v as usize] {
                    if nb != v && !pool.iter().any(|p| p.id == nb) {
                        pool.push(Neighbor::new(dist.eval(q, base.vector(nb)), nb));
                    }
                }
                let pruned = robust_prune(base, v, pool, alpha, params.r, dist);
                adj[v as usize] = pruned.clone();
                // Add reverse edges, pruning overfull lists.
                for nb in pruned {
                    if !adj[nb as usize].contains(&v) {
                        adj[nb as usize].push(v);
                        if adj[nb as usize].len() > params.r {
                            let pool: Vec<Neighbor> = adj[nb as usize]
                                .iter()
                                .map(|&u| {
                                    Neighbor::new(dist.eval(base.vector(nb), base.vector(u)), u)
                                })
                                .collect();
                            adj[nb as usize] = robust_prune(base, nb, pool, alpha, params.r, dist);
                        }
                    }
                }
            }
        }

        let graph = Csr::from_adjacency(&adj).expect("ids validated during build");
        let deleted = vec![false; n];
        Self {
            params,
            graph,
            adj,
            medoid,
            deleted,
            graph_dirty: false,
        }
    }

    /// Construction parameters.
    pub fn params(&self) -> &VamanaParams {
        &self.params
    }

    /// The medoid used as the search entry point.
    pub fn medoid(&self) -> VectorId {
        self.medoid
    }
}

impl MutableIndex for Vamana {
    fn insert(&mut self, base: &Dataset, id: VectorId) -> InsertReport {
        assert_eq!(id as usize, self.adj.len(), "insert must link the next id");
        assert_eq!(
            base.len(),
            self.adj.len() + 1,
            "the vector must already be appended to the dataset"
        );
        let params = self.params;
        let dist = params.distance;
        self.adj.push(Vec::new());
        self.deleted.push(false);
        let q = base.vector(id);
        // Greedy-search the live graph from the medoid with the new vector
        // as the query — exactly the build pass — then RobustPrune the
        // visited pool into the vertex's out-list. Tombstoned vertices stay
        // routable mid-search but are not linked to.
        let visited = search_collect(base, &self.adj, q, self.medoid, params.l_build, dist);
        let pool: Vec<Neighbor> = visited
            .into_iter()
            .filter(|nb| nb.id != id && !self.deleted[nb.id as usize])
            .collect();
        let pruned = robust_prune(base, id, pool, params.alpha, params.r, dist);
        self.adj[id as usize] = pruned.clone();
        // Backlink repair: every selected neighbor gains an edge to `id`,
        // re-pruned when its list overflows R.
        let mut repaired = Vec::new();
        for nb in pruned {
            if !self.adj[nb as usize].contains(&id) {
                self.adj[nb as usize].push(id);
                if self.adj[nb as usize].len() > params.r {
                    let pool: Vec<Neighbor> = self.adj[nb as usize]
                        .iter()
                        .map(|&u| Neighbor::new(dist.eval(base.vector(nb), base.vector(u)), u))
                        .collect();
                    self.adj[nb as usize] =
                        robust_prune(base, nb, pool, params.alpha, params.r, dist);
                }
                repaired.push(nb);
            }
        }
        self.graph_dirty = true;
        InsertReport { id, repaired }
    }

    fn live_neighbors(&self, id: VectorId) -> &[VectorId] {
        &self.adj[id as usize]
    }

    fn sync_base_graph(&mut self) {
        if self.graph_dirty {
            self.graph = Csr::from_adjacency(&self.adj).expect("ids validated during insert");
            self.graph_dirty = false;
        }
    }

    fn delete(&mut self, id: VectorId) -> bool {
        !std::mem::replace(&mut self.deleted[id as usize], true)
    }

    fn is_deleted(&self, id: VectorId) -> bool {
        self.deleted[id as usize]
    }

    fn live_count(&self) -> usize {
        self.deleted.iter().filter(|&&d| !d).count()
    }
}

impl GraphAnnsIndex for Vamana {
    fn algorithm(&self) -> AnnsAlgorithm {
        AnnsAlgorithm::DiskAnn
    }

    fn base_graph(&self) -> &Csr {
        &self.graph
    }

    fn search_batch(
        &self,
        base: &Dataset,
        queries: &Dataset,
        params: &SearchParams,
    ) -> SearchOutput {
        let mut visited = VisitedSet::new(base.len());
        let mut results = Vec::with_capacity(queries.len());
        let mut traces = Vec::with_capacity(queries.len());
        for (_, q) in queries.iter() {
            let mut out = beam_search(
                base,
                &self.graph,
                q,
                &[self.medoid],
                params.beam_width,
                params.distance,
                &mut visited,
            );
            out.found.truncate(params.k);
            results.push(out.found);
            traces.push(out.trace);
        }
        SearchOutput {
            results,
            trace: BatchTrace { queries: traces },
        }
    }
}

/// Vertex closest to the dataset centroid (cheap medoid approximation).
pub fn approximate_medoid(base: &Dataset, dist: DistanceKind) -> VectorId {
    let dim = base.dim();
    let mut centroid = vec![0.0f32; dim];
    for (_, v) in base.iter() {
        for (c, x) in centroid.iter_mut().zip(v) {
            *c += x;
        }
    }
    let n = base.len() as f32;
    for c in &mut centroid {
        *c /= n;
    }
    let mut best = Neighbor::new(f32::INFINITY, 0);
    for (id, v) in base.iter() {
        let d = dist.eval(&centroid, v);
        let cand = Neighbor::new(d, id);
        if cand < best {
            best = cand;
        }
    }
    best.id
}

/// Greedy search over a mutable adjacency returning the *visited* pool
/// (ids + distances), as Vamana's build needs.
fn search_collect(
    base: &Dataset,
    adj: &[Vec<VectorId>],
    query: &[f32],
    entry: VectorId,
    l: usize,
    dist: DistanceKind,
) -> Vec<Neighbor> {
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashSet};
    let mut seen: HashSet<VectorId> = HashSet::new();
    let mut frontier = BinaryHeap::new();
    let mut results: BinaryHeap<Neighbor> = BinaryHeap::new();
    let mut pool = Vec::new();
    let d0 = dist.eval(query, base.vector(entry));
    seen.insert(entry);
    frontier.push(Reverse(Neighbor::new(d0, entry)));
    results.push(Neighbor::new(d0, entry));
    pool.push(Neighbor::new(d0, entry));
    let mut fresh: Vec<VectorId> = Vec::new();
    let mut scratch: Vec<f32> = Vec::new();
    while let Some(Reverse(cur)) = frontier.pop() {
        let worst = results.peek().map(|x| x.distance).unwrap_or(f32::INFINITY);
        if results.len() >= l && cur.distance > worst {
            break;
        }
        // Mark, batch-score, then replay insertions in edge order
        // (bit-identical to the per-edge eval loop; see anns::beam).
        fresh.clear();
        for &nb in &adj[cur.id as usize] {
            if seen.insert(nb) {
                fresh.push(nb);
            }
        }
        dist.eval_batch_ids(query, base, &fresh, &mut scratch);
        for (&nb, &d) in fresh.iter().zip(&scratch) {
            pool.push(Neighbor::new(d, nb));
            let worst = results.peek().map(|x| x.distance).unwrap_or(f32::INFINITY);
            if results.len() < l || d < worst {
                frontier.push(Reverse(Neighbor::new(d, nb)));
                results.push(Neighbor::new(d, nb));
                if results.len() > l {
                    results.pop();
                }
            }
        }
    }
    pool
}

/// DiskANN's RobustPrune: scan candidates nearest-first; keep `c` unless an
/// already kept neighbor `s` satisfies α · d(s, c) ≤ d(v, c).
fn robust_prune(
    base: &Dataset,
    v: VectorId,
    mut pool: Vec<Neighbor>,
    alpha: f32,
    r: usize,
    dist: DistanceKind,
) -> Vec<VectorId> {
    pool.sort_unstable();
    pool.dedup_by_key(|n| n.id);
    let mut kept: Vec<Neighbor> = Vec::with_capacity(r);
    for c in pool {
        if c.id == v {
            continue;
        }
        if kept.len() >= r {
            break;
        }
        let dominated = kept
            .iter()
            .any(|s| alpha * dist.eval(base.vector(s.id), base.vector(c.id)) <= c.distance);
        if !dominated {
            kept.push(c);
        }
    }
    kept.into_iter().map(|n| n.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_vector::recall::{ground_truth, recall_at_k};
    use ndsearch_vector::synthetic::DatasetSpec;

    #[test]
    fn degrees_are_bounded_by_r() {
        let ds = DatasetSpec::sift_scaled(400, 1).build();
        let index = Vamana::build(&ds, VamanaParams::default());
        assert!(index.base_graph().max_degree() <= index.params().r + 1);
    }

    #[test]
    fn recall_is_high() {
        let spec = DatasetSpec::deep_scaled(800, 20);
        let (base, queries) = spec.build_pair();
        let index = Vamana::build(&base, VamanaParams::default());
        let params = SearchParams::new(10, 80, DistanceKind::L2);
        let out = index.search_batch(&base, &queries, &params);
        let gt = ground_truth(&base, &queries, 10, DistanceKind::L2);
        let r = recall_at_k(&gt, &out.id_lists(), 10);
        assert!(r >= 0.90, "recall@10 = {r}");
    }

    #[test]
    fn medoid_is_central() {
        // On a line of points, the medoid must be near the middle.
        let ds = Dataset::from_rows(1, (0..101).map(|i| vec![i as f32]).collect()).unwrap();
        let m = approximate_medoid(&ds, DistanceKind::L2);
        assert_eq!(m, 50);
    }

    #[test]
    fn build_is_deterministic() {
        let ds = DatasetSpec::spacev_scaled(300, 1).build();
        let a = Vamana::build(&ds, VamanaParams::default());
        let b = Vamana::build(&ds, VamanaParams::default());
        assert_eq!(a.base_graph(), b.base_graph());
    }

    #[test]
    fn robust_prune_respects_r() {
        let ds = DatasetSpec::sift_scaled(100, 1).build();
        let pool: Vec<Neighbor> = (1..100u32)
            .map(|i| Neighbor::new(DistanceKind::L2.eval_ids(&ds, 0, i), i))
            .collect();
        let kept = robust_prune(&ds, 0, pool, 1.2, 8, DistanceKind::L2);
        assert!(kept.len() <= 8);
        assert!(!kept.contains(&0));
    }

    #[test]
    fn incremental_insert_matches_rebuild_recall() {
        // Build on a prefix, insert the rest online, and compare recall on
        // the live overlay with a from-scratch rebuild at equal parameters.
        let (full, queries) = DatasetSpec::deep_scaled(700, 16).build_pair();
        let n0 = 550;
        let mut prefix = Dataset::new(full.dim());
        for (_, v) in full.iter().take(n0) {
            prefix.try_push(v).unwrap();
        }
        prefix.set_stored_vector_bytes(full.stored_vector_bytes());
        let mut live = Vamana::build(&prefix, VamanaParams::default());
        for id in n0..full.len() {
            prefix.try_push(full.vector(id as VectorId)).unwrap();
            let rep = live.insert(&prefix, id as VectorId);
            assert_eq!(rep.id as usize, id);
            assert!(!rep.repaired.is_empty(), "insert {id} linked no backedges");
        }
        live.sync_base_graph();
        assert_eq!(live.base_graph().num_vertices(), full.len());
        assert!(live.base_graph().max_degree() <= live.params().r + 1);

        let rebuilt = Vamana::build(&full, VamanaParams::default());
        let params = SearchParams::new(10, 80, DistanceKind::L2);
        let gt = ground_truth(&full, &queries, 10, DistanceKind::L2);
        let r_live = recall_at_k(
            &gt,
            &live.search_batch(&full, &queries, &params).id_lists(),
            10,
        );
        let r_rebuilt = recall_at_k(
            &gt,
            &rebuilt.search_batch(&full, &queries, &params).id_lists(),
            10,
        );
        assert!(
            r_live >= r_rebuilt - 0.02,
            "live overlay recall {r_live} trails rebuild {r_rebuilt} by more than 0.02"
        );
    }

    #[test]
    fn delete_tombstones_without_unlinking() {
        let ds = DatasetSpec::sift_scaled(200, 1).build();
        let mut index = Vamana::build(&ds, VamanaParams::default());
        assert_eq!(index.live_count(), 200);
        assert!(index.delete(7));
        assert!(!index.delete(7), "double delete is a no-op");
        assert!(index.is_deleted(7));
        assert_eq!(index.live_count(), 199);
        // The vertex stays routable: the graph still holds its edges.
        assert!(!index.base_graph().neighbors(7).is_empty());
    }

    #[test]
    fn inserts_avoid_linking_to_tombstones() {
        let mut ds = DatasetSpec::sift_scaled(150, 1).build();
        let mut index = Vamana::build(&ds, VamanaParams::default());
        for v in 0..20u32 {
            index.delete(v);
        }
        let v = ds.vector(30).to_vec();
        let id = ds.try_push(&v).unwrap();
        index.insert(&ds, id);
        assert_eq!(index.live_neighbors(id), {
            let mut ix = index.clone();
            ix.sync_base_graph();
            ix.base_graph().neighbors(id).to_vec()
        });
        index.sync_base_graph();
        for &nb in index.base_graph().neighbors(id) {
            assert!(!index.is_deleted(nb), "linked to tombstoned {nb}");
        }
    }

    #[test]
    fn alpha_one_keeps_fewer_long_edges() {
        let ds = DatasetSpec::sift_scaled(200, 1).build();
        let pool: Vec<Neighbor> = (1..200u32)
            .map(|i| Neighbor::new(DistanceKind::L2.eval_ids(&ds, 0, i), i))
            .collect();
        let tight = robust_prune(&ds, 0, pool.clone(), 1.0, 32, DistanceKind::L2);
        let slack = robust_prune(&ds, 0, pool, 1.5, 32, DistanceKind::L2);
        assert!(
            slack.len() >= tight.len(),
            "α>1 keeps at least as many edges ({} vs {})",
            slack.len(),
            tight.len()
        );
    }
}
