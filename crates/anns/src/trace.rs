//! Search memory traces.
//!
//! A trace captures, for every query and every search iteration, the entry
//! vertex whose neighbor list was expanded and the neighbor vertices whose
//! feature vectors were fetched and compared. This is exactly the input the
//! paper's trace-driven simulator consumes, and the granularity (iteration
//! boundaries) is what dynamic scheduling and speculative searching key off.

use ndsearch_graph::reorder::Permutation;
use ndsearch_vector::VectorId;

/// One search iteration: the loop body of §II-A's search phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationTrace {
    /// The entry vertex of this iteration (the closest unexpanded
    /// candidate, whose neighbor list is read).
    pub entry: VectorId,
    /// Neighbors whose feature vectors were read and compared this
    /// iteration (never-visited neighbors of `entry`).
    pub visited: Vec<VectorId>,
}

/// The full trace of one query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// Iterations in execution order.
    pub iterations: Vec<IterationTrace>,
}

impl QueryTrace {
    /// Total vertices whose vectors were fetched ("length of the searching
    /// trace" in Fig. 4's metric).
    pub fn len(&self) -> usize {
        self.iterations.iter().map(|it| it.visited.len()).sum()
    }

    /// Whether the query visited nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All visited vertex ids in order.
    pub fn visited_sequence(&self) -> impl Iterator<Item = VectorId> + '_ {
        self.iterations
            .iter()
            .flat_map(|it| it.visited.iter().copied())
    }
}

/// Traces for a whole batch of queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchTrace {
    /// One trace per query, in batch order.
    pub queries: Vec<QueryTrace>,
}

impl BatchTrace {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Total visited vertices across the batch.
    pub fn total_visited(&self) -> u64 {
        self.queries.iter().map(|q| q.len() as u64).sum()
    }

    /// Longest per-query iteration count — the number of engine rounds a
    /// synchronous batch needs.
    pub fn max_iterations(&self) -> usize {
        self.queries
            .iter()
            .map(|q| q.iterations.len())
            .max()
            .unwrap_or(0)
    }

    /// Mean visited vertices per query.
    pub fn mean_trace_len(&self) -> f64 {
        if self.queries.is_empty() {
            0.0
        } else {
            self.total_visited() as f64 / self.queries.len() as f64
        }
    }

    /// Rewrites every vertex id through a reordering permutation, so traces
    /// recorded against construction-order ids can be replayed against the
    /// reordered/remapped layout without re-running the search.
    pub fn relabel(&self, perm: &Permutation) -> BatchTrace {
        BatchTrace {
            queries: self
                .queries
                .iter()
                .map(|q| QueryTrace {
                    iterations: q
                        .iterations
                        .iter()
                        .map(|it| IterationTrace {
                            entry: perm.new_of(it.entry),
                            visited: it.visited.iter().map(|&v| perm.new_of(v)).collect(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Distinct vertices visited by the whole batch.
    pub fn distinct_visited(&self) -> std::collections::HashSet<VectorId> {
        self.queries
            .iter()
            .flat_map(|q| q.visited_sequence())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BatchTrace {
        BatchTrace {
            queries: vec![
                QueryTrace {
                    iterations: vec![
                        IterationTrace {
                            entry: 0,
                            visited: vec![1, 2],
                        },
                        IterationTrace {
                            entry: 1,
                            visited: vec![3],
                        },
                    ],
                },
                QueryTrace {
                    iterations: vec![IterationTrace {
                        entry: 2,
                        visited: vec![0],
                    }],
                },
            ],
        }
    }

    #[test]
    fn counts_are_consistent() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_visited(), 4);
        assert_eq!(t.max_iterations(), 2);
        assert!((t.mean_trace_len() - 2.0).abs() < 1e-12);
        assert_eq!(t.queries[0].len(), 3);
    }

    #[test]
    fn relabel_rewrites_everything() {
        let t = sample();
        let perm = Permutation::from_new_of_old(vec![3, 2, 1, 0]).unwrap();
        let r = t.relabel(&perm);
        assert_eq!(r.queries[0].iterations[0].entry, 3);
        assert_eq!(r.queries[0].iterations[0].visited, vec![2, 1]);
        assert_eq!(r.queries[1].iterations[0].visited, vec![3]);
        // Structure preserved.
        assert_eq!(r.total_visited(), t.total_visited());
    }

    #[test]
    fn distinct_visited_dedups() {
        let t = sample();
        let d = t.distinct_visited();
        assert_eq!(d.len(), 4); // {0,1,2,3}
    }

    #[test]
    fn empty_batch_is_sane() {
        let t = BatchTrace::default();
        assert!(t.is_empty());
        assert_eq!(t.total_visited(), 0);
        assert_eq!(t.max_iterations(), 0);
        assert_eq!(t.mean_trace_len(), 0.0);
    }
}
