//! The shared greedy/beam search kernel (§II-A).
//!
//! Every graph-traversal ANNS algorithm's search phase follows the same
//! loop: keep a *candidate list* of discovered-but-unexpanded vertices and
//! a *result list* of the best `ef` vertices seen; repeatedly expand the
//! closest candidate, compute distances to its never-visited neighbors, and
//! stop when the closest candidate is farther than the worst retained
//! result. This module implements that loop once, records the per-iteration
//! memory trace, and is reused by HNSW (per layer), Vamana, HCNNG and TOGG.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ndsearch_graph::csr::Csr;
use ndsearch_vector::quant::ScoreSource;
use ndsearch_vector::topk::Neighbor;
use ndsearch_vector::{DistanceKind, VectorId};

use crate::trace::{IterationTrace, QueryTrace};

/// Reusable visited-set with O(1) epoch-based reset, so batch search does
/// not reallocate per query.
#[derive(Debug, Clone)]
pub struct VisitedSet {
    epoch: u32,
    marks: Vec<u32>,
}

impl VisitedSet {
    /// Creates a set covering `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            epoch: 1,
            marks: vec![0; n],
        }
    }

    /// Clears the set in O(1).
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.marks.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks a vertex; returns `true` if it was not already marked.
    /// The set grows on demand, so a searcher created before an online
    /// insert can still visit vertices appended while it was in flight.
    pub fn insert(&mut self, v: VectorId) -> bool {
        let i = v as usize;
        if i >= self.marks.len() {
            self.marks.resize(i + 1, 0);
        }
        let slot = &mut self.marks[i];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Whether a vertex is marked (vertices beyond the allocated range are
    /// unmarked by definition).
    pub fn contains(&self, v: VectorId) -> bool {
        self.marks.get(v as usize) == Some(&self.epoch)
    }
}

/// Result of one beam search: the `ef` best neighbors found (ascending
/// distance) and the per-iteration trace.
#[derive(Debug, Clone)]
pub struct BeamResult {
    /// Best vertices found, ascending by distance.
    pub found: Vec<Neighbor>,
    /// Memory trace of the search.
    pub trace: QueryTrace,
}

/// What expanding the next candidate produced.
enum Expansion {
    /// Termination condition reached (or the candidate list ran dry).
    Finished,
    /// A candidate was expanded but every neighbor was already visited, so
    /// no feature vector was fetched (no trace iteration).
    Empty,
    /// A candidate was expanded and at least one new vector was fetched.
    Hop(IterationTrace),
}

/// Mutable view over one search's candidate list, result list and visited
/// set — borrowed by [`beam_search`] from its locals, and by
/// [`BeamSearcher::step`] from its fields.
struct Lists<'a> {
    visited: &'a mut VisitedSet,
    candidates: &'a mut BinaryHeap<Reverse<Neighbor>>,
    results: &'a mut BinaryHeap<Neighbor>,
    /// Reused distance buffer for batched neighbor scoring.
    scratch: &'a mut Vec<f32>,
}

impl Lists<'_> {
    /// Seeds the candidate/result lists with the entry vertices and
    /// returns iteration 0 of the trace (the entries count as
    /// visited/computed), or `None` if no entry was new.
    fn seed<S: ScoreSource + ?Sized>(
        &mut self,
        source: &S,
        query: &[f32],
        entries: &[VectorId],
        beam_width: usize,
        distance: DistanceKind,
    ) -> Option<IterationTrace> {
        // Mark first, then score the new entries in one batched kernel
        // call. Marking never depends on distances, so this is
        // bit-identical to the per-entry eval loop it replaces.
        let mut init_visited = Vec::with_capacity(entries.len());
        for &e in entries {
            if self.visited.insert(e) {
                init_visited.push(e);
            }
        }
        source.score_batch(distance, query, &init_visited, self.scratch);
        for (&e, &d) in init_visited.iter().zip(self.scratch.iter()) {
            self.candidates.push(Reverse(Neighbor::new(d, e)));
            self.results.push(Neighbor::new(d, e));
        }
        while self.results.len() > beam_width {
            self.results.pop();
        }
        (!init_visited.is_empty()).then(|| IterationTrace {
            entry: init_visited[0],
            visited: init_visited,
        })
    }

    /// Pops the closest candidate and expands its neighbor list — the loop
    /// body of §II-A, shared by the run-to-completion [`beam_search`] and
    /// the per-hop [`BeamSearcher`].
    fn expand_next<S: ScoreSource + ?Sized>(
        &mut self,
        source: &S,
        graph: &Csr,
        query: &[f32],
        beam_width: usize,
        distance: DistanceKind,
    ) -> Expansion {
        let Some(Reverse(current)) = self.candidates.pop() else {
            return Expansion::Finished;
        };
        // Termination: closest candidate is farther than the worst result
        // while the result list is full (§II-A's pre-defined condition).
        let worst = self
            .results
            .peek()
            .map(|n| n.distance)
            .unwrap_or(f32::INFINITY);
        if self.results.len() >= beam_width && current.distance > worst {
            return Expansion::Finished;
        }
        // Score the whole unvisited slice of the neighbor list in one
        // kernel call, then replay the insertion decisions in the original
        // edge order. Visited-marking and scoring don't interact, and the
        // batch reuses the per-pair kernel, so results are bit-identical
        // to the interleaved per-edge loop this replaces.
        let mut iter_visited = Vec::new();
        for &nb in graph.neighbors(current.id) {
            if self.visited.insert(nb) {
                iter_visited.push(nb);
            }
        }
        source.score_batch(distance, query, &iter_visited, self.scratch);
        for (&nb, &d) in iter_visited.iter().zip(self.scratch.iter()) {
            let worst = self
                .results
                .peek()
                .map(|n| n.distance)
                .unwrap_or(f32::INFINITY);
            if self.results.len() < beam_width || d < worst {
                self.candidates.push(Reverse(Neighbor::new(d, nb)));
                self.results.push(Neighbor::new(d, nb));
                if self.results.len() > beam_width {
                    self.results.pop();
                }
            }
        }
        if iter_visited.is_empty() {
            Expansion::Empty
        } else {
            Expansion::Hop(IterationTrace {
                entry: current.id,
                visited: iter_visited,
            })
        }
    }
}

/// Greedy beam search over `graph` from `entries`, retaining the best
/// `beam_width` results.
///
/// Generic over the [`ScoreSource`] candidates are scored against: the
/// full-precision `Dataset` (the classic path) or a DRAM-resident
/// `QuantCodes` table (compressed-vector traversal; the serving layer
/// reranks the final candidates against the dataset afterwards).
///
/// # Panics
/// Panics if `beam_width == 0` or an entry id is out of range.
pub fn beam_search<S: ScoreSource + ?Sized>(
    source: &S,
    graph: &Csr,
    query: &[f32],
    entries: &[VectorId],
    beam_width: usize,
    distance: DistanceKind,
    visited: &mut VisitedSet,
) -> BeamResult {
    assert!(beam_width > 0, "beam width must be positive");
    visited.clear();
    let mut trace = QueryTrace::default();

    // Candidate list: min-heap by distance. Result list: max-heap bounded
    // by beam_width (ef).
    let mut candidates: BinaryHeap<Reverse<Neighbor>> = BinaryHeap::new();
    let mut results: BinaryHeap<Neighbor> = BinaryHeap::new();
    let mut scratch: Vec<f32> = Vec::new();

    let mut lists = Lists {
        visited,
        candidates: &mut candidates,
        results: &mut results,
        scratch: &mut scratch,
    };

    // The initial entry vertices count as visited/computed: record them as
    // iteration 0 with a synthetic entry (the first entry vertex).
    let Some(seed) = lists.seed(source, query, entries, beam_width, distance) else {
        return BeamResult {
            found: Vec::new(),
            trace,
        };
    };
    trace.iterations.push(seed);

    loop {
        match lists.expand_next(source, graph, query, beam_width, distance) {
            Expansion::Finished => break,
            Expansion::Empty => {}
            Expansion::Hop(it) => trace.iterations.push(it),
        }
    }

    let mut found = results.into_vec();
    found.sort_unstable();
    BeamResult { found, trace }
}

/// A beam search that yields one *hop* (one trace iteration: an entry
/// vertex expansion that fetched at least one new feature vector) per
/// [`step`](BeamSearcher::step) call, instead of running to completion.
///
/// This is the execution model the concurrent serving layer
/// (`ndsearch-core`'s `serve` module) needs: many in-flight queries each
/// hold a `BeamSearcher`, and a scheduler interleaves their hops across
/// flash channels. Driving a `BeamSearcher` to exhaustion visits exactly
/// the vertices, produces exactly the trace iterations, and returns exactly
/// the result list of a single [`beam_search`] call with the same
/// arguments.
///
/// Unlike [`beam_search`] (which shares a caller-provided [`VisitedSet`]
/// across a batch), each `BeamSearcher` owns its visited set, because
/// interleaved queries are all mid-flight at once.
#[derive(Debug, Clone)]
pub struct BeamSearcher {
    query: Vec<f32>,
    entries: Vec<VectorId>,
    beam_width: usize,
    distance: DistanceKind,
    visited: VisitedSet,
    candidates: BinaryHeap<Reverse<Neighbor>>,
    results: BinaryHeap<Neighbor>,
    scratch: Vec<f32>,
    seeded: bool,
    finished: bool,
    hops: usize,
}

impl BeamSearcher {
    /// Creates a searcher for one query over a graph of `num_vertices`
    /// vertices, starting from `entries`.
    ///
    /// # Panics
    /// Panics if `beam_width == 0`.
    pub fn new(
        num_vertices: usize,
        query: Vec<f32>,
        entries: Vec<VectorId>,
        beam_width: usize,
        distance: DistanceKind,
    ) -> Self {
        assert!(beam_width > 0, "beam width must be positive");
        Self {
            query,
            entries,
            beam_width,
            distance,
            visited: VisitedSet::new(num_vertices),
            candidates: BinaryHeap::new(),
            results: BinaryHeap::new(),
            scratch: Vec::new(),
            seeded: false,
            finished: false,
            hops: 0,
        }
    }

    /// Advances the search by one hop and returns its trace iteration, or
    /// `None` if the search has terminated. The first call seeds the entry
    /// vertices (iteration 0); candidate expansions whose neighbors were
    /// all already visited are skipped internally, so every `Some` fetches
    /// at least one vector. Termination is detected eagerly: after the
    /// final productive hop, [`is_finished`](Self::is_finished) is already
    /// `true`.
    ///
    /// Generic over the [`ScoreSource`] (full-precision rows or a
    /// compressed code table); a searcher must be driven against the same
    /// source for its whole lifetime.
    pub fn step<S: ScoreSource + ?Sized>(
        &mut self,
        source: &S,
        graph: &Csr,
    ) -> Option<IterationTrace> {
        if self.finished {
            return None;
        }
        let mut lists = Lists {
            visited: &mut self.visited,
            candidates: &mut self.candidates,
            results: &mut self.results,
            scratch: &mut self.scratch,
        };
        if !self.seeded {
            self.seeded = true;
            let seed = lists.seed(
                source,
                &self.query,
                &self.entries,
                self.beam_width,
                self.distance,
            );
            return match seed {
                None => {
                    self.finished = true;
                    None
                }
                Some(it) => {
                    self.hops += 1;
                    self.update_finished();
                    Some(it)
                }
            };
        }
        loop {
            match lists.expand_next(source, graph, &self.query, self.beam_width, self.distance) {
                Expansion::Finished => {
                    self.finished = true;
                    return None;
                }
                Expansion::Empty => {}
                Expansion::Hop(it) => {
                    self.hops += 1;
                    self.update_finished();
                    return Some(it);
                }
            }
        }
    }

    /// Checks §II-A's termination condition without popping, so a query is
    /// known-finished in the same scheduling round as its last hop.
    fn update_finished(&mut self) {
        let worst = self
            .results
            .peek()
            .map(|n| n.distance)
            .unwrap_or(f32::INFINITY);
        match self.candidates.peek() {
            None => self.finished = true,
            Some(Reverse(c)) if self.results.len() >= self.beam_width && c.distance > worst => {
                self.finished = true;
            }
            _ => {}
        }
    }

    /// Whether the search has terminated.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Hops (productive trace iterations) executed so far.
    pub fn hops(&self) -> usize {
        self.hops
    }

    /// Rescores the best `depth` approximate candidates against `exact`
    /// (the full-precision rows), replacing the result list with their
    /// exact distances — the rerank step of compressed-vector search
    /// (traversal scored DRAM-resident codes; the survivors pay flash
    /// reads for exact distances). Candidates beyond `depth` are
    /// dropped. Returns the rescored ids in ascending
    /// approximate-distance order so the caller can charge the flash
    /// reads they imply.
    pub fn rerank<S: ScoreSource + ?Sized>(&mut self, exact: &S, depth: usize) -> Vec<VectorId> {
        let mut approx = self.found();
        approx.truncate(depth);
        let ids: Vec<VectorId> = approx.iter().map(|n| n.id).collect();
        exact.score_batch(self.distance, &self.query, &ids, &mut self.scratch);
        self.results.clear();
        for (&id, &d) in ids.iter().zip(self.scratch.iter()) {
            self.results.push(Neighbor::new(d, id));
        }
        ids
    }

    /// The current result list, ascending by distance (the final top-`ef`
    /// once [`is_finished`](Self::is_finished); a partial best-so-far view
    /// before that, e.g. for deadline-expired queries).
    pub fn found(&self) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self.results.iter().cloned().collect();
        v.sort_unstable();
        v
    }
}

/// Pure greedy descent (beam width 1) used by HNSW's upper layers: walks to
/// the locally nearest vertex and returns it. Generic over the
/// [`ScoreSource`] like [`beam_search`].
pub fn greedy_descent<S: ScoreSource + ?Sized>(
    source: &S,
    graph: &Csr,
    query: &[f32],
    entry: VectorId,
    distance: DistanceKind,
    trace: &mut QueryTrace,
) -> Neighbor {
    let mut current = Neighbor::new(source.score_one(distance, query, entry), entry);
    let mut scratch: Vec<f32> = Vec::new();
    loop {
        let mut best = current;
        // One batched kernel call per expansion instead of per-edge eval.
        let iter_visited: Vec<VectorId> = graph.neighbors(current.id).to_vec();
        source.score_batch(distance, query, &iter_visited, &mut scratch);
        for (&nb, &d) in iter_visited.iter().zip(&scratch) {
            let cand = Neighbor::new(d, nb);
            if cand < best {
                best = cand;
            }
        }
        if !iter_visited.is_empty() {
            trace.iterations.push(IterationTrace {
                entry: current.id,
                visited: iter_visited,
            });
        }
        if best.id == current.id {
            return current;
        }
        current = best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_vector::dataset::Dataset;
    use ndsearch_vector::recall::exact_knn;
    use ndsearch_vector::synthetic::DatasetSpec;

    fn grid_graph(ds: &Dataset, k: usize) -> Csr {
        // Exact KNN graph: brute force for each vertex.
        let lists: Vec<Vec<VectorId>> = (0..ds.len() as u32)
            .map(|v| {
                exact_knn(ds, ds.vector(v), k + 1, DistanceKind::L2)
                    .into_iter()
                    .filter(|n| n.id != v)
                    .take(k)
                    .map(|n| n.id)
                    .collect()
            })
            .collect();
        Csr::from_adjacency(&lists).unwrap()
    }

    #[test]
    fn visited_set_resets_in_o1() {
        let mut vs = VisitedSet::new(10);
        assert!(vs.insert(3));
        assert!(!vs.insert(3));
        assert!(vs.contains(3));
        vs.clear();
        assert!(!vs.contains(3));
        assert!(vs.insert(3));
    }

    /// A single-cluster spec so the exact-KNN graph stays connected (the
    /// multi-cluster presets produce per-cluster components, which is what
    /// real ANNS graphs add long-range edges to fix).
    fn unimodal(n: usize, q: usize) -> DatasetSpec {
        DatasetSpec {
            clusters: 1,
            ..DatasetSpec::deep_scaled(n, q)
        }
    }

    #[test]
    fn beam_search_finds_true_nn_on_knn_graph() {
        let ds = unimodal(400, 1).build();
        let graph = grid_graph(&ds, 8);
        let mut vs = VisitedSet::new(ds.len());
        let q = ds.vector(123).to_vec();
        let out = beam_search(&ds, &graph, &q, &[0], 32, DistanceKind::L2, &mut vs);
        // The query *is* vertex 123, so the top hit must be 123 at d=0.
        assert_eq!(out.found[0].id, 123);
        assert_eq!(out.found[0].distance, 0.0);
        assert!(!out.trace.is_empty());
    }

    #[test]
    fn wider_beam_never_hurts_recall() {
        let spec = unimodal(500, 8);
        let (base, queries) = spec.build_pair();
        let graph = grid_graph(&base, 8);
        let gt = ndsearch_vector::recall::ground_truth(&base, &queries, 10, DistanceKind::L2);
        let mut recalls = Vec::new();
        for ef in [4usize, 16, 64] {
            let mut vs = VisitedSet::new(base.len());
            let found: Vec<Vec<VectorId>> = queries
                .iter()
                .map(|(_, q)| {
                    beam_search(&base, &graph, q, &[0], ef, DistanceKind::L2, &mut vs)
                        .found
                        .iter()
                        .map(|n| n.id)
                        .collect()
                })
                .collect();
            recalls.push(ndsearch_vector::recall::recall_at_k(&gt, &found, 10));
        }
        assert!(recalls[2] >= recalls[0], "recalls = {recalls:?}");
        assert!(
            recalls[2] > 0.5,
            "ef=64 recall should be decent: {recalls:?}"
        );
    }

    #[test]
    fn trace_visits_each_vertex_once() {
        let ds = DatasetSpec::sift_scaled(300, 1).build();
        let graph = grid_graph(&ds, 6);
        let mut vs = VisitedSet::new(ds.len());
        let q = ds.vector(7).to_vec();
        let out = beam_search(&ds, &graph, &q, &[0, 5], 16, DistanceKind::L2, &mut vs);
        let seq: Vec<_> = out.trace.queries_flat();
        let set: std::collections::HashSet<_> = seq.iter().copied().collect();
        assert_eq!(seq.len(), set.len(), "no vertex visited twice");
    }

    #[test]
    fn greedy_descent_reaches_local_minimum() {
        let ds = DatasetSpec::deep_scaled(200, 1).build();
        let graph = grid_graph(&ds, 8);
        let q = ds.vector(50).to_vec();
        let mut trace = QueryTrace::default();
        let end = greedy_descent(&ds, &graph, &q, 0, DistanceKind::L2, &mut trace);
        // The endpoint must be no worse than any of its graph neighbors.
        for &nb in graph.neighbors(end.id) {
            let d = DistanceKind::L2.eval(&q, ds.vector(nb));
            assert!(d >= end.distance);
        }
    }

    #[test]
    fn stepwise_search_matches_run_to_completion() {
        let (base, queries) = unimodal(400, 6).build_pair();
        let graph = grid_graph(&base, 8);
        let mut vs = VisitedSet::new(base.len());
        for (_, q) in queries.iter() {
            let whole = beam_search(&base, &graph, q, &[0, 9], 16, DistanceKind::L2, &mut vs);
            let mut stepper =
                BeamSearcher::new(base.len(), q.to_vec(), vec![0, 9], 16, DistanceKind::L2);
            let mut iterations = Vec::new();
            while let Some(it) = stepper.step(&base, &graph) {
                iterations.push(it);
            }
            assert!(stepper.is_finished());
            assert_eq!(iterations, whole.trace.iterations, "trace must match");
            assert_eq!(stepper.found(), whole.found, "results must match");
            assert_eq!(stepper.hops(), whole.trace.iterations.len());
        }
    }

    #[test]
    fn interleaved_searchers_are_independent() {
        // Stepping two searchers in lockstep must give the same outcome as
        // running each alone — the serving engine relies on this.
        let (base, queries) = unimodal(300, 2).build_pair();
        let graph = grid_graph(&base, 6);
        let mk = |qi: u32| {
            BeamSearcher::new(
                base.len(),
                queries.vector(qi).to_vec(),
                vec![0],
                8,
                DistanceKind::L2,
            )
        };
        let mut a = mk(0);
        let mut b = mk(1);
        while !(a.is_finished() && b.is_finished()) {
            a.step(&base, &graph);
            b.step(&base, &graph);
        }
        let mut vs = VisitedSet::new(base.len());
        let ra = beam_search(
            &base,
            &graph,
            queries.vector(0),
            &[0],
            8,
            DistanceKind::L2,
            &mut vs,
        );
        let rb = beam_search(
            &base,
            &graph,
            queries.vector(1),
            &[0],
            8,
            DistanceKind::L2,
            &mut vs,
        );
        assert_eq!(a.found(), ra.found);
        assert_eq!(b.found(), rb.found);
    }

    #[test]
    fn searcher_finishes_eagerly_and_steps_after_finish_are_none() {
        let ds = DatasetSpec::sift_scaled(100, 1).build();
        let graph = grid_graph(&ds, 4);
        let mut s = BeamSearcher::new(
            ds.len(),
            ds.vector(3).to_vec(),
            vec![3],
            4,
            DistanceKind::L2,
        );
        while s.step(&ds, &graph).is_some() {}
        assert!(s.is_finished());
        assert!(s.step(&ds, &graph).is_none());
        assert!(!s.found().is_empty());
    }

    #[test]
    fn searcher_with_no_entries_finishes_immediately() {
        let ds = DatasetSpec::sift_scaled(50, 1).build();
        let graph = grid_graph(&ds, 4);
        let mut s = BeamSearcher::new(
            ds.len(),
            ds.vector(0).to_vec(),
            Vec::new(),
            8,
            DistanceKind::L2,
        );
        assert!(s.step(&ds, &graph).is_none());
        assert!(s.is_finished());
        assert!(s.found().is_empty());
    }

    #[test]
    fn empty_entries_return_empty() {
        let ds = DatasetSpec::sift_scaled(50, 1).build();
        let graph = grid_graph(&ds, 4);
        let mut vs = VisitedSet::new(ds.len());
        let out = beam_search(&ds, &graph, ds.vector(0), &[], 8, DistanceKind::L2, &mut vs);
        assert!(out.found.is_empty());
    }

    impl QueryTrace {
        fn queries_flat(&self) -> Vec<VectorId> {
            self.visited_sequence().collect()
        }
    }
}
