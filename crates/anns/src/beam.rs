//! The shared greedy/beam search kernel (§II-A).
//!
//! Every graph-traversal ANNS algorithm's search phase follows the same
//! loop: keep a *candidate list* of discovered-but-unexpanded vertices and
//! a *result list* of the best `ef` vertices seen; repeatedly expand the
//! closest candidate, compute distances to its never-visited neighbors, and
//! stop when the closest candidate is farther than the worst retained
//! result. This module implements that loop once, records the per-iteration
//! memory trace, and is reused by HNSW (per layer), Vamana, HCNNG and TOGG.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ndsearch_graph::csr::Csr;
use ndsearch_vector::dataset::Dataset;
use ndsearch_vector::topk::Neighbor;
use ndsearch_vector::{DistanceKind, VectorId};

use crate::trace::{IterationTrace, QueryTrace};

/// Reusable visited-set with O(1) epoch-based reset, so batch search does
/// not reallocate per query.
#[derive(Debug, Clone)]
pub struct VisitedSet {
    epoch: u32,
    marks: Vec<u32>,
}

impl VisitedSet {
    /// Creates a set covering `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            epoch: 1,
            marks: vec![0; n],
        }
    }

    /// Clears the set in O(1).
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.marks.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks a vertex; returns `true` if it was not already marked.
    pub fn insert(&mut self, v: VectorId) -> bool {
        let slot = &mut self.marks[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Whether a vertex is marked.
    pub fn contains(&self, v: VectorId) -> bool {
        self.marks[v as usize] == self.epoch
    }
}

/// Result of one beam search: the `ef` best neighbors found (ascending
/// distance) and the per-iteration trace.
#[derive(Debug, Clone)]
pub struct BeamResult {
    /// Best vertices found, ascending by distance.
    pub found: Vec<Neighbor>,
    /// Memory trace of the search.
    pub trace: QueryTrace,
}

/// Greedy beam search over `graph` from `entries`, retaining the best
/// `beam_width` results.
///
/// # Panics
/// Panics if `beam_width == 0` or an entry id is out of range.
pub fn beam_search(
    dataset: &Dataset,
    graph: &Csr,
    query: &[f32],
    entries: &[VectorId],
    beam_width: usize,
    distance: DistanceKind,
    visited: &mut VisitedSet,
) -> BeamResult {
    assert!(beam_width > 0, "beam width must be positive");
    visited.clear();
    let mut trace = QueryTrace::default();

    // Candidate list: min-heap by distance. Result list: max-heap bounded
    // by beam_width (ef).
    let mut candidates: BinaryHeap<Reverse<Neighbor>> = BinaryHeap::new();
    let mut results: BinaryHeap<Neighbor> = BinaryHeap::new();

    // The initial entry vertices count as visited/computed: record them as
    // iteration 0 with a synthetic entry (the first entry vertex).
    let mut init_visited = Vec::with_capacity(entries.len());
    for &e in entries {
        if visited.insert(e) {
            let d = distance.eval(query, dataset.vector(e));
            candidates.push(Reverse(Neighbor::new(d, e)));
            results.push(Neighbor::new(d, e));
            init_visited.push(e);
        }
    }
    while results.len() > beam_width {
        results.pop();
    }
    if init_visited.is_empty() {
        return BeamResult {
            found: Vec::new(),
            trace,
        };
    }
    trace.iterations.push(IterationTrace {
        entry: init_visited[0],
        visited: init_visited,
    });

    while let Some(Reverse(current)) = candidates.pop() {
        // Termination: closest candidate is farther than the worst result
        // while the result list is full (§II-A's pre-defined condition).
        let worst = results.peek().map(|n| n.distance).unwrap_or(f32::INFINITY);
        if results.len() >= beam_width && current.distance > worst {
            break;
        }
        let mut iter_visited = Vec::new();
        for &nb in graph.neighbors(current.id) {
            if !visited.insert(nb) {
                continue;
            }
            let d = distance.eval(query, dataset.vector(nb));
            iter_visited.push(nb);
            let worst = results.peek().map(|n| n.distance).unwrap_or(f32::INFINITY);
            if results.len() < beam_width || d < worst {
                candidates.push(Reverse(Neighbor::new(d, nb)));
                results.push(Neighbor::new(d, nb));
                if results.len() > beam_width {
                    results.pop();
                }
            }
        }
        if !iter_visited.is_empty() {
            trace.iterations.push(IterationTrace {
                entry: current.id,
                visited: iter_visited,
            });
        }
    }

    let mut found = results.into_vec();
    found.sort_unstable();
    BeamResult { found, trace }
}

/// Pure greedy descent (beam width 1) used by HNSW's upper layers: walks to
/// the locally nearest vertex and returns it.
pub fn greedy_descent(
    dataset: &Dataset,
    graph: &Csr,
    query: &[f32],
    entry: VectorId,
    distance: DistanceKind,
    trace: &mut QueryTrace,
) -> Neighbor {
    let mut current = Neighbor::new(distance.eval(query, dataset.vector(entry)), entry);
    loop {
        let mut best = current;
        let mut iter_visited = Vec::new();
        for &nb in graph.neighbors(current.id) {
            let d = distance.eval(query, dataset.vector(nb));
            iter_visited.push(nb);
            let cand = Neighbor::new(d, nb);
            if cand < best {
                best = cand;
            }
        }
        if !iter_visited.is_empty() {
            trace.iterations.push(IterationTrace {
                entry: current.id,
                visited: iter_visited,
            });
        }
        if best.id == current.id {
            return current;
        }
        current = best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_vector::recall::exact_knn;
    use ndsearch_vector::synthetic::DatasetSpec;

    fn grid_graph(ds: &Dataset, k: usize) -> Csr {
        // Exact KNN graph: brute force for each vertex.
        let lists: Vec<Vec<VectorId>> = (0..ds.len() as u32)
            .map(|v| {
                exact_knn(ds, ds.vector(v), k + 1, DistanceKind::L2)
                    .into_iter()
                    .filter(|n| n.id != v)
                    .take(k)
                    .map(|n| n.id)
                    .collect()
            })
            .collect();
        Csr::from_adjacency(&lists).unwrap()
    }

    #[test]
    fn visited_set_resets_in_o1() {
        let mut vs = VisitedSet::new(10);
        assert!(vs.insert(3));
        assert!(!vs.insert(3));
        assert!(vs.contains(3));
        vs.clear();
        assert!(!vs.contains(3));
        assert!(vs.insert(3));
    }

    /// A single-cluster spec so the exact-KNN graph stays connected (the
    /// multi-cluster presets produce per-cluster components, which is what
    /// real ANNS graphs add long-range edges to fix).
    fn unimodal(n: usize, q: usize) -> DatasetSpec {
        DatasetSpec {
            clusters: 1,
            ..DatasetSpec::deep_scaled(n, q)
        }
    }

    #[test]
    fn beam_search_finds_true_nn_on_knn_graph() {
        let ds = unimodal(400, 1).build();
        let graph = grid_graph(&ds, 8);
        let mut vs = VisitedSet::new(ds.len());
        let q = ds.vector(123).to_vec();
        let out = beam_search(&ds, &graph, &q, &[0], 32, DistanceKind::L2, &mut vs);
        // The query *is* vertex 123, so the top hit must be 123 at d=0.
        assert_eq!(out.found[0].id, 123);
        assert_eq!(out.found[0].distance, 0.0);
        assert!(!out.trace.is_empty());
    }

    #[test]
    fn wider_beam_never_hurts_recall() {
        let spec = unimodal(500, 8);
        let (base, queries) = spec.build_pair();
        let graph = grid_graph(&base, 8);
        let gt = ndsearch_vector::recall::ground_truth(&base, &queries, 10, DistanceKind::L2);
        let mut recalls = Vec::new();
        for ef in [4usize, 16, 64] {
            let mut vs = VisitedSet::new(base.len());
            let found: Vec<Vec<VectorId>> = queries
                .iter()
                .map(|(_, q)| {
                    beam_search(&base, &graph, q, &[0], ef, DistanceKind::L2, &mut vs)
                        .found
                        .iter()
                        .map(|n| n.id)
                        .collect()
                })
                .collect();
            recalls.push(ndsearch_vector::recall::recall_at_k(&gt, &found, 10));
        }
        assert!(recalls[2] >= recalls[0], "recalls = {recalls:?}");
        assert!(
            recalls[2] > 0.5,
            "ef=64 recall should be decent: {recalls:?}"
        );
    }

    #[test]
    fn trace_visits_each_vertex_once() {
        let ds = DatasetSpec::sift_scaled(300, 1).build();
        let graph = grid_graph(&ds, 6);
        let mut vs = VisitedSet::new(ds.len());
        let q = ds.vector(7).to_vec();
        let out = beam_search(&ds, &graph, &q, &[0, 5], 16, DistanceKind::L2, &mut vs);
        let seq: Vec<_> = out.trace.queries_flat();
        let set: std::collections::HashSet<_> = seq.iter().copied().collect();
        assert_eq!(seq.len(), set.len(), "no vertex visited twice");
    }

    #[test]
    fn greedy_descent_reaches_local_minimum() {
        let ds = DatasetSpec::deep_scaled(200, 1).build();
        let graph = grid_graph(&ds, 8);
        let q = ds.vector(50).to_vec();
        let mut trace = QueryTrace::default();
        let end = greedy_descent(&ds, &graph, &q, 0, DistanceKind::L2, &mut trace);
        // The endpoint must be no worse than any of its graph neighbors.
        for &nb in graph.neighbors(end.id) {
            let d = DistanceKind::L2.eval(&q, ds.vector(nb));
            assert!(d >= end.distance);
        }
    }

    #[test]
    fn empty_entries_return_empty() {
        let ds = DatasetSpec::sift_scaled(50, 1).build();
        let graph = grid_graph(&ds, 4);
        let mut vs = VisitedSet::new(ds.len());
        let out = beam_search(&ds, &graph, ds.vector(0), &[], 8, DistanceKind::L2, &mut vs);
        assert!(out.found.is_empty());
    }

    impl QueryTrace {
        fn queries_flat(&self) -> Vec<VectorId> {
            self.visited_sequence().collect()
        }
    }
}
