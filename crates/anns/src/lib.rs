//! Graph-traversal ANNS algorithms with memory-trace recording.
//!
//! §VII-A ("Simulation method"): the paper runs the *real* search phase of
//! each algorithm, records the memory trace — "the index sequences of the
//! accessed vertices for each query" — and feeds those traces to the
//! trace-driven architecture simulator. This crate provides the same four
//! algorithms, implemented from scratch:
//!
//! * [`hnsw::Hnsw`] — hierarchical navigable small world graphs;
//! * [`vamana::Vamana`] — the DiskANN graph (α-pruned);
//! * [`hcnng::Hcnng`] — hierarchical-clustering-based graphs (Fig. 21);
//! * [`togg::Togg`] — two-stage routing on a KNN graph (Fig. 21);
//!
//! plus the shared machinery:
//!
//! * [`beam`] — the candidate-list/result-list greedy kernel of §II-A, the
//!   common core of every graph-traversal ANNS search, in two forms: the
//!   run-to-completion [`beam::beam_search`] used by batch search, and the
//!   resumable [`beam::BeamSearcher`] that yields one hop per step so the
//!   serving layer can interleave many in-flight queries;
//! * [`trace`] — per-query, per-iteration visited-vertex traces;
//! * [`bitonic`] — the bitonic sorting network offloaded to the FPGA in
//!   NDSEARCH, with comparator/stage counts for the timing model;
//! * [`bruteforce`] — exact search, used for ground truth and recall.
//!
//! # Example
//!
//! ```
//! use ndsearch_anns::{hnsw::{Hnsw, HnswParams}, index::{GraphAnnsIndex, SearchParams}};
//! use ndsearch_vector::synthetic::DatasetSpec;
//!
//! let (base, queries) = DatasetSpec::sift_scaled(300, 4).build_pair();
//! let index = Hnsw::build(&base, HnswParams::default());
//! let out = index.search_batch(&base, &queries, &SearchParams::default());
//! assert_eq!(out.results.len(), 4);
//! assert!(out.trace.total_visited() > 0);
//! ```

#![warn(missing_docs)]

pub mod beam;
pub mod bitonic;
pub mod bruteforce;
pub mod hcnng;
pub mod hnsw;
pub mod index;
pub mod togg;
pub mod trace;
pub mod tuning;
pub mod vamana;

pub use index::{AnnsAlgorithm, GraphAnnsIndex, SearchOutput, SearchParams};
pub use trace::{BatchTrace, IterationTrace, QueryTrace};
