//! HCNNG — hierarchical-clustering-based graphs (Munoz et al., Pattern
//! Recognition 2019), evaluated by the paper in Fig. 21.
//!
//! HCNNG repeats, for a number of rounds: hierarchically bisect the dataset
//! with random pivots until clusters are small, then connect each cluster
//! with a minimum spanning tree. The union of the MSTs over all rounds is
//! the graph. MST edges are short and tree-shaped, so the union of several
//! random trees yields a sparse graph that is both connected and local —
//! the "hierarchical clustering" counterpart of HNSW's navigability.
//! Search is the standard greedy kernel (the paper notes these optimized
//! algorithms still share the breadth-first search kernel).

use ndsearch_graph::csr::Csr;
use ndsearch_vector::dataset::Dataset;
use ndsearch_vector::rng::Pcg32;
use ndsearch_vector::{DistanceKind, VectorId};

use crate::beam::{beam_search, VisitedSet};
use crate::index::{AnnsAlgorithm, GraphAnnsIndex, SearchOutput, SearchParams};
use crate::trace::BatchTrace;
use crate::vamana::approximate_medoid;

/// HCNNG construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HcnngParams {
    /// Number of random-partition + MST rounds.
    pub rounds: usize,
    /// Maximum leaf cluster size.
    pub max_cluster: usize,
    /// Overall degree cap after unioning rounds.
    pub max_degree: usize,
    /// Distance function.
    pub distance: DistanceKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HcnngParams {
    fn default() -> Self {
        Self {
            rounds: 12,
            max_cluster: 48,
            max_degree: 32,
            distance: DistanceKind::L2,
            seed: 0x4C9,
        }
    }
}

/// A built HCNNG index.
#[derive(Debug, Clone)]
pub struct Hcnng {
    params: HcnngParams,
    graph: Csr,
    entry: VectorId,
}

impl Hcnng {
    /// Builds the index.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn build(base: &Dataset, params: HcnngParams) -> Self {
        assert!(!base.is_empty(), "dataset must not be empty");
        let n = base.len();
        let dist = params.distance;
        let mut adj: Vec<Vec<VectorId>> = vec![Vec::new(); n];
        let mut rng = Pcg32::seed_from_u64(params.seed);

        for round in 0..params.rounds {
            let mut round_rng = Pcg32::seed_from_u64(params.seed ^ (round as u64) << 17);
            let all: Vec<VectorId> = (0..n as u32).collect();
            let mut stack = vec![all];
            while let Some(cluster) = stack.pop() {
                if cluster.len() <= params.max_cluster.max(2) {
                    add_mst_edges(base, &cluster, dist, &mut adj);
                } else {
                    let (left, right) = bisect(base, &cluster, dist, &mut round_rng);
                    if left.is_empty() || right.is_empty() {
                        // Degenerate split: force an MST to terminate.
                        let merged = if left.is_empty() { right } else { left };
                        add_mst_edges(base, &merged, dist, &mut adj);
                    } else {
                        stack.push(left);
                        stack.push(right);
                    }
                }
            }
            let _ = &mut rng;
        }

        // Dedup and cap degree, keeping the shortest edges.
        for v in 0..n as u32 {
            let list = &mut adj[v as usize];
            list.sort_unstable();
            list.dedup();
            if list.len() > params.max_degree {
                let vv = base.vector(v).to_vec();
                list.sort_by(|&a, &b| {
                    let da = dist.eval(&vv, base.vector(a));
                    let db = dist.eval(&vv, base.vector(b));
                    da.partial_cmp(&db).unwrap().then(a.cmp(&b))
                });
                list.truncate(params.max_degree);
            }
        }

        let graph = Csr::from_adjacency(&adj).expect("ids validated");
        let entry = approximate_medoid(base, dist);
        Self {
            params,
            graph,
            entry,
        }
    }

    /// Construction parameters.
    pub fn params(&self) -> &HcnngParams {
        &self.params
    }

    /// The search entry point (approximate medoid).
    pub fn entry_point(&self) -> VectorId {
        self.entry
    }
}

impl GraphAnnsIndex for Hcnng {
    fn algorithm(&self) -> AnnsAlgorithm {
        AnnsAlgorithm::Hcnng
    }

    fn base_graph(&self) -> &Csr {
        &self.graph
    }

    fn search_batch(
        &self,
        base: &Dataset,
        queries: &Dataset,
        params: &SearchParams,
    ) -> SearchOutput {
        let mut visited = VisitedSet::new(base.len());
        let mut results = Vec::with_capacity(queries.len());
        let mut traces = Vec::with_capacity(queries.len());
        for (_, q) in queries.iter() {
            let mut out = beam_search(
                base,
                &self.graph,
                q,
                &[self.entry],
                params.beam_width,
                params.distance,
                &mut visited,
            );
            out.found.truncate(params.k);
            results.push(out.found);
            traces.push(out.trace);
        }
        SearchOutput {
            results,
            trace: BatchTrace { queries: traces },
        }
    }
}

/// Random two-pivot bisection of a cluster.
fn bisect(
    base: &Dataset,
    cluster: &[VectorId],
    dist: DistanceKind,
    rng: &mut Pcg32,
) -> (Vec<VectorId>, Vec<VectorId>) {
    let a = cluster[rng.index(cluster.len())];
    let mut b = cluster[rng.index(cluster.len())];
    let mut guard = 0;
    while b == a && guard < 16 {
        b = cluster[rng.index(cluster.len())];
        guard += 1;
    }
    let va = base.vector(a).to_vec();
    let vb = base.vector(b).to_vec();
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &v in cluster {
        let da = dist.eval(&va, base.vector(v));
        let db = dist.eval(&vb, base.vector(v));
        if da <= db {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    (left, right)
}

/// Adds the edges of a Prim MST over `cluster` to `adj` (both directions).
fn add_mst_edges(
    base: &Dataset,
    cluster: &[VectorId],
    dist: DistanceKind,
    adj: &mut [Vec<VectorId>],
) {
    let s = cluster.len();
    if s < 2 {
        return;
    }
    // Prim over the dense cluster.
    let mut in_tree = vec![false; s];
    let mut best_d = vec![f32::INFINITY; s];
    let mut best_from = vec![0usize; s];
    in_tree[0] = true;
    for j in 1..s {
        best_d[j] = dist.eval(base.vector(cluster[0]), base.vector(cluster[j]));
        best_from[j] = 0;
    }
    for _ in 1..s {
        let mut pick = usize::MAX;
        let mut pick_d = f32::INFINITY;
        for j in 0..s {
            if !in_tree[j] && best_d[j] < pick_d {
                pick = j;
                pick_d = best_d[j];
            }
        }
        if pick == usize::MAX {
            break;
        }
        in_tree[pick] = true;
        let u = cluster[best_from[pick]];
        let v = cluster[pick];
        adj[u as usize].push(v);
        adj[v as usize].push(u);
        for j in 0..s {
            if !in_tree[j] {
                let d = dist.eval(base.vector(v), base.vector(cluster[j]));
                if d < best_d[j] {
                    best_d[j] = d;
                    best_from[j] = pick;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_vector::recall::{ground_truth, recall_at_k};
    use ndsearch_vector::synthetic::DatasetSpec;

    #[test]
    fn graph_is_connected_enough() {
        let ds = DatasetSpec::sift_scaled(400, 1).build();
        let index = Hcnng::build(&ds, HcnngParams::default());
        let g = index.base_graph();
        let isolated = (0..g.num_vertices() as u32)
            .filter(|&v| g.degree(v) == 0)
            .count();
        assert_eq!(isolated, 0);
        assert!(g.max_degree() <= index.params().max_degree);
    }

    #[test]
    fn recall_is_reasonable() {
        let spec = DatasetSpec::sift_scaled(600, 15);
        let (base, queries) = spec.build_pair();
        let index = Hcnng::build(&base, HcnngParams::default());
        let params = SearchParams::new(10, 80, DistanceKind::L2);
        let out = index.search_batch(&base, &queries, &params);
        let gt = ground_truth(&base, &queries, 10, DistanceKind::L2);
        let r = recall_at_k(&gt, &out.id_lists(), 10);
        assert!(r >= 0.80, "recall@10 = {r}");
    }

    #[test]
    fn mst_produces_spanning_edges() {
        let ds = Dataset::from_rows(1, (0..10).map(|i| vec![i as f32]).collect()).unwrap();
        let cluster: Vec<VectorId> = (0..10).collect();
        let mut adj = vec![Vec::new(); 10];
        add_mst_edges(&ds, &cluster, DistanceKind::L2, &mut adj);
        // A 10-vertex MST has 9 edges → 18 directed entries.
        let total: usize = adj.iter().map(Vec::len).sum();
        assert_eq!(total, 18);
        // On a line, the MST is the path: inner vertices get degree 2.
        assert_eq!(adj[5].len(), 2);
    }

    #[test]
    fn more_rounds_add_edges() {
        let ds = DatasetSpec::deep_scaled(300, 1).build();
        let few = Hcnng::build(
            &ds,
            HcnngParams {
                rounds: 2,
                ..HcnngParams::default()
            },
        );
        let many = Hcnng::build(
            &ds,
            HcnngParams {
                rounds: 12,
                ..HcnngParams::default()
            },
        );
        assert!(many.base_graph().num_edges() > few.base_graph().num_edges());
    }

    #[test]
    fn build_is_deterministic() {
        let ds = DatasetSpec::glove_scaled(200, 1).build();
        let a = Hcnng::build(&ds, HcnngParams::default());
        let b = Hcnng::build(&ds, HcnngParams::default());
        assert_eq!(a.base_graph(), b.base_graph());
    }
}
