//! Exact brute-force search as a [`GraphAnnsIndex`] (baseline / ground
//! truth provider). Its "graph" is empty — it scans the whole dataset —
//! and its trace visits every vertex, which is exactly why NNS is
//! intractable at scale (§II-A).

use ndsearch_graph::csr::Csr;
use ndsearch_vector::dataset::Dataset;
use ndsearch_vector::recall::exact_knn;

use crate::index::{AnnsAlgorithm, GraphAnnsIndex, SearchOutput, SearchParams};
use crate::trace::{BatchTrace, IterationTrace, QueryTrace};

/// Exact scan index.
#[derive(Debug, Clone)]
pub struct BruteForce {
    graph: Csr,
}

impl BruteForce {
    /// Creates the index for a dataset of `n` vectors.
    pub fn new(n: usize) -> Self {
        Self {
            graph: Csr::from_adjacency(&vec![Vec::new(); n]).expect("empty lists are valid"),
        }
    }
}

impl GraphAnnsIndex for BruteForce {
    fn algorithm(&self) -> AnnsAlgorithm {
        AnnsAlgorithm::BruteForce
    }

    fn base_graph(&self) -> &Csr {
        &self.graph
    }

    fn search_batch(
        &self,
        base: &Dataset,
        queries: &Dataset,
        params: &SearchParams,
    ) -> SearchOutput {
        let mut results = Vec::with_capacity(queries.len());
        let mut traces = Vec::with_capacity(queries.len());
        let all: Vec<u32> = (0..base.len() as u32).collect();
        for (_, q) in queries.iter() {
            results.push(exact_knn(base, q, params.k, params.distance));
            traces.push(QueryTrace {
                iterations: vec![IterationTrace {
                    entry: 0,
                    visited: all.clone(),
                }],
            });
        }
        SearchOutput {
            results,
            trace: BatchTrace { queries: traces },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_vector::synthetic::DatasetSpec;
    use ndsearch_vector::DistanceKind;

    #[test]
    fn brute_force_is_exact() {
        let spec = DatasetSpec::sift_scaled(200, 5);
        let (base, queries) = spec.build_pair();
        let index = BruteForce::new(base.len());
        let out = index.search_batch(
            &base,
            &queries,
            &SearchParams::new(10, 10, DistanceKind::L2),
        );
        let gt = ndsearch_vector::recall::ground_truth(&base, &queries, 10, DistanceKind::L2);
        let r = ndsearch_vector::recall::recall_at_k(&gt, &out.id_lists(), 10);
        assert_eq!(r, 1.0);
        // Trace covers the whole dataset per query.
        assert_eq!(out.trace.queries[0].len(), 200);
    }
}
