//! Hierarchical navigable small world graphs (Malkov & Yashunin), from
//! scratch.
//!
//! HNSW maintains a stack of proximity graphs: layer 0 contains every
//! vertex; each higher layer contains an exponentially thinning sample. A
//! query greedily descends from the top layer to layer 1 (beam width 1),
//! then runs a full beam search on layer 0. Construction inserts vertices
//! one at a time, sampling each vertex's top layer from a geometric
//! distribution and linking it to neighbors chosen by the *select-neighbors
//! heuristic* (prefer candidates closer to the new vertex than to already
//! selected neighbors), which keeps the graph navigable.

use ndsearch_graph::csr::Csr;
use ndsearch_vector::dataset::Dataset;
use ndsearch_vector::rng::Pcg32;
use ndsearch_vector::topk::Neighbor;
use ndsearch_vector::{DistanceKind, VectorId};

use crate::beam::{beam_search, VisitedSet};
use crate::index::{AnnsAlgorithm, GraphAnnsIndex, SearchOutput, SearchParams};
use crate::trace::{BatchTrace, QueryTrace};

/// HNSW construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswParams {
    /// Max links per vertex on layers ≥ 1 (M). Layer 0 allows `2 * m`.
    pub m: usize,
    /// Beam width used during construction (efConstruction).
    pub ef_construction: usize,
    /// Distance function.
    pub distance: DistanceKind,
    /// RNG seed for level sampling.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 100,
            distance: DistanceKind::L2,
            seed: 0x45_57,
        }
    }
}

/// Mutable adjacency used during construction (converted to CSR at the
/// end).
#[derive(Debug, Clone, Default)]
struct LayerAdj {
    /// Per-vertex neighbor lists; vertices absent from the layer have an
    /// empty list and are listed in `members`.
    lists: std::collections::HashMap<VectorId, Vec<VectorId>>,
}

/// A built HNSW index.
#[derive(Debug, Clone)]
pub struct Hnsw {
    params: HnswParams,
    /// Layer 0 adjacency over all vertices.
    base: Csr,
    /// Upper layers (1..) as sparse adjacency.
    upper: Vec<LayerAdj>,
    /// Entry point (a vertex on the top layer).
    entry: VectorId,
}

impl Hnsw {
    /// Builds the index over `base` vectors.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn build(base: &Dataset, params: HnswParams) -> Self {
        assert!(!base.is_empty(), "dataset must not be empty");
        let n = base.len();
        let mut rng = Pcg32::seed_from_u64(params.seed);
        let level_mult = 1.0 / (params.m as f64).ln().max(0.5);

        // Sampled top level of each vertex.
        let levels: Vec<usize> = (0..n)
            .map(|_| {
                let u: f64 = rng.next_f64().max(1e-12);
                ((-u.ln() * level_mult) as usize).min(12)
            })
            .collect();
        let max_level = levels.iter().copied().max().unwrap_or(0);

        let mut layer0: Vec<Vec<VectorId>> = vec![Vec::new(); n];
        let mut upper: Vec<LayerAdj> = (0..max_level).map(|_| LayerAdj::default()).collect();
        let mut entry: VectorId = 0;
        let mut entry_level = levels[0];
        for layer in upper.iter_mut().take(levels[0]) {
            layer.lists.insert(0, Vec::new());
        }

        let dist = params.distance;

        for v in 1..n as u32 {
            let v_level = levels[v as usize];
            let q = base.vector(v).to_vec();
            let mut cur = entry;

            // Greedy descent through layers above v_level.
            let mut l = entry_level;
            while l > v_level {
                if l >= 1 {
                    cur = greedy_upper(base, &upper[l - 1], &q, cur, dist);
                }
                l -= 1;
            }

            // Insert into layers min(v_level, entry_level) .. 0.
            let top_insert = v_level.min(entry_level);
            let mut layer = top_insert;
            loop {
                let max_links = if layer == 0 { params.m * 2 } else { params.m };
                let candidates = if layer == 0 {
                    search_adj(
                        base,
                        |u| layer0[u as usize].as_slice(),
                        &q,
                        cur,
                        params.ef_construction,
                        dist,
                    )
                } else {
                    let adj = &upper[layer - 1];
                    search_adj(
                        base,
                        |u| adj.lists.get(&u).map(Vec::as_slice).unwrap_or(&[]),
                        &q,
                        cur,
                        params.ef_construction,
                        dist,
                    )
                };
                let selected = select_neighbors(base, &q, &candidates, params.m, dist);
                if let Some(best) = selected.first() {
                    cur = best.id;
                }
                for &nb in selected.iter().map(|s| &s.id) {
                    if layer == 0 {
                        layer0[v as usize].push(nb);
                        layer0[nb as usize].push(v);
                        prune_list(base, nb, &mut layer0[nb as usize], params.m * 2, dist);
                    } else {
                        let adj = &mut upper[layer - 1];
                        adj.lists.entry(v).or_default().push(nb);
                        adj.lists.entry(nb).or_default().push(v);
                        let list = adj.lists.get_mut(&nb).expect("just inserted");
                        prune_hash_list(base, nb, list, max_links, dist);
                    }
                }
                if layer == 0 {
                    prune_list(base, v, &mut layer0[v as usize], params.m * 2, dist);
                } else if let Some(list) = upper[layer - 1].lists.get_mut(&v) {
                    prune_hash_list(base, v, list, max_links, dist);
                }
                if layer == 0 {
                    break;
                }
                layer -= 1;
            }

            if v_level > entry_level {
                entry = v;
                entry_level = v_level;
                for layer in upper.iter_mut().take(v_level) {
                    layer.lists.entry(v).or_default();
                }
            }
        }

        // Deduplicate layer-0 lists.
        for list in &mut layer0 {
            list.sort_unstable();
            list.dedup();
        }
        let base_csr = Csr::from_adjacency(&layer0).expect("layer0 ids validated");
        Self {
            params,
            base: base_csr,
            upper,
            entry,
        }
    }

    /// Construction parameters.
    pub fn params(&self) -> &HnswParams {
        &self.params
    }

    /// The hierarchy's entry point.
    pub fn entry_point(&self) -> VectorId {
        self.entry
    }

    /// Number of upper layers.
    pub fn num_upper_layers(&self) -> usize {
        self.upper.len()
    }

    /// Searches a single query, recording the trace.
    pub fn search_one(
        &self,
        base: &Dataset,
        query: &[f32],
        params: &SearchParams,
        visited: &mut VisitedSet,
    ) -> (Vec<Neighbor>, QueryTrace) {
        let mut trace = QueryTrace::default();
        let mut cur = self.entry;
        // Descend upper layers greedily (recording their accesses too: the
        // upper layers also live on flash).
        for layer in (0..self.upper.len()).rev() {
            cur = greedy_upper_traced(
                base,
                &self.upper[layer],
                query,
                cur,
                self.params.distance,
                &mut trace,
            );
        }
        let mut out = beam_search(
            base,
            &self.base,
            query,
            &[cur],
            params.beam_width,
            params.distance,
            visited,
        );
        trace.iterations.append(&mut out.trace.iterations);
        out.found.truncate(params.k);
        (out.found, trace)
    }
}

impl GraphAnnsIndex for Hnsw {
    fn algorithm(&self) -> AnnsAlgorithm {
        AnnsAlgorithm::Hnsw
    }

    fn base_graph(&self) -> &Csr {
        &self.base
    }

    fn search_batch(
        &self,
        base: &Dataset,
        queries: &Dataset,
        params: &SearchParams,
    ) -> SearchOutput {
        let mut visited = VisitedSet::new(base.len());
        let mut results = Vec::with_capacity(queries.len());
        let mut traces = Vec::with_capacity(queries.len());
        for (_, q) in queries.iter() {
            let (found, trace) = self.search_one(base, q, params, &mut visited);
            results.push(found);
            traces.push(trace);
        }
        SearchOutput {
            results,
            trace: BatchTrace { queries: traces },
        }
    }
}

/// Greedy walk on a sparse upper layer (no trace).
fn greedy_upper(
    base: &Dataset,
    adj: &LayerAdj,
    query: &[f32],
    entry: VectorId,
    dist: DistanceKind,
) -> VectorId {
    let mut trace = QueryTrace::default();
    greedy_upper_inner(base, adj, query, entry, dist, &mut trace)
}

fn greedy_upper_traced(
    base: &Dataset,
    adj: &LayerAdj,
    query: &[f32],
    entry: VectorId,
    dist: DistanceKind,
    trace: &mut QueryTrace,
) -> VectorId {
    greedy_upper_inner(base, adj, query, entry, dist, trace)
}

fn greedy_upper_inner(
    base: &Dataset,
    adj: &LayerAdj,
    query: &[f32],
    entry: VectorId,
    dist: DistanceKind,
    trace: &mut QueryTrace,
) -> VectorId {
    let mut cur = Neighbor::new(dist.eval(query, base.vector(entry)), entry);
    loop {
        let Some(neighbors) = adj.lists.get(&cur.id) else {
            return cur.id;
        };
        let mut best = cur;
        let mut visited = Vec::new();
        for &nb in neighbors {
            let d = dist.eval(query, base.vector(nb));
            visited.push(nb);
            let c = Neighbor::new(d, nb);
            if c < best {
                best = c;
            }
        }
        if !visited.is_empty() {
            trace.iterations.push(crate::trace::IterationTrace {
                entry: cur.id,
                visited,
            });
        }
        if best.id == cur.id {
            return cur.id;
        }
        cur = best;
    }
}

/// Beam search over any adjacency view (construction only; no trace).
fn search_adj<'a, F>(
    base: &Dataset,
    neighbors_of: F,
    query: &[f32],
    entry: VectorId,
    ef: usize,
    dist: DistanceKind,
) -> Vec<Neighbor>
where
    F: Fn(VectorId) -> &'a [VectorId],
{
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashSet};
    let mut visited: HashSet<VectorId> = HashSet::new();
    let mut candidates = BinaryHeap::new();
    let mut results: BinaryHeap<Neighbor> = BinaryHeap::new();
    let d0 = dist.eval(query, base.vector(entry));
    visited.insert(entry);
    candidates.push(Reverse(Neighbor::new(d0, entry)));
    results.push(Neighbor::new(d0, entry));
    while let Some(Reverse(cur)) = candidates.pop() {
        let worst = results.peek().map(|n| n.distance).unwrap_or(f32::INFINITY);
        if results.len() >= ef && cur.distance > worst {
            break;
        }
        for &nb in neighbors_of(cur.id) {
            if !visited.insert(nb) {
                continue;
            }
            let d = dist.eval(query, base.vector(nb));
            let worst = results.peek().map(|n| n.distance).unwrap_or(f32::INFINITY);
            if results.len() < ef || d < worst {
                candidates.push(Reverse(Neighbor::new(d, nb)));
                results.push(Neighbor::new(d, nb));
                if results.len() > ef {
                    results.pop();
                }
            }
        }
    }
    let mut v = results.into_vec();
    v.sort_unstable();
    v
}

/// The HNSW select-neighbors heuristic: scan candidates in ascending
/// distance; keep one if it is closer to the query than to every already
/// kept neighbor. Falls back to nearest-first fill if too few survive.
fn select_neighbors(
    base: &Dataset,
    query: &[f32],
    candidates: &[Neighbor],
    m: usize,
    dist: DistanceKind,
) -> Vec<Neighbor> {
    let _ = query;
    let mut kept: Vec<Neighbor> = Vec::with_capacity(m);
    for &c in candidates {
        if kept.len() >= m {
            break;
        }
        let dominated = kept
            .iter()
            .any(|&s| dist.eval(base.vector(c.id), base.vector(s.id)) < c.distance);
        if !dominated {
            kept.push(c);
        }
    }
    if kept.len() < m {
        for &c in candidates {
            if kept.len() >= m {
                break;
            }
            if !kept.iter().any(|s| s.id == c.id) {
                kept.push(c);
            }
        }
    }
    kept
}

/// Prunes a vertex's layer-0 list to `max_links` using nearest-first.
fn prune_list(
    base: &Dataset,
    owner: VectorId,
    list: &mut Vec<VectorId>,
    max_links: usize,
    dist: DistanceKind,
) {
    list.sort_unstable();
    list.dedup();
    if list.len() <= max_links {
        return;
    }
    let ov = base.vector(owner).to_vec();
    list.sort_by(|&a, &b| {
        let da = dist.eval(&ov, base.vector(a));
        let db = dist.eval(&ov, base.vector(b));
        da.partial_cmp(&db).unwrap().then(a.cmp(&b))
    });
    list.truncate(max_links);
}

fn prune_hash_list(
    base: &Dataset,
    owner: VectorId,
    list: &mut Vec<VectorId>,
    max_links: usize,
    dist: DistanceKind,
) {
    prune_list(base, owner, list, max_links, dist);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_vector::recall::{ground_truth, recall_at_k};
    use ndsearch_vector::synthetic::DatasetSpec;

    #[test]
    fn build_produces_connected_base_layer() {
        let ds = DatasetSpec::sift_scaled(400, 1).build();
        let index = Hnsw::build(&ds, HnswParams::default());
        let g = index.base_graph();
        assert_eq!(g.num_vertices(), 400);
        // Every vertex has at least one link.
        let isolated = (0..400u32).filter(|&v| g.degree(v) == 0).count();
        assert_eq!(isolated, 0, "{isolated} isolated vertices");
        // Degrees bounded by 2M.
        assert!(g.max_degree() <= 2 * index.params().m);
    }

    #[test]
    fn recall_is_high_on_clustered_data() {
        let spec = DatasetSpec::sift_scaled(800, 20);
        let (base, queries) = spec.build_pair();
        let index = Hnsw::build(&base, HnswParams::default());
        let params = SearchParams::new(10, 80, DistanceKind::L2);
        let out = index.search_batch(&base, &queries, &params);
        let gt = ground_truth(&base, &queries, 10, DistanceKind::L2);
        let r = recall_at_k(&gt, &out.id_lists(), 10);
        assert!(r >= 0.90, "recall@10 = {r}");
    }

    #[test]
    fn traces_accompany_results() {
        let spec = DatasetSpec::deep_scaled(300, 5);
        let (base, queries) = spec.build_pair();
        let index = Hnsw::build(&base, HnswParams::default());
        let out = index.search_batch(&base, &queries, &SearchParams::default());
        assert_eq!(out.trace.len(), 5);
        for q in &out.trace.queries {
            assert!(!q.is_empty(), "every query should visit vertices");
        }
    }

    #[test]
    fn build_is_deterministic() {
        let ds = DatasetSpec::glove_scaled(200, 1).build();
        let a = Hnsw::build(&ds, HnswParams::default());
        let b = Hnsw::build(&ds, HnswParams::default());
        assert_eq!(a.base_graph(), b.base_graph());
        assert_eq!(a.entry_point(), b.entry_point());
    }

    #[test]
    fn search_self_returns_self() {
        let ds = DatasetSpec::sift_scaled(300, 1).build();
        let index = Hnsw::build(&ds, HnswParams::default());
        let mut vs = VisitedSet::new(ds.len());
        let (found, _) = index.search_one(
            &ds,
            ds.vector(42),
            &SearchParams::new(1, 32, DistanceKind::L2),
            &mut vs,
        );
        assert_eq!(found[0].id, 42);
    }

    #[test]
    #[should_panic(expected = "dataset must not be empty")]
    fn empty_dataset_panics() {
        Hnsw::build(&Dataset::new(4), HnswParams::default());
    }
}
