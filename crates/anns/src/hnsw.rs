//! Hierarchical navigable small world graphs (Malkov & Yashunin), from
//! scratch.
//!
//! HNSW maintains a stack of proximity graphs: layer 0 contains every
//! vertex; each higher layer contains an exponentially thinning sample. A
//! query greedily descends from the top layer to layer 1 (beam width 1),
//! then runs a full beam search on layer 0. Construction inserts vertices
//! one at a time, sampling each vertex's top layer from a geometric
//! distribution and linking it to neighbors chosen by the *select-neighbors
//! heuristic* (prefer candidates closer to the new vertex than to already
//! selected neighbors), which keeps the graph navigable.

use ndsearch_graph::csr::Csr;
use ndsearch_vector::dataset::Dataset;
use ndsearch_vector::rng::Pcg32;
use ndsearch_vector::topk::Neighbor;
use ndsearch_vector::{DistanceKind, VectorId};

use crate::beam::{beam_search, VisitedSet};
use crate::index::{
    AnnsAlgorithm, GraphAnnsIndex, InsertReport, MutableIndex, SearchOutput, SearchParams,
};
use crate::trace::{BatchTrace, QueryTrace};

/// HNSW construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswParams {
    /// Max links per vertex on layers ≥ 1 (M). Layer 0 allows `2 * m`.
    pub m: usize,
    /// Beam width used during construction (efConstruction).
    pub ef_construction: usize,
    /// Distance function.
    pub distance: DistanceKind,
    /// RNG seed for level sampling.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 100,
            distance: DistanceKind::L2,
            seed: 0x45_57,
        }
    }
}

/// Mutable adjacency used during construction (converted to CSR at the
/// end).
#[derive(Debug, Clone, Default)]
struct LayerAdj {
    /// Per-vertex neighbor lists; vertices absent from the layer have an
    /// empty list and are listed in `members`.
    lists: std::collections::HashMap<VectorId, Vec<VectorId>>,
}

/// A built HNSW index.
///
/// The mutable adjacency (layer-0 lists and the upper hierarchy) is
/// retained after construction, so online inserts run the *same* linking
/// kernel the build loop uses ([`MutableIndex::insert`]); the layer-0 CSR
/// snapshot lags mutations until [`MutableIndex::sync_base_graph`] folds
/// them in (one O(V+E) rebuild per batch of inserts, not one per
/// insert).
#[derive(Debug, Clone)]
pub struct Hnsw {
    params: HnswParams,
    /// Layer 0 adjacency over all vertices (CSR snapshot of `layer0`).
    base: Csr,
    /// Layer 0 adjacency lists — the mutable source of truth.
    layer0: Vec<Vec<VectorId>>,
    /// Upper layers (1..) as sparse adjacency.
    upper: Vec<LayerAdj>,
    /// Entry point (a vertex on the top layer).
    entry: VectorId,
    /// Top layer of the entry point.
    entry_level: usize,
    /// Level-sampling stream; online inserts continue where build stopped.
    level_rng: Pcg32,
    /// `1 / max(ln M, 0.5)` — the geometric level multiplier.
    level_mult: f64,
    /// Tombstones for online deletes.
    deleted: Vec<bool>,
    /// Whether `base` lags `layer0` (set by online inserts, cleared by
    /// [`MutableIndex::sync_base_graph`]).
    base_dirty: bool,
}

impl Hnsw {
    /// Builds the index over `base` vectors.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn build(base: &Dataset, params: HnswParams) -> Self {
        assert!(!base.is_empty(), "dataset must not be empty");
        let n = base.len();
        let mut index = Self {
            params,
            base: Csr::from_adjacency(&[]).expect("empty adjacency is valid"),
            layer0: Vec::with_capacity(n),
            upper: Vec::new(),
            entry: 0,
            entry_level: 0,
            level_rng: Pcg32::seed_from_u64(params.seed),
            level_mult: 1.0 / (params.m as f64).ln().max(0.5),
            deleted: Vec::new(),
            base_dirty: false,
        };
        for v in 0..n as u32 {
            index.link_next(base, v);
        }
        // Deduplicate layer-0 lists (the per-vertex prunes already keep
        // touched lists sorted; this catches the final unpruned pushes).
        for list in &mut index.layer0 {
            list.sort_unstable();
            list.dedup();
        }
        index.rebuild_base();
        index
    }

    /// Samples a vertex's top layer from the geometric distribution.
    fn sample_level(&mut self) -> usize {
        let u: f64 = self.level_rng.next_f64().max(1e-12);
        ((-u.ln() * self.level_mult) as usize).min(12)
    }

    /// Refreshes the layer-0 CSR snapshot from the adjacency lists.
    fn rebuild_base(&mut self) {
        self.base = Csr::from_adjacency(&self.layer0).expect("layer0 ids validated");
        self.base_dirty = false;
    }

    /// Appends vertex `v` (the next id) and links it into every layer —
    /// the construction kernel, shared verbatim by [`Hnsw::build`] and the
    /// online [`MutableIndex::insert`]. Returns the layer-0 vertices whose
    /// lists changed.
    fn link_next(&mut self, base: &Dataset, v: VectorId) -> Vec<VectorId> {
        let v_level = self.sample_level();
        self.layer0.push(Vec::new());
        self.deleted.push(false);
        if v == 0 {
            self.entry = 0;
            self.entry_level = v_level;
            while self.upper.len() < v_level {
                self.upper.push(LayerAdj::default());
            }
            for layer in self.upper.iter_mut().take(v_level) {
                layer.lists.insert(0, Vec::new());
            }
            return Vec::new();
        }

        let params = self.params;
        let dist = params.distance;
        let q = base.vector(v).to_vec();
        let mut cur = self.entry;
        let mut repaired = Vec::new();

        // Greedy descent through layers above v_level.
        let mut l = self.entry_level;
        while l > v_level {
            if l >= 1 {
                cur = greedy_upper(base, &self.upper[l - 1], &q, cur, dist);
            }
            l -= 1;
        }

        // Insert into layers min(v_level, entry_level) .. 0.
        let top_insert = v_level.min(self.entry_level);
        let mut layer = top_insert;
        loop {
            let max_links = if layer == 0 { params.m * 2 } else { params.m };
            let candidates = if layer == 0 {
                let layer0 = &self.layer0;
                search_adj(
                    base,
                    |u| layer0[u as usize].as_slice(),
                    &q,
                    cur,
                    params.ef_construction,
                    dist,
                )
            } else {
                let adj = &self.upper[layer - 1];
                search_adj(
                    base,
                    |u| adj.lists.get(&u).map(Vec::as_slice).unwrap_or(&[]),
                    &q,
                    cur,
                    params.ef_construction,
                    dist,
                )
            };
            // Tombstoned vertices may route the descent but never earn
            // new links (a no-op during build, where nothing is deleted).
            let live: Vec<Neighbor> = candidates
                .iter()
                .copied()
                .filter(|c| !self.deleted[c.id as usize])
                .collect();
            let selected = select_neighbors(base, &q, &live, params.m, dist);
            if let Some(best) = selected.first() {
                cur = best.id;
            }
            for &nb in selected.iter().map(|s| &s.id) {
                if layer == 0 {
                    self.layer0[v as usize].push(nb);
                    self.layer0[nb as usize].push(v);
                    prune_list(base, nb, &mut self.layer0[nb as usize], params.m * 2, dist);
                    repaired.push(nb);
                } else {
                    let adj = &mut self.upper[layer - 1];
                    adj.lists.entry(v).or_default().push(nb);
                    adj.lists.entry(nb).or_default().push(v);
                    let list = adj.lists.get_mut(&nb).expect("just inserted");
                    prune_hash_list(base, nb, list, max_links, dist);
                }
            }
            if layer == 0 {
                prune_list(base, v, &mut self.layer0[v as usize], params.m * 2, dist);
            } else if let Some(list) = self.upper[layer - 1].lists.get_mut(&v) {
                prune_hash_list(base, v, list, max_links, dist);
            }
            if layer == 0 {
                break;
            }
            layer -= 1;
        }

        if v_level > self.entry_level {
            self.entry = v;
            self.entry_level = v_level;
            while self.upper.len() < v_level {
                self.upper.push(LayerAdj::default());
            }
            for layer in self.upper.iter_mut().take(v_level) {
                layer.lists.entry(v).or_default();
            }
        }
        repaired
    }

    /// Construction parameters.
    pub fn params(&self) -> &HnswParams {
        &self.params
    }

    /// The hierarchy's entry point.
    pub fn entry_point(&self) -> VectorId {
        self.entry
    }

    /// Number of upper layers.
    pub fn num_upper_layers(&self) -> usize {
        self.upper.len()
    }

    /// Searches a single query, recording the trace.
    pub fn search_one(
        &self,
        base: &Dataset,
        query: &[f32],
        params: &SearchParams,
        visited: &mut VisitedSet,
    ) -> (Vec<Neighbor>, QueryTrace) {
        let mut trace = QueryTrace::default();
        let mut cur = self.entry;
        // Descend upper layers greedily (recording their accesses too: the
        // upper layers also live on flash).
        for layer in (0..self.upper.len()).rev() {
            cur = greedy_upper_traced(
                base,
                &self.upper[layer],
                query,
                cur,
                self.params.distance,
                &mut trace,
            );
        }
        let mut out = beam_search(
            base,
            &self.base,
            query,
            &[cur],
            params.beam_width,
            params.distance,
            visited,
        );
        trace.iterations.append(&mut out.trace.iterations);
        out.found.truncate(params.k);
        (out.found, trace)
    }
}

impl GraphAnnsIndex for Hnsw {
    fn algorithm(&self) -> AnnsAlgorithm {
        AnnsAlgorithm::Hnsw
    }

    fn base_graph(&self) -> &Csr {
        &self.base
    }

    fn search_batch(
        &self,
        base: &Dataset,
        queries: &Dataset,
        params: &SearchParams,
    ) -> SearchOutput {
        let mut visited = VisitedSet::new(base.len());
        let mut results = Vec::with_capacity(queries.len());
        let mut traces = Vec::with_capacity(queries.len());
        for (_, q) in queries.iter() {
            let (found, trace) = self.search_one(base, q, params, &mut visited);
            results.push(found);
            traces.push(trace);
        }
        SearchOutput {
            results,
            trace: BatchTrace { queries: traces },
        }
    }
}

impl MutableIndex for Hnsw {
    fn insert(&mut self, base: &Dataset, id: VectorId) -> InsertReport {
        assert_eq!(
            id as usize,
            self.layer0.len(),
            "insert must link the next id"
        );
        assert_eq!(
            base.len(),
            self.layer0.len() + 1,
            "the vector must already be appended to the dataset"
        );
        let repaired = self.link_next(base, id);
        self.base_dirty = true;
        InsertReport { id, repaired }
    }

    fn live_neighbors(&self, id: VectorId) -> &[VectorId] {
        &self.layer0[id as usize]
    }

    fn sync_base_graph(&mut self) {
        if self.base_dirty {
            self.rebuild_base();
        }
    }

    fn delete(&mut self, id: VectorId) -> bool {
        !std::mem::replace(&mut self.deleted[id as usize], true)
    }

    fn is_deleted(&self, id: VectorId) -> bool {
        self.deleted[id as usize]
    }

    fn live_count(&self) -> usize {
        self.deleted.iter().filter(|&&d| !d).count()
    }
}

/// Greedy walk on a sparse upper layer (no trace).
fn greedy_upper(
    base: &Dataset,
    adj: &LayerAdj,
    query: &[f32],
    entry: VectorId,
    dist: DistanceKind,
) -> VectorId {
    let mut trace = QueryTrace::default();
    greedy_upper_inner(base, adj, query, entry, dist, &mut trace)
}

fn greedy_upper_traced(
    base: &Dataset,
    adj: &LayerAdj,
    query: &[f32],
    entry: VectorId,
    dist: DistanceKind,
    trace: &mut QueryTrace,
) -> VectorId {
    greedy_upper_inner(base, adj, query, entry, dist, trace)
}

fn greedy_upper_inner(
    base: &Dataset,
    adj: &LayerAdj,
    query: &[f32],
    entry: VectorId,
    dist: DistanceKind,
    trace: &mut QueryTrace,
) -> VectorId {
    let mut cur = Neighbor::new(dist.eval(query, base.vector(entry)), entry);
    let mut scratch: Vec<f32> = Vec::new();
    loop {
        let Some(neighbors) = adj.lists.get(&cur.id) else {
            return cur.id;
        };
        let mut best = cur;
        // One batched kernel call per expansion instead of per-edge eval.
        let visited: Vec<VectorId> = neighbors.clone();
        dist.eval_batch_ids(query, base, &visited, &mut scratch);
        for (&nb, &d) in visited.iter().zip(&scratch) {
            let c = Neighbor::new(d, nb);
            if c < best {
                best = c;
            }
        }
        if !visited.is_empty() {
            trace.iterations.push(crate::trace::IterationTrace {
                entry: cur.id,
                visited,
            });
        }
        if best.id == cur.id {
            return cur.id;
        }
        cur = best;
    }
}

/// Beam search over any adjacency view (construction only; no trace).
fn search_adj<'a, F>(
    base: &Dataset,
    neighbors_of: F,
    query: &[f32],
    entry: VectorId,
    ef: usize,
    dist: DistanceKind,
) -> Vec<Neighbor>
where
    F: Fn(VectorId) -> &'a [VectorId],
{
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashSet};
    let mut visited: HashSet<VectorId> = HashSet::new();
    let mut candidates = BinaryHeap::new();
    let mut results: BinaryHeap<Neighbor> = BinaryHeap::new();
    let d0 = dist.eval(query, base.vector(entry));
    visited.insert(entry);
    candidates.push(Reverse(Neighbor::new(d0, entry)));
    results.push(Neighbor::new(d0, entry));
    let mut fresh: Vec<VectorId> = Vec::new();
    let mut scratch: Vec<f32> = Vec::new();
    while let Some(Reverse(cur)) = candidates.pop() {
        let worst = results.peek().map(|n| n.distance).unwrap_or(f32::INFINITY);
        if results.len() >= ef && cur.distance > worst {
            break;
        }
        // Mark, batch-score, then replay insertions in edge order
        // (bit-identical to the per-edge eval loop; see anns::beam).
        fresh.clear();
        for &nb in neighbors_of(cur.id) {
            if visited.insert(nb) {
                fresh.push(nb);
            }
        }
        dist.eval_batch_ids(query, base, &fresh, &mut scratch);
        for (&nb, &d) in fresh.iter().zip(&scratch) {
            let worst = results.peek().map(|n| n.distance).unwrap_or(f32::INFINITY);
            if results.len() < ef || d < worst {
                candidates.push(Reverse(Neighbor::new(d, nb)));
                results.push(Neighbor::new(d, nb));
                if results.len() > ef {
                    results.pop();
                }
            }
        }
    }
    let mut v = results.into_vec();
    v.sort_unstable();
    v
}

/// The HNSW select-neighbors heuristic: scan candidates in ascending
/// distance; keep one if it is closer to the query than to every already
/// kept neighbor. Falls back to nearest-first fill if too few survive.
fn select_neighbors(
    base: &Dataset,
    query: &[f32],
    candidates: &[Neighbor],
    m: usize,
    dist: DistanceKind,
) -> Vec<Neighbor> {
    let _ = query;
    let mut kept: Vec<Neighbor> = Vec::with_capacity(m);
    for &c in candidates {
        if kept.len() >= m {
            break;
        }
        let dominated = kept
            .iter()
            .any(|&s| dist.eval(base.vector(c.id), base.vector(s.id)) < c.distance);
        if !dominated {
            kept.push(c);
        }
    }
    if kept.len() < m {
        for &c in candidates {
            if kept.len() >= m {
                break;
            }
            if !kept.iter().any(|s| s.id == c.id) {
                kept.push(c);
            }
        }
    }
    kept
}

/// Prunes a vertex's layer-0 list to `max_links` using nearest-first.
fn prune_list(
    base: &Dataset,
    owner: VectorId,
    list: &mut Vec<VectorId>,
    max_links: usize,
    dist: DistanceKind,
) {
    list.sort_unstable();
    list.dedup();
    if list.len() <= max_links {
        return;
    }
    let ov = base.vector(owner).to_vec();
    list.sort_by(|&a, &b| {
        let da = dist.eval(&ov, base.vector(a));
        let db = dist.eval(&ov, base.vector(b));
        da.partial_cmp(&db).unwrap().then(a.cmp(&b))
    });
    list.truncate(max_links);
}

fn prune_hash_list(
    base: &Dataset,
    owner: VectorId,
    list: &mut Vec<VectorId>,
    max_links: usize,
    dist: DistanceKind,
) {
    prune_list(base, owner, list, max_links, dist);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_vector::recall::{ground_truth, recall_at_k};
    use ndsearch_vector::synthetic::DatasetSpec;

    #[test]
    fn build_produces_connected_base_layer() {
        let ds = DatasetSpec::sift_scaled(400, 1).build();
        let index = Hnsw::build(&ds, HnswParams::default());
        let g = index.base_graph();
        assert_eq!(g.num_vertices(), 400);
        // Every vertex has at least one link.
        let isolated = (0..400u32).filter(|&v| g.degree(v) == 0).count();
        assert_eq!(isolated, 0, "{isolated} isolated vertices");
        // Degrees bounded by 2M.
        assert!(g.max_degree() <= 2 * index.params().m);
    }

    #[test]
    fn recall_is_high_on_clustered_data() {
        let spec = DatasetSpec::sift_scaled(800, 20);
        let (base, queries) = spec.build_pair();
        let index = Hnsw::build(&base, HnswParams::default());
        let params = SearchParams::new(10, 80, DistanceKind::L2);
        let out = index.search_batch(&base, &queries, &params);
        let gt = ground_truth(&base, &queries, 10, DistanceKind::L2);
        let r = recall_at_k(&gt, &out.id_lists(), 10);
        assert!(r >= 0.90, "recall@10 = {r}");
    }

    #[test]
    fn traces_accompany_results() {
        let spec = DatasetSpec::deep_scaled(300, 5);
        let (base, queries) = spec.build_pair();
        let index = Hnsw::build(&base, HnswParams::default());
        let out = index.search_batch(&base, &queries, &SearchParams::default());
        assert_eq!(out.trace.len(), 5);
        for q in &out.trace.queries {
            assert!(!q.is_empty(), "every query should visit vertices");
        }
    }

    #[test]
    fn build_is_deterministic() {
        let ds = DatasetSpec::glove_scaled(200, 1).build();
        let a = Hnsw::build(&ds, HnswParams::default());
        let b = Hnsw::build(&ds, HnswParams::default());
        assert_eq!(a.base_graph(), b.base_graph());
        assert_eq!(a.entry_point(), b.entry_point());
    }

    #[test]
    fn search_self_returns_self() {
        let ds = DatasetSpec::sift_scaled(300, 1).build();
        let index = Hnsw::build(&ds, HnswParams::default());
        let mut vs = VisitedSet::new(ds.len());
        let (found, _) = index.search_one(
            &ds,
            ds.vector(42),
            &SearchParams::new(1, 32, DistanceKind::L2),
            &mut vs,
        );
        assert_eq!(found[0].id, 42);
    }

    #[test]
    #[should_panic(expected = "dataset must not be empty")]
    fn empty_dataset_panics() {
        Hnsw::build(&Dataset::new(4), HnswParams::default());
    }

    #[test]
    fn incremental_insert_matches_rebuild_recall() {
        let (full, queries) = DatasetSpec::sift_scaled(700, 16).build_pair();
        let n0 = 550;
        let mut prefix = Dataset::new(full.dim());
        for (_, v) in full.iter().take(n0) {
            prefix.try_push(v).unwrap();
        }
        prefix.set_stored_vector_bytes(full.stored_vector_bytes());
        let mut live = Hnsw::build(&prefix, HnswParams::default());
        for id in n0..full.len() {
            prefix.try_push(full.vector(id as VectorId)).unwrap();
            let rep = live.insert(&prefix, id as VectorId);
            assert_eq!(rep.id as usize, id);
        }
        live.sync_base_graph();
        assert_eq!(live.base_graph().num_vertices(), full.len());
        assert!(live.base_graph().max_degree() <= 2 * live.params().m);

        let rebuilt = Hnsw::build(&full, HnswParams::default());
        let params = SearchParams::new(10, 80, DistanceKind::L2);
        let gt = ndsearch_vector::recall::ground_truth(&full, &queries, 10, DistanceKind::L2);
        let r_live = recall_at_k(
            &gt,
            &live.search_batch(&full, &queries, &params).id_lists(),
            10,
        );
        let r_rebuilt = recall_at_k(
            &gt,
            &rebuilt.search_batch(&full, &queries, &params).id_lists(),
            10,
        );
        assert!(
            r_live >= r_rebuilt - 0.02,
            "live overlay recall {r_live} trails rebuild {r_rebuilt} by more than 0.02"
        );
    }

    #[test]
    fn restructured_build_matches_incremental_prefix() {
        // Building on n vectors must equal building on a prefix and
        // inserting the rest — the build loop and the online insert are
        // the same kernel consuming the same level-sampling stream.
        let ds = DatasetSpec::glove_scaled(260, 1).build();
        let whole = Hnsw::build(&ds, HnswParams::default());
        let mut prefix = Dataset::new(ds.dim());
        for (_, v) in ds.iter().take(200) {
            prefix.try_push(v).unwrap();
        }
        let mut grown = Hnsw::build(&prefix, HnswParams::default());
        for id in 200..ds.len() {
            prefix.try_push(ds.vector(id as VectorId)).unwrap();
            grown.insert(&prefix, id as VectorId);
        }
        grown.sync_base_graph();
        // The graphs are not byte-identical (the final build pass dedups
        // globally while inserts dedup incrementally), but the entry point
        // and vertex/degree structure must line up.
        assert_eq!(grown.entry_point(), whole.entry_point());
        assert_eq!(grown.num_upper_layers(), whole.num_upper_layers());
        assert_eq!(
            grown.base_graph().num_vertices(),
            whole.base_graph().num_vertices()
        );
    }

    #[test]
    fn inserts_avoid_linking_to_tombstones() {
        let mut ds = DatasetSpec::sift_scaled(150, 1).build();
        let mut index = Hnsw::build(&ds, HnswParams::default());
        for v in 0..20u32 {
            index.delete(v);
        }
        let v = ds.vector(30).to_vec();
        let id = ds.try_push(&v).unwrap();
        let rep = index.insert(&ds, id);
        index.sync_base_graph();
        for &nb in index.base_graph().neighbors(id) {
            assert!(!index.is_deleted(nb), "linked to tombstoned {nb}");
        }
        for &r in &rep.repaired {
            assert!(!index.is_deleted(r), "repaired a tombstoned vertex {r}");
        }
    }

    #[test]
    fn delete_tombstones() {
        let ds = DatasetSpec::sift_scaled(120, 1).build();
        let mut index = Hnsw::build(&ds, HnswParams::default());
        assert!(index.delete(3));
        assert!(!index.delete(3));
        assert!(index.is_deleted(3));
        assert_eq!(index.live_count(), 119);
    }
}
