//! TOGG — two-stage routing with optimized guided search (Xu et al.,
//! Knowledge-Based Systems 2021), evaluated by the paper in Fig. 21.
//!
//! TOGG optimizes the *routing* of a query on a proximity graph in two
//! stages: a guided stage that moves the query quickly into the right
//! region of the vector space, then a greedy stage that converges locally.
//! This implementation realizes the guided stage with a pilot table —
//! √n sampled vertices scanned linearly to choose the entry region (a
//! stand-in for TOGG's quantization-based direction table that preserves
//! its architectural behaviour: a small DRAM-resident structure consulted
//! once per query, followed by plain graph traversal) — and the greedy
//! stage with the shared beam kernel over a degree-bounded α-pruned graph.

use ndsearch_graph::csr::Csr;
use ndsearch_vector::dataset::Dataset;
use ndsearch_vector::rng::Pcg32;
use ndsearch_vector::topk::Neighbor;
use ndsearch_vector::{DistanceKind, VectorId};

use crate::beam::{beam_search, VisitedSet};
use crate::index::{AnnsAlgorithm, GraphAnnsIndex, SearchOutput, SearchParams};
use crate::trace::BatchTrace;
use crate::vamana::{Vamana, VamanaParams};

/// TOGG construction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToggParams {
    /// Degree bound of the underlying proximity graph.
    pub r: usize,
    /// Number of pilot (guide) vertices; 0 = √n.
    pub pilots: usize,
    /// How many pilot entries seed the greedy stage.
    pub entry_fanout: usize,
    /// Distance function.
    pub distance: DistanceKind,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ToggParams {
    fn default() -> Self {
        Self {
            r: 24,
            pilots: 0,
            entry_fanout: 2,
            distance: DistanceKind::L2,
            seed: 0x7066,
        }
    }
}

/// A built TOGG index.
#[derive(Debug, Clone)]
pub struct Togg {
    params: ToggParams,
    graph: Csr,
    pilots: Vec<VectorId>,
}

impl Togg {
    /// Builds the index (underlying graph via α-pruning, pilots via
    /// deterministic sampling).
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn build(base: &Dataset, params: ToggParams) -> Self {
        assert!(!base.is_empty(), "dataset must not be empty");
        let n = base.len();
        // Underlying degree-bounded proximity graph.
        let vamana = Vamana::build(
            base,
            VamanaParams {
                r: params.r,
                l_build: (params.r * 2).max(50),
                alpha: 1.15,
                distance: params.distance,
                seed: params.seed,
            },
        );
        let graph = vamana.base_graph().clone();

        let m = if params.pilots == 0 {
            ((n as f64).sqrt().ceil() as usize).clamp(1, n)
        } else {
            params.pilots.min(n)
        };
        let mut rng = Pcg32::seed_from_u64(params.seed ^ 0x9);
        let mut ids: Vec<VectorId> = (0..n as u32).collect();
        rng.shuffle(&mut ids);
        let pilots = ids.into_iter().take(m).collect();

        Self {
            params,
            graph,
            pilots,
        }
    }

    /// Construction parameters.
    pub fn params(&self) -> &ToggParams {
        &self.params
    }

    /// The pilot table (stage-1 guide structure).
    pub fn pilots(&self) -> &[VectorId] {
        &self.pilots
    }

    /// Stage 1: pick the `entry_fanout` pilots nearest to the query.
    pub fn guided_entries(&self, base: &Dataset, query: &[f32]) -> Vec<VectorId> {
        // One batched kernel call over the whole pilot table.
        let mut dists: Vec<f32> = Vec::new();
        self.params
            .distance
            .eval_batch_ids(query, base, &self.pilots, &mut dists);
        let mut scored: Vec<Neighbor> = self
            .pilots
            .iter()
            .zip(&dists)
            .map(|(&p, &d)| Neighbor::new(d, p))
            .collect();
        scored.sort_unstable();
        scored
            .into_iter()
            .take(self.params.entry_fanout.max(1))
            .map(|n| n.id)
            .collect()
    }
}

impl GraphAnnsIndex for Togg {
    fn algorithm(&self) -> AnnsAlgorithm {
        AnnsAlgorithm::Togg
    }

    fn base_graph(&self) -> &Csr {
        &self.graph
    }

    fn search_batch(
        &self,
        base: &Dataset,
        queries: &Dataset,
        params: &SearchParams,
    ) -> SearchOutput {
        let mut visited = VisitedSet::new(base.len());
        let mut results = Vec::with_capacity(queries.len());
        let mut traces = Vec::with_capacity(queries.len());
        for (_, q) in queries.iter() {
            // Stage 1: guided entry selection; stage 2: greedy beam.
            let entries = self.guided_entries(base, q);
            let mut out = beam_search(
                base,
                &self.graph,
                q,
                &entries,
                params.beam_width,
                params.distance,
                &mut visited,
            );
            out.found.truncate(params.k);
            results.push(out.found);
            traces.push(out.trace);
        }
        SearchOutput {
            results,
            trace: BatchTrace { queries: traces },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_vector::recall::{ground_truth, recall_at_k};
    use ndsearch_vector::synthetic::DatasetSpec;

    #[test]
    fn pilots_default_to_sqrt_n() {
        let ds = DatasetSpec::sift_scaled(400, 1).build();
        let index = Togg::build(&ds, ToggParams::default());
        assert_eq!(index.pilots().len(), 20);
    }

    #[test]
    fn guided_entries_are_close() {
        let ds = DatasetSpec::sift_scaled(400, 1).build();
        let index = Togg::build(&ds, ToggParams::default());
        let q = ds.vector(10).to_vec();
        let entries = index.guided_entries(&ds, &q);
        assert_eq!(entries.len(), 2);
        // The chosen pilot must be the best pilot.
        let best = index
            .pilots()
            .iter()
            .min_by(|&&a, &&b| {
                let da = DistanceKind::L2.eval(&q, ds.vector(a));
                let db = DistanceKind::L2.eval(&q, ds.vector(b));
                da.partial_cmp(&db).unwrap()
            })
            .copied()
            .unwrap();
        assert_eq!(entries[0], best);
    }

    #[test]
    fn recall_is_high() {
        let spec = DatasetSpec::sift_scaled(600, 15);
        let (base, queries) = spec.build_pair();
        let index = Togg::build(&base, ToggParams::default());
        let params = SearchParams::new(10, 80, DistanceKind::L2);
        let out = index.search_batch(&base, &queries, &params);
        let gt = ground_truth(&base, &queries, 10, DistanceKind::L2);
        let r = recall_at_k(&gt, &out.id_lists(), 10);
        assert!(r >= 0.85, "recall@10 = {r}");
    }

    #[test]
    fn guided_entry_shortens_traces() {
        // Two-stage routing should visit no more vertices than a fixed
        // medoid entry on average (that is its whole point).
        let spec = DatasetSpec::deep_scaled(600, 15);
        let (base, queries) = spec.build_pair();
        let togg = Togg::build(&base, ToggParams::default());
        let vam = Vamana::build(
            &base,
            VamanaParams {
                r: 24,
                l_build: 50,
                alpha: 1.15,
                distance: DistanceKind::L2,
                seed: ToggParams::default().seed,
            },
        );
        let params = SearchParams::new(10, 64, DistanceKind::L2);
        let t_togg = togg.search_batch(&base, &queries, &params).trace;
        let t_vam = vam.search_batch(&base, &queries, &params).trace;
        assert!(
            t_togg.mean_trace_len() <= t_vam.mean_trace_len() * 1.15,
            "togg {} vs vamana {}",
            t_togg.mean_trace_len(),
            t_vam.mean_trace_len()
        );
    }
}
