//! Recall-target tuning (§VII-A).
//!
//! The paper tunes each algorithm/dataset pair so that recall@10 reaches a
//! per-benchmark target (95/95/94/93/90 %) before measuring throughput —
//! otherwise platforms could trade accuracy for speed. This module finds
//! the smallest beam width (`ef`) that reaches a recall target, the same
//! knob hnswlib/DiskANN expose, by binary search over a doubling bracket.

use ndsearch_vector::dataset::Dataset;
use ndsearch_vector::recall::{ground_truth, recall_at_k};
use ndsearch_vector::VectorId;

use crate::index::{GraphAnnsIndex, SearchParams};

/// Result of a tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedSearch {
    /// The smallest beam width that met the target (or the cap).
    pub beam_width: usize,
    /// Recall@k achieved at that beam width.
    pub recall: f64,
    /// Whether the target was actually reached (false = capped out).
    pub reached: bool,
    /// The `(beam, recall)` evaluations performed, in order — the
    /// recall-throughput tradeoff curve the paper's §II-A describes.
    pub curve: Vec<(usize, f64)>,
}

/// Finds the smallest beam width whose recall@`k` on `queries` meets
/// `target`, probing beams `k, 2k, 4k, …` up to `max_beam` and then
/// binary-searching the bracket.
///
/// # Panics
/// Panics if `k == 0`, `target` is not in `(0, 1]`, or `queries` is empty.
pub fn tune_beam_width(
    index: &dyn GraphAnnsIndex,
    base: &Dataset,
    queries: &Dataset,
    k: usize,
    target: f64,
    max_beam: usize,
    distance: ndsearch_vector::DistanceKind,
) -> TunedSearch {
    assert!(k > 0, "k must be positive");
    assert!(target > 0.0 && target <= 1.0, "target must be in (0, 1]");
    assert!(!queries.is_empty(), "queries must not be empty");
    let truth = ground_truth(base, queries, k, distance);
    let mut curve = Vec::new();
    let mut eval = |beam: usize| -> f64 {
        let params = SearchParams::new(k, beam.max(k), distance);
        let out = index.search_batch(base, queries, &params);
        let ids: Vec<Vec<VectorId>> = out.id_lists();
        let r = recall_at_k(&truth, &ids, k);
        curve.push((beam.max(k), r));
        r
    };

    // Doubling bracket.
    let mut lo = k;
    let mut lo_recall = eval(lo);
    if lo_recall >= target {
        return TunedSearch {
            beam_width: lo,
            recall: lo_recall,
            reached: true,
            curve,
        };
    }
    let mut hi = lo;
    let mut hi_recall = lo_recall;
    while hi < max_beam && hi_recall < target {
        hi = (hi * 2).min(max_beam);
        hi_recall = eval(hi);
    }
    if hi_recall < target {
        return TunedSearch {
            beam_width: hi,
            recall: hi_recall,
            reached: false,
            curve,
        };
    }

    // Binary search the (lo, hi] bracket for the smallest passing beam.
    let mut best = hi;
    let mut best_recall = hi_recall;
    while hi - lo > (lo / 8).max(1) {
        let mid = lo + (hi - lo) / 2;
        let r = eval(mid);
        if r >= target {
            hi = mid;
            best = mid;
            best_recall = r;
        } else {
            lo = mid;
            lo_recall = r;
        }
    }
    let _ = lo_recall;
    TunedSearch {
        beam_width: best,
        recall: best_recall,
        reached: true,
        curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vamana::{Vamana, VamanaParams};
    use ndsearch_vector::synthetic::DatasetSpec;
    use ndsearch_vector::DistanceKind;

    fn fixture() -> (Dataset, Dataset, Vamana) {
        let (base, queries) = DatasetSpec::sift_scaled(500, 16).build_pair();
        let index = Vamana::build(&base, VamanaParams::default());
        (base, queries, index)
    }

    #[test]
    fn tuning_reaches_paper_targets() {
        let (base, queries, index) = fixture();
        let tuned = tune_beam_width(&index, &base, &queries, 10, 0.94, 512, DistanceKind::L2);
        assert!(tuned.reached, "0.94 should be reachable: {:?}", tuned.curve);
        assert!(tuned.recall >= 0.94);
        assert!(tuned.beam_width >= 10);
    }

    #[test]
    fn curve_recall_is_monotone_in_beam() {
        let (base, queries, index) = fixture();
        let tuned = tune_beam_width(&index, &base, &queries, 10, 0.99, 256, DistanceKind::L2);
        let mut sorted = tuned.curve.clone();
        sorted.sort_by_key(|&(b, _)| b);
        for pair in sorted.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1 - 0.05,
                "recall should not collapse as beam grows: {sorted:?}"
            );
        }
    }

    #[test]
    fn impossible_target_reports_capped() {
        let (base, queries, index) = fixture();
        // Cap the beam so low that 100% recall cannot be reached.
        let tuned = tune_beam_width(&index, &base, &queries, 10, 1.0, 12, DistanceKind::L2);
        if !tuned.reached {
            assert_eq!(tuned.beam_width, 12);
        }
    }

    #[test]
    #[should_panic(expected = "target must be in (0, 1]")]
    fn bad_target_panics() {
        let (base, queries, index) = fixture();
        tune_beam_width(&index, &base, &queries, 10, 1.5, 64, DistanceKind::L2);
    }
}
