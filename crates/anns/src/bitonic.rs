//! Bitonic sorting network — the kernel NDSEARCH offloads to the FPGA.
//!
//! §IV-A: SearSSD streams each query's result list (query id, candidate
//! ids, scalar distances) to an FPGA which runs a highly parallel bitonic
//! sorter (Batcher's network; reference 66 of the paper) and returns the
//! top-k. A bitonic network for `n = 2^p`
//! elements has `p(p+1)/2` stages of `n/2` parallel comparators; its
//! latency on hardware is `stages × clock`, independent of data. This
//! module executes the real network (so results are exact) and counts
//! stages/comparators so the FPGA timing model can charge the right
//! latency.

/// Statistics of one network execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitonicStats {
    /// Padded network width (next power of two).
    pub width: usize,
    /// Comparator stages (each stage is fully parallel in hardware).
    pub stages: u32,
    /// Total compare-exchange operations executed.
    pub comparators: u64,
}

impl BitonicStats {
    /// Stages a width-`n` network needs: p(p+1)/2 for n = 2^p.
    pub fn stages_for(n: usize) -> u32 {
        if n <= 1 {
            return 0;
        }
        let p = usize::BITS - (n - 1).leading_zeros();
        p * (p + 1) / 2
    }
}

/// Sorts `data` ascending with a bitonic network, returning execution
/// statistics. Works for any length: hardware sorters pad the input lanes
/// to the next power of two with copies of a maximal sentinel, so we do the
/// same (clones of the current maximum), run the full-width network, and
/// keep the first `n` outputs.
pub fn bitonic_sort<T: Ord + Clone>(data: &mut [T]) -> BitonicStats {
    let n = data.len();
    if n <= 1 {
        return BitonicStats {
            width: n,
            stages: 0,
            comparators: 0,
        };
    }
    let width = n.next_power_of_two();
    let mut stats = BitonicStats {
        width,
        stages: 0,
        comparators: 0,
    };
    // Pad with the maximum element so padding lanes sink to the tail.
    let max = data.iter().max().expect("n > 1").clone();
    let mut lanes: Vec<T> = Vec::with_capacity(width);
    lanes.extend_from_slice(data);
    lanes.resize(width, max);

    // Standard iterative bitonic network over `width` lanes.
    let mut k = 2;
    while k <= width {
        let mut j = k / 2;
        while j > 0 {
            stats.stages += 1;
            for i in 0..width {
                let l = i ^ j;
                if l > i {
                    stats.comparators += 1;
                    let ascending = (i & k) == 0;
                    let out_of_order = if ascending {
                        lanes[i] > lanes[l]
                    } else {
                        lanes[i] < lanes[l]
                    };
                    if out_of_order {
                        lanes.swap(i, l);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    data.clone_from_slice(&lanes[..n]);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndsearch_vector::rng::Pcg32;

    #[test]
    fn sorts_power_of_two() {
        let mut v = vec![5, 3, 8, 1, 9, 2, 7, 4];
        let stats = bitonic_sort(&mut v);
        assert_eq!(v, vec![1, 2, 3, 4, 5, 7, 8, 9]);
        assert_eq!(stats.width, 8);
        assert_eq!(stats.stages, BitonicStats::stages_for(8));
        assert_eq!(stats.stages, 6); // p=3 → 3·4/2
    }

    #[test]
    fn sorts_arbitrary_lengths() {
        let mut rng = Pcg32::seed_from_u64(5);
        for len in [0usize, 1, 2, 3, 5, 17, 100, 255, 1000] {
            let mut v: Vec<u32> = (0..len).map(|_| rng.next_u32() % 1000).collect();
            let mut expected = v.clone();
            expected.sort_unstable();
            bitonic_sort(&mut v);
            assert_eq!(v, expected, "len = {len}");
        }
    }

    #[test]
    fn stage_count_matches_formula() {
        assert_eq!(BitonicStats::stages_for(1), 0);
        assert_eq!(BitonicStats::stages_for(2), 1);
        assert_eq!(BitonicStats::stages_for(4), 3);
        assert_eq!(BitonicStats::stages_for(1024), 55); // p=10
        assert_eq!(BitonicStats::stages_for(2048), 66); // p=11
    }

    #[test]
    fn comparator_count_is_stage_times_half_width() {
        let mut v: Vec<u32> = (0..64).rev().collect();
        let stats = bitonic_sort(&mut v);
        assert_eq!(
            stats.comparators,
            u64::from(stats.stages) * (stats.width as u64 / 2)
        );
    }

    #[test]
    fn already_sorted_stays_sorted() {
        let mut v: Vec<u32> = (0..128).collect();
        bitonic_sort(&mut v);
        assert_eq!(v, (0..128).collect::<Vec<_>>());
    }
}
