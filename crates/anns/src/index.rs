//! The common interface every graph-traversal ANNS index implements.

use ndsearch_graph::csr::Csr;
use ndsearch_vector::dataset::Dataset;
use ndsearch_vector::topk::Neighbor;
use ndsearch_vector::{DistanceKind, VectorId};

use crate::trace::BatchTrace;

/// Search-phase parameters shared by all algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchParams {
    /// How many neighbors to return per query (top-k).
    pub k: usize,
    /// Beam width `ef` — the size of the result list kept during traversal.
    pub beam_width: usize,
    /// Distance function (must match the one used at construction).
    pub distance: DistanceKind,
}

impl Default for SearchParams {
    fn default() -> Self {
        Self {
            k: 10,
            beam_width: 64,
            distance: DistanceKind::L2,
        }
    }
}

impl SearchParams {
    /// Convenience constructor.
    ///
    /// # Panics
    /// Panics if `k == 0`, `beam_width == 0` or `beam_width < k`.
    pub fn new(k: usize, beam_width: usize, distance: DistanceKind) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(beam_width >= k, "beam width must be at least k");
        Self {
            k,
            beam_width,
            distance,
        }
    }
}

/// Results + trace of a batch search.
#[derive(Debug, Clone)]
pub struct SearchOutput {
    /// Per query: the top-k neighbors, ascending by distance.
    pub results: Vec<Vec<Neighbor>>,
    /// Per query: the memory trace, in the same order.
    pub trace: BatchTrace,
}

impl SearchOutput {
    /// Extracts bare id lists (for recall evaluation).
    pub fn id_lists(&self) -> Vec<Vec<VectorId>> {
        self.results
            .iter()
            .map(|r| r.iter().map(|n| n.id).collect())
            .collect()
    }
}

/// Which algorithm an index implements (used for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnnsAlgorithm {
    /// Hierarchical navigable small world graphs.
    Hnsw,
    /// DiskANN's Vamana graph.
    DiskAnn,
    /// Hierarchical-clustering-based graph.
    Hcnng,
    /// Two-stage routing on a proximity graph.
    Togg,
    /// Exact brute force (baseline / ground truth).
    BruteForce,
}

impl std::fmt::Display for AnnsAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AnnsAlgorithm::Hnsw => "HNSW",
            AnnsAlgorithm::DiskAnn => "DiskANN",
            AnnsAlgorithm::Hcnng => "HCNNG",
            AnnsAlgorithm::Togg => "TOGG",
            AnnsAlgorithm::BruteForce => "BruteForce",
        };
        f.write_str(s)
    }
}

/// A built graph-traversal ANNS index.
///
/// The trait is object safe so experiment harnesses can hold a
/// heterogeneous list of algorithms.
pub trait GraphAnnsIndex {
    /// Which algorithm this is.
    fn algorithm(&self) -> AnnsAlgorithm;

    /// The base proximity graph that gets placed on flash (for HNSW this
    /// is layer 0, which holds every vertex).
    fn base_graph(&self) -> &Csr;

    /// Runs the search phase for a batch of queries, recording traces.
    fn search_batch(
        &self,
        base: &Dataset,
        queries: &Dataset,
        params: &SearchParams,
    ) -> SearchOutput;
}

/// Record of one incremental insert: the vertex linked and the existing
/// vertices whose adjacency was rewritten by backlink repair. The serving
/// layer patches the flash-resident graph overlay for exactly the
/// `repaired` set, so this doubles as the update's write-amplification
/// footprint at the graph-metadata level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertReport {
    /// The vertex that was linked in.
    pub id: VectorId,
    /// Existing vertices whose neighbor lists changed.
    pub repaired: Vec<VectorId>,
}

/// Extension of [`GraphAnnsIndex`] for deployments that mutate online:
/// incremental insert — reusing the algorithm's construction kernels
/// (HNSW's select-neighbors heuristic, Vamana's RobustPrune with backlink
/// repair) — and tombstone delete.
///
/// The contract mirrors a serving ingest path: the caller appends the
/// vector to its dataset first, then links the returned id into the graph.
/// Deletes only tombstone: the vertex stays routable (searches may pass
/// through it) until a compaction drops it, so recall on the live set
/// degrades gracefully under churn.
pub trait MutableIndex: GraphAnnsIndex {
    /// Links vertex `id` — which must already be the last vector of
    /// `base` — into the live graph and returns which existing vertices'
    /// adjacency was repaired.
    ///
    /// Inserts mutate the live adjacency lists only; the
    /// [`base_graph`](GraphAnnsIndex::base_graph) CSR snapshot lags until
    /// [`sync_base_graph`](Self::sync_base_graph) is called, so a burst
    /// of inserts pays one O(V+E) rebuild, not one per insert. Read
    /// current adjacency through
    /// [`live_neighbors`](Self::live_neighbors) in the meantime.
    ///
    /// # Panics
    /// Panics if `id` is not the next id (`base.len() - 1` and one past
    /// the current graph).
    fn insert(&mut self, base: &Dataset, id: VectorId) -> InsertReport;

    /// Neighbor list of a vertex read from the live mutable adjacency —
    /// always current, even while the CSR snapshot is stale.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    fn live_neighbors(&self, id: VectorId) -> &[VectorId];

    /// Rebuilds the [`base_graph`](GraphAnnsIndex::base_graph) CSR
    /// snapshot if inserts are pending (a no-op otherwise). The serving
    /// layer calls this once per scheduling round.
    fn sync_base_graph(&mut self);

    /// Tombstones a vertex. Returns `false` if it was already deleted.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    fn delete(&mut self, id: VectorId) -> bool;

    /// Whether a vertex has been tombstoned.
    fn is_deleted(&self, id: VectorId) -> bool;

    /// Vertices that are present and not tombstoned.
    fn live_count(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_valid() {
        let p = SearchParams::default();
        assert!(p.beam_width >= p.k);
    }

    #[test]
    #[should_panic(expected = "beam width must be at least k")]
    fn beam_below_k_panics() {
        SearchParams::new(10, 5, DistanceKind::L2);
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(AnnsAlgorithm::Hnsw.to_string(), "HNSW");
        assert_eq!(AnnsAlgorithm::DiskAnn.to_string(), "DiskANN");
    }
}
