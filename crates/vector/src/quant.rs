//! Compressed-vector codes scored in DRAM during traversal.
//!
//! The DiskANN recipe (Subramanya et al., NeurIPS'19): graph traversal
//! scores *compressed* codes held in SSD-internal DRAM, and only the
//! final candidates pay a flash read for exact full-precision distances.
//! This module supplies the two code families and the trained code table
//! the deployment tier keeps alongside the dataset:
//!
//! - [`Int8Quantizer`] — per-dimension min/max affine scalar
//!   quantization, 1 byte per dimension (4x smaller than f32 rows).
//! - [`PqQuantizer`] — product quantization, `m` subspaces with
//!   `2^bits`-entry codebooks trained by seeded k-means, 1 byte per
//!   subspace (up to `dim`x smaller).
//!
//! Both decode to an f32 reconstruction and score it through the *same*
//! dispatched distance kernels as full-precision rows, so quantized
//! traversal is bit-identical across thread counts, shard step orders
//! and regeneration for free. The [`ScoreSource`] trait is the seam the
//! beam searcher is generic over: `Dataset` implements it with the
//! existing batched hot path, [`QuantCodes`] implements it with
//! decode-and-score, and traversal code cannot tell them apart.

use crate::dataset::{Dataset, VectorId};
use crate::distance::DistanceKind;
use crate::rng::Pcg32;

/// Cap on rows examined while training a quantizer. Datasets at or below
/// the cap are scanned in full (making the int8 reconstruction bound
/// global); larger ones train on a seeded uniform sample.
const TRAIN_SAMPLE_CAP: usize = 65_536;

/// K-means refinement passes for PQ codebooks.
const PQ_KMEANS_ITERS: usize = 8;

/// Which compressed-code family traversal scores in DRAM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QuantSpec {
    /// No code table: traversal reads full-precision rows from flash.
    #[default]
    None,
    /// Per-dimension min/max affine int8 codes (1 byte per dimension).
    Int8,
    /// Product quantization: `m` subspaces x `bits`-bit codebooks
    /// (1 byte per subspace).
    Pq {
        /// Number of subspaces the dimensions are split into.
        m: usize,
        /// Codebook index width; `2^bits` centroids per subspace (1..=8).
        bits: u8,
    },
}

impl QuantSpec {
    /// Whether a code table exists under this spec.
    pub fn enabled(&self) -> bool {
        !matches!(self, QuantSpec::None)
    }

    /// Bytes of one vector's code under this spec (0 for `None`).
    pub fn code_bytes(&self, dim: usize) -> usize {
        match *self {
            QuantSpec::None => 0,
            QuantSpec::Int8 => dim,
            QuantSpec::Pq { m, .. } => m.min(dim),
        }
    }
}

/// Anything the beam searcher can score candidates against: the
/// full-precision [`Dataset`] (batched distance kernels) or a
/// [`QuantCodes`] table (decode-and-score from DRAM-resident codes).
pub trait ScoreSource {
    /// Number of scorable rows.
    fn len(&self) -> usize;

    /// Whether no rows are scorable.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `eval_batch`-shaped scoring: clears `out` and pushes one distance
    /// per id, in id order.
    fn score_batch(
        &self,
        distance: DistanceKind,
        query: &[f32],
        ids: &[VectorId],
        out: &mut Vec<f32>,
    );

    /// Scores a single row.
    fn score_one(&self, distance: DistanceKind, query: &[f32], id: VectorId) -> f32;
}

impl ScoreSource for Dataset {
    fn len(&self) -> usize {
        Dataset::len(self)
    }

    fn score_batch(
        &self,
        distance: DistanceKind,
        query: &[f32],
        ids: &[VectorId],
        out: &mut Vec<f32>,
    ) {
        distance.eval_batch_ids(query, self, ids, out);
    }

    fn score_one(&self, distance: DistanceKind, query: &[f32], id: VectorId) -> f32 {
        distance.eval(query, self.vector(id))
    }
}

/// Per-dimension min/max affine int8 quantizer.
///
/// Codes are `q = round((x - min_d) / scale_d)` clamped to `0..=255`
/// with `scale_d = (max_d - min_d) / 255`; decoding returns
/// `min_d + scale_d * q`. For values inside the trained `[min, max]`
/// range the reconstruction error is at most `scale_d / 2` per
/// dimension (plus f32 rounding); out-of-range values clamp.
#[derive(Debug, Clone, PartialEq)]
pub struct Int8Quantizer {
    min: Vec<f32>,
    scale: Vec<f32>,
}

impl Int8Quantizer {
    /// Trains per-dimension ranges from `dataset` — a full scan when the
    /// dataset is at most `TRAIN_SAMPLE_CAP` (65 536) rows, a seeded
    /// uniform sample otherwise. Training is a pure function of
    /// `(dataset, seed)`.
    pub fn train(dataset: &Dataset, seed: u64) -> Self {
        let dim = dataset.dim();
        let mut min = vec![f32::INFINITY; dim];
        let mut max = vec![f32::NEG_INFINITY; dim];
        for id in train_rows(dataset.len(), seed) {
            for (d, &x) in dataset.vector(id).iter().enumerate() {
                min[d] = min[d].min(x);
                max[d] = max[d].max(x);
            }
        }
        let scale: Vec<f32> = min
            .iter()
            .zip(&max)
            .map(|(&lo, &hi)| if hi > lo { (hi - lo) / 255.0 } else { 0.0 })
            .collect();
        for lo in &mut min {
            if !lo.is_finite() {
                *lo = 0.0; // empty training set: every code decodes to 0
            }
        }
        Self { min, scale }
    }

    /// Dimensionality the quantizer was trained for.
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Per-dimension quantization step; the reconstruction error bound is
    /// half of this per dimension for in-range values.
    pub fn scale(&self) -> &[f32] {
        &self.scale
    }

    /// Appends the code of `row` (one byte per dimension) to `out`.
    pub fn encode_into(&self, row: &[f32], out: &mut Vec<u8>) {
        assert_eq!(row.len(), self.dim(), "row dim mismatch");
        for (d, &x) in row.iter().enumerate() {
            let q = if self.scale[d] > 0.0 {
                ((x - self.min[d]) / self.scale[d])
                    .round()
                    .clamp(0.0, 255.0) as u8
            } else {
                0
            };
            out.push(q);
        }
    }

    /// Decodes `code` into `out` (len `dim`).
    pub fn decode_into(&self, code: &[u8], out: &mut [f32]) {
        for (d, &q) in code.iter().enumerate() {
            out[d] = self.min[d] + self.scale[d] * f32::from(q);
        }
    }
}

/// Product quantizer: `m` subspaces, each with a `2^bits`-entry codebook
/// trained by seeded k-means (stable init, lowest-index tie-breaking), so
/// training and encoding are pure functions of `(dataset, spec, seed)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PqQuantizer {
    dim: usize,
    /// Subspace boundaries: subspace `s` covers dims `bounds[s]..bounds[s+1]`.
    bounds: Vec<usize>,
    /// Per-subspace codebooks, each flat `k * sub_dim`.
    centroids: Vec<Vec<f32>>,
    k: usize,
}

impl PqQuantizer {
    /// Trains `m` codebooks of `2^bits` centroids each.
    ///
    /// # Panics
    /// Panics if `m == 0`, `m > dim`, or `bits` is outside `1..=8`.
    pub fn train(dataset: &Dataset, m: usize, bits: u8, seed: u64) -> Self {
        let dim = dataset.dim();
        assert!(m >= 1 && m <= dim, "m must be in 1..=dim");
        assert!((1..=8).contains(&bits), "bits must be in 1..=8");
        let k = 1usize << bits;
        let bounds: Vec<usize> = (0..=m).map(|s| s * dim / m).collect();
        let rows = train_rows(dataset.len(), seed);
        let mut centroids = Vec::with_capacity(m);
        let mut rng = Pcg32::seed_from_u64(seed ^ 0x9E37_79B9);
        for s in 0..m {
            let (lo, hi) = (bounds[s], bounds[s + 1]);
            let sub_dim = hi - lo;
            // Init: k seeded draws from the training rows (duplicates are
            // harmless; empty clusters keep their centroid).
            let mut cb = vec![0.0f32; k * sub_dim];
            if !rows.is_empty() {
                for c in 0..k {
                    let pick = rows[rng.index(rows.len())];
                    cb[c * sub_dim..(c + 1) * sub_dim]
                        .copy_from_slice(&dataset.vector(pick)[lo..hi]);
                }
                for _ in 0..PQ_KMEANS_ITERS {
                    let mut sums = vec![0.0f64; k * sub_dim];
                    let mut counts = vec![0u64; k];
                    for &id in &rows {
                        let sub = &dataset.vector(id)[lo..hi];
                        let c = nearest_centroid(&cb, sub);
                        counts[c] += 1;
                        for (acc, &x) in sums[c * sub_dim..(c + 1) * sub_dim].iter_mut().zip(sub) {
                            *acc += f64::from(x);
                        }
                    }
                    for c in 0..k {
                        if counts[c] == 0 {
                            continue; // keep the previous centroid
                        }
                        for d in 0..sub_dim {
                            cb[c * sub_dim + d] = (sums[c * sub_dim + d] / counts[c] as f64) as f32;
                        }
                    }
                }
            }
            centroids.push(cb);
        }
        Self {
            dim,
            bounds,
            centroids,
            k,
        }
    }

    /// Dimensionality the quantizer was trained for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of subspaces (= code bytes per vector).
    pub fn m(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Appends the code of `row` (one byte per subspace) to `out`.
    pub fn encode_into(&self, row: &[f32], out: &mut Vec<u8>) {
        assert_eq!(row.len(), self.dim, "row dim mismatch");
        for s in 0..self.m() {
            let sub = &row[self.bounds[s]..self.bounds[s + 1]];
            out.push(nearest_centroid(&self.centroids[s], sub) as u8);
        }
    }

    /// Decodes `code` into `out` (len `dim`).
    pub fn decode_into(&self, code: &[u8], out: &mut [f32]) {
        for (s, &c) in code.iter().enumerate() {
            let (lo, hi) = (self.bounds[s], self.bounds[s + 1]);
            let sub_dim = hi - lo;
            let c = (c as usize).min(self.k - 1);
            out[lo..hi].copy_from_slice(&self.centroids[s][c * sub_dim..(c + 1) * sub_dim]);
        }
    }
}

/// Nearest centroid of a flat `k * sub_dim` codebook by squared L2, ties
/// broken toward the lowest index (strict `<` on a left-to-right scan).
fn nearest_centroid(codebook: &[f32], sub: &[f32]) -> usize {
    let sub_dim = sub.len();
    let k = codebook.len() / sub_dim.max(1);
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for c in 0..k {
        let cent = &codebook[c * sub_dim..(c + 1) * sub_dim];
        let mut d = 0.0f32;
        for (x, y) in sub.iter().zip(cent) {
            let t = x - y;
            d += t * t;
        }
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Training row ids: all of `0..n` when within [`TRAIN_SAMPLE_CAP`], else
/// a seeded uniform sample of the cap size (ascending, deduplicated by
/// construction order of the draw — duplicates are harmless for both
/// min/max scans and k-means).
fn train_rows(n: usize, seed: u64) -> Vec<VectorId> {
    if n <= TRAIN_SAMPLE_CAP {
        (0..n as VectorId).collect()
    } else {
        let mut rng = Pcg32::seed_from_u64(seed);
        (0..TRAIN_SAMPLE_CAP)
            .map(|_| rng.index(n) as VectorId)
            .collect()
    }
}

/// A trained quantizer of either family.
#[derive(Debug, Clone, PartialEq)]
pub enum Quantizer {
    /// Scalar int8 codes.
    Int8(Int8Quantizer),
    /// Product-quantized codes.
    Pq(PqQuantizer),
}

impl Quantizer {
    /// Trains the family `spec` selects; `None` for [`QuantSpec::None`].
    pub fn train(spec: QuantSpec, dataset: &Dataset, seed: u64) -> Option<Self> {
        match spec {
            QuantSpec::None => None,
            QuantSpec::Int8 => Some(Quantizer::Int8(Int8Quantizer::train(dataset, seed))),
            QuantSpec::Pq { m, bits } => Some(Quantizer::Pq(PqQuantizer::train(
                dataset,
                m.min(dataset.dim().max(1)),
                bits,
                seed,
            ))),
        }
    }

    /// Bytes of one vector's code.
    pub fn code_bytes(&self) -> usize {
        match self {
            Quantizer::Int8(q) => q.dim(),
            Quantizer::Pq(q) => q.m(),
        }
    }

    /// Dimensionality of decoded vectors.
    pub fn dim(&self) -> usize {
        match self {
            Quantizer::Int8(q) => q.dim(),
            Quantizer::Pq(q) => q.dim(),
        }
    }

    /// Appends the code of `row` to `out`.
    pub fn encode_into(&self, row: &[f32], out: &mut Vec<u8>) {
        match self {
            Quantizer::Int8(q) => q.encode_into(row, out),
            Quantizer::Pq(q) => q.encode_into(row, out),
        }
    }

    /// Decodes `code` into `out` (len `dim`).
    pub fn decode_into(&self, code: &[u8], out: &mut [f32]) {
        match self {
            Quantizer::Int8(q) => q.decode_into(code, out),
            Quantizer::Pq(q) => q.decode_into(code, out),
        }
    }
}

/// The DRAM-resident code table a quantized deployment holds alongside
/// its dataset: one fixed-width code per vector plus the trained
/// quantizer, appended through on inserts and re-packed on compaction.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantCodes {
    quantizer: Quantizer,
    codes: Vec<u8>,
    len: usize,
}

impl QuantCodes {
    /// Trains a quantizer per `spec` and encodes every row of `dataset`.
    /// Returns `None` for [`QuantSpec::None`].
    pub fn train(spec: QuantSpec, dataset: &Dataset, seed: u64) -> Option<Self> {
        let quantizer = Quantizer::train(spec, dataset, seed)?;
        let mut codes = Vec::with_capacity(dataset.len() * quantizer.code_bytes());
        for (_, row) in dataset.iter() {
            quantizer.encode_into(row, &mut codes);
        }
        Some(Self {
            quantizer,
            codes,
            len: dataset.len(),
        })
    }

    /// Number of encoded vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no codes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of one vector's code — the per-record DRAM footprint the
    /// query property table switches to under quantization.
    pub fn code_bytes(&self) -> usize {
        self.quantizer.code_bytes()
    }

    /// Total DRAM bytes the code table occupies.
    pub fn total_bytes(&self) -> u64 {
        self.codes.len() as u64
    }

    /// The trained quantizer.
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// The code of vector `id`.
    pub fn code(&self, id: VectorId) -> &[u8] {
        let cb = self.code_bytes();
        &self.codes[id as usize * cb..(id as usize + 1) * cb]
    }

    /// Encodes and appends `row` through the *same* trained quantizer
    /// (the FreshDiskANN insert path: new vectors get codes too).
    pub fn push(&mut self, row: &[f32]) {
        let quantizer = &self.quantizer;
        assert_eq!(row.len(), quantizer.dim(), "row dim mismatch");
        quantizer.encode_into(row, &mut self.codes);
        self.len += 1;
    }

    /// Re-packs the table from `dataset` with the already-trained
    /// quantizer (the compaction path). Re-encoding is a pure function of
    /// the rows, so a re-pack over unchanged rows is bit-identical.
    pub fn repack(&self, dataset: &Dataset) -> Self {
        let mut codes = Vec::with_capacity(dataset.len() * self.code_bytes());
        for (_, row) in dataset.iter() {
            self.quantizer.encode_into(row, &mut codes);
        }
        Self {
            quantizer: self.quantizer.clone(),
            codes,
            len: dataset.len(),
        }
    }

    /// Decodes vector `id` into `out` (len `dim`).
    pub fn decode_into(&self, id: VectorId, out: &mut [f32]) {
        self.quantizer.decode_into(self.code(id), out);
    }

    /// `eval_batch`-shaped scoring against codes: clears `out` and pushes
    /// one distance per id. Each code is decoded to its reconstruction
    /// and scored through the same dispatched kernels as full-precision
    /// rows.
    pub fn eval_batch_ids(
        &self,
        distance: DistanceKind,
        query: &[f32],
        ids: &[VectorId],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.reserve(ids.len());
        let mut scratch = vec![0.0f32; self.quantizer.dim()];
        for &id in ids {
            self.decode_into(id, &mut scratch);
            out.push(distance.eval(query, &scratch));
        }
    }
}

impl ScoreSource for QuantCodes {
    fn len(&self) -> usize {
        QuantCodes::len(self)
    }

    fn score_batch(
        &self,
        distance: DistanceKind,
        query: &[f32],
        ids: &[VectorId],
        out: &mut Vec<f32>,
    ) {
        self.eval_batch_ids(distance, query, ids, out);
    }

    fn score_one(&self, distance: DistanceKind, query: &[f32], id: VectorId) -> f32 {
        let mut scratch = vec![0.0f32; self.quantizer.dim()];
        self.decode_into(id, &mut scratch);
        distance.eval(query, &scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::DatasetSpec;

    fn fixture(n: usize) -> Dataset {
        DatasetSpec::sift_scaled(n, 1).build()
    }

    #[test]
    fn spec_code_bytes() {
        assert_eq!(QuantSpec::None.code_bytes(128), 0);
        assert!(!QuantSpec::None.enabled());
        assert_eq!(QuantSpec::Int8.code_bytes(128), 128);
        assert_eq!(QuantSpec::Pq { m: 16, bits: 8 }.code_bytes(128), 16);
        assert!(QuantSpec::Int8.enabled());
    }

    #[test]
    fn int8_round_trip_error_within_half_step() {
        let ds = fixture(300);
        let q = Int8Quantizer::train(&ds, 7);
        let mut code = Vec::new();
        let mut rec = vec![0.0f32; ds.dim()];
        for (_, row) in ds.iter() {
            code.clear();
            q.encode_into(row, &mut code);
            q.decode_into(&code, &mut rec);
            for (d, (&x, &r)) in row.iter().zip(&rec).enumerate() {
                let bound = q.scale()[d] * 0.5 + q.scale()[d] * 1e-3 + 1e-6;
                assert!((x - r).abs() <= bound, "dim {d}: |{x} - {r}| > {bound}");
            }
        }
    }

    #[test]
    fn int8_training_is_deterministic() {
        let ds = fixture(200);
        assert_eq!(Int8Quantizer::train(&ds, 3), Int8Quantizer::train(&ds, 3));
    }

    #[test]
    fn pq_trains_and_reconstructs_reasonably() {
        let ds = fixture(400);
        let pq = PqQuantizer::train(&ds, 16, 6, 11);
        assert_eq!(pq.m(), 16);
        let mut code = Vec::new();
        let mut rec = vec![0.0f32; ds.dim()];
        // PQ reconstruction must beat the trivial all-zeros baseline by a
        // wide margin on clustered data.
        let mut err = 0.0f64;
        let mut base = 0.0f64;
        for (_, row) in ds.iter() {
            code.clear();
            pq.encode_into(row, &mut code);
            assert_eq!(code.len(), 16);
            pq.decode_into(&code, &mut rec);
            for (&x, &r) in row.iter().zip(&rec) {
                err += f64::from((x - r) * (x - r));
                base += f64::from(x * x);
            }
        }
        assert!(err < base * 0.5, "PQ error {err} vs baseline {base}");
    }

    #[test]
    fn pq_uneven_subspaces_cover_every_dim() {
        // dim = 128 not divisible by m = 10: bounds must tile exactly.
        let ds = fixture(50);
        let pq = PqQuantizer::train(&ds, 10, 4, 0);
        let mut code = Vec::new();
        pq.encode_into(ds.vector(0), &mut code);
        let mut rec = vec![f32::NAN; ds.dim()];
        pq.decode_into(&code, &mut rec);
        assert!(rec.iter().all(|x| x.is_finite()), "uncovered dimension");
    }

    #[test]
    fn codes_push_matches_batch_encode() {
        // FreshDiskANN invariant: inserting row-by-row through the trained
        // quantizer yields the exact codes a bulk encode produces.
        let ds = fixture(120);
        let full = QuantCodes::train(QuantSpec::Int8, &ds, 5).unwrap();
        let head = Dataset::from_rows(ds.dim(), (0..100).map(|i| ds.vector(i).to_vec()).collect())
            .unwrap();
        let mut grown = full.repack(&head);
        for i in 100..120 {
            grown.push(ds.vector(i));
        }
        assert_eq!(grown, full);
        // Re-pack over unchanged rows is bit-identical (compaction path).
        assert_eq!(full.repack(&ds), full);
    }

    #[test]
    fn score_source_parity_between_dataset_and_codes() {
        let ds = fixture(80);
        let codes = QuantCodes::train(QuantSpec::Int8, &ds, 1).unwrap();
        let ids: Vec<VectorId> = vec![3, 0, 79, 41];
        let q = ds.vector(7);
        for kind in DistanceKind::ALL {
            let mut exact = Vec::new();
            ScoreSource::score_batch(&ds, kind, q, &ids, &mut exact);
            let mut approx = Vec::new();
            codes.score_batch(kind, q, &ids, &mut approx);
            assert_eq!(exact.len(), approx.len());
            for (i, (&e, &a)) in exact.iter().zip(&approx).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    codes.score_one(kind, q, ids[i]).to_bits(),
                    "batch vs single divergence"
                );
                // Approximate but close on int8 codes.
                assert!(
                    (e - a).abs() <= e.abs().max(1.0) * 0.05,
                    "{kind:?} id {}: exact {e} vs code {a}",
                    ids[i]
                );
            }
        }
    }

    #[test]
    fn quantized_footprint_is_fraction_of_full_precision() {
        // deep-1b stores f32 components (96-d x 4 B), so int8 codes are a
        // 4x saving; sift-like u8 corpora need PQ for a DRAM win.
        let ds = DatasetSpec::deep_scaled(100, 1).build();
        let int8 = QuantCodes::train(QuantSpec::Int8, &ds, 0).unwrap();
        assert_eq!(int8.code_bytes() * 4, ds.stored_vector_bytes());
        let pq = QuantCodes::train(QuantSpec::Pq { m: 16, bits: 8 }, &ds, 0).unwrap();
        assert_eq!(pq.code_bytes(), 16);
        assert_eq!(pq.total_bytes(), 16 * 100);
        assert!(pq.total_bytes() * 2 < (ds.stored_vector_bytes() * ds.len()) as u64);
    }

    #[test]
    fn empty_dataset_trains_degenerate_table() {
        let ds = Dataset::new(8);
        let codes = QuantCodes::train(QuantSpec::Int8, &ds, 0).unwrap();
        assert!(codes.is_empty());
        assert_eq!(codes.code_bytes(), 8);
        assert!(QuantCodes::train(QuantSpec::None, &ds, 0).is_none());
    }
}
