//! Deterministic pseudo-random number generators.
//!
//! All stochastic pieces of the reproduction (dataset synthesis, graph
//! construction tie-breaking, ECC fault injection) run on these small,
//! seedable generators so every experiment is bit-reproducible across runs
//! and platforms. [`SplitMix64`] is used for seeding and coarse decisions;
//! [`Pcg32`] is the workhorse stream generator.

/// SplitMix64 generator (Steele et al.), mainly used to expand a single
/// `u64` seed into independent streams.
///
/// # Example
/// ```
/// use ndsearch_vector::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

/// PCG-XSH-RR 32-bit generator (O'Neill). Small state, good statistical
/// quality, and cheap enough to sit inside construction inner loops.
///
/// # Example
/// ```
/// use ndsearch_vector::rng::Pcg32;
/// let mut rng = Pcg32::seed_from_u64(42);
/// let x = rng.next_u32();
/// let y = rng.next_u32();
/// assert_ne!(x, y); // overwhelmingly likely
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Creates a generator from an explicit state and stream selector.
    pub fn new(state: u64, stream: u64) -> Self {
        let mut rng = Self {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(state);
        rng.next_u32();
        rng
    }

    /// Expands a single `u64` seed (via [`SplitMix64`]) into state + stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let state = sm.next_u64();
        let stream = sm.next_u64();
        Self::new(state, stream)
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection-free for our purposes: 128-bit multiply-shift is
        // statistically adequate for simulation decisions.
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Samples a standard normal deviate via Box-Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            if u1 > f64::EPSILON {
                let u2 = self.next_f64();
                let r = (-2.0 * u1.ln()).sqrt();
                return r * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

impl Default for Pcg32 {
    fn default() -> Self {
        Self::seed_from_u64(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_differs_by_seed() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn pcg_reference_stream_is_stable() {
        // Pin the output so accidental algorithm changes are caught.
        let mut rng = Pcg32::new(42, 54);
        let first: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        let mut rng2 = Pcg32::new(42, 54);
        let again: Vec<u32> = (0..4).map(|_| rng2.next_u32()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = Pcg32::seed_from_u64(9);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            let f = rng.next_f32();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Pcg32::seed_from_u64(5);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Pcg32::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = Pcg32::seed_from_u64(77);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_estimates_probability() {
        let mut rng = Pcg32::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.chance(0.25)).count();
        let p = hits as f64 / 20_000.0;
        assert!((p - 0.25).abs() < 0.02, "p = {p}");
    }
}
