//! Distance kernels.
//!
//! The `<SearchPage>` instruction carries a 2-bit "Distance" field selecting
//! Euclidean, angular or inner-product distance (Fig. 9b). [`DistanceKind`]
//! is the software mirror of that field; [`DistanceKind::encode`] /
//! [`DistanceKind::decode`] round-trip the 2-bit encoding used by the flash
//! command model.

use crate::dataset::Dataset;
use crate::VectorId;

/// The distance family computed by a MAC group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistanceKind {
    /// Squared Euclidean distance (monotone in L2; the sqrt is never needed
    /// for ranking so hardware skips it).
    #[default]
    L2,
    /// Angular (cosine) distance: `1 - cos(a, b)`.
    Angular,
    /// Negative inner product (so that *smaller is closer*, like the other
    /// two kinds).
    InnerProduct,
}

impl DistanceKind {
    /// All supported kinds, in encoding order.
    pub const ALL: [DistanceKind; 3] = [
        DistanceKind::L2,
        DistanceKind::Angular,
        DistanceKind::InnerProduct,
    ];

    /// Evaluates the distance between two equal-length vectors.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn eval(self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        match self {
            DistanceKind::L2 => l2_squared(a, b),
            DistanceKind::Angular => angular(a, b),
            DistanceKind::InnerProduct => neg_inner_product(a, b),
        }
    }

    /// Convenience: distance between two dataset vectors.
    ///
    /// # Panics
    /// Panics if either id is out of bounds.
    pub fn eval_ids(self, ds: &Dataset, a: VectorId, b: VectorId) -> f32 {
        self.eval(ds.vector(a), ds.vector(b))
    }

    /// Encodes into the 2-bit "Distance" field of `<SearchPage>`.
    pub fn encode(self) -> u8 {
        match self {
            DistanceKind::L2 => 0b00,
            DistanceKind::Angular => 0b01,
            DistanceKind::InnerProduct => 0b10,
        }
    }

    /// Decodes the 2-bit "Distance" field. Returns `None` for the reserved
    /// encoding `0b11`.
    pub fn decode(bits: u8) -> Option<Self> {
        match bits & 0b11 {
            0b00 => Some(DistanceKind::L2),
            0b01 => Some(DistanceKind::Angular),
            0b10 => Some(DistanceKind::InnerProduct),
            _ => None,
        }
    }

    /// Number of multiply-accumulate operations one evaluation costs, used
    /// by the MAC-group timing model (`dim` MACs for L2/IP, `3*dim` for
    /// angular which needs dot, |a|² and |b|²).
    pub fn mac_ops(self, dim: usize) -> usize {
        match self {
            DistanceKind::L2 | DistanceKind::InnerProduct => dim,
            DistanceKind::Angular => 3 * dim,
        }
    }
}

impl std::fmt::Display for DistanceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DistanceKind::L2 => "l2",
            DistanceKind::Angular => "angular",
            DistanceKind::InnerProduct => "inner-product",
        };
        f.write_str(s)
    }
}

/// Squared Euclidean distance.
#[inline]
pub fn l2_squared(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Angular distance `1 - cos(a,b)`; zero vectors are treated as maximally
/// distant (distance 1).
#[inline]
pub fn angular(a: &[f32], b: &[f32]) -> f32 {
    let d = dot(a, b);
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - (d / (na * nb)).clamp(-1.0, 1.0)
}

/// Negative inner product (smaller = more similar).
#[inline]
pub fn neg_inner_product(a: &[f32], b: &[f32]) -> f32 {
    -dot(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_matches_hand_math() {
        assert_eq!(l2_squared(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(DistanceKind::L2.eval(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn angular_of_parallel_vectors_is_zero() {
        let d = angular(&[1.0, 2.0], &[2.0, 4.0]);
        assert!(d.abs() < 1e-6, "d = {d}");
    }

    #[test]
    fn angular_of_orthogonal_vectors_is_one() {
        let d = angular(&[1.0, 0.0], &[0.0, 5.0]);
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn angular_of_opposite_vectors_is_two() {
        let d = angular(&[1.0, 0.0], &[-3.0, 0.0]);
        assert!((d - 2.0).abs() < 1e-6);
    }

    #[test]
    fn angular_handles_zero_vector() {
        assert_eq!(angular(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn inner_product_prefers_aligned() {
        let q = [1.0, 1.0];
        let close = [2.0, 2.0];
        let far = [-1.0, 0.5];
        assert!(neg_inner_product(&q, &close) < neg_inner_product(&q, &far));
    }

    #[test]
    fn encode_decode_round_trip() {
        for kind in DistanceKind::ALL {
            assert_eq!(DistanceKind::decode(kind.encode()), Some(kind));
        }
        assert_eq!(DistanceKind::decode(0b11), None);
    }

    #[test]
    fn mac_ops_scale_with_dim() {
        assert_eq!(DistanceKind::L2.mac_ops(128), 128);
        assert_eq!(DistanceKind::Angular.mac_ops(128), 384);
        assert_eq!(DistanceKind::InnerProduct.mac_ops(10), 10);
    }

    #[test]
    fn eval_ids_reads_dataset() {
        let ds = Dataset::from_rows(2, vec![vec![0.0, 0.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(DistanceKind::L2.eval_ids(&ds, 0, 1), 25.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn eval_rejects_mismatched_dims() {
        DistanceKind::L2.eval(&[1.0], &[1.0, 2.0]);
    }
}
