//! Distance kernels.
//!
//! The `<SearchPage>` instruction carries a 2-bit "Distance" field selecting
//! Euclidean, angular or inner-product distance (Fig. 9b). [`DistanceKind`]
//! is the software mirror of that field; [`DistanceKind::encode`] /
//! [`DistanceKind::decode`] round-trip the 2-bit encoding used by the flash
//! command model.
//!
//! # Kernel tiers
//!
//! Three implementations of each reduction coexist:
//!
//! - **scalar** ([`l2_squared_scalar`], [`dot_scalar`]): the original
//!   single-accumulator loops. Kept as the reference semantics for
//!   equivalence proptests and as the benchmark baseline.
//! - **unrolled** ([`l2_squared_unrolled`], [`dot_unrolled`]): portable
//!   8-lane kernels with four independent accumulator groups (32 floats per
//!   iteration). The layout breaks the sequential float dependency chain so
//!   stable rustc auto-vectorizes it; no `unsafe`, no target features.
//! - **avx2** (`x86_64` only): explicit AVX2/FMA intrinsics behind
//!   `is_x86_feature_detected!`, same four-accumulator shape with
//!   `_mm256_fmadd_ps`.
//!
//! The public entry points ([`l2_squared`], [`dot`], [`angular`],
//! [`neg_inner_product`], [`DistanceKind::eval`], the batched variants)
//! dispatch **once per process**: the first call probes the CPU and the
//! `NDSEARCH_NO_SIMD` environment variable and caches the decision, so
//! every thread in a run uses the *same* kernel. That is what keeps reports
//! bit-identical across `exec_threads` settings — thread count never
//! changes which kernel scores a vector, only where it runs. Setting
//! `NDSEARCH_NO_SIMD=1` pins the portable unrolled kernel, which is
//! deterministic across x86-64 hosts (no FMA contraction); results differ
//! from the AVX2 path only by summation-order ulps, never structurally.
//!
//! # Length contract
//!
//! Batch entry points ([`DistanceKind::eval_batch`],
//! [`DistanceKind::eval_batch_ids`]) and [`DistanceKind::eval`] validate
//! slice lengths once up front. The raw kernels below them only
//! `debug_assert!` equal lengths: in release builds a mismatch yields an
//! unspecified (but memory-safe) value computed over the common prefix —
//! they never read out of bounds.

use crate::dataset::Dataset;
use crate::VectorId;
use std::sync::OnceLock;

/// The distance family computed by a MAC group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistanceKind {
    /// Squared Euclidean distance (monotone in L2; the sqrt is never needed
    /// for ranking so hardware skips it).
    #[default]
    L2,
    /// Angular (cosine) distance: `1 - cos(a, b)`.
    Angular,
    /// Negative inner product (so that *smaller is closer*, like the other
    /// two kinds).
    InnerProduct,
}

impl DistanceKind {
    /// All supported kinds, in encoding order.
    pub const ALL: [DistanceKind; 3] = [
        DistanceKind::L2,
        DistanceKind::Angular,
        DistanceKind::InnerProduct,
    ];

    /// Evaluates the distance between two equal-length vectors.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn eval(self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        match self {
            DistanceKind::L2 => l2_squared(a, b),
            DistanceKind::Angular => angular(a, b),
            DistanceKind::InnerProduct => neg_inner_product(a, b),
        }
    }

    /// Convenience: distance between two dataset vectors.
    ///
    /// # Panics
    /// Panics if either id is out of bounds.
    pub fn eval_ids(self, ds: &Dataset, a: VectorId, b: VectorId) -> f32 {
        self.eval(ds.vector(a), ds.vector(b))
    }

    /// Evaluates the distance from `query` to every slice in `points`,
    /// writing results into `out` element-wise.
    ///
    /// Results are **bit-identical** to calling [`DistanceKind::eval`] on
    /// each pair: the batch runs the same dispatched per-pair kernel, it
    /// only hoists the length validation (and, for [`DistanceKind::Angular`],
    /// the query-norm computation — which is itself bit-identical because it
    /// reruns the same reduction on the same data) out of the loop.
    ///
    /// # Panics
    /// Panics if `points.len() != out.len()` or any point's length differs
    /// from `query.len()`.
    pub fn eval_batch(self, query: &[f32], points: &[&[f32]], out: &mut [f32]) {
        assert_eq!(
            points.len(),
            out.len(),
            "eval_batch: output length mismatch"
        );
        for p in points {
            assert_eq!(p.len(), query.len(), "dimension mismatch");
        }
        match self {
            DistanceKind::L2 => {
                for (o, p) in out.iter_mut().zip(points) {
                    *o = l2_squared(query, p);
                }
            }
            DistanceKind::Angular => {
                let nq = dot(query, query).sqrt();
                for (o, p) in out.iter_mut().zip(points) {
                    *o = angular_prenormed(nq, query, p);
                }
            }
            DistanceKind::InnerProduct => {
                for (o, p) in out.iter_mut().zip(points) {
                    *o = neg_inner_product(query, p);
                }
            }
        }
    }

    /// Batched scoring of dataset rows: clears `out` and appends the
    /// distance from `query` to `ds.vector(id)` for each id, in order.
    ///
    /// This is the beam-expansion hot path: a vertex's whole neighbor list
    /// is scored in one call, with the dimension check done once instead of
    /// per edge. Results match per-pair [`DistanceKind::eval`] bit-for-bit
    /// (see [`DistanceKind::eval_batch`]).
    ///
    /// # Panics
    /// Panics if `query.len() != ds.dim()` or any id is out of bounds.
    pub fn eval_batch_ids(self, query: &[f32], ds: &Dataset, ids: &[VectorId], out: &mut Vec<f32>) {
        assert_eq!(query.len(), ds.dim(), "dimension mismatch");
        out.clear();
        out.reserve(ids.len());
        match self {
            DistanceKind::L2 => {
                for &id in ids {
                    out.push(l2_squared(query, ds.vector(id)));
                }
            }
            DistanceKind::Angular => {
                let nq = dot(query, query).sqrt();
                for &id in ids {
                    out.push(angular_prenormed(nq, query, ds.vector(id)));
                }
            }
            DistanceKind::InnerProduct => {
                for &id in ids {
                    out.push(neg_inner_product(query, ds.vector(id)));
                }
            }
        }
    }

    /// Encodes into the 2-bit "Distance" field of `<SearchPage>`.
    pub fn encode(self) -> u8 {
        match self {
            DistanceKind::L2 => 0b00,
            DistanceKind::Angular => 0b01,
            DistanceKind::InnerProduct => 0b10,
        }
    }

    /// Decodes the 2-bit "Distance" field. Returns `None` for the reserved
    /// encoding `0b11`.
    pub fn decode(bits: u8) -> Option<Self> {
        match bits & 0b11 {
            0b00 => Some(DistanceKind::L2),
            0b01 => Some(DistanceKind::Angular),
            0b10 => Some(DistanceKind::InnerProduct),
            _ => None,
        }
    }

    /// Number of multiply-accumulate operations one evaluation costs, used
    /// by the MAC-group timing model (`dim` MACs for L2/IP, `3*dim` for
    /// angular which needs dot, |a|² and |b|²).
    pub fn mac_ops(self, dim: usize) -> usize {
        match self {
            DistanceKind::L2 | DistanceKind::InnerProduct => dim,
            DistanceKind::Angular => 3 * dim,
        }
    }
}

impl std::fmt::Display for DistanceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DistanceKind::L2 => "l2",
            DistanceKind::Angular => "angular",
            DistanceKind::InnerProduct => "inner-product",
        };
        f.write_str(s)
    }
}

/// Whether the AVX2/FMA kernels are in force for this process.
///
/// Decided once on first use and cached: true iff the CPU reports AVX2+FMA
/// and `NDSEARCH_NO_SIMD` is unset/empty/`0` under the workspace-wide
/// [`crate::env::env_flag`] rule (trimmed, `"0"` means unset). Exposed so
/// benches and the `kernel_sweep` bin can record which kernel produced a
/// measurement.
pub fn simd_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        if crate::env::env_flag("NDSEARCH_NO_SIMD") {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Squared Euclidean distance (dispatched kernel).
#[inline]
pub fn l2_squared(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: simd_enabled() verified avx2+fma via is_x86_feature_detected!.
        return unsafe { x86::l2_squared_avx2(a, b) };
    }
    l2_squared_unrolled(a, b)
}

/// Dot product (dispatched kernel).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: simd_enabled() verified avx2+fma via is_x86_feature_detected!.
        return unsafe { x86::dot_avx2(a, b) };
    }
    dot_unrolled(a, b)
}

/// Angular distance `1 - cos(a,b)`; zero vectors are treated as maximally
/// distant (distance 1).
#[inline]
pub fn angular(a: &[f32], b: &[f32]) -> f32 {
    angular_prenormed(dot(a, a).sqrt(), a, b)
}

/// Angular distance with `|a|` already computed (batch path hoists the
/// query norm; bit-identical to [`angular`] because the norm is the same
/// reduction on the same data).
#[inline]
fn angular_prenormed(na: f32, a: &[f32], b: &[f32]) -> f32 {
    let d = dot(a, b);
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - (d / (na * nb)).clamp(-1.0, 1.0)
}

/// Negative inner product (smaller = more similar).
#[inline]
pub fn neg_inner_product(a: &[f32], b: &[f32]) -> f32 {
    -dot(a, b)
}

/// Reference scalar squared-L2: the original single-accumulator loop.
///
/// Kept as the semantic baseline for the equivalence proptests and the
/// `kernel_sweep` speedup denominator; hot paths use [`l2_squared`].
#[inline]
pub fn l2_squared_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Reference scalar dot product (see [`l2_squared_scalar`]).
#[inline]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Folds the four 8-lane accumulator groups down to one f32 with a fixed
/// pairwise tree, so the reduction order is identical on every host.
#[inline]
fn reduce_groups(g0: [f32; 8], g1: [f32; 8], g2: [f32; 8], g3: [f32; 8]) -> f32 {
    let mut lanes = [0.0f32; 8];
    for l in 0..8 {
        lanes[l] = (g0[l] + g1[l]) + (g2[l] + g3[l]);
    }
    let lo = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    let hi = (lanes[4] + lanes[5]) + (lanes[6] + lanes[7]);
    lo + hi
}

/// Portable unrolled squared-L2: 8 lanes × 4 independent accumulator
/// groups (32 floats per iteration), auto-vectorizable on stable Rust.
///
/// Length contract: `debug_assert!`s equal lengths; in release a mismatch
/// is memory-safe but computes over the common prefix only.
#[inline]
pub fn l2_squared_unrolled(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut g0 = [0.0f32; 8];
    let mut g1 = [0.0f32; 8];
    let mut g2 = [0.0f32; 8];
    let mut g3 = [0.0f32; 8];
    let mut ca = a.chunks_exact(32);
    let mut cb = b.chunks_exact(32);
    for (ka, kb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..8 {
            let d0 = ka[l] - kb[l];
            let d1 = ka[l + 8] - kb[l + 8];
            let d2 = ka[l + 16] - kb[l + 16];
            let d3 = ka[l + 24] - kb[l + 24];
            g0[l] += d0 * d0;
            g1[l] += d1 * d1;
            g2[l] += d2 * d2;
            g3[l] += d3 * d3;
        }
    }
    let mut ha = ca.remainder().chunks_exact(8);
    let mut hb = cb.remainder().chunks_exact(8);
    for (ka, kb) in ha.by_ref().zip(hb.by_ref()) {
        for l in 0..8 {
            let d = ka[l] - kb[l];
            g0[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ha.remainder().iter().zip(hb.remainder()) {
        let d = x - y;
        tail += d * d;
    }
    reduce_groups(g0, g1, g2, g3) + tail
}

/// Portable unrolled dot product (see [`l2_squared_unrolled`]).
#[inline]
pub fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut g0 = [0.0f32; 8];
    let mut g1 = [0.0f32; 8];
    let mut g2 = [0.0f32; 8];
    let mut g3 = [0.0f32; 8];
    let mut ca = a.chunks_exact(32);
    let mut cb = b.chunks_exact(32);
    for (ka, kb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..8 {
            g0[l] += ka[l] * kb[l];
            g1[l] += ka[l + 8] * kb[l + 8];
            g2[l] += ka[l + 16] * kb[l + 16];
            g3[l] += ka[l + 24] * kb[l + 24];
        }
    }
    let mut ha = ca.remainder().chunks_exact(8);
    let mut hb = cb.remainder().chunks_exact(8);
    for (ka, kb) in ha.by_ref().zip(hb.by_ref()) {
        for l in 0..8 {
            g0[l] += ka[l] * kb[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ha.remainder().iter().zip(hb.remainder()) {
        tail += x * y;
    }
    reduce_groups(g0, g1, g2, g3) + tail
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX2/FMA kernels, same 8-lane × 4-group shape as the portable
    //! unrolled variants but with fused multiply-add (one rounding per MAC
    //! instead of two — this is the source of the ulp-level difference vs
    //! the portable path).
    #![deny(unsafe_op_in_unsafe_fn)]

    use std::arch::x86_64::*;

    /// Horizontal sum of four 8-lane accumulators (fixed tree order).
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    fn reduce4(a0: __m256, a1: __m256, a2: __m256, a3: __m256) -> f32 {
        let s = _mm256_add_ps(_mm256_add_ps(a0, a1), _mm256_add_ps(a2, a3));
        let lo = _mm256_castps256_ps128(s);
        let hi = _mm256_extractf128_ps(s, 1);
        let q = _mm_add_ps(lo, hi);
        let d = _mm_add_ps(q, _mm_movehl_ps(q, q));
        let r = _mm_add_ss(d, _mm_shuffle_ps(d, d, 1));
        _mm_cvtss_f32(r)
    }

    /// # Safety
    /// The CPU must support AVX2 and FMA (checked by `simd_enabled`).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn l2_squared_avx2(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        let n = a.len().min(b.len());
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        unsafe {
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut a2 = _mm256_setzero_ps();
            let mut a3 = _mm256_setzero_ps();
            let mut i = 0usize;
            while i + 32 <= n {
                let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
                let d1 = _mm256_sub_ps(
                    _mm256_loadu_ps(pa.add(i + 8)),
                    _mm256_loadu_ps(pb.add(i + 8)),
                );
                let d2 = _mm256_sub_ps(
                    _mm256_loadu_ps(pa.add(i + 16)),
                    _mm256_loadu_ps(pb.add(i + 16)),
                );
                let d3 = _mm256_sub_ps(
                    _mm256_loadu_ps(pa.add(i + 24)),
                    _mm256_loadu_ps(pb.add(i + 24)),
                );
                a0 = _mm256_fmadd_ps(d0, d0, a0);
                a1 = _mm256_fmadd_ps(d1, d1, a1);
                a2 = _mm256_fmadd_ps(d2, d2, a2);
                a3 = _mm256_fmadd_ps(d3, d3, a3);
                i += 32;
            }
            while i + 8 <= n {
                let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
                a0 = _mm256_fmadd_ps(d, d, a0);
                i += 8;
            }
            let mut sum = reduce4(a0, a1, a2, a3);
            while i < n {
                let d = *pa.add(i) - *pb.add(i);
                sum += d * d;
                i += 1;
            }
            sum
        }
    }

    /// # Safety
    /// The CPU must support AVX2 and FMA (checked by `simd_enabled`).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
        let n = a.len().min(b.len());
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        unsafe {
            let mut a0 = _mm256_setzero_ps();
            let mut a1 = _mm256_setzero_ps();
            let mut a2 = _mm256_setzero_ps();
            let mut a3 = _mm256_setzero_ps();
            let mut i = 0usize;
            while i + 32 <= n {
                a0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), a0);
                a1 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(pa.add(i + 8)),
                    _mm256_loadu_ps(pb.add(i + 8)),
                    a1,
                );
                a2 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(pa.add(i + 16)),
                    _mm256_loadu_ps(pb.add(i + 16)),
                    a2,
                );
                a3 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(pa.add(i + 24)),
                    _mm256_loadu_ps(pb.add(i + 24)),
                    a3,
                );
                i += 32;
            }
            while i + 8 <= n {
                a0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), a0);
                i += 8;
            }
            let mut sum = reduce4(a0, a1, a2, a3);
            while i < n {
                sum += *pa.add(i) * *pb.add(i);
                i += 1;
            }
            sum
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_matches_hand_math() {
        assert_eq!(l2_squared(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(DistanceKind::L2.eval(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn angular_of_parallel_vectors_is_zero() {
        let d = angular(&[1.0, 2.0], &[2.0, 4.0]);
        assert!(d.abs() < 1e-6, "d = {d}");
    }

    #[test]
    fn angular_of_orthogonal_vectors_is_one() {
        let d = angular(&[1.0, 0.0], &[0.0, 5.0]);
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn angular_of_opposite_vectors_is_two() {
        let d = angular(&[1.0, 0.0], &[-3.0, 0.0]);
        assert!((d - 2.0).abs() < 1e-6);
    }

    #[test]
    fn angular_handles_zero_vector() {
        assert_eq!(angular(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
        assert_eq!(angular(&[1.0, 1.0], &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn inner_product_prefers_aligned() {
        let q = [1.0, 1.0];
        let close = [2.0, 2.0];
        let far = [-1.0, 0.5];
        assert!(neg_inner_product(&q, &close) < neg_inner_product(&q, &far));
    }

    #[test]
    fn encode_decode_round_trip() {
        for kind in DistanceKind::ALL {
            assert_eq!(DistanceKind::decode(kind.encode()), Some(kind));
        }
        assert_eq!(DistanceKind::decode(0b11), None);
    }

    #[test]
    fn mac_ops_scale_with_dim() {
        assert_eq!(DistanceKind::L2.mac_ops(128), 128);
        assert_eq!(DistanceKind::Angular.mac_ops(128), 384);
        assert_eq!(DistanceKind::InnerProduct.mac_ops(10), 10);
    }

    #[test]
    fn eval_ids_reads_dataset() {
        let ds = Dataset::from_rows(2, vec![vec![0.0, 0.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(DistanceKind::L2.eval_ids(&ds, 0, 1), 25.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn eval_rejects_mismatched_dims() {
        DistanceKind::L2.eval(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn eval_batch_rejects_mismatched_points() {
        let mut out = [0.0f32; 1];
        DistanceKind::L2.eval_batch(&[1.0, 2.0], &[&[1.0][..]], &mut out);
    }

    fn sample(dim: usize, seed: u32) -> Vec<f32> {
        // Deterministic LCG; values in [-1, 1).
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(12345);
        (0..dim)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                (s >> 8) as f32 / (1u32 << 23) as f32 - 1.0
            })
            .collect()
    }

    fn ulp_diff(a: f32, b: f32) -> u32 {
        if a == b {
            return 0;
        }
        let ia = a.to_bits() as i64;
        let ib = b.to_bits() as i64;
        // Map to a monotone integer line (works for same-sign finite floats).
        let ma = if ia < 0 { i32::MIN as i64 - ia } else { ia };
        let mb = if ib < 0 { i32::MIN as i64 - ib } else { ib };
        (ma - mb).unsigned_abs().min(u32::MAX as u64) as u32
    }

    #[test]
    fn kernel_tiers_agree_within_ulps() {
        for dim in [1usize, 7, 8, 31, 32, 33, 64, 127, 128, 257] {
            let a = sample(dim, 1 + dim as u32);
            let b = sample(dim, 1000 + dim as u32);
            assert!(
                ulp_diff(l2_squared_scalar(&a, &b), l2_squared_unrolled(&a, &b)) <= 16,
                "l2 dim {dim}"
            );
            assert!(
                ulp_diff(l2_squared_scalar(&a, &b), l2_squared(&a, &b)) <= 16,
                "l2 dispatch dim {dim}"
            );
            assert!(
                ulp_diff(dot_scalar(&a, &a), dot_unrolled(&a, &a)) <= 16,
                "dot dim {dim}"
            );
            assert!(
                ulp_diff(dot_scalar(&a, &a), dot(&a, &a)) <= 16,
                "dot dispatch dim {dim}"
            );
        }
    }

    #[test]
    fn eval_batch_matches_eval_bitwise() {
        let dim = 67;
        let q = sample(dim, 9);
        let rows: Vec<Vec<f32>> = (0..13).map(|i| sample(dim, 100 + i)).collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        for kind in DistanceKind::ALL {
            let mut out = vec![0.0f32; refs.len()];
            kind.eval_batch(&q, &refs, &mut out);
            for (p, got) in refs.iter().zip(&out) {
                assert_eq!(got.to_bits(), kind.eval(&q, p).to_bits(), "{kind}");
            }
        }
    }

    #[test]
    fn eval_batch_ids_matches_eval_bitwise() {
        let dim = 33;
        let rows: Vec<Vec<f32>> = (0..10).map(|i| sample(dim, 500 + i)).collect();
        let ds = Dataset::from_rows(dim, rows).unwrap();
        let q = sample(dim, 77);
        let ids: Vec<VectorId> = vec![3, 0, 9, 3, 5];
        for kind in DistanceKind::ALL {
            let mut out = Vec::new();
            kind.eval_batch_ids(&q, &ds, &ids, &mut out);
            assert_eq!(out.len(), ids.len());
            for (&id, got) in ids.iter().zip(&out) {
                assert_eq!(got.to_bits(), kind.eval(&q, ds.vector(id)).to_bits());
            }
        }
    }
}
