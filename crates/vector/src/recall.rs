//! Exact ground truth and recall@k evaluation.

use crate::dataset::Dataset;
use crate::distance::DistanceKind;
use crate::topk::{Neighbor, TopK};
use crate::VectorId;

/// Computes the exact `k` nearest base vectors for one query by brute-force
/// scan — the "NNS" the paper's ANNS approximates (§II-A).
pub fn exact_knn(base: &Dataset, query: &[f32], k: usize, kind: DistanceKind) -> Vec<Neighbor> {
    let mut top = TopK::new(k);
    for (id, v) in base.iter() {
        top.push(Neighbor::new(kind.eval(query, v), id));
    }
    top.into_sorted_vec()
}

/// Computes ground truth id lists for every query.
pub fn ground_truth(
    base: &Dataset,
    queries: &Dataset,
    k: usize,
    kind: DistanceKind,
) -> Vec<Vec<VectorId>> {
    queries
        .iter()
        .map(|(_, q)| exact_knn(base, q, k, kind).iter().map(|n| n.id).collect())
        .collect()
}

/// recall@k of `found` against `truth` for a single query: the fraction of
/// true top-k ids present among the first `k` found ids.
pub fn recall_single(truth: &[VectorId], found: &[VectorId], k: usize) -> f64 {
    if k == 0 || truth.is_empty() {
        return 0.0;
    }
    let k = k.min(truth.len());
    let hits = truth[..k]
        .iter()
        .filter(|t| found.iter().take(k).any(|f| f == *t))
        .count();
    hits as f64 / k as f64
}

/// Mean recall@k over a batch of queries.
///
/// # Panics
/// Panics if the two lists have different lengths.
pub fn recall_at_k(truth: &[Vec<VectorId>], found: &[Vec<VectorId>], k: usize) -> f64 {
    assert_eq!(truth.len(), found.len(), "query count mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    truth
        .iter()
        .zip(found.iter())
        .map(|(t, f)| recall_single(t, f, k))
        .sum::<f64>()
        / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_dataset(n: usize) -> Dataset {
        // Points at x = 0, 1, 2, ... on a 2-d line.
        Dataset::from_rows(2, (0..n).map(|i| vec![i as f32, 0.0]).collect()).unwrap()
    }

    #[test]
    fn exact_knn_finds_closest_points() {
        let ds = line_dataset(10);
        let nn = exact_knn(&ds, &[3.2, 0.0], 3, DistanceKind::L2);
        let ids: Vec<_> = nn.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 4, 2]);
    }

    #[test]
    fn ground_truth_shape() {
        let base = line_dataset(5);
        let queries = Dataset::from_rows(2, vec![vec![0.1, 0.0], vec![4.0, 0.0]]).unwrap();
        let gt = ground_truth(&base, &queries, 2, DistanceKind::L2);
        assert_eq!(gt.len(), 2);
        assert_eq!(gt[0], vec![0, 1]);
        assert_eq!(gt[1], vec![4, 3]);
    }

    #[test]
    fn perfect_recall_is_one() {
        let truth = vec![vec![1, 2, 3]];
        let found = vec![vec![3, 2, 1]];
        assert_eq!(recall_at_k(&truth, &found, 3), 1.0);
    }

    #[test]
    fn partial_recall() {
        let truth = vec![vec![1, 2, 3, 4]];
        let found = vec![vec![1, 9, 3, 8]];
        assert!((recall_at_k(&truth, &found, 4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recall_only_counts_first_k_found() {
        let truth = vec![vec![1, 2]];
        let found = vec![vec![7, 8, 1, 2]]; // right ids but beyond position k
        assert_eq!(recall_at_k(&truth, &found, 2), 0.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(recall_at_k(&[], &[], 10), 0.0);
        assert_eq!(recall_single(&[], &[1], 1), 0.0);
    }
}
