//! One documented parsing rule for every `NDSEARCH_*` environment
//! override.
//!
//! The workspace's runtime switches (`NDSEARCH_NO_SIMD`,
//! `NDSEARCH_EXEC_THREADS`, `NDSEARCH_NO_QUANT`, ...) historically grew
//! ad-hoc parsers with diverging whitespace and `"0"` semantics. Every
//! switch now goes through the two helpers here:
//!
//! - **Flags** ([`env_flag`]): set iff the variable exists and its
//!   *trimmed* value is non-empty and not `"0"`. `export FLAG=""`,
//!   `FLAG="  "` and `FLAG=0` all mean *unset* — so shell scripts can
//!   pass a disabling value instead of having to `unset`.
//! - **Counts** ([`env_usize`]): a trimmed base-10 integer `>= 1`
//!   overrides; anything else (absent, empty, garbage, `0`) falls back
//!   to the caller's default. `0` is rejected rather than clamped so
//!   "explicitly disabled" can never masquerade as "one worker".

/// Whether the boolean override `name` is set.
///
/// Returns `true` iff the variable exists and its trimmed value is
/// non-empty and not `"0"`.
pub fn env_flag(name: &str) -> bool {
    matches!(std::env::var(name), Ok(v) if {
        let v = v.trim();
        !v.is_empty() && v != "0"
    })
}

/// The numeric override `name`, if it parses to a trimmed base-10
/// integer `>= 1`; `None` (caller's default applies) otherwise.
pub fn env_usize(name: &str) -> Option<usize> {
    parse_usize(std::env::var(name).ok().as_deref())
}

/// Pure core of [`env_usize`], split out so tests can cover the parsing
/// rule without mutating process environment.
pub fn parse_usize(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// Pure core of [`env_flag`]; see [`parse_usize`] for the rationale.
pub fn parse_flag(value: Option<&str>) -> bool {
    matches!(value, Some(v) if {
        let v = v.trim();
        !v.is_empty() && v != "0"
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_semantics() {
        assert!(!parse_flag(None));
        assert!(!parse_flag(Some("")));
        assert!(!parse_flag(Some("  ")));
        assert!(!parse_flag(Some("0")));
        assert!(!parse_flag(Some(" 0 ")), "trimmed zero is still unset");
        assert!(parse_flag(Some("1")));
        assert!(parse_flag(Some(" 1 ")), "whitespace must not flip a flag");
        assert!(parse_flag(Some("yes")));
        assert!(parse_flag(Some("00")), "only the literal 0 disables");
    }

    #[test]
    fn usize_semantics() {
        assert_eq!(parse_usize(None), None);
        assert_eq!(parse_usize(Some("")), None);
        assert_eq!(parse_usize(Some("  ")), None);
        assert_eq!(parse_usize(Some("0")), None, "0 is disabled, not clamped");
        assert_eq!(parse_usize(Some("-3")), None);
        assert_eq!(parse_usize(Some("4x")), None);
        assert_eq!(parse_usize(Some("4")), Some(4));
        assert_eq!(parse_usize(Some(" 8 ")), Some(8), "trimmed integer parses");
    }

    #[test]
    fn env_round_trip() {
        // Process-global state: use a name no other test touches.
        std::env::set_var("NDSEARCH_ENV_HELPER_TEST", " 6 ");
        assert!(env_flag("NDSEARCH_ENV_HELPER_TEST"));
        assert_eq!(env_usize("NDSEARCH_ENV_HELPER_TEST"), Some(6));
        std::env::set_var("NDSEARCH_ENV_HELPER_TEST", " 0 ");
        assert!(!env_flag("NDSEARCH_ENV_HELPER_TEST"));
        assert_eq!(env_usize("NDSEARCH_ENV_HELPER_TEST"), None);
        std::env::remove_var("NDSEARCH_ENV_HELPER_TEST");
        assert!(!env_flag("NDSEARCH_ENV_HELPER_TEST"));
        assert_eq!(env_usize("NDSEARCH_ENV_HELPER_TEST"), None);
    }
}
