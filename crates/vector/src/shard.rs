//! Dataset sharding for scale-out serving.
//!
//! DiskANN-family deployments shard billion-point corpora across devices
//! and merge per-shard top-k (Subramanya et al., NeurIPS'19; FreshDiskANN,
//! Singh et al., 2021). This module holds the *pure* partitioning half of
//! that design — deciding which simulated device owns which vector — so
//! the cluster serving tier (`ndsearch-core`'s `cluster` module) can stay
//! focused on scheduling and merging.
//!
//! A [`ShardPlan`] is the ground truth of the global ↔ (shard, local) id
//! mapping. Every id a client sees is a **global** id (the construction
//! order of the full dataset); every id a shard's engine sees is a
//! **local** id (the construction order of that shard's sub-dataset). The
//! plan is extended as online inserts land ([`ShardPlan::push_at`]), so
//! the mapping stays total over the deployment's whole life.
//!
//! Two partition policies are provided:
//!
//! * [`ShardPolicy::Hash`] — each vector hashes (seeded SplitMix64 of its
//!   global id) to a shard. Placement is oblivious to insertion order,
//!   which is what a distributed deployment with independent ingest
//!   routers would use; shard sizes fluctuate around `n / shards`.
//! * [`ShardPolicy::BalancedSize`] — contiguous ranges of near-equal size
//!   (difference at most one vector); online inserts go to the currently
//!   least-loaded shard. Deterministic, and optimal for the
//!   load-imbalance factor the cluster report tracks.

use crate::dataset::Dataset;
use crate::rng::SplitMix64;
use crate::VectorId;

/// How a [`ShardPlan`] assigns vectors to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Seeded hash of the global id. Oblivious placement; sizes are
    /// near-uniform for large `n` but not exactly balanced.
    Hash,
    /// Contiguous near-equal ranges (sizes differ by at most one);
    /// inserts route to the least-loaded shard.
    BalancedSize,
}

impl ShardPolicy {
    /// Display name (used by benches and reports).
    pub fn name(self) -> &'static str {
        match self {
            ShardPolicy::Hash => "hash",
            ShardPolicy::BalancedSize => "balanced",
        }
    }
}

/// The global ↔ (shard, local) id mapping of a sharded deployment.
///
/// # Example
/// ```
/// use ndsearch_vector::shard::{ShardPlan, ShardPolicy};
/// let plan = ShardPlan::partition(10, 4, ShardPolicy::BalancedSize, 7);
/// assert_eq!(plan.num_shards(), 4);
/// assert_eq!(plan.len(), 10);
/// // Every global id round-trips through its shard's local space.
/// for g in 0..10 {
///     let (s, l) = (plan.shard_of(g), plan.local_of(g));
///     assert_eq!(plan.global_of(s, l), g);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    policy: ShardPolicy,
    seed: u64,
    /// Global id → owning shard.
    assignments: Vec<u32>,
    /// Global id → local id within the owning shard.
    locals: Vec<VectorId>,
    /// Shard → global ids, in local-id order.
    members: Vec<Vec<VectorId>>,
}

/// Placeholder for a local slot whose insert has not resolved yet (see
/// [`ShardPlan::push_at`]); never a valid global id in a resolved plan.
const UNRESOLVED: VectorId = VectorId::MAX;

/// Seeded SplitMix64 of a global id (stateless, so routing a given id is
/// independent of how many ids were routed before it).
fn hash_shard(seed: u64, g: VectorId, shards: usize) -> u32 {
    let mut rng = SplitMix64::new(seed ^ (u64::from(g) << 1 | 1));
    (rng.next_u64() % shards as u64) as u32
}

impl ShardPlan {
    /// Partitions `n` vectors over `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn partition(n: usize, shards: usize, policy: ShardPolicy, seed: u64) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let mut plan = Self {
            policy,
            seed,
            assignments: Vec::with_capacity(n),
            locals: Vec::with_capacity(n),
            members: vec![Vec::new(); shards],
        };
        for g in 0..n as VectorId {
            let s = match policy {
                ShardPolicy::Hash => hash_shard(seed, g, shards),
                // Contiguous near-equal ranges: the first `n % shards`
                // shards get one extra vector.
                ShardPolicy::BalancedSize => {
                    let (q, r) = (n / shards, n % shards);
                    let g = g as usize;
                    let cut = r * (q + 1);
                    if g < cut {
                        (g / (q + 1)) as u32
                    } else {
                        (r + (g - cut) / q.max(1)) as u32
                    }
                }
            };
            plan.record(s);
        }
        plan
    }

    /// Appends the records for one new global id owned by `shard`.
    fn record(&mut self, shard: u32) -> VectorId {
        let g = self.assignments.len() as VectorId;
        self.assignments.push(shard);
        self.locals
            .push(self.members[shard as usize].len() as VectorId);
        self.members[shard as usize].push(g);
        g
    }

    /// The partition policy this plan was built (and routes inserts) with.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.members.len()
    }

    /// Total vectors mapped (base partition plus pushed inserts).
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the plan maps no vectors.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Owning shard of a global id.
    ///
    /// # Panics
    /// Panics if `g` is out of range.
    pub fn shard_of(&self, g: VectorId) -> usize {
        self.assignments[g as usize] as usize
    }

    /// Local id of a global id within its owning shard.
    ///
    /// # Panics
    /// Panics if `g` is out of range.
    pub fn local_of(&self, g: VectorId) -> VectorId {
        self.locals[g as usize]
    }

    /// Global id of `local` on `shard`.
    ///
    /// # Panics
    /// Panics if the pair is out of range or the slot belongs to an
    /// online insert that has not resolved yet.
    pub fn global_of(&self, shard: usize, local: VectorId) -> VectorId {
        let g = self.members[shard][local as usize];
        assert_ne!(g, UNRESOLVED, "local slot's insert is not resolved yet");
        g
    }

    /// Global ids owned by `shard`, in local-id order.
    pub fn members(&self, shard: usize) -> &[VectorId] {
        &self.members[shard]
    }

    /// Vectors currently owned by `shard`.
    pub fn shard_len(&self, shard: usize) -> usize {
        self.members[shard].len()
    }

    /// Which shard the next online insert should land on, given how many
    /// inserts are already routed-but-unresolved per shard (`pending`)
    /// and which shards can accept traffic (`live` — e.g. shards the
    /// cluster actually staged; a plan can leave a shard empty). Hash
    /// policy hashes the tentative next global id and probes linearly to
    /// the next live shard; balanced-size picks the least-loaded live
    /// shard counting pending routes, ties to the lowest shard index.
    /// Deterministic either way. Returns `None` when no shard is live.
    ///
    /// # Panics
    /// Panics if `pending` or `live` differ in length from the shard
    /// count.
    pub fn route_insert(&self, pending: &[usize], live: &[bool]) -> Option<usize> {
        assert_eq!(pending.len(), self.num_shards(), "pending counts per shard");
        assert_eq!(live.len(), self.num_shards(), "live flags per shard");
        match self.policy {
            ShardPolicy::Hash => {
                let tentative = (self.len() + pending.iter().sum::<usize>()) as VectorId;
                let start = hash_shard(self.seed, tentative, self.num_shards()) as usize;
                (0..self.num_shards())
                    .map(|i| (start + i) % self.num_shards())
                    .find(|&s| live[s])
            }
            ShardPolicy::BalancedSize => (0..self.num_shards())
                .filter(|&s| live[s])
                .min_by_key(|&s| self.shard_len(s) + pending[s]),
        }
    }

    /// Records one completed online insert, assigning the next global id
    /// to local slot `local` of `shard`. The cluster tier calls this when
    /// the owning shard's engine confirms the insert, passing the local
    /// id the shard actually allocated — shards apply updates in arrival
    /// order, which need not match cluster submission order, so the slot
    /// cannot be inferred from the shard's current size. Slots skipped by
    /// out-of-order resolution are left unresolved until their own
    /// insert resolves.
    ///
    /// # Panics
    /// Panics if `shard` is out of range or the slot is already bound.
    pub fn push_at(&mut self, shard: usize, local: VectorId) -> VectorId {
        assert!(shard < self.num_shards(), "shard out of range");
        let g = self.assignments.len() as VectorId;
        self.assignments.push(shard as u32);
        self.locals.push(local);
        let members = &mut self.members[shard];
        if members.len() <= local as usize {
            members.resize(local as usize + 1, UNRESOLVED);
        }
        assert_eq!(
            members[local as usize], UNRESOLVED,
            "local slot already bound"
        );
        members[local as usize] = g;
        g
    }

    /// Splits a dataset into per-shard sub-datasets following the plan
    /// (local id order; `stored_vector_bytes` is preserved so per-shard
    /// flash footprints match the unsharded deployment's).
    ///
    /// # Panics
    /// Panics if the dataset length differs from the plan's base length.
    pub fn extract(&self, dataset: &Dataset) -> Vec<Dataset> {
        assert_eq!(dataset.len(), self.len(), "plan and dataset must agree");
        self.members
            .iter()
            .map(|globals| {
                let mut shard = Dataset::new(dataset.dim());
                shard.set_stored_vector_bytes(dataset.stored_vector_bytes());
                for &g in globals {
                    shard
                        .try_push(dataset.vector(g))
                        .expect("source rows share one dimension");
                }
                shard
            })
            .collect()
    }

    /// Load-imbalance factor of the partition: largest shard size over
    /// the mean shard size (1.0 = perfectly balanced; 0 when empty).
    pub fn size_imbalance(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let max = self.members.iter().map(Vec::len).max().unwrap_or(0) as f64;
        let mean = self.len() as f64 / self.num_shards() as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_sizes_differ_by_at_most_one() {
        for (n, k) in [(10usize, 4usize), (100, 8), (7, 7), (5, 8), (64, 1)] {
            let plan = ShardPlan::partition(n, k, ShardPolicy::BalancedSize, 0);
            let sizes: Vec<usize> = (0..k).map(|s| plan.shard_len(s)).collect();
            assert_eq!(sizes.iter().sum::<usize>(), n);
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "n={n} k={k}: sizes {sizes:?}");
            // Contiguity: members of each shard are consecutive globals.
            for s in 0..k {
                let m = plan.members(s);
                assert!(m.windows(2).all(|w| w[1] == w[0] + 1));
            }
        }
    }

    #[test]
    fn hash_partition_covers_and_round_trips() {
        let plan = ShardPlan::partition(500, 8, ShardPolicy::Hash, 0xC0FFEE);
        assert_eq!(plan.len(), 500);
        let total: usize = (0..8).map(|s| plan.shard_len(s)).sum();
        assert_eq!(total, 500);
        for g in 0..500u32 {
            assert_eq!(plan.global_of(plan.shard_of(g), plan.local_of(g)), g);
        }
        // Every shard gets a reasonable share at this size.
        for s in 0..8 {
            assert!(plan.shard_len(s) > 0, "shard {s} empty");
        }
        // Deterministic in the seed; different seeds move vectors.
        let same = ShardPlan::partition(500, 8, ShardPolicy::Hash, 0xC0FFEE);
        assert_eq!(plan, same);
        let other = ShardPlan::partition(500, 8, ShardPolicy::Hash, 0xBEEF);
        assert_ne!(plan.assignments, other.assignments);
    }

    #[test]
    fn extract_preserves_vectors_and_footprint() {
        let mut ds =
            Dataset::from_rows(2, (0..10).map(|i| vec![i as f32, -(i as f32)]).collect()).unwrap();
        ds.set_stored_vector_bytes(2);
        let plan = ShardPlan::partition(10, 3, ShardPolicy::Hash, 1);
        let shards = plan.extract(&ds);
        assert_eq!(shards.len(), 3);
        for (s, shard) in shards.iter().enumerate() {
            assert_eq!(shard.stored_vector_bytes(), 2);
            assert_eq!(shard.len(), plan.shard_len(s));
            for (l, v) in shard.iter() {
                assert_eq!(v, ds.vector(plan.global_of(s, l)));
            }
        }
    }

    #[test]
    fn insert_routing_extends_the_mapping() {
        let mut plan = ShardPlan::partition(9, 3, ShardPolicy::BalancedSize, 0);
        let live = [true, true, true];
        // Balanced: all shards hold 3; pending counts break the tie.
        assert_eq!(plan.route_insert(&[0, 0, 0], &live), Some(0));
        assert_eq!(plan.route_insert(&[1, 0, 0], &live), Some(1));
        assert_eq!(plan.route_insert(&[1, 1, 0], &live), Some(2));
        let g = plan.push_at(1, 3);
        assert_eq!(g, 9);
        assert_eq!(plan.shard_of(9), 1);
        assert_eq!(plan.local_of(9), 3);
        assert_eq!(plan.global_of(1, 3), 9);
        assert_eq!(plan.len(), 10);
        // Hash routing is a pure function of the tentative id.
        let hashed = ShardPlan::partition(9, 3, ShardPolicy::Hash, 5);
        assert_eq!(
            hashed.route_insert(&[0, 0, 0], &live),
            hashed.route_insert(&[0, 0, 0], &live)
        );
    }

    #[test]
    fn insert_routing_skips_dead_shards() {
        // Balanced: the dead shard would be the least-loaded pick; it
        // must be skipped, not selected-and-rejected forever.
        let plan = ShardPlan::partition(9, 3, ShardPolicy::BalancedSize, 0);
        assert_eq!(plan.route_insert(&[0, 0, 0], &[false, true, true]), Some(1));
        // Hash: every tentative id probes to a live shard.
        let hashed = ShardPlan::partition(40, 4, ShardPolicy::Hash, 7);
        for pending in 0..16usize {
            let mut p = [0usize; 4];
            p[0] = pending;
            let s = hashed.route_insert(&p, &[true, false, true, false]);
            assert!(
                matches!(s, Some(0) | Some(2)),
                "routed to dead shard: {s:?}"
            );
        }
        // No live shard at all.
        assert_eq!(plan.route_insert(&[0, 0, 0], &[false, false, false]), None);
    }

    #[test]
    fn out_of_order_resolution_binds_correct_slots() {
        // Shards apply inserts in arrival order; the cluster resolves in
        // submission order. A later-submitted insert can thus own an
        // *earlier* local slot — push_at must bind exactly the reported
        // slot, leaving the skipped one for its own insert.
        let mut plan = ShardPlan::partition(4, 2, ShardPolicy::BalancedSize, 0);
        // Shard 1 holds locals {0, 1}; two inserts applied as locals 3
        // then 2 from the cluster's resolution point of view.
        let g_a = plan.push_at(1, 3);
        let g_b = plan.push_at(1, 2);
        assert_eq!((g_a, g_b), (4, 5));
        assert_eq!(plan.global_of(1, 3), 4);
        assert_eq!(plan.global_of(1, 2), 5);
        assert_eq!(plan.shard_of(4), 1);
        assert_eq!(plan.local_of(4), 3);
        assert_eq!(plan.local_of(5), 2);
    }

    #[test]
    #[should_panic(expected = "not resolved yet")]
    fn unresolved_slot_is_unreadable() {
        let mut plan = ShardPlan::partition(4, 2, ShardPolicy::BalancedSize, 0);
        plan.push_at(1, 3); // leaves local 2 unresolved
        plan.global_of(1, 2);
    }

    #[test]
    fn size_imbalance_is_one_when_balanced() {
        let plan = ShardPlan::partition(64, 4, ShardPolicy::BalancedSize, 0);
        assert!((plan.size_imbalance() - 1.0).abs() < 1e-12);
        let hashed = ShardPlan::partition(64, 4, ShardPolicy::Hash, 3);
        assert!(hashed.size_imbalance() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_panics() {
        ShardPlan::partition(4, 0, ShardPolicy::Hash, 0);
    }
}
