//! Bounded top-k collector.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::VectorId;

/// A `(distance, id)` pair ordered by distance (ties broken by id) so that
/// result lists are fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Distance from the query (smaller = closer).
    pub distance: f32,
    /// Vertex id of the neighbor.
    pub id: VectorId,
}

impl Neighbor {
    /// Creates a neighbor entry.
    pub fn new(distance: f32, id: VectorId) -> Self {
        Self { distance, id }
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        // Total order even under NaN: a NaN distance sorts *after* every
        // real distance (worst possible neighbor), and two NaNs tie by id.
        // The old `partial_cmp(..).unwrap_or(Equal)` made NaN "equal" to
        // everything, which is not transitive (NaN == 1.0, NaN == 2.0, but
        // 1.0 < 2.0) and silently corrupted `BinaryHeap` order.
        match self.distance.partial_cmp(&other.distance) {
            Some(ord) => ord.then_with(|| self.id.cmp(&other.id)),
            None => match (self.distance.is_nan(), other.distance.is_nan()) {
                (true, false) => Ordering::Greater,
                (false, true) => Ordering::Less,
                _ => self.id.cmp(&other.id),
            },
        }
    }
}

/// A bounded max-heap keeping the `k` smallest-distance neighbors seen.
///
/// # Example
/// ```
/// use ndsearch_vector::topk::{Neighbor, TopK};
/// let mut top = TopK::new(2);
/// top.push(Neighbor::new(3.0, 0));
/// top.push(Neighbor::new(1.0, 1));
/// top.push(Neighbor::new(2.0, 2));
/// let sorted = top.into_sorted_vec();
/// assert_eq!(sorted.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// Creates a collector retaining the `k` best entries.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of entries currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Inserts a candidate, evicting the current worst if full. Returns
    /// `true` if the candidate was kept.
    ///
    /// A NaN distance is rejected outright: it can never rank among the
    /// `k` smallest, and admitting one while the heap is below capacity
    /// would pin an incomparable worst-entry at the top.
    pub fn push(&mut self, n: Neighbor) -> bool {
        if n.distance.is_nan() {
            false
        } else if self.heap.len() < self.k {
            self.heap.push(n);
            true
        } else if let Some(worst) = self.heap.peek() {
            if n < *worst {
                self.heap.pop();
                self.heap.push(n);
                true
            } else {
                false
            }
        } else {
            false
        }
    }

    /// The current worst (largest) retained distance, if any entry exists.
    pub fn worst_distance(&self) -> Option<f32> {
        self.heap.peek().map(|n| n.distance)
    }

    /// Whether a candidate with distance `d` would be kept if pushed now.
    /// NaN is never kept, mirroring [`TopK::push`].
    pub fn would_keep(&self, d: f32) -> bool {
        !d.is_nan() && (self.heap.len() < self.k || self.worst_distance().is_some_and(|w| d < w))
    }

    /// Consumes the collector, returning neighbors sorted ascending by
    /// distance.
    pub fn into_sorted_vec(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

impl Extend<Neighbor> for TopK {
    fn extend<T: IntoIterator<Item = Neighbor>>(&mut self, iter: T) {
        for n in iter {
            self.push(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut top = TopK::new(3);
        for (d, id) in [(5.0, 0), (1.0, 1), (4.0, 2), (2.0, 3), (3.0, 4)] {
            top.push(Neighbor::new(d, id));
        }
        let ids: Vec<_> = top.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 3, 4]);
    }

    #[test]
    fn push_reports_keep_decision() {
        let mut top = TopK::new(1);
        assert!(top.push(Neighbor::new(2.0, 0)));
        assert!(!top.push(Neighbor::new(3.0, 1)));
        assert!(top.push(Neighbor::new(1.0, 2)));
    }

    #[test]
    fn ties_break_by_id() {
        let mut top = TopK::new(2);
        top.push(Neighbor::new(1.0, 9));
        top.push(Neighbor::new(1.0, 3));
        top.push(Neighbor::new(1.0, 7));
        let ids: Vec<_> = top.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 7]);
    }

    #[test]
    fn would_keep_matches_push() {
        let mut top = TopK::new(2);
        top.push(Neighbor::new(1.0, 0));
        top.push(Neighbor::new(2.0, 1));
        assert!(top.would_keep(1.5));
        assert!(!top.would_keep(2.5));
    }

    #[test]
    fn extend_works() {
        let mut top = TopK::new(2);
        top.extend((0..5).map(|i| Neighbor::new(i as f32, i)));
        assert_eq!(top.len(), 2);
        assert_eq!(top.worst_distance(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        TopK::new(0);
    }

    #[test]
    fn nan_is_rejected_and_order_stays_total() {
        // Regression: NaN used to compare Equal to everything (breaking
        // transitivity and heap order) and was admitted below capacity.
        let mut top = TopK::new(2);
        assert!(!top.would_keep(f32::NAN));
        assert!(!top.push(Neighbor::new(f32::NAN, 0)));
        assert!(top.is_empty(), "NaN must not occupy a slot below capacity");
        top.push(Neighbor::new(2.0, 1));
        top.push(Neighbor::new(1.0, 2));
        assert!(!top.push(Neighbor::new(f32::NAN, 3)));
        assert!(!top.would_keep(f32::NAN));
        let ids: Vec<_> = top.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![2, 1]);
        // The Ord impl itself totally orders NaN last, ties by id.
        use std::cmp::Ordering;
        let nan9 = Neighbor::new(f32::NAN, 9);
        let nan3 = Neighbor::new(f32::NAN, 3);
        let real = Neighbor::new(1e30, 7);
        assert_eq!(nan9.cmp(&real), Ordering::Greater);
        assert_eq!(real.cmp(&nan9), Ordering::Less);
        assert_eq!(nan3.cmp(&nan9), Ordering::Less);
        assert_eq!(nan9.cmp(&nan9), Ordering::Equal);
        // Interleaving NaNs with reals sorts NaNs last, not arbitrarily.
        let mut v = [nan9, real, nan3, Neighbor::new(0.5, 1)];
        v.sort_unstable();
        let order: Vec<_> = v.iter().map(|n| n.id).collect();
        assert_eq!(order, vec![1, 7, 3, 9]);
    }
}
