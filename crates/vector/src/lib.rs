//! Vector primitives for the NDSEARCH reproduction.
//!
//! This crate holds everything the rest of the workspace needs to talk about
//! *feature vectors*: storage ([`Dataset`]), distance kernels
//! ([`DistanceKind`]), deterministic random number generation
//! ([`rng::SplitMix64`], [`rng::Pcg32`]), synthetic dataset presets mirroring
//! the paper's five benchmarks ([`synthetic::DatasetSpec`]), exact
//! ground-truth / recall evaluation ([`recall`]), a bounded top-k
//! collector ([`topk::TopK`]), the dataset partitioner behind the
//! sharded cluster serving tier ([`shard::ShardPlan`]), compressed-vector
//! codes for DRAM-resident traversal ([`quant`]: int8 and product
//! quantization behind the [`quant::ScoreSource`] seam) and the single
//! parsing rule for `NDSEARCH_*` environment overrides ([`mod@env`]).
//!
//! The NDSEARCH paper evaluates on glove-100, fashion-mnist, sift-1b,
//! deep-1b and spacev-1b. Billion-scale corpora are not tractable inside a
//! cycle-level simulator, so [`synthetic`] generates clustered-Gaussian
//! datasets with the *same dimensionality and value-distribution class* at a
//! scaled vector count; the flash geometry is scaled in proportion elsewhere
//! so relative occupancy (the quantity that drives the paper's locality
//! effects) is preserved.
//!
//! # Example
//!
//! ```
//! use ndsearch_vector::{synthetic::DatasetSpec, DistanceKind};
//!
//! let dataset = DatasetSpec::sift_scaled(1_000, 16).build();
//! assert_eq!(dataset.len(), 1_000);
//! let d = DistanceKind::L2.eval(dataset.vector(0), dataset.vector(1));
//! assert!(d >= 0.0);
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod distance;
pub mod env;
pub mod quant;
pub mod recall;
pub mod rng;
pub mod shard;
pub mod synthetic;
pub mod topk;

pub use dataset::{Dataset, VectorId};
pub use distance::DistanceKind;
pub use quant::{QuantCodes, QuantSpec, ScoreSource};
pub use recall::{ground_truth, recall_at_k};
pub use shard::{ShardPlan, ShardPolicy};
pub use topk::TopK;
