//! Flat, id-addressed vector storage.

use std::fmt;

/// Identifier of a vector / graph vertex.
///
/// The paper indexes vertices with 4-byte IDs (§IV-B's layout discussion),
/// so `u32` is used throughout the workspace.
pub type VectorId = u32;

/// A dense collection of equal-dimension `f32` feature vectors.
///
/// Storage is a single flat buffer (`len * dim` floats), which mirrors how
/// the feature vectors sit in NAND pages and keeps the simulator's byte
/// accounting trivial.
///
/// # Example
/// ```
/// use ndsearch_vector::Dataset;
/// let ds = Dataset::from_rows(2, vec![vec![0.0, 1.0], vec![2.0, 3.0]]).unwrap();
/// assert_eq!(ds.vector(1), &[2.0, 3.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Dataset {
    dim: usize,
    data: Vec<f32>,
    /// Bytes a single stored vector occupies on flash. Defaults to
    /// `dim * 4` but presets override it to match the source dataset's
    /// element width (e.g. sift stores `u8` components).
    stored_vector_bytes: usize,
}

/// Error produced when constructing a [`Dataset`] from malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    expected_dim: usize,
    row: usize,
    got_dim: usize,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "row {} has dimension {}, expected {}",
            self.row, self.got_dim, self.expected_dim
        )
    }
}

impl std::error::Error for ShapeError {}

impl Dataset {
    /// Creates an empty dataset of the given dimensionality.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            data: Vec::new(),
            stored_vector_bytes: dim * 4,
        }
    }

    /// Builds a dataset from row vectors.
    ///
    /// # Errors
    /// Returns [`ShapeError`] if any row's length differs from `dim`.
    pub fn from_rows(dim: usize, rows: Vec<Vec<f32>>) -> Result<Self, ShapeError> {
        let mut ds = Self::new(dim);
        for (i, row) in rows.into_iter().enumerate() {
            if row.len() != dim {
                return Err(ShapeError {
                    expected_dim: dim,
                    row: i,
                    got_dim: row.len(),
                });
            }
            ds.data.extend_from_slice(&row);
        }
        Ok(ds)
    }

    /// Builds a dataset from a flat buffer of `len * dim` floats.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Self {
            dim,
            data,
            stored_vector_bytes: dim * 4,
        }
    }

    /// Appends one vector, returning its newly assigned id.
    ///
    /// This is the ingestion entry point of the online-update path: the
    /// serving layer pushes the vector first, then links the returned id
    /// into the live graph overlay.
    ///
    /// # Errors
    /// Returns [`ShapeError`] if `v.len() != self.dim()`.
    pub fn try_push(&mut self, v: &[f32]) -> Result<VectorId, ShapeError> {
        if v.len() != self.dim {
            return Err(ShapeError {
                expected_dim: self.dim,
                row: self.len(),
                got_dim: v.len(),
            });
        }
        self.data.extend_from_slice(v);
        Ok((self.len() - 1) as VectorId)
    }

    /// Number of vectors stored.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the dataset holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow of vector `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn vector(&self, id: VectorId) -> &[f32] {
        let i = id as usize;
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Fallible borrow of vector `id`.
    pub fn get(&self, id: VectorId) -> Option<&[f32]> {
        let i = id as usize;
        if i < self.len() {
            Some(self.vector(id))
        } else {
            None
        }
    }

    /// Iterates `(id, vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VectorId, &[f32])> {
        self.data
            .chunks_exact(self.dim)
            .enumerate()
            .map(|(i, v)| (i as VectorId, v))
    }

    /// The flat underlying buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Gathers borrows of the listed vectors into `out` (cleared first),
    /// preserving order and duplicates.
    ///
    /// This is the batch-scoring accessor: beam expansion gathers a
    /// vertex's neighbor list once and hands the slices to
    /// `DistanceKind::eval_batch` instead of calling `vector` per edge.
    ///
    /// # Panics
    /// Panics if any id is out of bounds.
    pub fn gather<'a>(&'a self, ids: &[VectorId], out: &mut Vec<&'a [f32]>) {
        out.clear();
        out.reserve(ids.len());
        for &id in ids {
            out.push(self.vector(id));
        }
    }

    /// Overrides the on-flash byte footprint of one vector (used by presets
    /// whose source datasets store narrower element types, e.g. `u8` sift
    /// components or `i8` spacev components).
    ///
    /// # Panics
    /// Panics if `bytes == 0`.
    pub fn set_stored_vector_bytes(&mut self, bytes: usize) {
        assert!(bytes > 0, "stored vector bytes must be positive");
        self.stored_vector_bytes = bytes;
    }

    /// Bytes one vector occupies in NAND (element width × dim).
    pub fn stored_vector_bytes(&self) -> usize {
        self.stored_vector_bytes
    }

    /// Reorders the dataset in place so that new id `i` holds the vector
    /// formerly at `perm[i]` ("gather" semantics). Used after static
    /// scheduling reorders the graph.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..len`.
    pub fn permute_gather(&mut self, perm: &[VectorId]) {
        assert_eq!(perm.len(), self.len(), "permutation length mismatch");
        let mut seen = vec![false; self.len()];
        for &p in perm {
            let idx = p as usize;
            assert!(idx < self.len() && !seen[idx], "perm is not a permutation");
            seen[idx] = true;
        }
        let mut out = Vec::with_capacity(self.data.len());
        for &src in perm {
            out.extend_from_slice(self.vector(src));
        }
        self.data = out;
    }
}

impl fmt::Debug for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dataset")
            .field("len", &self.len())
            .field("dim", &self.dim)
            .field("stored_vector_bytes", &self.stored_vector_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trips() {
        let ds = Dataset::from_rows(3, vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.vector(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.vector(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Dataset::from_rows(2, vec![vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert_eq!(err.to_string(), "row 1 has dimension 1, expected 2");
    }

    #[test]
    fn get_is_fallible() {
        let ds = Dataset::from_rows(1, vec![vec![9.0]]).unwrap();
        assert_eq!(ds.get(0), Some(&[9.0][..]));
        assert_eq!(ds.get(1), None);
    }

    #[test]
    fn iter_yields_all_vectors() {
        let ds = Dataset::from_rows(2, vec![vec![0.0, 1.0], vec![2.0, 3.0]]).unwrap();
        let collected: Vec<_> = ds.iter().collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[1].0, 1);
        assert_eq!(collected[1].1, &[2.0, 3.0]);
    }

    #[test]
    fn permute_gather_moves_vectors() {
        let mut ds = Dataset::from_rows(1, vec![vec![10.0], vec![11.0], vec![12.0]]).unwrap();
        ds.permute_gather(&[2, 0, 1]);
        assert_eq!(ds.vector(0), &[12.0]);
        assert_eq!(ds.vector(1), &[10.0]);
        assert_eq!(ds.vector(2), &[11.0]);
    }

    #[test]
    #[should_panic(expected = "perm is not a permutation")]
    fn permute_gather_rejects_duplicates() {
        let mut ds = Dataset::from_rows(1, vec![vec![0.0], vec![1.0]]).unwrap();
        ds.permute_gather(&[0, 0]);
    }

    #[test]
    fn try_push_appends_and_reports_shape_errors() {
        let mut ds = Dataset::new(2);
        assert_eq!(ds.try_push(&[1.0, 2.0]), Ok(0));
        assert_eq!(ds.try_push(&[3.0, 4.0]), Ok(1));
        assert_eq!(ds.vector(1), &[3.0, 4.0]);
        let err = ds.try_push(&[5.0]).unwrap_err();
        assert_eq!(err.to_string(), "row 2 has dimension 1, expected 2");
        // A rejected push leaves the dataset untouched.
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn stored_bytes_default_and_override() {
        let mut ds = Dataset::from_rows(4, vec![vec![0.0; 4]]).unwrap();
        assert_eq!(ds.stored_vector_bytes(), 16);
        ds.set_stored_vector_bytes(4); // e.g. u8 elements
        assert_eq!(ds.stored_vector_bytes(), 4);
    }

    #[test]
    fn gather_preserves_order_and_duplicates() {
        let ds = Dataset::from_rows(1, vec![vec![10.0], vec![11.0], vec![12.0]]).unwrap();
        let mut out = Vec::new();
        ds.gather(&[2, 0, 2], &mut out);
        assert_eq!(out, vec![&[12.0][..], &[10.0][..], &[12.0][..]]);
        // Reuse clears the previous contents.
        ds.gather(&[1], &mut out);
        assert_eq!(out, vec![&[11.0][..]]);
    }

    #[test]
    fn from_flat_checks_multiple() {
        let ds = Dataset::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_partial_rows() {
        Dataset::from_flat(2, vec![1.0, 2.0, 3.0]);
    }
}
