//! Synthetic dataset generation and paper-benchmark presets.
//!
//! The paper evaluates on five real corpora. A cycle-level simulator cannot
//! hold a billion vectors, so each preset generates a *clustered Gaussian*
//! dataset with the same dimensionality and element width as the original,
//! at a configurable scaled vector count. Clustered generation (rather than
//! i.i.d. uniform) matters: graph-traversal ANNS locality effects — the
//! whole point of NDSEARCH's scheduling — only appear when the data has
//! nearest-neighbor structure.

use crate::dataset::Dataset;
use crate::rng::Pcg32;

/// Which paper benchmark a spec models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchmarkId {
    /// glove-100: 100-d word embeddings, angular distance.
    Glove100,
    /// fashion-mnist: 784-d image pixels, Euclidean.
    FashionMnist,
    /// sift-1b: 128-d SIFT descriptors stored as u8, Euclidean.
    Sift1B,
    /// deep-1b: 96-d CNN descriptors, Euclidean (angular in some setups).
    Deep1B,
    /// spacev-1b: 100-d text descriptors stored as i8, Euclidean.
    SpaceV1B,
}

impl BenchmarkId {
    /// All five paper benchmarks in the order the paper tables list them.
    pub const ALL: [BenchmarkId; 5] = [
        BenchmarkId::Glove100,
        BenchmarkId::FashionMnist,
        BenchmarkId::Sift1B,
        BenchmarkId::Deep1B,
        BenchmarkId::SpaceV1B,
    ];

    /// Paper display name.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::Glove100 => "glove-100",
            BenchmarkId::FashionMnist => "fashion-mnist",
            BenchmarkId::Sift1B => "sift-1b",
            BenchmarkId::Deep1B => "deep-1b",
            BenchmarkId::SpaceV1B => "spacev-1b",
        }
    }

    /// Whether the original corpus is billion scale (and therefore exceeds
    /// CPU/GPU memory in the paper's setup, forcing sharded execution).
    pub fn is_billion_scale(self) -> bool {
        matches!(
            self,
            BenchmarkId::Sift1B | BenchmarkId::Deep1B | BenchmarkId::SpaceV1B
        )
    }

    /// Original corpus cardinality (vectors), used to scale memory-footprint
    /// modelling for the CPU/GPU baselines.
    pub fn original_count(self) -> u64 {
        match self {
            BenchmarkId::Glove100 => 1_183_514,
            BenchmarkId::FashionMnist => 60_000,
            BenchmarkId::Sift1B | BenchmarkId::Deep1B | BenchmarkId::SpaceV1B => 1_000_000_000,
        }
    }

    /// Recall@10 the paper tunes each benchmark's graph to.
    pub fn paper_recall_target(self) -> f64 {
        match self {
            BenchmarkId::Glove100 => 0.95,
            BenchmarkId::FashionMnist => 0.95,
            BenchmarkId::Sift1B => 0.94,
            BenchmarkId::Deep1B => 0.93,
            BenchmarkId::SpaceV1B => 0.90,
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Specification for generating a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Which benchmark this models (for reporting only).
    pub benchmark: BenchmarkId,
    /// Vector dimensionality (matches the original corpus).
    pub dim: usize,
    /// Number of base vectors to generate.
    pub n_base: usize,
    /// Number of query vectors to generate.
    pub n_query: usize,
    /// Number of Gaussian clusters.
    pub clusters: usize,
    /// Cluster center spread (stddev of center coordinates).
    pub center_spread: f64,
    /// Within-cluster stddev.
    pub cluster_stddev: f64,
    /// Fraction of points drawn from a broad background distribution
    /// spanning the clusters instead of from a single mode. Real corpora
    /// contain such in-between points; they matter in high dimension,
    /// where distance concentration would otherwise make pure
    /// Gaussian-ball mixtures metrically disjoint (no inter-cluster
    /// nearest-neighbor structure at all — unlike any real dataset).
    pub bridge_fraction: f64,
    /// Per-vector on-flash element width in bytes (1 for u8/i8 corpora,
    /// 4 for f32 corpora).
    pub element_bytes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Preset modelling glove-100 (angular 100-d embeddings).
    pub fn glove_scaled(n_base: usize, n_query: usize) -> Self {
        Self {
            benchmark: BenchmarkId::Glove100,
            dim: 100,
            n_base,
            n_query,
            clusters: cluster_count(n_base),
            center_spread: 3.0,
            cluster_stddev: 1.0,
            bridge_fraction: 0.05,
            element_bytes: 4,
            seed: 0x0006_C07E,
        }
    }

    /// Preset modelling fashion-mnist (784-d pixel images). Real
    /// fashion-mnist classes are internally diverse and overlap heavily in
    /// pixel space, so the preset uses many small, closely spaced modes
    /// (√n, like the other presets) rather than ten metrically disjoint
    /// balls — ten far-apart Gaussian balls in 784-d would have *no*
    /// inter-class nearest-neighbor structure at all, and degree-bounded
    /// proximity graphs (Vamana R=32 < class size) would disconnect along
    /// class boundaries, which the real corpus does not exhibit.
    pub fn fashion_mnist_scaled(n_base: usize, n_query: usize) -> Self {
        Self {
            benchmark: BenchmarkId::FashionMnist,
            dim: 784,
            n_base,
            n_query,
            clusters: cluster_count(n_base),
            center_spread: 0.8,
            cluster_stddev: 1.0,
            bridge_fraction: 0.20,
            element_bytes: 1,
            seed: 0xFA_51,
        }
    }

    /// Preset modelling sift-1b (128-d u8 SIFT descriptors).
    pub fn sift_scaled(n_base: usize, n_query: usize) -> Self {
        Self {
            benchmark: BenchmarkId::Sift1B,
            dim: 128,
            n_base,
            n_query,
            clusters: cluster_count(n_base),
            center_spread: 3.0,
            cluster_stddev: 1.0,
            bridge_fraction: 0.05,
            element_bytes: 1,
            seed: 0x51F7,
        }
    }

    /// Preset modelling deep-1b (96-d CNN descriptors).
    pub fn deep_scaled(n_base: usize, n_query: usize) -> Self {
        Self {
            benchmark: BenchmarkId::Deep1B,
            dim: 96,
            n_base,
            n_query,
            clusters: cluster_count(n_base),
            center_spread: 2.5,
            cluster_stddev: 1.0,
            bridge_fraction: 0.05,
            element_bytes: 4,
            seed: 0xDEE7,
        }
    }

    /// Preset modelling spacev-1b (100-d i8 text descriptors).
    pub fn spacev_scaled(n_base: usize, n_query: usize) -> Self {
        Self {
            benchmark: BenchmarkId::SpaceV1B,
            dim: 100,
            n_base,
            n_query,
            clusters: cluster_count(n_base),
            center_spread: 2.5,
            cluster_stddev: 1.1,
            bridge_fraction: 0.05,
            element_bytes: 1,
            seed: 0x0005_BACE,
        }
    }

    /// Preset by benchmark id, with a common scale.
    pub fn for_benchmark(benchmark: BenchmarkId, n_base: usize, n_query: usize) -> Self {
        match benchmark {
            BenchmarkId::Glove100 => Self::glove_scaled(n_base, n_query),
            BenchmarkId::FashionMnist => Self::fashion_mnist_scaled(n_base, n_query),
            BenchmarkId::Sift1B => Self::sift_scaled(n_base, n_query),
            BenchmarkId::Deep1B => Self::deep_scaled(n_base, n_query),
            BenchmarkId::SpaceV1B => Self::spacev_scaled(n_base, n_query),
        }
    }

    /// Generates the base dataset.
    pub fn build(&self) -> Dataset {
        self.generate(self.n_base, 0)
    }

    /// Generates the query set (statistically identical distribution, but a
    /// disjoint RNG stream so queries are not base vectors).
    pub fn build_queries(&self) -> Dataset {
        self.generate(self.n_query, 1)
    }

    /// Generates both at once.
    pub fn build_pair(&self) -> (Dataset, Dataset) {
        (self.build(), self.build_queries())
    }

    fn generate(&self, count: usize, stream: u64) -> Dataset {
        assert!(self.dim > 0, "dim must be positive");
        assert!(self.clusters > 0, "clusters must be positive");
        let mut center_rng = Pcg32::new(self.seed, 917);
        let centers: Vec<Vec<f32>> = (0..self.clusters)
            .map(|_| {
                (0..self.dim)
                    .map(|_| (center_rng.next_gaussian() * self.center_spread) as f32)
                    .collect()
            })
            .collect();
        let mut rng = Pcg32::new(self.seed, 1000 + stream);
        let mut data = Vec::with_capacity(count * self.dim);
        // Background (bridge) points interpolate between two random
        // cluster centers, landing in the in-between space that connects
        // modes in real corpora.
        let bridge_sigma = (self.cluster_stddev * self.cluster_stddev
            + self.center_spread * self.center_spread)
            .sqrt();
        for _ in 0..count {
            if rng.chance(self.bridge_fraction) {
                let a = &centers[rng.index(self.clusters)];
                let b = &centers[rng.index(self.clusters)];
                let t = rng.next_f32();
                for (&ma, &mb) in a.iter().zip(b.iter()) {
                    let mid = ma + t * (mb - ma);
                    data.push(mid + (rng.next_gaussian() * bridge_sigma * 0.3) as f32);
                }
            } else {
                let c = &centers[rng.index(self.clusters)];
                for &mu in c.iter() {
                    data.push(mu + (rng.next_gaussian() * self.cluster_stddev) as f32);
                }
            }
        }
        let mut ds = Dataset::from_flat(self.dim, data);
        ds.set_stored_vector_bytes(self.dim * self.element_bytes);
        ds
    }

    /// Bytes one *stored* vector occupies on flash for this preset.
    pub fn stored_vector_bytes(&self) -> usize {
        self.dim * self.element_bytes
    }

    /// Bytes the *original* (unscaled) corpus would occupy, feature vectors
    /// only. Drives the baselines' exceeds-memory decision.
    pub fn original_corpus_bytes(&self) -> u64 {
        self.benchmark.original_count() * self.stored_vector_bytes() as u64
    }
}

/// Heuristic cluster count: about sqrt(n), at least 8.
fn cluster_count(n_base: usize) -> usize {
    ((n_base as f64).sqrt() as usize).max(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::l2_squared;

    #[test]
    fn presets_have_paper_dimensions() {
        assert_eq!(DatasetSpec::glove_scaled(10, 2).dim, 100);
        assert_eq!(DatasetSpec::fashion_mnist_scaled(10, 2).dim, 784);
        assert_eq!(DatasetSpec::sift_scaled(10, 2).dim, 128);
        assert_eq!(DatasetSpec::deep_scaled(10, 2).dim, 96);
        assert_eq!(DatasetSpec::spacev_scaled(10, 2).dim, 100);
    }

    #[test]
    fn build_is_deterministic() {
        let spec = DatasetSpec::sift_scaled(200, 10);
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a, b);
    }

    #[test]
    fn queries_differ_from_base() {
        let spec = DatasetSpec::deep_scaled(50, 50);
        let (base, queries) = spec.build_pair();
        assert_ne!(base.as_flat(), queries.as_flat());
        assert_eq!(queries.len(), 50);
    }

    #[test]
    fn clustering_produces_structure() {
        // Vectors should on average be much closer to their nearest neighbor
        // than to a random vector — the property graph ANNS relies on.
        let spec = DatasetSpec::sift_scaled(400, 1);
        let ds = spec.build();
        let mut rng = Pcg32::seed_from_u64(1);
        let mut nearest_sum = 0.0f64;
        let mut random_sum = 0.0f64;
        let probes = 40;
        for _ in 0..probes {
            let i = rng.index(ds.len()) as u32;
            let mut best = f32::INFINITY;
            for (j, v) in ds.iter() {
                if j != i {
                    best = best.min(l2_squared(ds.vector(i), v));
                }
            }
            let j = rng.index(ds.len()) as u32;
            nearest_sum += f64::from(best);
            random_sum += f64::from(l2_squared(ds.vector(i), ds.vector(j)).max(1e-9));
        }
        assert!(
            nearest_sum < random_sum * 0.8,
            "nearest {nearest_sum} vs random {random_sum}"
        );
    }

    #[test]
    fn element_bytes_flow_into_dataset() {
        let ds = DatasetSpec::sift_scaled(10, 1).build();
        assert_eq!(ds.stored_vector_bytes(), 128); // u8 × 128
        let ds = DatasetSpec::glove_scaled(10, 1).build();
        assert_eq!(ds.stored_vector_bytes(), 400); // f32 × 100
    }

    #[test]
    fn original_corpus_sizes_are_billion_scale() {
        let spec = DatasetSpec::sift_scaled(10, 1);
        assert_eq!(spec.original_corpus_bytes(), 128_000_000_000);
        assert!(BenchmarkId::Sift1B.is_billion_scale());
        assert!(!BenchmarkId::Glove100.is_billion_scale());
    }

    #[test]
    fn recall_targets_match_paper() {
        let targets: Vec<f64> = BenchmarkId::ALL
            .iter()
            .map(|b| b.paper_recall_target())
            .collect();
        assert_eq!(targets, vec![0.95, 0.95, 0.94, 0.93, 0.90]);
    }
}
